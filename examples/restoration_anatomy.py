#!/usr/bin/env python3
"""Anatomy of one Groundhog snapshot and restoration.

This example uses the library's lower-level API directly — the same
interfaces the FaaS platform substrate uses — to show exactly what Groundhog
does to a function process:

1. boot and warm a Node.js-like runtime (the paper's stress case: large
   address space, many threads, aggressive layout churn),
2. take the clean snapshot,
3. serve one request and show what it changed (dirty pages, layout changes,
   register state),
4. restore, print the per-step breakdown (the components of Fig. 8), and
5. verify byte-for-byte that the process is back in its snapshot state.

Run with::

    python examples/restoration_anatomy.py
"""

from __future__ import annotations

import random

from repro import find_benchmark
from repro.analysis.tables import render_table
from repro.core.manager import GroundhogManager
from repro.proc.process import SimProcess
from repro.runtime import build_runtime


def main() -> None:
    spec = find_benchmark("autocomplete", "n")
    profile = spec.profile.scaled(0.05)  # shrink the 157K-page footprint for a quick demo
    print(f"Function: {spec.qualified_name} (footprint scaled to "
          f"{profile.total_pages} pages for the demo)")

    runtime = build_runtime(profile, SimProcess(profile.name), random.Random(1))
    boot = runtime.boot()
    runtime.warm()
    print(f"Runtime booted: {boot.threads} threads, "
          f"{runtime.process.address_space.total_mapped_pages} mapped pages, "
          f"{len(runtime.process.address_space.vmas)} VMAs")

    manager = GroundhogManager(runtime)
    stats = manager.take_snapshot()
    print(f"Snapshot: {stats.pages_captured} pages, {stats.vmas_captured} VMAs, "
          f"{stats.threads_captured} threads in {stats.total_seconds * 1000:.2f} ms")

    space = runtime.process.address_space
    vmas_before = len(space.vmas)
    managed = manager.handle_request(b"user-42 uploaded a private document", "req-1")
    dirty = len(space.soft_dirty_page_numbers())
    print(f"\nRequest executed in {managed.result.compute_seconds * 1000:.2f} ms "
          f"(+{managed.interposition_seconds * 1000:.2f} ms manager interposition)")
    print(f"  pages dirtied: {dirty}")
    print(f"  VMAs: {vmas_before} -> {len(space.vmas)} (layout churn to reverse)")
    print(f"  request buffer now holds: {runtime.read_request_buffer()[:48]!r}")

    result = manager.restore(verify=True)
    print(f"\nRestoration: {result.total_seconds * 1000:.2f} ms "
          f"({result.pages_restored} pages restored, {result.pages_dropped} dropped, "
          f"syscalls injected: {result.syscalls})")
    rows = [
        [step, f"{seconds * 1e6:.1f}", f"{share * 100:.1f}%"]
        for (step, seconds), share in zip(
            result.breakdown.as_dict().items(), result.breakdown.fractions().values()
        )
        if seconds > 0
    ]
    print(render_table(["step", "duration (us)", "share"], rows,
                       title="Restoration breakdown (Fig. 8 components)"))
    print(f"\nVerified: process state is byte-for-byte identical to the snapshot "
          f"({'yes' if result.verified else 'no'})")
    print(f"Request buffer after restore: {runtime.read_request_buffer()[:48]!r}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: deploy a function under Groundhog and see the leak disappear.

This example deploys the same (buggy) function twice on a simulated
OpenWhisk-like platform — once with plain warm-container reuse (``base``,
what production FaaS platforms do today) and once with Groundhog (``gh``) —
and sends it two requests from differently privileged callers.  The buggy
function caches request data in a global buffer, so under ``base`` Bob's
response still contains Alice's data; under Groundhog the process is rolled
back to its clean snapshot between the two requests and nothing leaks.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import ActionSpec, FaaSPlatform, SimulationConfig, find_benchmark


def serve_two_callers(mechanism: str) -> dict:
    """Deploy md2html under ``mechanism`` and serve Alice then Bob."""
    platform = FaaSPlatform(SimulationConfig(cores=1, containers_per_action=1))
    spec = find_benchmark("md2html", "p")
    platform.deploy(ActionSpec.for_profile(spec.profile, mechanism))

    alice = platform.invoke_sync(
        spec.profile.name,
        b"# Alice's draft: the merger closes on Friday",
        caller="alice",
    )
    bob = platform.invoke_sync(
        spec.profile.name,
        b"# Bob's grocery list",
        caller="bob",
    )
    return {
        "mechanism": mechanism,
        "alice_latency_ms": alice.e2e_seconds * 1000,
        "bob_latency_ms": bob.e2e_seconds * 1000,
        "bob_residual": bytes(bob.response["residual"]),
    }


def main() -> None:
    print("Groundhog quickstart: sequential request isolation in FaaS")
    print("=" * 64)
    for mechanism in ("base", "gh"):
        outcome = serve_two_callers(mechanism)
        leaked = b"merger" in outcome["bob_residual"]
        print(f"\nConfiguration: {mechanism}")
        print(f"  Alice end-to-end latency: {outcome['alice_latency_ms']:.1f} ms")
        print(f"  Bob   end-to-end latency: {outcome['bob_latency_ms']:.1f} ms")
        print(f"  Residue visible to Bob's invocation: {outcome['bob_residual'][:60]!r}")
        print(f"  Did Alice's data leak to Bob? {'YES - insecure' if leaked else 'no'}")
    print("\nGroundhog keeps the warm container (similar latency) while removing the leak.")


if __name__ == "__main__":
    main()

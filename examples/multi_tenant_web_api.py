#!/usr/bin/env python3
"""A multi-tenant web API served by FaaS functions with per-caller credentials.

Scenario (the paper's motivating setting, §1-§2): a tenant deploys a few
functions behind an HTTP endpoint; the functions are invoked on behalf of
many *end users* with different privileges.  Bugs in the functions or their
runtimes may retain one user's data in process memory, and with warm
container reuse the next user can end up seeing it.

The example deploys three FaaSProfiler-style functions (a JSON API, a
markdown renderer and a sentiment-analysis endpoint) under Groundhog, drives
them with a stream of requests from rotating users, and then audits:

* that every response was produced by a warm, reused container (no
  per-request cold starts), and
* that no response ever carried residue from a different user's request.

Run with::

    python examples/multi_tenant_web_api.py
"""

from __future__ import annotations

from collections import defaultdict

from repro import ActionSpec, FaaSPlatform, SimulationConfig, find_benchmark

USERS = ["alice", "bob", "carol", "dave"]
REQUESTS_PER_ACTION = 12


def build_platform(mechanism: str) -> FaaSPlatform:
    """Deploy the three API endpoints under the given isolation mechanism."""
    platform = FaaSPlatform(SimulationConfig(cores=2, containers_per_action=1))
    for name, language in (("json", "p"), ("md2html", "p"), ("sentiment", "p")):
        spec = find_benchmark(name, language)
        platform.deploy(ActionSpec.for_profile(spec.profile, mechanism))
    return platform


def drive(platform: FaaSPlatform) -> dict:
    """Send a stream of per-user requests and collect leak/latency evidence."""
    leaks = 0
    latencies = defaultdict(list)
    for action in ("json", "md2html", "sentiment"):
        for index in range(REQUESTS_PER_ACTION):
            user = USERS[index % len(USERS)]
            secret = f"{user}-session-token-{index:03d}".encode()
            invocation = platform.invoke_sync(action, secret, caller=user)
            latencies[action].append(invocation.e2e_seconds * 1000)
            residual = bytes(invocation.response["residual"])
            for other in USERS:
                if other != user and other.encode() in residual:
                    leaks += 1
    containers = {
        action: platform.containers(action)[0].requests_served
        for action in ("json", "md2html", "sentiment")
    }
    return {"leaks": leaks, "latencies": latencies, "containers": containers}


def main() -> None:
    print("Multi-tenant web API with per-caller credentials")
    print("=" * 64)
    for mechanism in ("base", "gh"):
        outcome = drive(build_platform(mechanism))
        print(f"\nConfiguration: {mechanism}")
        for action, samples in outcome["latencies"].items():
            mean = sum(samples) / len(samples)
            print(f"  {action:10s}: {len(samples)} requests, mean e2e {mean:6.1f} ms, "
                  f"served by one warm container ({outcome['containers'][action]} reuses)")
        print(f"  Cross-user leaks observed: {outcome['leaks']}")
    print("\nWith Groundhog the same warm containers serve every user with zero leaks.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Compare request-isolation designs on one workload, end to end.

This example walks the same design space as §3.2 and §5 of the paper: for a
single Python benchmark function it measures, for each isolation design,

* the latency a closed-loop client observes,
* the peak throughput of a saturated 4-core deployment,
* the work performed between requests (restoration / reset / rebuild), and
* whether data from one request can reach the next one.

Designs compared: insecure warm reuse (``base``), Groundhog (``gh``),
Groundhog without restoration (``gh-nop``), fork-per-request (``fork``),
FAASM-style WebAssembly Faaslets (``faasm``), a fresh container per request
(``cold``) and a CRIU-style image restore per request (``criu``).

Run with::

    python examples/isolation_mechanism_comparison.py
"""

from __future__ import annotations

import random

from repro import create_mechanism, find_benchmark
from repro.analysis.experiments import measure_latency, measure_throughput
from repro.analysis.tables import render_table
from repro.baselines.registry import mechanism_class

BENCHMARK = "md2html"
LANGUAGE = "p"
CONFIGS = ("base", "gh", "gh-nop", "fork", "faasm", "cold", "criu")


def leak_check(config: str, profile) -> bool:
    """Return True if a second caller can observe the first caller's data."""
    mechanism = create_mechanism(config, profile, rng=random.Random(3))
    mechanism.initialize()
    mechanism.invoke(b"alice-credit-card-4242", "r1", caller="alice")
    second = mechanism.invoke(b"bob-request", "r2", caller="bob")
    return b"alice-credit-card" in second.result.residual


def between_request_work_ms(config: str, profile) -> float:
    """Mean work (ms) the mechanism performs between two requests."""
    mechanism = create_mechanism(config, profile, rng=random.Random(5))
    mechanism.initialize()
    posts = [
        mechanism.invoke(b"x", f"r{index}", caller=f"c{index}").post_seconds
        for index in range(3)
    ]
    return sum(posts) / len(posts) * 1000


def main() -> None:
    spec = find_benchmark(BENCHMARK, LANGUAGE)
    profile = spec.profile
    print(f"Isolation mechanism comparison on {spec.qualified_name} "
          f"(paper baseline invoker latency: {spec.paper.base_invoker_ms} ms)")
    print("=" * 78)

    rows = []
    base_latency = None
    base_throughput = None
    for config in CONFIGS:
        if not mechanism_class(config).supports(profile):
            rows.append([config, "n/a", "n/a", "n/a", "n/a", "unsupported"])
            continue
        latency = measure_latency(spec, config, invocations=6)
        throughput = measure_throughput(spec, config, rounds=5)
        leak = leak_check(config, profile)
        work = between_request_work_ms(config, profile)
        e2e_ms = latency.e2e.median * 1000
        rps = throughput.throughput_rps
        if config == "base":
            base_latency, base_throughput = e2e_ms, rps
        rows.append([
            config,
            f"{e2e_ms:.1f} ms" + (f" ({e2e_ms / base_latency:.2f}x)" if base_latency else ""),
            f"{rps:.1f} req/s" + (f" ({rps / base_throughput:.2f}x)" if base_throughput else ""),
            f"{work:.2f} ms",
            "no" if not leak else "YES",
            "isolates" if mechanism_class(config).provides_isolation else "reuses state",
        ])
    print(render_table(
        ["config", "median E2E latency", "peak throughput", "between-request work",
         "leak observed", "notes"],
        rows,
    ))
    print("\nGroundhog keeps latency and throughput near the insecure baseline while")
    print("restoring state in milliseconds; cold-start and CRIU-style designs pay")
    print("orders of magnitude more between requests, and fork/FAASM only apply to")
    print("a subset of functions.")


if __name__ == "__main__":
    main()

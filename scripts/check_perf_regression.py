#!/usr/bin/env python3
"""Gate a fresh perf-trace run against the committed baseline.

Usage::

    python scripts/check_perf_regression.py CANDIDATE.json [BASELINE.json]

``BASELINE.json`` defaults to ``BENCH_perf.json`` at the repo root — the
tracked full-scale numbers ``python -m repro.cli perf-trace`` wrote.  The
candidate is typically CI's quick run (``perf-trace --quick``); the gate
compares **per-mode throughput** (invocations simulated per wall-clock
second).  Sketch-mode per-tick cost is bounded, so its throughput is
effectively scale-free and the comparison is direct.  Exact-mode cost
*grows* with run length (windows keep filling toward the five-minute
horizon), so the full-scale baseline is a lower bound for any shorter
run — the floor is conservative in the safe direction.

Reports may also (or only) carry a ``cluster_scale`` section — the
indexed-vs-scan routing sweep ``perf-trace --shape cluster-scale``
writes.  For every ``invokers x actions`` point present in both
candidate and baseline, the gate applies the same throughput floor to
the **indexed** routing's invocations-per-second (the scan comparator is
the correctness oracle, not the tracked number), and requires the
candidate's bit-identity cross-checks (equal goodput, cold starts,
steals, and per-invoker routing between indexed and scan) to hold.

A third section, ``warmth_spectrum`` (``perf-trace --shape
warmth-spectrum``), compares spectrum-on vs spectrum-off runs of the
same diurnal trace.  The gate applies the throughput floor to each
regime's invocations-per-second and requires the headline identity
flags the benchmark asserts: both regimes achieve **equal goodput**, a
**majority** of rising-edge cold boots convert to restores, restores
**outnumber** the remaining cold boots on the rising edge, and p99 is
**reduced** — a spectrum that stops paying for itself is a regression
even when it stays fast.

A fourth section, ``tracing_overhead`` (``perf-trace --shape
tracing-overhead``), compares the flight recorder off vs sampled on the
same trace.  The gate applies the throughput floor to the **off** mode
(the recorder's off path must stay within noise of the tracked
baseline — "allocation-free" made operational), requires tracing to
have changed nothing simulated (equal goodput, cold starts and p99
between the candidate's own off and sampled runs), and bounds the
candidate-internal ``sampled_cost_fraction`` at 10 %.

Every section present in the baseline must also be present in the
candidate: a benchmark that silently stops running is the quietest
regression of all, so a missing section fails with a message naming it.

The check fails (exit 1) when any shared mode's throughput drops more
than ``REPRO_PERF_TOLERANCE`` (default 0.25, i.e. 25 %) below baseline,
or when the candidate's fidelity cross-checks (equal goodput and
cold-start counts across modes, p99 relative error under 1 %) no longer
hold.  CI machines are noisy and heterogeneous; the generous tolerance
catches real structural regressions (an accidental per-sample copy, a
heap that stops compacting, a routing index that silently falls back to
scans) without flaking on scheduler jitter.
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = REPO_ROOT / "BENCH_perf.json"
DEFAULT_TOLERANCE = 0.25


def load(path: Path) -> dict:
    with path.open() as handle:
        report = json.load(handle)
    has_metrics = report.get("benchmark") == "perf-trace" and "modes" in report
    has_cluster = "points" in report.get("cluster_scale", {})
    has_warmth = "regimes" in report.get("warmth_spectrum", {})
    has_tracing = "modes" in report.get("tracing_overhead", {})
    if not has_metrics and not has_cluster and not has_warmth and not has_tracing:
        raise SystemExit(f"{path} is not a perf-trace report")
    return report


#: Section name -> predicate telling whether a report carries it.  Used to
#: fail loudly when the baseline tracks a section the candidate never ran —
#: a benchmark that silently disappears from CI must not pass the gate.
_SECTIONS = {
    "modes (exact-vs-sketch metrics)": lambda report: "modes" in report,
    "cluster_scale": lambda report: "points" in report.get("cluster_scale", {}),
    "warmth_spectrum": lambda report: "regimes" in report.get("warmth_spectrum", {}),
    "tracing_overhead": lambda report: "modes" in report.get("tracing_overhead", {}),
}


def check_sections_present(
    candidate: dict, baseline: dict, failures: list[str]
) -> None:
    """Every section the baseline tracks must exist in the candidate."""
    for name, present in _SECTIONS.items():
        if present(baseline) and not present(candidate):
            failures.append(
                f"baseline tracks the {name} section but the candidate run "
                f"has none — the benchmark did not run (re-run perf-trace "
                f"with a --shape that includes it, e.g. --shape all)"
            )


def check_metrics(
    candidate: dict, baseline: dict, tolerance: float, failures: list[str]
) -> None:
    """Gate the exact-vs-sketch metrics section (when both reports have it)."""
    if "modes" not in candidate or "modes" not in baseline:
        return
    shared_modes = sorted(set(candidate["modes"]) & set(baseline["modes"]))
    if not shared_modes:
        failures.append("candidate and baseline share no metrics modes")
    for mode in shared_modes:
        got = candidate["modes"][mode]["invocations_per_second"]
        want = baseline["modes"][mode]["invocations_per_second"]
        floor = want * (1.0 - tolerance)
        verdict = "ok" if got >= floor else "REGRESSED"
        print(
            f"{mode:>7}: {got:10,.0f} inv/s vs baseline {want:10,.0f} "
            f"(floor {floor:10,.0f}) {verdict}"
        )
        if got < floor:
            failures.append(
                f"{mode} throughput {got:,.0f} inv/s is more than "
                f"{tolerance:.0%} below the baseline {want:,.0f} inv/s"
            )

    # Fidelity must hold at any scale — a fast-but-wrong sketch is a
    # regression no tolerance excuses.
    if candidate.get("equal_goodput") is False:
        failures.append("exact and sketch goodput diverged")
    if candidate.get("equal_cold_starts") is False:
        failures.append("exact and sketch cold-start counts diverged")
    p99_err = candidate.get("p99_relative_error")
    if p99_err is not None and p99_err >= 0.01:
        failures.append(f"sketch p99 relative error {p99_err:.4f} >= 1%")


_CLUSTER_IDENTITY_FLAGS = (
    "equal_goodput",
    "equal_cold_starts",
    "equal_steals",
    "equal_routing",
    "equal_p99",
)


def check_cluster_scale(
    candidate: dict, baseline: dict, tolerance: float, failures: list[str]
) -> None:
    """Gate the indexed-vs-scan cluster-scale section (when the candidate has it)."""
    cand_points = candidate.get("cluster_scale", {}).get("points", {})
    base_points = baseline.get("cluster_scale", {}).get("points", {})
    if not cand_points:
        return
    for key in sorted(cand_points):
        point = cand_points[key]
        # Bit-identity between the index and the scan oracle is absolute:
        # a fast router that routes differently is a correctness bug.
        for flag in _CLUSTER_IDENTITY_FLAGS:
            if point.get(flag) is False:
                failures.append(
                    f"cluster-scale {key}: indexed and scan routing diverged "
                    f"({flag} is false)"
                )
        indexed = point.get("routing", {}).get("indexed")
        base_indexed = (
            base_points.get(key, {}).get("routing", {}).get("indexed")
        )
        if indexed is None or base_indexed is None:
            continue
        got = indexed["invocations_per_second"]
        want = base_indexed["invocations_per_second"]
        floor = want * (1.0 - tolerance)
        verdict = "ok" if got >= floor else "REGRESSED"
        print(
            f"{key:>7}: {got:10,.0f} inv/s vs baseline {want:10,.0f} "
            f"(floor {floor:10,.0f}) {verdict}  [indexed routing]"
        )
        if got < floor:
            failures.append(
                f"cluster-scale {key} indexed throughput {got:,.0f} inv/s is "
                f"more than {tolerance:.0%} below the baseline {want:,.0f} inv/s"
            )


#: Identity/quality flags the warmth-spectrum benchmark computes when both
#: regimes ran.  Each must be true in the candidate: the spectrum's whole
#: claim is faster tails at the *same* goodput via restores, and a run where
#: any leg of that claim fails has regressed regardless of throughput.
_WARMTH_IDENTITY_FLAGS = (
    "equal_goodput",
    "majority_converted",
    "restores_outnumber_boots",
    "p99_reduced",
)


def check_warmth_spectrum(
    candidate: dict, baseline: dict, tolerance: float, failures: list[str]
) -> None:
    """Gate the spectrum-on-vs-off section (when the candidate has it)."""
    cand_section = candidate.get("warmth_spectrum", {})
    cand_regimes = cand_section.get("regimes", {})
    base_regimes = baseline.get("warmth_spectrum", {}).get("regimes", {})
    if not cand_regimes:
        return
    for flag in _WARMTH_IDENTITY_FLAGS:
        if cand_section.get(flag) is False:
            failures.append(
                f"warmth-spectrum: headline property {flag} no longer holds"
            )
    for regime in sorted(cand_regimes):
        got = cand_regimes[regime]["invocations_per_second"]
        base_regime = base_regimes.get(regime)
        if base_regime is None:
            continue
        want = base_regime["invocations_per_second"]
        floor = want * (1.0 - tolerance)
        verdict = "ok" if got >= floor else "REGRESSED"
        print(
            f"{regime:>7}: {got:10,.0f} inv/s vs baseline {want:10,.0f} "
            f"(floor {floor:10,.0f}) {verdict}  [warmth spectrum]"
        )
        if got < floor:
            failures.append(
                f"warmth-spectrum regime {regime!r} throughput {got:,.0f} "
                f"inv/s is more than {tolerance:.0%} below the baseline "
                f"{want:,.0f} inv/s"
            )


#: Candidate-internal flags the tracing-overhead benchmark asserts: with
#: the recorder off or sampled, the *simulated* run must be bit-identical.
_TRACING_IDENTITY_FLAGS = ("equal_goodput", "equal_cold_starts", "equal_p99")

#: Ceiling on the throughput the sampled recorder may cost relative to the
#: off mode within the same candidate run pair.
TRACING_SAMPLED_COST_CEILING = 0.10


def check_tracing_overhead(
    candidate: dict, baseline: dict, tolerance: float, failures: list[str]
) -> None:
    """Gate the recorder-off-vs-sampled section (when the candidate has it)."""
    cand_section = candidate.get("tracing_overhead", {})
    cand_modes = cand_section.get("modes", {})
    base_modes = baseline.get("tracing_overhead", {}).get("modes", {})
    if not cand_modes:
        return
    for flag in _TRACING_IDENTITY_FLAGS:
        if cand_section.get(flag) is False:
            failures.append(
                f"tracing-overhead: tracing changed simulated behaviour "
                f"({flag} is false)"
            )
    cost = cand_section.get("sampled_cost_fraction")
    if cost is not None and cost > TRACING_SAMPLED_COST_CEILING:
        failures.append(
            f"tracing-overhead: sampled tracing costs {cost:.1%} throughput "
            f"vs off (ceiling {TRACING_SAMPLED_COST_CEILING:.0%})"
        )
    # Only the off mode is gated against the committed baseline: the off
    # path must stay within noise of a recorder-free build, which is the
    # operational meaning of "allocation-free instrumentation".
    got_off = cand_modes.get("off", {}).get("invocations_per_second")
    want_off = base_modes.get("off", {}).get("invocations_per_second")
    if got_off is None or want_off is None:
        return
    floor = want_off * (1.0 - tolerance)
    verdict = "ok" if got_off >= floor else "REGRESSED"
    print(
        f"{'off':>7}: {got_off:10,.0f} inv/s vs baseline {want_off:10,.0f} "
        f"(floor {floor:10,.0f}) {verdict}  [tracing off path]"
    )
    if got_off < floor:
        failures.append(
            f"tracing-overhead off-path throughput {got_off:,.0f} inv/s is "
            f"more than {tolerance:.0%} below the baseline {want_off:,.0f} "
            f"inv/s — the disabled recorder is no longer free"
        )


def main(argv: list[str]) -> int:
    if not 1 <= len(argv) <= 2:
        print(__doc__, file=sys.stderr)
        return 2
    candidate_path = Path(argv[0])
    baseline_path = Path(argv[1]) if len(argv) == 2 else DEFAULT_BASELINE
    tolerance = float(os.environ.get("REPRO_PERF_TOLERANCE", DEFAULT_TOLERANCE))

    candidate = load(candidate_path)
    baseline = load(baseline_path)

    failures: list[str] = []
    check_sections_present(candidate, baseline, failures)
    check_metrics(candidate, baseline, tolerance, failures)
    check_cluster_scale(candidate, baseline, tolerance, failures)
    check_warmth_spectrum(candidate, baseline, tolerance, failures)
    check_tracing_overhead(candidate, baseline, tolerance, failures)

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("perf-trace throughput within tolerance of the tracked baseline")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))

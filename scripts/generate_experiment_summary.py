#!/usr/bin/env python3
"""Generate the paper-vs-measured summary used in EXPERIMENTS.md.

Runs every experiment driver at the same reduced scale the benchmark harness
uses and prints a compact summary of the values EXPERIMENTS.md records.
"""

from __future__ import annotations

from repro.analysis.experiments import (
    headline_summary,
    run_breakdown,
    run_coldstart_comparison,
    run_fig3_dirty_sweep,
    run_fig3_size_sweep,
    run_latency_suite,
    run_lifecycle,
    run_restoration_comparison,
    run_scaling,
    run_skip_rollback_ablation,
    run_throughput_suite,
    run_tracking_ablation,
)
from repro.analysis.stats import summarize_overheads
from repro.workloads import all_benchmarks, find_benchmark, representative_benchmarks, wasm_benchmarks


def main() -> None:
    print("== fig1 lifecycle (md2html)")
    for key, value in run_lifecycle(find_benchmark("md2html", "p").profile).items():
        print(f"  {key}: {value*1000:.2f} ms")

    print("== fig3 dirty sweep (20K pages)")
    low, high = run_fig3_dirty_sweep(invocations=3)
    for cfg in ("base", "gh", "gh-nop", "fork"):
        print(f"  low  {cfg}: 0%={low.get(cfg).y[0]*1000:.2f}ms 100%={low.get(cfg).y[-1]*1000:.2f}ms")
        print(f"  high {cfg}: 0%={high.get(cfg).y[0]*1000:.2f}ms 100%={high.get(cfg).y[-1]*1000:.2f}ms")
    print("== fig3 size sweep (1K dirtied)")
    low_s, high_s = run_fig3_size_sweep(invocations=3)
    for cfg in ("base", "gh", "fork"):
        print(f"  low  {cfg}: 1K={low_s.get(cfg).y[0]*1000:.2f}ms 40K={low_s.get(cfg).y[-1]*1000:.2f}ms")
        print(f"  high {cfg}: 1K={high_s.get(cfg).y[0]*1000:.2f}ms 40K={high_s.get(cfg).y[-1]*1000:.2f}ms")

    print("== fig4 latency suite (58 benchmarks)")
    latency = run_latency_suite(all_benchmarks(), invocations=8)
    summaries = headline_summary(latency)
    for key, summary in summaries.items():
        print(f"  {key}: median {summary.median_percent:+.2f}% p95 {summary.p95_percent:+.2f}% max {summary.maximum_percent:+.2f}%")
    for cfg in ("gh-nop", "fork", "faasm"):
        rel = latency.relative_latency(cfg, metric="e2e")
        if rel:
            s = summarize_overheads(list(rel.values()))
            print(f"  {cfg} e2e: median {s.median_percent:+.2f}% p95 {s.p95_percent:+.2f}%")
    # Table 3 style restore stats
    restores = [(b, latency.record(b, "gh").restore_ms_mean) for b in latency.benchmarks()
                if latency.has(b, "gh") and latency.record(b, "gh").restore_ms_mean]
    values = sorted(v for _, v in restores)
    print(f"  restore ms: min {values[0]:.2f} median {values[len(values)//2]:.2f} "
          f"p90 {values[int(len(values)*0.9)]:.2f} max {values[-1]:.2f}")
    for name in ("bicg (c)", "telco (p)", "pyflate (p)", "get-time (n)", "img-resize (n)", "base64 (n)", "heat-3d (c)"):
        rec = latency.record(name, "gh")
        print(f"  {name}: restore {rec.restore_ms_mean:.2f} ms, snapshot {rec.snapshot_ms:.1f} ms, "
              f"gh inv {rec.invoker.median*1000:.2f} ms vs base {latency.record(name,'base').invoker.median*1000:.2f} ms")

    print("== fig5 throughput suite (58 benchmarks, rounds=5)")
    throughput = run_throughput_suite(all_benchmarks(), rounds=5)
    ratios = throughput.relative_throughput("gh")
    reductions = summarize_overheads([(1 - r) * 100 for r in ratios.values()])
    print(f"  gh reduction: median {reductions.median_percent:+.2f}% p95 {reductions.p95_percent:+.2f}% max {reductions.maximum_percent:+.2f}%")
    for name in ("get-time (p)", "bicg (c)", "base64 (n)", "img-resize (n)"):
        base_rec = throughput.record(name, "base")
        gh_rec = throughput.record(name, "gh")
        print(f"  {name}: base {base_rec.throughput_rps:.2f} rps, gh {gh_rec.throughput_rps:.2f} rps")

    print("== fig6 restoration comparison (GH vs FAASM)")
    durations = run_restoration_comparison(wasm_benchmarks(), invocations=3)
    gh_vals, fa_vals = list(durations["gh"].values()), list(durations["faasm"].values())
    print(f"  gh: min {min(gh_vals):.2f} max {max(gh_vals):.2f} ms; faasm: min {min(fa_vals):.2f} max {max(fa_vals):.2f} ms")

    print("== fig7 scaling (4 representative)")
    subset = [find_benchmark("get-time", "p"), find_benchmark("telco", "p"),
              find_benchmark("bicg", "c"), find_benchmark("img-resize", "n")]
    sweeps = run_scaling(subset, rounds=4)
    for name, sweep in sweeps.items():
        gh = sweep.get("gh")
        print(f"  {name}: gh 1core {gh.y_at(1.0):.2f} -> 4core {gh.y_at(4.0):.2f} rps (x{gh.y_at(4.0)/max(gh.y_at(1.0),1e-9):.2f})")

    print("== fig8 breakdown (14 representative)")
    for record in run_breakdown(representative_benchmarks(), invocations=4):
        top = max(record.fractions, key=record.fractions.get)
        print(f"  {record.benchmark}: restore {record.restore_ms:.2f} ms, snapshot {record.snapshot_ms:.1f} ms, "
              f"pages {record.total_kpages:.2f}K restored {record.restored_kpages:.2f}K top={top}")

    print("== ablations")
    sweep = run_tracking_ablation(invocations=3)
    print(f"  tracking at 60% dirty: soft-dirty {sweep.get('soft-dirty').y[-1]:.2f} ms vs uffd {sweep.get('uffd').y[-1]:.2f} ms")
    print(f"  tracking at 0% dirty: soft-dirty {sweep.get('soft-dirty').y[0]:.2f} ms vs uffd {sweep.get('uffd').y[0]:.2f} ms")
    skip = run_skip_rollback_ablation(find_benchmark("md2html", "p"), invocations=12)
    print(f"  skip-rollback: always {skip['always-restore']*1000:.2f} ms vs skip {skip['skip-same-caller']*1000:.2f} ms per request")
    cold = run_coldstart_comparison([find_benchmark("bicg"), find_benchmark("md2html", "p")], invocations=2)
    for cfg, per in cold.items():
        print(f"  {cfg}: " + ", ".join(f"{k} {v*1000:.1f} ms" for k, v in per.items()))


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Run the determinism lint from a fresh checkout, no install required.

Usage::

    python scripts/run_detlint.py [PATHS...] [--format human|json]
                                  [--show-suppressed]

Thin front-end over ``repro.devtools.detlint``: it puts ``src/`` on
``sys.path`` (so CI and contributors need no editable install) and execs
the shared linter ``main``.  Exit codes: 0 = clean, 1 = unsuppressed
findings, 2 = scan error.
"""

import pathlib
import sys

_REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(_REPO_ROOT / "src"))

from repro.devtools.detlint.frontend import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())

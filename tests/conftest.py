"""Shared fixtures for the test suite.

Most tests use deliberately small function profiles so that whole containers
(including snapshots and restores) can be exercised in milliseconds of real
time while still covering every code path the full-size benchmarks use.
"""

from __future__ import annotations

import random

import pytest

from repro.kernel.kernel import SimKernel
from repro.proc.process import SimProcess
from repro.runtime.profiles import FunctionProfile, Language
from repro.sim.costs import CostModel


@pytest.fixture
def cost_model() -> CostModel:
    """The default calibrated cost model."""
    return CostModel()


@pytest.fixture
def kernel(cost_model: CostModel) -> SimKernel:
    """A fresh simulated kernel."""
    return SimKernel(cost_model)


@pytest.fixture
def process(kernel: SimKernel) -> SimProcess:
    """A fresh, started process with an empty address space."""
    proc = kernel.create_process("test-fn")
    proc.start()
    return proc


@pytest.fixture
def rng() -> random.Random:
    """A deterministic RNG for runtime jitter."""
    return random.Random(1234)


@pytest.fixture
def small_python_profile() -> FunctionProfile:
    """A small Python function profile (fast to snapshot/restore in tests)."""
    return FunctionProfile(
        name="unit-python",
        language=Language.PYTHON,
        suite="unit",
        exec_seconds=0.010,
        total_kpages=1.2,
        dirtied_kpages=0.15,
        regions_mapped_per_invocation=1,
        regions_unmapped_per_invocation=1,
        heap_growth_pages=4,
        input_bytes=128,
        output_bytes=256,
        threads=1,
        init_fraction=0.7,
    )


@pytest.fixture
def small_c_profile() -> FunctionProfile:
    """A small native C function profile."""
    return FunctionProfile(
        name="unit-c",
        language=Language.C,
        suite="unit",
        exec_seconds=0.004,
        total_kpages=0.5,
        dirtied_kpages=0.05,
        regions_mapped_per_invocation=0,
        regions_unmapped_per_invocation=0,
        heap_growth_pages=0,
        threads=1,
        init_fraction=1.0,
    )


@pytest.fixture
def small_node_profile() -> FunctionProfile:
    """A small Node.js function profile (multi-threaded, layout churn)."""
    return FunctionProfile(
        name="unit-node",
        language=Language.NODE,
        suite="unit",
        exec_seconds=0.015,
        total_kpages=3.0,
        dirtied_kpages=0.4,
        regions_mapped_per_invocation=2,
        regions_unmapped_per_invocation=1,
        heap_growth_pages=8,
        threads=5,
        init_fraction=0.8,
        wasm_compatible=False,
        restore_gc_seconds=0.004,
        restore_gc_probability=0.5,
    )


@pytest.fixture
def leaky_profile() -> FunctionProfile:
    """A profile with a memory leak (models the logging benchmark)."""
    return FunctionProfile(
        name="unit-leaky",
        language=Language.PYTHON,
        suite="unit",
        exec_seconds=0.010,
        total_kpages=1.0,
        dirtied_kpages=0.1,
        heap_growth_pages=2,
        threads=1,
        leak_pages_per_invocation=16,
        leak_slowdown_seconds_per_kpage=0.5,
    )

"""Property tests for cross-invoker work stealing.

Work stealing moves queued invocations between invokers, so it could in
principle reorder an action's requests or lose them.  These properties
check, over arbitrary submission patterns and cluster shapes, that it does
neither:

* every submitted invocation completes exactly once (none lost, none
  duplicated, none run twice) — boot steals included;
* with instant steals (the default kind), per-action requests are
  *dispatched* in submission order: a steal takes the queue head, the
  invocation that would have run next anyway, so the FIFO discipline of
  each action's queue survives the moves.  (A *boot* steal deliberately
  parks the queue tail behind a container boot; arrivals that keep
  landing on the victim afterwards may overtake that one request, which
  is the capacity-for-position trade the steal makes — so strict dispatch
  order is asserted for the instant-steal regime.);
* with jitter-free profiles and one warm container per invoker, per-action
  *completion* order equals submission order, steals included;
* two identical runs steal identically (determinism).
"""

from __future__ import annotations

from typing import List

from hypothesis import given, settings, strategies as st

from repro.faas.action import ActionSpec
from repro.faas.invoker import Invoker
from repro.faas.request import Invocation, InvocationStatus
from repro.faas.scheduler import HashAffinityPolicy, Scheduler
from repro.runtime.profiles import FunctionProfile, Language
from repro.sim.events import EventLoop


def _profile(name: str) -> FunctionProfile:
    """A small jitter-free profile: identical requests take identical time."""
    return FunctionProfile(
        name=name,
        language=Language.PYTHON,
        suite="prop",
        exec_seconds=0.008,
        exec_jitter=0.0,
        total_kpages=1.0,
        dirtied_kpages=0.1,
        regions_mapped_per_invocation=1,
        regions_unmapped_per_invocation=1,
        heap_growth_pages=2,
        input_bytes=64,
        output_bytes=64,
    )


def _build_cluster(
    num_invokers: int,
    actions: List[str],
    warm_everywhere: bool,
    boot_steal_min_queue=4,
):
    """A stealing cluster; each action pre-warmed on every invoker or only
    registered off-home (the standard deployment geometry)."""
    loop = EventLoop()
    invokers = [
        Invoker(loop, cores=1, invoker_id=f"invoker-{i}") for i in range(num_invokers)
    ]
    scheduler = Scheduler(
        invokers,
        HashAffinityPolicy(),
        work_stealing=True,
        boot_steal_min_queue=boot_steal_min_queue,
    )
    for name in actions:
        spec = ActionSpec.for_profile(_profile(name), "base", name=name)
        if warm_everywhere:
            for invoker in invokers:
                invoker.deploy(spec, containers=1, max_containers=1)
        else:
            scheduler.deploy(spec, containers=1, max_containers=1)
    return loop, invokers, scheduler


def _run_pattern(
    num_invokers: int,
    pattern: List[int],
    warm_everywhere: bool,
    boot_steal_min_queue=4,
):
    """Submit ``pattern`` (a list of action indices) and run to completion.

    Returns ``(per-action submissions, per-action completions, steals)``.
    """
    num_actions = max(pattern) + 1
    actions = [f"act-{i}" for i in range(num_actions)]
    loop, invokers, scheduler = _build_cluster(
        num_invokers, actions, warm_everywhere, boot_steal_min_queue
    )
    submitted: dict = {name: [] for name in actions}
    completed: dict = {name: [] for name in actions}
    for action_index in pattern:
        name = actions[action_index]
        invocation = Invocation(action=name, payload=b"x")
        submitted[name].append(invocation)
        scheduler.submit(
            invocation, lambda inv: completed[inv.action].append(inv)
        )
    loop.run(until=500.0)
    return submitted, completed, scheduler.steals


@settings(max_examples=25, deadline=None)
@given(
    num_invokers=st.integers(min_value=2, max_value=4),
    pattern=st.lists(st.integers(min_value=0, max_value=2), min_size=1, max_size=24),
    warm_everywhere=st.booleans(),
)
def test_stealing_loses_nothing(num_invokers, pattern, warm_everywhere):
    # Boot steals enabled: whatever gets moved (heads into warm containers,
    # tails behind boots), every invocation completes exactly once.
    submitted, completed, _ = _run_pattern(num_invokers, pattern, warm_everywhere)
    for name, invocations in submitted.items():
        assert len(completed[name]) == len(invocations)
        assert {inv.invocation_id for inv in completed[name]} == {
            inv.invocation_id for inv in invocations
        }
        assert all(
            inv.status is InvocationStatus.COMPLETED for inv in invocations
        )


@settings(max_examples=25, deadline=None)
@given(
    num_invokers=st.integers(min_value=2, max_value=4),
    pattern=st.lists(st.integers(min_value=0, max_value=2), min_size=1, max_size=24),
    warm_everywhere=st.booleans(),
)
def test_instant_stealing_dispatches_fifo(num_invokers, pattern, warm_everywhere):
    # Instant steals only (boot steals disabled): a steal always takes the
    # queue head, so per-action dispatch order equals submission order —
    # stealing never lets a younger request overtake an older one onto a
    # core.
    submitted, _, _ = _run_pattern(
        num_invokers, pattern, warm_everywhere, boot_steal_min_queue=None
    )
    for invocations in submitted.values():
        dispatch_times = [inv.dispatched_at for inv in invocations]
        assert dispatch_times == sorted(dispatch_times)


@settings(max_examples=25, deadline=None)
@given(
    num_invokers=st.integers(min_value=2, max_value=3),
    pattern=st.lists(st.integers(min_value=0, max_value=1), min_size=2, max_size=16),
)
def test_stealing_preserves_per_action_fifo_completion_order(num_invokers, pattern):
    # Warm container on every invoker + jitter-free profile: service times
    # are identical, so completion order is exactly dispatch order and any
    # steal-induced reordering would show up here.
    submitted, completed, _ = _run_pattern(num_invokers, pattern, True)
    for name, invocations in submitted.items():
        assert [inv.invocation_id for inv in completed[name]] == [
            inv.invocation_id for inv in invocations
        ]


@settings(max_examples=10, deadline=None)
@given(
    pattern=st.lists(st.integers(min_value=0, max_value=2), min_size=4, max_size=20),
)
def test_stealing_is_deterministic(pattern):
    first = _run_pattern(3, pattern, False)
    second = _run_pattern(3, pattern, False)
    assert first[2] == second[2]  # identical steal counts
    for name in first[0]:
        assert [inv.completed_at for inv in first[1][name]] == [
            inv.completed_at for inv in second[1][name]
        ]

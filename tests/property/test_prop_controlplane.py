"""Property tests for the capacity planner's safety envelope.

The planner moves real capacity around a live cluster, so its safety
properties must hold for *any* interleaving of arrivals, partial event
processing, and planning ticks — not just the scenarios the drivers run:

* **Budget** — planning never pushes the cluster's container count
  (warm containers plus boots in flight) above the global budget; if a
  deployment already exceeds the budget, the planner never adds to it.
* **Busy-container safety** — a container that is mid-request (in its
  pool but not idle) is never drained, killed, or lost by a plan.
* **No work lost** — every invocation submitted around arbitrary
  planning ticks still completes exactly once.
* **Determinism** — identical histories produce identical migration
  decisions.
"""

from __future__ import annotations

from typing import List, Tuple

from hypothesis import given, settings, strategies as st

from repro.faas.action import ActionSpec
from repro.faas.container import ContainerState
from repro.faas.controlplane import CapacityPlanner
from repro.faas.invoker import Invoker
from repro.faas.request import Invocation, InvocationStatus
from repro.runtime.profiles import FunctionProfile, Language
from repro.sim.events import EventLoop


def _profile(name: str) -> FunctionProfile:
    return FunctionProfile(
        name=name,
        language=Language.PYTHON,
        suite="prop",
        exec_seconds=0.008,
        exec_jitter=0.0,
        total_kpages=1.0,
        dirtied_kpages=0.1,
        regions_mapped_per_invocation=1,
        regions_unmapped_per_invocation=1,
        heap_growth_pages=2,
        input_bytes=64,
        output_bytes=64,
        threads=1,
        init_fraction=0.8,
    )


ACTIONS = ("act-0", "act-1", "act-2")

#: One step: (action index, burst size, events to process before planning).
OPS = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=len(ACTIONS) - 1),
        st.integers(min_value=0, max_value=4),
        st.integers(min_value=0, max_value=30),
    ),
    min_size=1,
    max_size=12,
)


def _build(num_invokers: int) -> Tuple[EventLoop, List[Invoker]]:
    loop = EventLoop()
    invokers = [
        Invoker(loop, cores=2, invoker_id=f"invoker-{i}")
        for i in range(num_invokers)
    ]
    for index, name in enumerate(ACTIONS):
        spec = ActionSpec.for_profile(_profile(name), "base", name=name)
        home = index % num_invokers
        for position, invoker in enumerate(invokers):
            if position == home:
                invoker.deploy(spec, containers=1, max_containers=2)
            else:
                invoker.register(spec, max_containers=2)
    return loop, invokers


def _busy_containers(invokers: List[Invoker]):
    busy = []
    for invoker in invokers:
        for action in ACTIONS:
            idle = set(id(c) for c in invoker.idle_pool(action))
            busy.extend(
                (invoker, action, container)
                for container in invoker.pool(action)
                if id(container) not in idle
            )
    return busy


def _run_history(ops, num_invokers: int, budget: int):
    """Drive one full history; returns (planner, completed, submitted)."""
    loop, invokers = _build(num_invokers)
    planner = CapacityPlanner(budget=budget, queue_high=2, min_idle_seconds=0.0)
    completed: List[Invocation] = []
    submitted = 0
    for action_index, burst, events in ops:
        action = ACTIONS[action_index]
        home = invokers[action_index % num_invokers]
        for _ in range(burst):
            home.submit(
                Invocation(action=action, caller="t", submitted_at=loop.now),
                completed.append,
            )
            submitted += 1
        loop.run(max_events=events)
        total_before = CapacityPlanner.total_containers(
            [invoker.snapshot() for invoker in invokers]
        )
        busy_before = _busy_containers(invokers)
        planner.plan(invokers, loop.now)
        total_after = CapacityPlanner.total_containers(
            [invoker.snapshot() for invoker in invokers]
        )
        assert total_after <= max(budget, total_before), (
            f"planner pushed the cluster to {total_after} containers "
            f"(budget {budget}, was {total_before})"
        )
        for invoker, action, container in busy_before:
            assert container in invoker.pool(action), (
                f"{container.container_id} was busy and disappeared from "
                f"{invoker.invoker_id}"
            )
            assert container.state is not ContainerState.DEAD
    loop.run()
    return planner, completed, submitted


@settings(max_examples=30, deadline=None)
@given(ops=OPS, num_invokers=st.integers(min_value=2, max_value=3),
       budget=st.integers(min_value=3, max_value=10))
def test_planner_respects_budget_and_busy_containers(ops, num_invokers, budget):
    planner, completed, submitted = _run_history(ops, num_invokers, budget)
    # Every submitted invocation completed exactly once despite the
    # planner shuffling capacity underneath the event flow.
    assert len(completed) == submitted
    assert all(inv.status is InvocationStatus.COMPLETED for inv in completed)
    seen = {inv.invocation_id for inv in completed}
    assert len(seen) == submitted


@settings(max_examples=15, deadline=None)
@given(ops=OPS, budget=st.integers(min_value=3, max_value=10))
def test_planner_is_deterministic(ops, budget):
    first, _, _ = _run_history(ops, 3, budget)
    second, _, _ = _run_history(ops, 3, budget)
    assert first.decisions == second.decisions
    assert first.prewarms == second.prewarms
    assert first.drains == second.drains

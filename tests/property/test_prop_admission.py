"""Property tests for the weighted-fair admission queue.

Deficit round robin makes three promises the fairness layer depends on:

* **No starvation** — with equal weights, a tenant with backlog is served
  once per round: between two consecutive services of a continuously
  backlogged tenant, no other tenant is served twice.
* **FIFO degeneration** — with a single tenant the round is trivial and
  the queue's pop order is exactly arrival order, matching
  :class:`~repro.faas.admission.FifoQueue` operation for operation over
  any push/pop interleaving.
* **Determinism** — a cluster running WFQ admission with work stealing
  (steal/adopt sequences dequeue through the fair order) completes every
  invocation exactly once and two identical runs behave identically.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Tuple

from hypothesis import given, settings, strategies as st

from repro.faas.action import ActionSpec
from repro.faas.admission import FifoQueue, WeightedFairQueue
from repro.faas.invoker import Invoker
from repro.faas.request import Invocation, InvocationStatus
from repro.faas.scheduler import HashAffinityPolicy, Scheduler
from repro.runtime.profiles import FunctionProfile, Language
from repro.sim.events import EventLoop


def _entry(tenant: str, stamp: int):
    invocation = Invocation(action="act", payload=b"x", caller=tenant)
    return (invocation, lambda inv: None, float(stamp))


#: An operation sequence: push for tenant i (0..3) or a pop (-1).
OPS = st.lists(st.integers(min_value=-1, max_value=3), min_size=1, max_size=60)


@settings(max_examples=60, deadline=None)
@given(ops=OPS)
def test_wfq_never_starves_a_backlogged_tenant(ops):
    queue = WeightedFairQueue()
    backlog: Dict[str, int] = Counter()
    #: Services of other tenants since each tenant's last service, reset
    #: whenever the tenant's backlog drains (the guarantee only covers
    #: continuously backlogged tenants).
    waiting: Dict[str, Counter] = {}
    stamp = 0
    for op in ops:
        if op >= 0:
            tenant = f"tenant-{op}"
            queue.push(_entry(tenant, stamp))
            stamp += 1
            backlog[tenant] += 1
            waiting.setdefault(tenant, Counter())
        elif queue:
            served = queue.pop_next()[0].caller
            backlog[served] -= 1
            for tenant, others in waiting.items():
                if tenant == served:
                    continue
                others[served] += 1
                # Equal weights: one round serves every backlogged tenant
                # once, so nobody is served twice while another tenant
                # with backlog waits.
                assert backlog[tenant] == 0 or others[served] <= 1, (
                    f"{served} served twice while {tenant} had backlog"
                )
            waiting[served] = Counter()
            if backlog[served] == 0:
                del waiting[served]


@settings(max_examples=60, deadline=None)
@given(ops=st.lists(st.booleans(), min_size=1, max_size=60))
def test_wfq_degenerates_to_fifo_with_one_tenant(ops):
    # True = push, False = pop; both queues see the identical sequence.
    wfq, fifo = WeightedFairQueue(), FifoQueue()
    stamp = 0
    for is_push in ops:
        if is_push:
            entry = _entry("solo", stamp)
            stamp += 1
            wfq.push(entry)
            fifo.push(entry)
        elif len(fifo):
            assert wfq.pop_next() is fifo.pop_next()
    assert [inv.invocation_id for inv in wfq.invocations()] == [
        inv.invocation_id for inv in fifo.invocations()
    ]


def _profile(name: str) -> FunctionProfile:
    return FunctionProfile(
        name=name,
        language=Language.PYTHON,
        suite="prop",
        exec_seconds=0.008,
        exec_jitter=0.0,
        total_kpages=1.0,
        dirtied_kpages=0.1,
        regions_mapped_per_invocation=1,
        regions_unmapped_per_invocation=1,
        heap_growth_pages=2,
        input_bytes=64,
        output_bytes=64,
    )


def _run_wfq_steal_pattern(
    num_invokers: int, pattern: List[Tuple[int, int]]
) -> Tuple[List[Invocation], int, Tuple[float, ...]]:
    """Drive a stealing WFQ cluster with (action, tenant) submissions.

    Returns the submitted invocations, the steal count, and the completion
    timestamps in completion order.
    """
    num_actions = max(action for action, _ in pattern) + 1
    actions = [f"act-{i}" for i in range(num_actions)]
    loop = EventLoop()
    invokers = [
        Invoker(loop, cores=1, invoker_id=f"invoker-{i}", admission="wfq")
        for i in range(num_invokers)
    ]
    scheduler = Scheduler(
        invokers, HashAffinityPolicy(), work_stealing=True, boot_steal_min_queue=4
    )
    for name in actions:
        spec = ActionSpec.for_profile(_profile(name), "base", name=name)
        scheduler.deploy(spec, containers=1, max_containers=1)
    submitted: List[Invocation] = []
    completions: List[float] = []

    def on_complete(invocation: Invocation) -> None:
        completions.append(invocation.completed_at)

    for action_index, tenant_index in pattern:
        invocation = Invocation(
            action=actions[action_index],
            payload=b"x",
            caller=f"tenant-{tenant_index}",
        )
        submitted.append(invocation)
        scheduler.submit(invocation, on_complete)
    loop.run(until=500.0)
    return submitted, scheduler.steals, tuple(completions)


@settings(max_examples=20, deadline=None)
@given(
    num_invokers=st.integers(min_value=2, max_value=3),
    pattern=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=2),
            st.integers(min_value=0, max_value=2),
        ),
        min_size=1,
        max_size=24,
    ),
)
def test_wfq_stealing_loses_nothing(num_invokers, pattern):
    submitted, _steals, completions = _run_wfq_steal_pattern(num_invokers, pattern)
    assert len(completions) == len(submitted)
    assert all(
        inv.status is InvocationStatus.COMPLETED for inv in submitted
    )


@settings(max_examples=10, deadline=None)
@given(
    pattern=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=2),
            st.integers(min_value=0, max_value=2),
        ),
        min_size=4,
        max_size=20,
    ),
)
def test_wfq_stealing_is_deterministic(pattern):
    first = _run_wfq_steal_pattern(3, pattern)
    second = _run_wfq_steal_pattern(3, pattern)
    assert first[1] == second[1]  # identical steal counts
    assert first[2] == second[2]  # identical completion timelines
    assert [inv.status for inv in first[0]] == [inv.status for inv in second[0]]

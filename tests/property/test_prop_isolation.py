"""Property-based tests for the core security property and the statistics.

The central invariant: for any sequence of requests with any payloads, after
Groundhog's restoration the function process is byte-for-byte identical to
its clean snapshot, so no request can observe anything about any earlier
request.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.analysis.stats import summarize_overheads
from repro.baselines.registry import create_mechanism
from repro.core.snapshot import Snapshotter
from repro.core.restore import Restorer
from repro.faas.metrics import percentile
from repro.proc.process import SimProcess
from repro.proc.procfs import ProcFs
from repro.proc.ptrace import Ptrace
from repro.runtime import build_runtime
from repro.runtime.profiles import FunctionProfile, Language


def _tiny_profile(language: Language, dirtied_fraction: float, churn: int) -> FunctionProfile:
    total_kpages = 0.6
    return FunctionProfile(
        name=f"prop-{language.value}",
        language=language,
        suite="property",
        exec_seconds=0.002,
        total_kpages=total_kpages,
        dirtied_kpages=round(total_kpages * dirtied_fraction, 3),
        regions_mapped_per_invocation=churn,
        regions_unmapped_per_invocation=max(0, churn - 1),
        heap_growth_pages=2,
        threads=1 if language is not Language.NODE else 5,
        wasm_compatible=language is not Language.NODE,
    )


payloads = st.binary(min_size=0, max_size=96)

#: Payloads used for leak checks: drawn from an alphabet disjoint from the
#: runtime's own framing strings ("REQ:", "warmup", "WS:", ...) so that a
#: match in a residual can only mean the payload itself leaked.
secret_payloads = st.text(alphabet="0123456789", min_size=4, max_size=32).map(
    lambda s: s.encode("ascii")
)


class TestSnapshotRestoreProperty:
    @given(
        language=st.sampled_from([Language.PYTHON, Language.C, Language.NODE]),
        dirtied_fraction=st.floats(min_value=0.0, max_value=0.5),
        churn=st.integers(min_value=0, max_value=3),
        requests=st.lists(payloads, min_size=1, max_size=5),
    )
    @settings(max_examples=30, deadline=None)
    def test_restore_returns_process_exactly_to_snapshot(
        self, language, dirtied_fraction, churn, requests
    ):
        profile = _tiny_profile(language, dirtied_fraction, churn)
        runtime = build_runtime(profile, SimProcess(profile.name), random.Random(0))
        runtime.boot()
        runtime.warm()
        procfs = ProcFs(runtime.process)
        ptrace = Ptrace(runtime.process)
        snapshot, _ = Snapshotter(ptrace, procfs).take()
        restorer = Restorer(ptrace, procfs)
        for index, payload in enumerate(requests):
            runtime.invoke(payload, f"prop-{index}")
            result = restorer.restore(snapshot, verify=True)
            assert result.verified

    @given(
        mechanism=st.sampled_from(["gh", "fork", "faasm"]),
        requests=st.lists(secret_payloads, min_size=2, max_size=5),
    )
    @settings(max_examples=25, deadline=None)
    def test_no_request_payload_survives_into_later_responses(self, mechanism, requests):
        profile = _tiny_profile(Language.PYTHON, 0.2, 1)
        mech = create_mechanism(mechanism, profile, rng=random.Random(1))
        mech.initialize()
        seen = []
        for index, payload in enumerate(requests):
            report = mech.invoke(payload, f"r{index}", caller=f"caller-{index}")
            residual = report.result.residual
            for earlier in seen:
                if earlier:
                    assert earlier not in residual
            seen.append(payload)


class TestStatisticsProperties:
    @given(st.lists(st.floats(min_value=0.001, max_value=1000.0), min_size=1, max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_percentiles_are_monotone_and_bounded(self, samples):
        ordered = sorted(samples)
        p10 = percentile(ordered, 10)
        p50 = percentile(ordered, 50)
        p95 = percentile(ordered, 95)
        assert ordered[0] <= p10 <= p50 <= p95 <= ordered[-1]

    @given(st.lists(st.floats(min_value=-50, max_value=400), min_size=1, max_size=100))
    @settings(max_examples=60, deadline=None)
    def test_overhead_summary_bounds(self, overheads):
        summary = summarize_overheads(overheads)
        assert summary.minimum_percent <= summary.median_percent <= summary.maximum_percent
        assert summary.median_percent <= summary.p95_percent <= summary.maximum_percent
        assert summary.count == len(overheads)

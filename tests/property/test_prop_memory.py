"""Property-based tests (hypothesis) for the memory substrate invariants."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.config import PAGE_SIZE
from repro.mem.address_space import AddressSpace
from repro.mem.layout import diff_layouts
from repro.mem.pagemap import PagemapView
from repro.mem.page import Protection

#: A handful of mapping sizes (in pages) exercised by the strategies.
sizes = st.integers(min_value=1, max_value=32)


def _space_with_regions(region_sizes):
    space = AddressSpace()
    vmas = [space.mmap(size * PAGE_SIZE, populate=True) for size in region_sizes]
    return space, vmas


class TestAddressSpaceInvariants:
    @given(st.lists(sizes, min_size=1, max_size=8))
    @settings(max_examples=50, deadline=None)
    def test_vmas_never_overlap_and_are_sorted(self, region_sizes):
        space, _ = _space_with_regions(region_sizes)
        vmas = space.vmas
        for earlier, later in zip(vmas, vmas[1:]):
            assert earlier.end <= later.start
        assert space.total_mapped_pages == sum(region_sizes)

    @given(st.lists(sizes, min_size=1, max_size=6), st.randoms(use_true_random=False))
    @settings(max_examples=40, deadline=None)
    def test_munmap_everything_leaves_nothing_behind(self, region_sizes, rnd):
        space, vmas = _space_with_regions(region_sizes)
        order = list(vmas)
        rnd.shuffle(order)
        for vma in order:
            space.munmap(vma.start, vma.length)
        assert space.total_mapped_pages == 0
        assert space.resident_pages == 0
        assert space.soft_dirty_page_numbers() == set()

    @given(st.integers(min_value=1, max_value=64), st.integers(min_value=0, max_value=64))
    @settings(max_examples=50, deadline=None)
    def test_write_set_matches_soft_dirty_bits(self, mapped, writes):
        space = AddressSpace()
        vma = space.mmap(mapped * PAGE_SIZE, populate=True)
        space.clear_soft_dirty()
        written = set()
        for index in range(writes):
            page = vma.first_page + (index * 7) % mapped
            space.write_page(page, b"w")
            written.add(page)
        assert space.soft_dirty_page_numbers() == written
        scan = PagemapView(space).scan_mapped()
        assert set(scan.dirty_pages) == written

    @given(st.integers(min_value=1, max_value=40), st.integers(min_value=1, max_value=40))
    @settings(max_examples=40, deadline=None)
    def test_brk_grow_then_shrink_is_identity(self, grow, shrink):
        space = AddressSpace()
        base_layout = space.layout()
        space.sbrk(grow * PAGE_SIZE)
        space.sbrk(-min(shrink, grow) * PAGE_SIZE)
        space.set_brk(space.brk_base)
        assert space.layout() == base_layout

    @given(st.lists(sizes, min_size=1, max_size=6))
    @settings(max_examples=40, deadline=None)
    def test_fork_child_sees_identical_content(self, region_sizes):
        space, vmas = _space_with_regions(region_sizes)
        for index, vma in enumerate(vmas):
            space.write_page(vma.first_page, f"region-{index}".encode())
        child = space.fork()
        for index, vma in enumerate(vmas):
            assert child.page_content(vma.first_page) == f"region-{index}".encode()
        assert child.layout() == space.layout()

    @given(st.lists(sizes, min_size=1, max_size=6), st.integers(min_value=0, max_value=5))
    @settings(max_examples=40, deadline=None)
    def test_fork_isolation_is_symmetric(self, region_sizes, writes):
        space, vmas = _space_with_regions(region_sizes)
        child = space.fork()
        for index in range(writes):
            vma = vmas[index % len(vmas)]
            child.write_page(vma.first_page, f"child-{index}".encode())
            space.write_page(vma.last_page, f"parent-{index}".encode())
        for index in range(writes):
            vma = vmas[index % len(vmas)]
            assert b"child" not in space.page_content(vma.first_page)
            assert b"parent" not in child.page_content(vma.last_page)


class TestLayoutDiffProperties:
    @given(st.lists(sizes, min_size=1, max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_diff_with_self_is_empty(self, region_sizes):
        space, _ = _space_with_regions(region_sizes)
        layout = space.layout()
        assert diff_layouts(layout, layout).is_empty

    @given(st.lists(sizes, min_size=2, max_size=8), st.data())
    @settings(max_examples=40, deadline=None)
    def test_diff_detects_each_removed_region(self, region_sizes, data):
        space, vmas = _space_with_regions(region_sizes)
        before = space.layout()
        to_remove = data.draw(
            st.lists(st.sampled_from(vmas), min_size=1, max_size=len(vmas), unique=True)
        )
        for vma in to_remove:
            space.munmap(vma.start, vma.length)
        diff = diff_layouts(before, space.layout())
        removed_starts = {record.start for record in diff.removed}
        assert removed_starts == {vma.start for vma in to_remove}
        assert not diff.added

    @given(st.lists(sizes, min_size=1, max_size=6), st.integers(min_value=1, max_value=5))
    @settings(max_examples=40, deadline=None)
    def test_diff_operation_count_bounds(self, region_sizes, added_count):
        space, _ = _space_with_regions(region_sizes)
        before = space.layout()
        for index in range(added_count):
            space.mmap(PAGE_SIZE, name=f"added-{index}")
        diff = diff_layouts(before, space.layout())
        assert len(diff.added) == added_count
        assert diff.num_operations == added_count

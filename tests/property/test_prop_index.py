"""Property tests for the incrementally-maintained cluster index.

The :class:`~repro.faas.index.ClusterIndex` replaces the scheduler's
per-request scans (least-loaded argmin, warm-aware scoring, steal-victim
search, the is-any-steal-possible sweep) with O(log N) incremental
queries.  The contract is *bit-identity*: on the same seed and workload,
a cluster routed through the index makes exactly the decisions the scan
implementations make — same invoker per invocation, same steals, same
cold starts, same timestamps.  These properties pin that contract over
arbitrary submission patterns, policies, and cluster shapes:

* **twin-cluster equivalence** — two identical clusters differing only
  in ``cluster_index`` produce identical routing counts, steal counts,
  and per-invocation dispatch/completion timestamps;
* **index integrity** — after any workload, the incrementally maintained
  loads, warm sets, and queue-depth maps equal a from-scratch recompute
  (``ClusterIndex.verify``), i.e. no state transition forgets to push
  its delta;
* **iteration determinism** — two identical indexed runs are identical,
  so nothing in the index (heap surfacing order, set iteration) leaks
  nondeterminism into routing.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from hypothesis import given, settings, strategies as st

from repro.faas.action import ActionSpec
from repro.faas.invoker import Invoker
from repro.faas.request import Invocation
from repro.faas.scheduler import (
    LeastLoadedPolicy,
    Scheduler,
    WarmAwarePolicy,
)
from repro.runtime.profiles import FunctionProfile, Language
from repro.sim.events import EventLoop


def _profile(name: str) -> FunctionProfile:
    """A small jitter-free profile: identical requests take identical time."""
    return FunctionProfile(
        name=name,
        language=Language.PYTHON,
        suite="prop",
        exec_seconds=0.008,
        exec_jitter=0.0,
        total_kpages=1.0,
        dirtied_kpages=0.1,
        regions_mapped_per_invocation=1,
        regions_unmapped_per_invocation=1,
        heap_growth_pages=2,
        input_bytes=64,
        output_bytes=64,
    )


def _run_cluster(
    num_invokers: int,
    pattern: List[int],
    *,
    policy_name: str,
    work_stealing: bool,
    cluster_index: bool,
    boot_steal_min_queue: Optional[int] = 4,
    verify: bool = False,
) -> Tuple[List[int], int, List[Tuple[str, float, float]]]:
    """Run one cluster over ``pattern`` and return its decision trace.

    Returns ``(routed_per_invoker, steals, [(action, dispatched_at,
    completed_at), ...])`` — everything a routing or steal divergence
    would perturb.
    """
    num_actions = max(pattern) + 1
    actions = [f"act-{i}" for i in range(num_actions)]
    loop = EventLoop()
    invokers = [
        Invoker(loop, cores=1, invoker_id=f"invoker-{i}")
        for i in range(num_invokers)
    ]
    policy = (
        WarmAwarePolicy(cold_start_penalty=2.0)
        if policy_name == "warm-aware"
        else LeastLoadedPolicy()
    )
    scheduler = Scheduler(
        invokers,
        policy,
        work_stealing=work_stealing,
        boot_steal_min_queue=boot_steal_min_queue,
        cluster_index=cluster_index,
    )
    for name in actions:
        spec = ActionSpec.for_profile(_profile(name), "base", name=name)
        scheduler.deploy(spec, containers=1, max_containers=2)
    done: List[Invocation] = []
    for action_index in pattern:
        invocation = Invocation(action=actions[action_index], payload=b"x")
        scheduler.submit(invocation, done.append)
        if verify and scheduler.index is not None:
            # Mid-flight integrity: every submit's state transitions must
            # have pushed their deltas before the next routing decision.
            scheduler.index.verify()
    loop.run(until=500.0)
    if verify and scheduler.index is not None:
        scheduler.index.verify()
    trace = [
        (inv.action, inv.dispatched_at, inv.completed_at) for inv in done
    ]
    return list(scheduler.routed_per_invoker), scheduler.steals, trace


@settings(max_examples=25, deadline=None)
@given(
    num_invokers=st.integers(min_value=2, max_value=5),
    pattern=st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=40),
    policy_name=st.sampled_from(["warm-aware", "least-loaded"]),
    work_stealing=st.booleans(),
)
def test_indexed_routing_is_bit_identical_to_scan(
    num_invokers, pattern, policy_name, work_stealing
):
    # The tentpole contract: the index changes the *cost* of routing and
    # steal decisions, never the decisions themselves.
    indexed = _run_cluster(
        num_invokers, pattern,
        policy_name=policy_name, work_stealing=work_stealing,
        cluster_index=True,
    )
    scan = _run_cluster(
        num_invokers, pattern,
        policy_name=policy_name, work_stealing=work_stealing,
        cluster_index=False,
    )
    assert indexed[0] == scan[0]  # routed_per_invoker
    assert indexed[1] == scan[1]  # steal counts
    assert indexed[2] == scan[2]  # per-invocation dispatch/completion times


@settings(max_examples=25, deadline=None)
@given(
    num_invokers=st.integers(min_value=2, max_value=4),
    pattern=st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=30),
    work_stealing=st.booleans(),
)
def test_index_matches_recompute_after_any_workload(
    num_invokers, pattern, work_stealing
):
    # ClusterIndex.verify() recomputes loads / warm sets / queue depths
    # from the invokers and asserts the incrementally maintained state
    # equals it — at every submission boundary and after the run drains.
    _run_cluster(
        num_invokers, pattern,
        policy_name="warm-aware", work_stealing=work_stealing,
        cluster_index=True, verify=True,
    )


@settings(max_examples=10, deadline=None)
@given(
    pattern=st.lists(st.integers(min_value=0, max_value=2), min_size=4, max_size=24),
)
def test_indexed_runs_are_deterministic(pattern):
    # Heap surfacing and warm-set iteration must not leak ordering
    # nondeterminism: two identical indexed runs are identical.
    first = _run_cluster(
        3, pattern, policy_name="warm-aware", work_stealing=True,
        cluster_index=True,
    )
    second = _run_cluster(
        3, pattern, policy_name="warm-aware", work_stealing=True,
        cluster_index=True,
    )
    assert first == second

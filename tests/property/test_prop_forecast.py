"""Property tests for the demand forecaster and the predictive planner.

The forecaster feeds a planner that moves real capacity, so its outputs
must be *safe under any observation history* — not just the smooth
synthetic loads the unit tests fit:

* **Finite and non-negative** — whatever (count, interval) sequence is
  observed, every forecast at every horizon is a finite float >= 0; a
  negative or infinite rate would propagate straight into container
  targets.
* **Determinism** — identical observation histories produce identical
  forecasts, and identical cluster histories produce identical predictive
  plans (the cluster-wide reproducibility guarantee extends to the
  forecast layer).
* **Budget safety under forecast pressure** — however aggressive the
  forecast-implied seeding is, the planner never pushes the cluster's
  container count above the global budget (inherited from the reactive
  planner, re-verified here because the predictive subclass adds a whole
  new pressure source).
"""

from __future__ import annotations

import math
from typing import List

from hypothesis import given, settings, strategies as st

from repro.faas.action import ActionSpec
from repro.faas.controlplane import CapacityPlanner, DemandForecaster, PredictivePlanner
from repro.faas.invoker import Invoker
from repro.faas.request import Invocation, InvocationStatus
from repro.runtime.profiles import FunctionProfile, Language
from repro.sim.events import EventLoop


def _profile(name: str) -> FunctionProfile:
    return FunctionProfile(
        name=name,
        language=Language.PYTHON,
        suite="prop",
        exec_seconds=0.008,
        exec_jitter=0.0,
        total_kpages=1.0,
        dirtied_kpages=0.1,
        regions_mapped_per_invocation=1,
        regions_unmapped_per_invocation=1,
        heap_growth_pages=2,
        input_bytes=64,
        output_bytes=64,
        threads=1,
        init_fraction=0.8,
    )


#: One observation: (count, interval) — counts include bursty extremes.
OBSERVATIONS = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False,
                  allow_infinity=False),
        st.floats(min_value=1e-3, max_value=10.0, allow_nan=False,
                  allow_infinity=False),
    ),
    min_size=1,
    max_size=60,
)

SEASONS = st.one_of(st.none(), st.floats(min_value=0.5, max_value=100.0))

HORIZONS = st.lists(
    st.floats(min_value=0.0, max_value=1e4, allow_nan=False,
              allow_infinity=False),
    min_size=1,
    max_size=5,
)


@settings(max_examples=80, deadline=None)
@given(observations=OBSERVATIONS, season=SEASONS, horizons=HORIZONS)
def test_forecasts_are_finite_and_non_negative(observations, season, horizons):
    forecaster = DemandForecaster(season_period_seconds=season)
    now = 0.0
    for count, interval in observations:
        now += interval
        forecaster.observe("act", count, now, interval)
        for horizon in horizons:
            value = forecaster.forecast("act", now + horizon)
            assert math.isfinite(value), f"forecast {value!r} is not finite"
            assert value >= 0.0, f"forecast {value!r} is negative"
    snapshot = forecaster.snapshot("act")
    assert math.isfinite(snapshot["level"]) and snapshot["level"] >= 0.0
    assert math.isfinite(snapshot["trend"])
    assert all(math.isfinite(factor) for factor in snapshot["seasonal"])


@settings(max_examples=40, deadline=None)
@given(observations=OBSERVATIONS, season=SEASONS)
def test_forecaster_determinism(observations, season):
    def build() -> DemandForecaster:
        forecaster = DemandForecaster(season_period_seconds=season)
        now = 0.0
        for count, interval in observations:
            now += interval
            forecaster.observe("act", count, now, interval)
        return forecaster, now

    first, at_first = build()
    second, at_second = build()
    assert at_first == at_second
    for horizon in (0.0, 0.25, 1.0, 60.0):
        assert first.forecast("act", at_first + horizon) == second.forecast(
            "act", at_second + horizon
        )
    assert first.ready("act") == second.ready("act")
    assert first.snapshot("act") == second.snapshot("act")


ACTIONS = ("act-0", "act-1", "act-2")

#: One step: (action index, burst size, events to process before planning).
OPS = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=len(ACTIONS) - 1),
        st.integers(min_value=0, max_value=4),
        st.integers(min_value=0, max_value=30),
    ),
    min_size=1,
    max_size=12,
)


def _build(num_invokers: int):
    loop = EventLoop()
    invokers = [
        Invoker(loop, cores=2, invoker_id=f"invoker-{i}")
        for i in range(num_invokers)
    ]
    for index, name in enumerate(ACTIONS):
        spec = ActionSpec.for_profile(_profile(name), "base", name=name)
        home = index % num_invokers
        for position, invoker in enumerate(invokers):
            if position == home:
                invoker.deploy(spec, containers=1, max_containers=2)
            else:
                invoker.register(spec, max_containers=2)
    return loop, invokers


def _run_history(ops, num_invokers: int, budget: int, *, min_history: float):
    """Drive one history under a PredictivePlanner; verify budget each tick."""
    loop, invokers = _build(num_invokers)
    planner = PredictivePlanner(
        budget=budget,
        queue_high=2,
        min_idle_seconds=0.0,
        forecaster=DemandForecaster(min_history_seconds=min_history,
                                    min_observations=1),
        default_boot_seconds=0.2,
        default_service_seconds=0.05,
    )
    completed: List[Invocation] = []
    submitted = 0
    for action_index, burst, events in ops:
        action = ACTIONS[action_index]
        home = invokers[action_index % num_invokers]
        for _ in range(burst):
            home.submit(
                Invocation(action=action, caller="t", submitted_at=loop.now),
                completed.append,
            )
            submitted += 1
        loop.run(max_events=events)
        total_before = CapacityPlanner.total_containers(
            [invoker.snapshot() for invoker in invokers]
        )
        planner.plan(invokers, loop.now)
        total_after = CapacityPlanner.total_containers(
            [invoker.snapshot() for invoker in invokers]
        )
        assert total_after <= max(budget, total_before), (
            f"predictive planner pushed the cluster to {total_after} "
            f"containers (budget {budget}, was {total_before})"
        )
    loop.run()
    return planner, completed, submitted


@settings(max_examples=25, deadline=None)
@given(ops=OPS, num_invokers=st.integers(min_value=2, max_value=3),
       budget=st.integers(min_value=3, max_value=10))
def test_predictive_planner_respects_budget_and_loses_no_work(
    ops, num_invokers, budget
):
    planner, completed, submitted = _run_history(
        ops, num_invokers, budget, min_history=0.0
    )
    assert len(completed) == submitted
    assert all(inv.status is InvocationStatus.COMPLETED for inv in completed)
    assert len({inv.invocation_id for inv in completed}) == submitted


@settings(max_examples=15, deadline=None)
@given(ops=OPS, budget=st.integers(min_value=3, max_value=10))
def test_predictive_planner_is_deterministic(ops, budget):
    first, _, _ = _run_history(ops, 3, budget, min_history=0.0)
    second, _, _ = _run_history(ops, 3, budget, min_history=0.0)
    assert first.decisions == second.decisions
    assert first.predictive_seeds == second.predictive_seeds
    assert first.forecast_stats() == second.forecast_stats()


@settings(max_examples=15, deadline=None)
@given(ops=OPS, budget=st.integers(min_value=3, max_value=10))
def test_unready_forecaster_degrades_to_reactive_plans(ops, budget):
    """With history gated off, the predictive plans equal the reactive
    planner's exactly — graceful fallback holds for any interleaving."""
    predictive, _, _ = _run_history(ops, 3, budget, min_history=1e9)
    loop, invokers = _build(3)
    reactive = CapacityPlanner(budget=budget, queue_high=2, min_idle_seconds=0.0)
    for action_index, burst, events in ops:
        action = ACTIONS[action_index]
        home = invokers[action_index % 3]
        for _ in range(burst):
            home.submit(
                Invocation(action=action, caller="t", submitted_at=loop.now),
                lambda inv: None,
            )
        loop.run(max_events=events)
        reactive.plan(invokers, loop.now)
    loop.run()
    assert predictive.decisions == reactive.decisions
    assert predictive.predictive_seeds == 0

"""Property tests for the event loop's timers.

The platform's determinism rests on one invariant: events execute in
``(time, sequence)`` order, where ``sequence`` is assigned at scheduling
time.  The cluster refactor added cancellable recurring timers whose firings
re-enter the scheduler, so these properties check that arbitrary mixes of
one-shot events, recurring timers, and mid-run cancellations still produce
identical, monotonically ordered traces on every run.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from hypothesis import given, settings, strategies as st

from repro.sim.events import EventLoop

Trace = List[Tuple[str, float]]


def _run_schedule(seed: int) -> Trace:
    """Build a pseudo-random mix of timers from ``seed`` and run it.

    Every structural choice (how many timers, intervals, cancellations)
    derives from ``random.Random(seed)``, so two calls with the same seed
    construct identical schedules; the returned trace records every firing
    as ``(label, time)`` in execution order.
    """
    rng = random.Random(seed)
    loop = EventLoop()
    trace: Trace = []

    for index in range(rng.randint(1, 6)):
        delay = rng.choice((0.5, 1.0, 1.5, 2.0, 3.0))
        label = f"shot-{index}"
        event = loop.schedule(delay, lambda label=label: trace.append((label, loop.now)))
        if rng.random() < 0.2:
            event.cancel()

    for index in range(rng.randint(1, 4)):
        interval = rng.choice((0.5, 1.0, 2.0))
        max_fires = rng.randint(1, 5)
        label = f"timer-{index}"

        def make_callback(label: str, limit: int):
            holder = {}

            def callback() -> None:
                trace.append((label, loop.now))
                if holder["timer"].fires >= limit:
                    holder["timer"].cancel()

            return holder, callback

        holder, callback = make_callback(label, max_fires)
        holder["timer"] = loop.schedule_recurring(interval, callback, label=label)
        if rng.random() < 0.2:
            # Some timers are cancelled mid-run by a one-shot event.
            cancel_at = rng.choice((0.75, 1.25, 2.5))
            loop.schedule(cancel_at, holder["timer"].cancel)

    loop.run()
    return trace


@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=60, deadline=None)
def test_timer_traces_are_deterministic_across_runs(seed: int) -> None:
    """The same schedule produces the identical trace, for any seed."""
    assert _run_schedule(seed) == _run_schedule(seed)


@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=60, deadline=None)
def test_timer_firings_preserve_time_ordering(seed: int) -> None:
    """Execution times never go backwards, whatever the timer mix."""
    trace = _run_schedule(seed)
    times = [time for _, time in trace]
    assert times == sorted(times)


@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=40, deadline=None)
def test_simultaneous_firings_follow_schedule_order(seed: int) -> None:
    """Among same-time firings, scheduling order (the sequence number) wins.

    A recurring timer re-arms itself at firing time, so its next occurrence
    always carries a later sequence number than any event scheduled earlier
    at the same timestamp — the trace groups same-time firings in the order
    their events entered the queue, which `_run_schedule`'s determinism
    (checked above) makes observable: we re-run with freshly interleaved
    bookkeeping and must see the identical grouping.
    """
    first = _run_schedule(seed)
    second = _run_schedule(seed)
    assert first == second
    # Within one timestamp, the subsequence of labels is identical run to run.
    by_time: dict = {}
    for label, time in first:
        by_time.setdefault(time, []).append(label)
    by_time_second: dict = {}
    for label, time in second:
        by_time_second.setdefault(time, []).append(label)
    assert by_time == by_time_second

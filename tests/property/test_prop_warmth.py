"""Property tests for the restoration-aware warmth spectrum.

With ``restorable_snapshots`` on, keep-alive eviction *demotes* idle
dynamic containers to held snapshots and demand revives them with an
on-core restore priced by the isolation mechanism.  These properties pin
the spectrum's contracts over arbitrary submission patterns:

* **zero-cost collapse** — a spectrum whose restores are free (pricer
  returns 0) and whose snapshot budget is unbounded is observationally
  identical, dispatch for dispatch, to never evicting at all (an
  infinite keep-alive): demote+promote at zero cost must be a pure
  no-op in the timing domain;
* **budget safety** — the invoker-wide snapshot budget is never
  exceeded at any observation point, and every demotion is accounted
  for (held + restored + discarded);
* **indexed ≡ scan with snapshots** — the cluster index's per-action
  snapshot sets keep routing bit-identical to the scan oracle when the
  middle warmth tier is live, and ``ClusterIndex.verify()`` holds at
  every submission boundary;
* **determinism** — two identical spectrum-on runs make identical
  decisions (demotion LRU order and snapshot-set iteration leak no
  nondeterminism).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from hypothesis import given, settings, strategies as st

from repro.faas.action import ActionSpec
from repro.faas.invoker import Invoker
from repro.faas.request import Invocation
from repro.faas.scheduler import (
    HashAffinityPolicy,
    LeastLoadedPolicy,
    Scheduler,
    WarmAwarePolicy,
)
from repro.runtime.profiles import FunctionProfile, Language
from repro.sim.events import EventLoop


def _profile(name: str) -> FunctionProfile:
    """A small jitter-free profile: identical requests take identical time."""
    return FunctionProfile(
        name=name,
        language=Language.PYTHON,
        suite="prop",
        exec_seconds=0.008,
        exec_jitter=0.0,
        total_kpages=1.0,
        dirtied_kpages=0.1,
        regions_mapped_per_invocation=1,
        regions_unmapped_per_invocation=1,
        heap_growth_pages=2,
        input_bytes=64,
        output_bytes=64,
    )


def _run_cluster(
    num_invokers: int,
    pattern: List[int],
    *,
    policy_name: str = "least-loaded",
    keep_alive_seconds: float,
    spectrum: bool,
    snapshot_budget: Optional[int] = None,
    zero_cost: bool = False,
    cluster_index: bool = True,
    gap_seconds: float = 0.5,
    verify: bool = False,
) -> Tuple[List[Invoker], Scheduler, List[Tuple[str, float, float]]]:
    """Run one cluster over ``pattern`` with staggered submission bursts.

    Each pattern step submits a *burst* of two invocations of the same
    action at the same instant: the second one queues, grows the pool,
    and boots a **dynamic** container — the only kind keep-alive
    eviction (and hence demotion) ever touches.  Bursts are spaced
    ``gap_seconds`` apart so short keep-alives actually fire between
    them.  Returns the invokers, the scheduler, and the per-invocation
    ``(action, dispatched_at, completed_at)`` trace.
    """
    num_actions = max(pattern) + 1
    actions = [f"act-{i}" for i in range(num_actions)]
    loop = EventLoop()
    invokers = [
        Invoker(
            loop,
            cores=2,
            invoker_id=f"invoker-{i}",
            keep_alive_seconds=keep_alive_seconds,
            restorable_snapshots=spectrum,
            snapshot_budget=snapshot_budget,
            restore_pricer=(lambda container: 0.0) if zero_cost else None,
        )
        for i in range(num_invokers)
    ]
    if policy_name == "warm-aware":
        policy = WarmAwarePolicy(cold_start_penalty=2.0)
    elif policy_name == "hash-affinity":
        policy = HashAffinityPolicy()
    else:
        policy = LeastLoadedPolicy()
    scheduler = Scheduler(
        invokers,
        policy,
        work_stealing=False,
        cluster_index=cluster_index,
    )
    for name in actions:
        spec = ActionSpec.for_profile(_profile(name), "base", name=name)
        scheduler.deploy(spec, containers=1, max_containers=2)
    done: List[Invocation] = []

    def _submit(action_index: int) -> None:
        for _ in range(2):
            invocation = Invocation(action=actions[action_index], payload=b"x")
            scheduler.submit(invocation, done.append)
        if verify and scheduler.index is not None:
            scheduler.index.verify()

    for step, action_index in enumerate(pattern):
        loop.schedule_at(step * gap_seconds, lambda i=action_index: _submit(i))
    loop.run(until=len(pattern) * gap_seconds + 500.0)
    if verify and scheduler.index is not None:
        scheduler.index.verify()
    trace = [
        (inv.action, inv.dispatched_at, inv.completed_at) for inv in done
    ]
    return invokers, scheduler, trace


@settings(max_examples=25, deadline=None)
@given(
    num_invokers=st.integers(min_value=2, max_value=4),
    pattern=st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=30),
    policy_name=st.sampled_from(["least-loaded", "hash-affinity"]),
)
def test_zero_cost_spectrum_is_infinite_keep_alive(
    num_invokers, pattern, policy_name
):
    # Free restores + unbounded budget means demotion loses nothing and
    # revival costs nothing: the spectrum must collapse to "never evict".
    # Keep-alive 0.2s with 0.5s gaps guarantees demotions actually fire
    # between requests in the spectrum cluster.
    spectrum_invokers, spectrum_sched, spectrum_trace = _run_cluster(
        num_invokers, pattern,
        policy_name=policy_name,
        keep_alive_seconds=0.2, spectrum=True, zero_cost=True,
    )
    eternal_invokers, eternal_sched, eternal_trace = _run_cluster(
        num_invokers, pattern,
        policy_name=policy_name,
        keep_alive_seconds=1e9, spectrum=False,
    )
    assert spectrum_trace == eternal_trace
    assert list(spectrum_sched.routed_per_invoker) == list(
        eternal_sched.routed_per_invoker
    )
    assert sum(i.cold_starts for i in spectrum_invokers) == sum(
        i.cold_starts for i in eternal_invokers
    )


@settings(max_examples=25, deadline=None)
@given(
    num_invokers=st.integers(min_value=1, max_value=3),
    pattern=st.lists(st.integers(min_value=0, max_value=4), min_size=4, max_size=30),
    snapshot_budget=st.integers(min_value=0, max_value=3),
)
def test_snapshot_budget_never_exceeded(num_invokers, pattern, snapshot_budget):
    invokers, scheduler, _ = _run_cluster(
        num_invokers, pattern,
        keep_alive_seconds=0.2, spectrum=True,
        snapshot_budget=snapshot_budget,
    )
    for invoker in invokers:
        assert invoker.snapshots_held() <= snapshot_budget
        # Conservation: every demotion is either still held, was revived
        # by a restore, or was discarded by the budget LRU.
        assert invoker.demotes == (
            invoker.restores
            + invoker.snapshot_discards
            + invoker.snapshots_held()
        )


@settings(max_examples=25, deadline=None)
@given(
    num_invokers=st.integers(min_value=2, max_value=4),
    pattern=st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=30),
    policy_name=st.sampled_from(["warm-aware", "least-loaded"]),
)
def test_indexed_spectrum_routing_is_bit_identical_to_scan(
    num_invokers, pattern, policy_name
):
    # The snapshot sets are the index's newest maintained state; they must
    # not perturb the bit-identity contract — the scan oracle sees pool
    # snapshots directly, the index sees _touch deltas, and both must
    # route every invocation identically with the middle tier live.
    indexed = _run_cluster(
        num_invokers, pattern,
        policy_name=policy_name,
        keep_alive_seconds=0.2, spectrum=True,
        cluster_index=True, verify=True,
    )
    scan = _run_cluster(
        num_invokers, pattern,
        policy_name=policy_name,
        keep_alive_seconds=0.2, spectrum=True,
        cluster_index=False,
    )
    assert indexed[2] == scan[2]  # per-invocation dispatch/completion times
    assert list(indexed[1].routed_per_invoker) == list(scan[1].routed_per_invoker)
    assert [i.restores for i in indexed[0]] == [i.restores for i in scan[0]]
    assert [i.demotes for i in indexed[0]] == [i.demotes for i in scan[0]]


@settings(max_examples=10, deadline=None)
@given(
    pattern=st.lists(st.integers(min_value=0, max_value=2), min_size=4, max_size=20),
)
def test_spectrum_runs_are_deterministic(pattern):
    first = _run_cluster(
        3, pattern, policy_name="warm-aware",
        keep_alive_seconds=0.2, spectrum=True, snapshot_budget=2,
    )
    second = _run_cluster(
        3, pattern, policy_name="warm-aware",
        keep_alive_seconds=0.2, spectrum=True, snapshot_budget=2,
    )
    assert first[2] == second[2]
    assert list(first[1].routed_per_invoker) == list(second[1].routed_per_invoker)
    assert [i.stats() for i in first[0]] == [i.stats() for i in second[0]]

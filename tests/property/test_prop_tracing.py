"""Property tests for flight-recorder sampling (``repro.faas.obs``).

The recorder's sampling decision is the determinism linchpin of the
observability layer: ``run_replicated`` must reproduce *identical*
sampled traces whether the per-seed runs execute serially in-process or
fan out across spawn-started worker processes.  That only holds if the
keep/drop decision is a pure function of ``(seed, run-local ordinal,
period)`` — never of process identity, wall clock, global counters, or
interleaving.  Pinned here:

* **Purity/stability**: :func:`repro.faas.obs.trace._sampled` returns
  the same answer for the same ``(seed, ordinal, period)`` every time,
  across calls and across recorder instances.
* **Period-1 totality**: ``sample_period=1`` keeps every invocation —
  "sampled" mode degrades gracefully to "full".
* **Recorder agreement**: two fresh ``TraceRecorder("sampled", ...)``
  instances fed the same ordinal stream keep the same subset, and the
  subset is independent of which invocations other recorders saw.
* **Seed sensitivity**: different seeds pick different subsets (for
  large enough streams), so replicated seeds explore different samples.
* **Serial == parallel**: ``run_replicated`` over the traced worker
  yields bit-identical trace digests and kept-counts with and without
  process fan-out (the end-to-end form of the purity property).
"""

from __future__ import annotations

from types import SimpleNamespace

from hypothesis import given, settings, strategies as st

from repro.analysis.experiments import run_replicated, traced_replica_worker
from repro.faas.obs import TraceRecorder
from repro.faas.obs.trace import _sampled

seeds = st.integers(min_value=0, max_value=2**31 - 1)
ordinals = st.integers(min_value=0, max_value=2**20)
periods = st.integers(min_value=1, max_value=64)


def _keep_list(recorder, count):
    """Feed ``count`` synthetic invocations; return the kept ordinals."""
    kept = []
    for ordinal in range(count):
        trace = recorder.begin_invocation(
            SimpleNamespace(
                invocation_id=f"inv-{ordinal:05d}",
                action="prop",
                caller="t",
                submitted_at=float(ordinal),
            )
        )
        if trace is not None:
            kept.append(ordinal)
    return kept


@given(seed=seeds, ordinal=ordinals, period=periods)
@settings(max_examples=300, deadline=None)
def test_sampling_decision_is_pure_and_stable(seed, ordinal, period):
    first = _sampled(seed, ordinal, period)
    assert all(
        _sampled(seed, ordinal, period) == first for _ in range(3)
    ), "decision must not depend on call history"
    assert isinstance(first, bool)


@given(seed=seeds, ordinal=ordinals)
@settings(max_examples=200, deadline=None)
def test_period_one_keeps_everything(seed, ordinal):
    assert _sampled(seed, ordinal, 1) is True


@given(seed=seeds, period=periods, count=st.integers(min_value=1, max_value=200))
@settings(max_examples=100, deadline=None)
def test_fresh_recorders_keep_the_same_subset(seed, period, count):
    make = lambda: TraceRecorder(
        "sampled", seed=seed, sample_period=period, capacity=4096
    )
    first = _keep_list(make(), count)
    second = _keep_list(make(), count)
    assert first == second
    # And the subset matches the pure predicate exactly: the recorder
    # adds no state of its own to the keep/drop decision.
    assert first == [o for o in range(count) if _sampled(seed, o, period)]


@given(seed=seeds)
@settings(max_examples=50, deadline=None)
def test_seed_changes_the_sample(seed):
    period, count = 8, 512
    mine = [o for o in range(count) if _sampled(seed, o, period)]
    other = [o for o in range(count) if _sampled(seed + 1, o, period)]
    # With 512 ordinals at period 8 (~64 keeps), two seeds agreeing on
    # the whole subset would need ~2^-250 luck; any overlap short of
    # total is fine, identity is the bug.
    assert mine != other


class TestReplicatedTraceDeterminism:
    """The end-to-end pin: sampled traces survive process fan-out."""

    SEEDS = (11, 12)

    def test_serial_and_parallel_digests_match(self):
        serial = run_replicated(traced_replica_worker, seeds=self.SEEDS)
        fanned = run_replicated(
            traced_replica_worker, seeds=self.SEEDS, processes=2
        )
        assert len(serial) == len(fanned) == len(self.SEEDS)
        for mine, theirs in zip(serial, fanned):
            assert mine["seed"] == theirs["seed"]
            assert mine["arrivals"] == theirs["arrivals"]
            assert mine["traces_recorded"] == theirs["traces_recorded"]
            assert mine["trace_digest"] == theirs["trace_digest"]

    def test_seeds_produce_distinct_sampled_traces(self):
        a, b = run_replicated(traced_replica_worker, seeds=self.SEEDS)
        assert a["trace_digest"] != b["trace_digest"]

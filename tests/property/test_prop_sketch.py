"""Property tests for the streaming sketch (``repro.faas.sketch``).

The sketch replaces exact per-sample percentile math in million-request
runs, so its guarantees are stated — and checked here — against the exact
implementation in :mod:`repro.faas.metrics`:

* **Quantile accuracy**: for every percentile, the estimate is within the
  documented relative value error of a *bracketing* pair of exact order
  statistics.  DDSketch's guarantee is per-value, so the estimate must
  sit inside the alpha-widened envelope ``[(1-a)·x_lo, (1+a)·x_hi]``
  where ``x_lo``/``x_hi`` are the order statistics adjacent to the
  queried rank.
* **Merge consistency**: sketch(A) merged with sketch(B) equals
  sketch(A + B) — bucket counts are integers, so this is exact equality,
  not an approximation.
* **Determinism**: the same stream always yields the same sketch,
  regardless of when queries interleave with inserts.
* **LatencyStats parity**: count/mean/std/min/max reduce exactly to the
  values :func:`repro.faas.metrics.summarize` computes.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.faas.metrics import percentile, summarize
from repro.faas.sketch import LatencySketch, QuantileSketch

#: Latency-shaped positive samples: microseconds to minutes, plus the
#: occasional exact zero (sub-resolution timings).
latencies = st.one_of(
    st.floats(min_value=1e-6, max_value=120.0, allow_nan=False, allow_infinity=False),
    st.just(0.0),
)

streams = st.lists(latencies, min_size=1, max_size=300)

percentiles = st.sampled_from([0, 1, 10, 25, 50, 75, 90, 95, 99, 100])


@given(samples=streams, pct=percentiles)
@settings(max_examples=200, deadline=None)
def test_quantile_within_rank_error_of_exact(samples, pct):
    sketch = QuantileSketch()
    for sample in samples:
        sketch.add(sample)
    estimate = sketch.quantile(pct)

    ordered = sorted(samples)
    n = len(ordered)
    rank = min(n - 1, int(pct / 100.0 * (n - 1) + 0.5))
    # Bracketing order statistics around the queried rank: nearest-rank
    # rounding means the answer corresponds to rank, but float rounding
    # at the .5 boundary may legitimately land one rank either side.
    lo = ordered[max(0, rank - 1)]
    hi = ordered[min(n - 1, rank + 1)]
    alpha = sketch.relative_accuracy * 1.0001  # float-dust headroom
    assert (1.0 - alpha) * lo <= estimate <= (1.0 + alpha) * hi


@given(left=streams, right=streams)
@settings(max_examples=150, deadline=None)
def test_merge_equals_sketch_of_concatenation(left, right):
    a = QuantileSketch()
    b = QuantileSketch()
    both = QuantileSketch()
    for sample in left:
        a.add(sample)
        both.add(sample)
    for sample in right:
        b.add(sample)
        both.add(sample)
    a.merge(b)
    assert a == both


@given(samples=streams)
@settings(max_examples=100, deadline=None)
def test_merge_is_commutative_on_bucket_counts(samples):
    half = len(samples) // 2
    ab, ba = QuantileSketch(), QuantileSketch()
    a1, b1 = QuantileSketch(), QuantileSketch()
    for sample in samples[:half]:
        a1.add(sample)
    for sample in samples[half:]:
        b1.add(sample)
    ab.merge(a1)
    ab.merge(b1)
    ba.merge(b1)
    ba.merge(a1)
    assert ab == ba


@given(samples=streams)
@settings(max_examples=100, deadline=None)
def test_same_stream_same_sketch(samples):
    first = QuantileSketch()
    second = QuantileSketch()
    for sample in samples:
        first.add(sample)
    # Interleave queries with inserts on the second copy: reads must not
    # perturb state.
    for index, sample in enumerate(samples):
        second.add(sample)
        if index % 7 == 0:
            second.quantile(50)
    assert first == second
    assert first.quantile(99) == second.quantile(99)


@given(samples=streams)
@settings(max_examples=150, deadline=None)
def test_latency_stats_parity_with_summarize(samples):
    sketch = LatencySketch()
    sketch.extend(samples)
    stats = sketch.stats()
    exact = summarize(samples)
    assert stats.count == exact.count
    assert stats.minimum == exact.minimum
    assert stats.maximum == exact.maximum
    assert abs(stats.mean - exact.mean) <= 1e-9 * max(1.0, abs(exact.mean))
    assert abs(stats.std - exact.std) <= 1e-6 * max(1.0, exact.std)


@given(samples=st.lists(latencies, min_size=2, max_size=120), pct=percentiles)
@settings(max_examples=100, deadline=None)
def test_percentile_estimates_clamped_to_envelope(samples, pct):
    sketch = LatencySketch()
    sketch.extend(samples)
    stats = sketch.stats()
    for value in (stats.p10, stats.p25, stats.median, stats.p75,
                  stats.p90, stats.p95, stats.p99):
        assert stats.minimum <= value <= stats.maximum


@given(samples=st.lists(latencies, min_size=1, max_size=60))
@settings(max_examples=100, deadline=None)
def test_single_bucket_streams_reproduce_percentile_exactly(samples):
    # All-equal streams collapse into one bucket whose representative
    # value is within alpha of the true (constant) sample — and clamping
    # to [min, max] then makes the answer *exact*.
    constant = samples[0]
    stream = [constant] * len(samples)
    sketch = LatencySketch()
    sketch.extend(stream)
    assert sketch.stats().p99 == percentile(stream, 99)

"""Tests for Groundhog's core: tracking, snapshot, syscall plans, restore, manager."""

from __future__ import annotations

import random

import pytest

from repro.config import PAGE_SIZE
from repro.errors import IsolationError, RestoreError, SnapshotError
from repro.core.manager import GroundhogManager, ManagerState
from repro.core.restore import RestoreBreakdown, Restorer
from repro.core.snapshot import Snapshotter
from repro.core.syscalls import build_restore_plan, madvise_calls_for_pages, summarize_plan
from repro.core.tracking import SoftDirtyTracker, UffdWriteTracker
from repro.mem.layout import MemoryLayout, VmaRecord, diff_layouts
from repro.mem.page import Protection
from repro.mem.vma import VmaKind
from repro.proc.procfs import ProcFs
from repro.proc.ptrace import Ptrace
from repro.runtime import build_runtime


@pytest.fixture
def warm_runtime(small_python_profile):
    """A booted and warmed runtime (the state Groundhog snapshots)."""
    from repro.proc.process import SimProcess

    runtime = build_runtime(small_python_profile, SimProcess("gh-test"), random.Random(0))
    runtime.boot()
    runtime.warm()
    return runtime


def _snapshot(runtime):
    procfs = ProcFs(runtime.process)
    ptrace = Ptrace(runtime.process)
    snapshotter = Snapshotter(ptrace, procfs)
    snapshot, stats = snapshotter.take()
    return snapshot, stats, procfs, ptrace


class TestTrackers:
    def test_soft_dirty_tracker_collects_write_set(self, warm_runtime):
        procfs = ProcFs(warm_runtime.process)
        tracker = SoftDirtyTracker(procfs)
        tracker.arm()
        warm_runtime.invoke(b"x", "r1")
        collection = tracker.collect()
        assert len(collection.dirty_pages) > 0
        assert collection.scanned_pages == warm_runtime.process.address_space.total_mapped_pages
        assert collection.collect_seconds > 0

    def test_soft_dirty_rearm_clears_previous_set(self, warm_runtime):
        procfs = ProcFs(warm_runtime.process)
        tracker = SoftDirtyTracker(procfs)
        tracker.arm()
        warm_runtime.invoke(b"x", "r1")
        tracker.collect()
        tracker.arm()
        assert tracker.collect().dirty_pages == ()

    def test_uffd_tracker_collects_same_pages_as_soft_dirty(self, warm_runtime):
        space = warm_runtime.process.address_space
        procfs = ProcFs(warm_runtime.process)
        uffd = UffdWriteTracker(procfs)
        soft = SoftDirtyTracker(procfs)
        soft.arm()
        uffd.arm()
        warm_runtime.invoke(b"x", "r1")
        uffd_pages = set(uffd.collect().dirty_pages)
        sd_pages = set(soft.collect().dirty_pages)
        # UFFD only sees writes to pages that were resident when it armed;
        # soft-dirty also flags newly allocated pages.
        assert uffd_pages <= sd_pages
        assert len(uffd_pages) > 0

    def test_uffd_faults_are_more_expensive_in_function(self, small_python_profile):
        from repro.proc.process import SimProcess

        def in_function_cost(tracker_cls):
            runtime = build_runtime(small_python_profile, SimProcess("t"), random.Random(0))
            runtime.boot()
            runtime.warm()
            procfs = ProcFs(runtime.process)
            tracker = tracker_cls(procfs)
            tracker.arm()
            checkpoint = runtime.process.address_space.meter.checkpoint()
            runtime.invoke(b"x", "r1")
            return runtime.process.address_space.meter.since(checkpoint).cost_seconds

        assert in_function_cost(UffdWriteTracker) > in_function_cost(SoftDirtyTracker)


class TestSnapshotter:
    def test_snapshot_captures_threads_layout_and_pages(self, warm_runtime):
        snapshot, stats, _, _ = _snapshot(warm_runtime)
        space = warm_runtime.process.address_space
        assert snapshot.num_threads == warm_runtime.process.num_threads
        assert snapshot.num_pages == space.resident_pages
        assert snapshot.layout == space.layout()
        assert snapshot.brk == space.brk
        assert stats.total_seconds > 0
        assert stats.pages_captured == snapshot.num_pages

    def test_snapshot_resets_soft_dirty_bits(self, warm_runtime):
        _snapshot(warm_runtime)
        assert warm_runtime.process.address_space.soft_dirty_page_numbers() == set()

    def test_snapshot_leaves_process_running(self, warm_runtime):
        _snapshot(warm_runtime)
        assert warm_runtime.process.state.value == "running"

    def test_snapshot_of_exited_process_fails(self, warm_runtime):
        warm_runtime.process.exit()
        procfs = ProcFs(warm_runtime.process)
        ptrace = Ptrace(warm_runtime.process)
        with pytest.raises(SnapshotError):
            Snapshotter(ptrace, procfs).take()

    def test_snapshot_cost_scales_with_resident_pages(self, small_python_profile, small_node_profile):
        from repro.proc.process import SimProcess

        def snapshot_seconds(profile):
            runtime = build_runtime(profile, SimProcess(profile.name), random.Random(0))
            runtime.boot()
            runtime.warm()
            _, stats, _, _ = _snapshot(runtime)
            return stats.total_seconds

        assert snapshot_seconds(small_node_profile) > snapshot_seconds(small_python_profile)


def _record(start_page, pages, prot=Protection.rw(), kind=VmaKind.ANON, name=""):
    return VmaRecord(start=start_page * PAGE_SIZE, end=(start_page + pages) * PAGE_SIZE,
                     prot=prot, kind=kind, name=name)


class TestSyscallPlans:
    def test_added_region_is_unmapped(self):
        old = MemoryLayout(records=(), brk=0)
        new = MemoryLayout(records=(_record(10, 2, name="scratch"),), brk=0)
        plan = build_restore_plan(diff_layouts(old, new))
        assert summarize_plan(plan) == {"munmap": 1}

    def test_removed_region_is_remapped(self):
        old = MemoryLayout(records=(_record(10, 2, name="lib"),), brk=0)
        new = MemoryLayout(records=(), brk=0)
        plan = build_restore_plan(diff_layouts(old, new))
        assert summarize_plan(plan) == {"mmap": 1}

    def test_grown_region_is_trimmed(self):
        old = MemoryLayout(records=(_record(10, 2, name="arena"),), brk=0)
        new = MemoryLayout(records=(_record(10, 6, name="arena"),), brk=0)
        plan = build_restore_plan(diff_layouts(old, new))
        assert summarize_plan(plan) == {"munmap": 1}
        call = plan[0]
        assert call.args == (12 * PAGE_SIZE, 4 * PAGE_SIZE)

    def test_shrunk_region_is_reextended(self):
        old = MemoryLayout(records=(_record(10, 6, name="arena"),), brk=0)
        new = MemoryLayout(records=(_record(10, 2, name="arena"),), brk=0)
        plan = build_restore_plan(diff_layouts(old, new))
        assert summarize_plan(plan) == {"mmap": 1}

    def test_protection_change_reverted(self):
        old = MemoryLayout(records=(_record(10, 2, name="a", prot=Protection.rw()),), brk=0)
        new = MemoryLayout(records=(_record(10, 2, name="a", prot=Protection.r()),), brk=0)
        plan = build_restore_plan(diff_layouts(old, new))
        assert summarize_plan(plan) == {"mprotect": 1}

    def test_heap_changes_handled_only_by_brk(self):
        heap_old = _record(100, 4, kind=VmaKind.HEAP, name="[heap]")
        heap_new = _record(100, 10, kind=VmaKind.HEAP, name="[heap]")
        old = MemoryLayout(records=(heap_old,), brk=104 * PAGE_SIZE)
        new = MemoryLayout(records=(heap_new,), brk=110 * PAGE_SIZE)
        plan = build_restore_plan(diff_layouts(old, new))
        assert summarize_plan(plan) == {"brk": 1}

    def test_empty_diff_produces_empty_plan(self):
        layout = MemoryLayout(records=(_record(1, 1),), brk=0)
        assert build_restore_plan(diff_layouts(layout, layout)) == []

    def test_madvise_calls_coalesce_contiguous_runs(self):
        calls = madvise_calls_for_pages([10, 11, 12, 20, 30, 31])
        assert len(calls) == 3
        first = calls[0]
        assert first.args == (10 * PAGE_SIZE, 3 * PAGE_SIZE)

    def test_madvise_calls_empty_input(self):
        assert madvise_calls_for_pages([]) == []


class TestRestorer:
    def _make_restorer(self, runtime):
        procfs = ProcFs(runtime.process)
        ptrace = Ptrace(runtime.process)
        snapshot, _, _, _ = _snapshot(runtime)
        return Restorer(ptrace, procfs), snapshot

    def test_restore_reverts_memory_content_and_layout(self, warm_runtime):
        restorer, snapshot = self._make_restorer(warm_runtime)
        warm_runtime.invoke(b"alice-secret", "r1")
        result = restorer.restore(snapshot, verify=True)
        assert result.verified
        buffer = warm_runtime.read_request_buffer()
        assert b"alice-secret" not in buffer

    def test_restore_reports_breakdown_summing_to_total(self, warm_runtime):
        restorer, snapshot = self._make_restorer(warm_runtime)
        warm_runtime.invoke(b"x", "r1")
        result = restorer.restore(snapshot)
        breakdown = result.breakdown
        assert breakdown.total_seconds == pytest.approx(
            sum(breakdown.as_dict().values())
        )
        assert breakdown.scanning_page_metadata > 0
        assert breakdown.restoring_memory > 0

    def test_restore_counts_reflect_write_set(self, warm_runtime, small_python_profile):
        restorer, snapshot = self._make_restorer(warm_runtime)
        warm_runtime.invoke(b"x", "r1")
        result = restorer.restore(snapshot)
        assert result.dirty_pages == pytest.approx(
            small_python_profile.dirtied_pages, rel=0.4
        )
        assert result.pages_restored > 0
        # The scan covered the pre-restore layout, which is at least as large
        # as the restored (snapshot) layout.
        assert result.pages_scanned >= warm_runtime.process.address_space.total_mapped_pages

    def test_restore_is_idempotent(self, warm_runtime):
        restorer, snapshot = self._make_restorer(warm_runtime)
        warm_runtime.invoke(b"x", "r1")
        restorer.restore(snapshot, verify=True)
        second = restorer.restore(snapshot, verify=True)
        assert second.pages_restored == 0
        assert second.dirty_pages == 0

    def test_restore_registers(self, warm_runtime):
        restorer, snapshot = self._make_restorer(warm_runtime)
        before = warm_runtime.process.main_thread.get_registers()
        warm_runtime.invoke(b"x", "r1")
        assert warm_runtime.process.main_thread.get_registers() != before
        restorer.restore(snapshot, verify=True)
        assert warm_runtime.process.main_thread.get_registers() == before

    def test_repeated_invoke_restore_cycles_stay_clean(self, warm_runtime):
        restorer, snapshot = self._make_restorer(warm_runtime)
        for index in range(5):
            warm_runtime.invoke(f"secret-{index}".encode(), f"r{index}")
            restorer.restore(snapshot, verify=True)
            assert f"secret-{index}".encode() not in warm_runtime.read_request_buffer()

    def test_verify_detects_unrestored_state(self, warm_runtime):
        restorer, snapshot = self._make_restorer(warm_runtime)
        warm_runtime.invoke(b"dirty", "r1")
        with pytest.raises(RestoreError):
            restorer.verify(snapshot)

    def test_breakdown_fractions_sum_to_one(self, warm_runtime):
        restorer, snapshot = self._make_restorer(warm_runtime)
        warm_runtime.invoke(b"x", "r1")
        result = restorer.restore(snapshot)
        assert sum(result.breakdown.fractions().values()) == pytest.approx(1.0)

    def test_zero_breakdown_fractions(self):
        assert sum(RestoreBreakdown().fractions().values()) == 0.0


class TestGroundhogManager:
    def _manager(self, runtime):
        manager = GroundhogManager(runtime)
        manager.take_snapshot()
        return manager

    def test_requests_blocked_before_snapshot(self, warm_runtime):
        manager = GroundhogManager(warm_runtime)
        with pytest.raises(IsolationError):
            manager.handle_request(b"x", "r1")

    def test_request_then_restore_cycle(self, warm_runtime):
        manager = self._manager(warm_runtime)
        managed = manager.handle_request(b"alice", "r1")
        assert managed.interposition_seconds > 0
        assert manager.state is ManagerState.TAINTED
        result = manager.restore(verify=True)
        assert manager.state is ManagerState.READY
        assert result.pages_restored > 0

    def test_second_request_blocked_until_restore(self, warm_runtime):
        manager = self._manager(warm_runtime)
        manager.handle_request(b"alice", "r1")
        with pytest.raises(IsolationError):
            manager.handle_request(b"bob", "r2")
        manager.restore()
        manager.handle_request(b"bob", "r2")

    def test_skip_restore_marks_clean_without_rollback(self, warm_runtime):
        manager = self._manager(warm_runtime)
        manager.handle_request(b"alice-secret", "r1")
        manager.skip_restore()
        assert manager.restores_skipped == 1
        managed = manager.handle_request(b"bob", "r2")
        # Without a rollback, Alice's data is still visible to Bob.
        assert b"alice-secret" in managed.result.residual

    def test_double_snapshot_rejected(self, warm_runtime):
        manager = self._manager(warm_runtime)
        with pytest.raises(SnapshotError):
            manager.take_snapshot()

    def test_restore_before_snapshot_rejected(self, warm_runtime):
        manager = GroundhogManager(warm_runtime)
        with pytest.raises(RestoreError):
            manager.restore()

    def test_interposition_cost_scales_with_payload(self, warm_runtime):
        manager = self._manager(warm_runtime)
        small = manager.handle_request(b"x" * 10, "r1").interposition_seconds
        manager.restore()
        large = manager.handle_request(b"x" * 200_000, "r2").interposition_seconds
        assert large > small

    def test_counters_track_activity(self, warm_runtime):
        manager = self._manager(warm_runtime)
        manager.handle_request(b"a", "r1")
        manager.restore()
        manager.handle_request(b"b", "r2")
        manager.restore()
        assert manager.requests_forwarded == 2
        assert manager.restores_performed == 2

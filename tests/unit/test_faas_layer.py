"""Tests for the FaaS platform substrate: actions, containers, invoker, platform."""

from __future__ import annotations

import math

import pytest

from repro.config import SimulationConfig
from repro.errors import ActionNotFoundError, ContainerError, PlatformError
from repro.faas.action import ActionSpec
from repro.faas.container import Container, ContainerState
from repro.faas.invoker import Invoker
from repro.faas.loadgen import ClosedLoopClient, SaturatingClient
from repro.faas.metrics import LatencyStats, MetricsCollector, percentile, summarize
from repro.faas.platform import FaaSPlatform
from repro.faas.request import Invocation, InvocationStatus
from repro.sim.events import EventLoop


class TestInvocation:
    def test_ids_are_unique(self):
        a, b = Invocation(action="f"), Invocation(action="f")
        assert a.invocation_id != b.invocation_id

    def test_e2e_latency_requires_completion(self):
        inv = Invocation(action="f", submitted_at=1.0)
        assert math.isnan(inv.e2e_seconds)
        inv.mark_completed(3.0, {"ok": True})
        assert inv.e2e_seconds == pytest.approx(2.0)

    def test_mark_failed(self):
        inv = Invocation(action="f")
        inv.mark_failed(2.0, "boom")
        assert inv.status is InvocationStatus.FAILED
        assert inv.error == "boom"


class TestActionSpec:
    def test_for_profile_defaults(self, small_python_profile):
        spec = ActionSpec.for_profile(small_python_profile, "gh", tracker="uffd")
        assert spec.name == small_python_profile.name
        assert spec.mechanism == "gh"
        assert spec.mechanism_options == {"tracker": "uffd"}

    def test_name_required(self, small_python_profile):
        with pytest.raises(PlatformError):
            ActionSpec(name="", profile=small_python_profile)


class TestMetrics:
    def test_percentiles(self):
        samples = sorted(float(v) for v in range(1, 101))
        assert percentile(samples, 50) == pytest.approx(50.5)
        assert percentile(samples, 95) == pytest.approx(95.05)
        assert percentile(samples, 0) == 1.0
        assert percentile(samples, 100) == 100.0

    def test_percentile_single_sample(self):
        assert percentile([3.0], 75) == 3.0

    def test_percentile_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_latency_stats_from_samples(self):
        stats = summarize([1.0, 2.0, 3.0, 4.0])
        assert stats.count == 4
        assert stats.mean == pytest.approx(2.5)
        assert stats.median == pytest.approx(2.5)
        assert stats.minimum == 1.0 and stats.maximum == 4.0
        assert stats.cov > 0

    def test_latency_stats_empty_rejected(self):
        with pytest.raises(ValueError):
            LatencyStats.from_samples([])

    def test_collector_throughput_window(self):
        collector = MetricsCollector()
        for index in range(10):
            inv = Invocation(action="f", submitted_at=float(index))
            inv.mark_completed(float(index) + 0.5, {})
            collector.record(inv)
        assert collector.throughput(0.0, 10.0) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            collector.throughput(5.0, 5.0)

    def test_collector_separates_failures(self):
        collector = MetricsCollector()
        ok = Invocation(action="f")
        ok.mark_completed(1.0, {})
        bad = Invocation(action="f")
        bad.mark_failed(1.0, "err")
        collector.record(ok)
        collector.record(bad)
        assert collector.num_completed == 1
        assert len(collector.failed) == 1


class TestContainer:
    def test_initialize_then_execute(self, small_python_profile):
        container = Container(ActionSpec.for_profile(small_python_profile, "gh"))
        container.initialize()
        assert container.state is ContainerState.IDLE
        execution = container.execute(Invocation(action="f", payload=b"x", caller="a"))
        assert execution.invoker_seconds > 0
        assert execution.unavailable_seconds > 0
        assert container.requests_served == 1

    def test_execute_requires_initialization(self, small_python_profile):
        container = Container(ActionSpec.for_profile(small_python_profile, "base"))
        with pytest.raises(ContainerError):
            container.execute(Invocation(action="f"))

    def test_double_initialize_rejected(self, small_python_profile):
        container = Container(ActionSpec.for_profile(small_python_profile, "base"))
        container.initialize()
        with pytest.raises(ContainerError):
            container.initialize()

    def test_invoker_latency_includes_proxy_overhead(self, small_python_profile):
        container = Container(ActionSpec.for_profile(small_python_profile, "base"))
        container.initialize()
        execution = container.execute(Invocation(action="f", payload=b"x", caller="a"))
        assert execution.invoker_seconds > execution.report.critical_seconds

    def test_leak_probe(self, small_python_profile):
        container = Container(ActionSpec.for_profile(small_python_profile, "base"))
        container.initialize()
        container.execute(Invocation(action="f", payload=b"topsecret", caller="a"))
        assert b"topsecret" in container.read_request_buffer()


class TestInvoker:
    def _invoker(self, cores=1):
        return Invoker(EventLoop(), cores=cores)

    def test_deploy_and_submit(self, small_python_profile):
        invoker = self._invoker()
        invoker.deploy(ActionSpec.for_profile(small_python_profile, "base"))
        done = []
        invoker.submit(Invocation(action=small_python_profile.name, payload=b"x"), done.append)
        invoker.loop.run()
        assert len(done) == 1
        assert done[0].status is InvocationStatus.COMPLETED
        assert done[0].invoker_seconds > 0

    def test_unknown_action_rejected(self, small_python_profile):
        invoker = self._invoker()
        with pytest.raises(ActionNotFoundError):
            invoker.submit(Invocation(action="missing"), lambda inv: None)

    def test_duplicate_deploy_rejected(self, small_python_profile):
        invoker = self._invoker()
        spec = ActionSpec.for_profile(small_python_profile, "base")
        invoker.deploy(spec)
        with pytest.raises(PlatformError):
            invoker.deploy(spec)

    def test_single_core_serializes_requests(self, small_python_profile):
        invoker = self._invoker(cores=1)
        invoker.deploy(ActionSpec.for_profile(small_python_profile, "gh"), containers=1)
        finished = []
        for index in range(3):
            invoker.submit(
                Invocation(action=small_python_profile.name, payload=b"x", caller=f"c{index}"),
                finished.append,
            )
        invoker.loop.run()
        assert len(finished) == 3
        # Later requests wait for the container (queue time grows).
        assert finished[2].queue_seconds > finished[0].queue_seconds

    def test_multiple_containers_run_in_parallel(self, small_python_profile):
        invoker = self._invoker(cores=2)
        invoker.deploy(ActionSpec.for_profile(small_python_profile, "base"), containers=2)
        finished = []
        for index in range(2):
            invoker.submit(
                Invocation(action=small_python_profile.name, payload=b"x"), finished.append
            )
        invoker.loop.run()
        assert finished[0].queue_seconds == pytest.approx(0.0)
        assert finished[1].queue_seconds == pytest.approx(0.0)


class TestPlatformAndLoadgen:
    def test_invoke_sync_round_trip(self, small_python_profile):
        platform = FaaSPlatform(SimulationConfig(cores=1, containers_per_action=1))
        platform.deploy(ActionSpec.for_profile(small_python_profile, "gh"))
        invocation = platform.invoke_sync(small_python_profile.name, b"hello", caller="alice")
        assert invocation.status is InvocationStatus.COMPLETED
        assert invocation.response["ok"] is True
        assert invocation.e2e_seconds > invocation.invoker_seconds

    def test_unknown_action_raises(self, small_python_profile):
        platform = FaaSPlatform()
        with pytest.raises(ActionNotFoundError):
            platform.invoke_sync("nope")

    def test_closed_loop_client_runs_all_requests(self, small_python_profile):
        platform = FaaSPlatform(SimulationConfig(cores=1, containers_per_action=1))
        platform.deploy(ActionSpec.for_profile(small_python_profile, "gh"))
        client = ClosedLoopClient(
            platform, small_python_profile.name, num_requests=8, think_time_seconds=0.05
        )
        completed = client.run()
        assert len(completed) == 8
        metrics = platform.action_metrics(small_python_profile.name)
        assert metrics.num_completed == 8
        assert metrics.e2e_stats().median > 0

    def test_closed_loop_requires_positive_requests(self, small_python_profile):
        platform = FaaSPlatform()
        platform.deploy(ActionSpec.for_profile(small_python_profile, "base"))
        with pytest.raises(PlatformError):
            ClosedLoopClient(platform, small_python_profile.name, num_requests=0)

    def test_saturating_client_measures_throughput(self, small_python_profile):
        platform = FaaSPlatform(SimulationConfig(cores=2, containers_per_action=2))
        platform.deploy(ActionSpec.for_profile(small_python_profile, "base"))
        client = SaturatingClient(
            platform, small_python_profile.name, in_flight=8,
            duration_seconds=2.0, warmup_seconds=0.2,
        )
        throughput = client.run()
        assert throughput > 0
        # Two cores running a ~10 ms function cannot exceed ~200 req/s plus
        # slack; sanity-check the magnitude.
        assert throughput < 400

    def test_metrics_isolated_per_action(self, small_python_profile, small_c_profile):
        platform = FaaSPlatform(SimulationConfig(cores=1, containers_per_action=1))
        platform.deploy(ActionSpec.for_profile(small_python_profile, "base"))
        platform.deploy(ActionSpec.for_profile(small_c_profile, "base"))
        platform.invoke_sync(small_python_profile.name)
        platform.invoke_sync(small_c_profile.name)
        assert platform.action_metrics(small_python_profile.name).num_completed == 1
        assert platform.action_metrics(small_c_profile.name).num_completed == 1
        assert platform.metrics.num_completed == 2

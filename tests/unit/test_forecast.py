"""Tests for forecast-driven pre-warming: the demand forecaster, the
predictive planner, and their wiring into the control plane/cluster."""

from __future__ import annotations

import math

import pytest

from repro.config import SimulationConfig
from repro.errors import PlatformError
from repro.faas.action import ActionSpec
from repro.faas.cluster import FaaSCluster
from repro.faas.controlplane import (
    CapacityPlanner,
    DemandForecaster,
    PredictivePlanner,
)
from repro.faas.invoker import Invoker
from repro.faas.request import Invocation
from repro.sim.events import EventLoop


def _action(profile, name: str) -> ActionSpec:
    return ActionSpec.for_profile(profile, "base", name=name)


class TestDemandForecaster:
    def test_validation(self):
        with pytest.raises(PlatformError):
            DemandForecaster(alpha=0.0)
        with pytest.raises(PlatformError):
            DemandForecaster(beta=1.5)
        with pytest.raises(PlatformError):
            DemandForecaster(trend_damping=0.0)
        with pytest.raises(PlatformError):
            DemandForecaster(season_period_seconds=0.0)
        with pytest.raises(PlatformError):
            DemandForecaster(season_buckets=1)
        with pytest.raises(PlatformError):
            DemandForecaster(min_history_seconds=-1.0)

    def test_observation_validation(self):
        forecaster = DemandForecaster()
        with pytest.raises(PlatformError):
            forecaster.observe("a", -1.0, 1.0, 0.25)
        with pytest.raises(PlatformError):
            forecaster.observe("a", float("inf"), 1.0, 0.25)
        with pytest.raises(PlatformError):
            forecaster.observe("a", 1.0, 1.0, 0.0)

    def test_unknown_action_forecasts_zero(self):
        assert DemandForecaster().forecast("never-seen", 10.0) == 0.0

    def test_converges_on_a_constant_rate(self):
        forecaster = DemandForecaster()
        interval = 0.25
        for tick in range(1, 200):
            forecaster.observe("flat", 5.0 * interval, tick * interval, interval)
        now = 199 * interval
        assert forecaster.forecast("flat", now + 1.0) == pytest.approx(5.0, rel=0.05)

    def test_converges_on_a_step_load(self):
        """After a step the level re-converges and the trend dies out."""
        forecaster = DemandForecaster()
        interval = 0.25
        t = 0.0
        while t < 25.0:
            t += interval
            rate = 5.0 if t < 10.0 else 20.0
            forecaster.observe("step", rate * interval, t, interval)
        assert forecaster.forecast("step", t + 1.0) == pytest.approx(20.0, rel=0.1)
        assert abs(forecaster.snapshot("step")["trend"]) < 1.0

    def test_extrapolates_a_ramp_beyond_the_current_rate(self):
        """The Holt trend predicts *above* today's rate on a steady ramp."""
        forecaster = DemandForecaster()
        interval = 0.25
        t = 0.0
        while t < 10.0:
            t += interval
            forecaster.observe("ramp", (2.0 + 2.0 * t) * interval, t, interval)
        current = 2.0 + 2.0 * t
        prediction = forecaster.forecast("ramp", t + 1.0)
        assert prediction > 0.9 * current  # not lagging far behind
        level = forecaster.snapshot("ramp")["level"]
        assert prediction > level  # the trend term extrapolates forward

    def test_seasonal_forecast_beats_persistence_on_a_sinusoid(self):
        """With a declared period, forecasting t+1s across several cycles
        is more accurate than assuming the current rate persists."""
        period = 8.0
        interval = 0.25
        forecaster = DemandForecaster(season_period_seconds=period)

        def rate(at: float) -> float:
            return 10.0 * (1.0 + 0.6 * math.sin(2.0 * math.pi * at / period))

        t = 0.0
        forecast_error = persistence_error = 0.0
        samples = 0
        while t < 4 * period:
            t += interval
            forecaster.observe("wave", rate(t) * interval, t, interval)
            if t > 2 * period:
                target = t + 1.0
                forecast_error += abs(forecaster.forecast("wave", target) - rate(target))
                persistence_error += abs(rate(t) - rate(target))
                samples += 1
        assert samples > 0
        assert forecast_error < 0.6 * persistence_error
        # The level converged to the deseasonalised mean.
        assert forecaster.snapshot("wave")["level"] == pytest.approx(10.0, rel=0.1)

    def test_ready_requires_history(self):
        forecaster = DemandForecaster(min_history_seconds=2.0, min_observations=4)
        assert not forecaster.ready("a")
        forecaster.observe("a", 1.0, 0.0, 0.25)
        forecaster.observe("a", 1.0, 0.25, 0.25)
        assert not forecaster.ready("a")  # too few observations, too short
        for tick in range(2, 12):
            forecaster.observe("a", 1.0, tick * 0.25, 0.25)
        assert forecaster.ready("a")

    def test_forecasts_are_finite_and_non_negative_after_decay(self):
        """A crash to zero arrivals must never drive a forecast negative."""
        forecaster = DemandForecaster()
        interval = 0.25
        t = 0.0
        while t < 5.0:
            t += interval
            forecaster.observe("crash", 50.0 * interval, t, interval)
        while t < 10.0:
            t += interval
            forecaster.observe("crash", 0.0, t, interval)
        for horizon in (0.0, 0.5, 5.0, 500.0):
            value = forecaster.forecast("crash", t + horizon)
            assert math.isfinite(value)
            assert value >= 0.0

    def test_determinism(self):
        def build() -> DemandForecaster:
            forecaster = DemandForecaster(season_period_seconds=4.0)
            for tick in range(1, 60):
                forecaster.observe(
                    "d", (tick % 7) * 0.25, tick * 0.25, 0.25
                )
            return forecaster

        first, second = build(), build()
        for at in (15.0, 15.5, 20.0):
            assert first.forecast("d", at) == second.forecast("d", at)
        assert first.snapshot("d") == second.snapshot("d")


class TestPredictivePlanner:
    def _cluster(self, profile, *, invokers=3, cores=2):
        loop = EventLoop()
        built = []
        spec = _action(profile, "hot")
        for index in range(invokers):
            invoker = Invoker(loop, cores=cores, invoker_id=f"invoker-{index}")
            if index == 0:
                invoker.deploy(spec, containers=1, max_containers=cores)
            else:
                invoker.register(spec, max_containers=cores)
            built.append(invoker)
        return loop, built

    def _feed(self, planner, invokers, loop, *, rps=40.0, seconds=4.0,
              interval=0.25):
        """Drive a smooth arrival stream so the forecaster gains history.

        Arrivals are evenly spaced (no backlog bursts), so any seeding the
        planner does comes from the forecast, not from reactive pressure.
        """
        home = invokers[0]
        start = loop.now
        end = start + seconds
        gap = 1.0 / rps
        next_arrival = start + gap
        next_plan = start + interval
        while next_plan <= end:
            while next_arrival <= next_plan:
                loop.run(until=next_arrival)
                home.submit(
                    Invocation(action="hot", caller="t", submitted_at=loop.now),
                    lambda inv: None,
                )
                next_arrival += gap
            loop.run(until=next_plan)
            planner.plan(invokers, loop.now)
            next_plan += interval
        loop.run(until=end + 5.0)

    def test_validation(self):
        with pytest.raises(PlatformError):
            PredictivePlanner(4, horizon_margin_seconds=-1.0)
        with pytest.raises(PlatformError):
            PredictivePlanner(4, default_service_seconds=0.0)
        with pytest.raises(PlatformError):
            PredictivePlanner(4, target_utilization=0.0)
        planner = PredictivePlanner(4)
        with pytest.raises(PlatformError):
            planner.calibrate("a", boot_seconds=-1.0, service_seconds=0.1)
        with pytest.raises(PlatformError):
            planner.calibrate("a", boot_seconds=0.5, service_seconds=0.0)

    def test_lead_defaults_and_calibration(self):
        planner = PredictivePlanner(
            4, default_boot_seconds=0.4, horizon_margin_seconds=0.1
        )
        assert planner.lead_seconds("uncalibrated") == pytest.approx(0.5)
        planner.calibrate("hot", boot_seconds=0.8, service_seconds=0.02)
        assert planner.lead_seconds("hot") == pytest.approx(0.9)
        assert planner.service_seconds("hot") == pytest.approx(0.02)

    def test_seeds_ahead_of_demand_without_backlog(self, small_python_profile):
        """A sustained arrival rate seeds peers even with empty queues."""
        loop, invokers = self._cluster(small_python_profile)
        planner = PredictivePlanner(
            budget=8,
            forecaster=DemandForecaster(min_history_seconds=1.0),
        )
        planner.calibrate("hot", boot_seconds=0.3, service_seconds=0.05)
        self._feed(planner, invokers, loop)
        # Demand ~40 rps x 50 ms service / 0.7 target utilisation wants ~3
        # containers; the cluster started with one.  The planner seeded the
        # difference proactively — queues never reached queue_high.
        assert planner.predictive_seeds > 0
        assert sum(inv.prewarms for inv in invokers) > 0
        assert planner.forecast_stats()["forecast_ready_actions"] == 1

    def test_falls_back_to_reactive_with_short_history(self, small_python_profile):
        """With insufficient history the plans equal the reactive planner's."""

        def drive(planner):
            loop, invokers = self._cluster(small_python_profile)
            decisions = []
            home = invokers[0]
            for step in range(8):
                for _ in range(3):
                    home.submit(
                        Invocation(action="hot", caller="t", submitted_at=loop.now),
                        lambda inv: None,
                    )
                loop.run(max_events=20)
                decisions.extend(planner.plan(invokers, loop.now))
            return decisions

        never_ready = DemandForecaster(min_history_seconds=1e9)
        predictive = drive(PredictivePlanner(budget=6, forecaster=never_ready))
        reactive = drive(CapacityPlanner(budget=6))
        assert predictive == reactive

    def test_never_exceeds_budget_while_seeding(self, small_python_profile):
        loop, invokers = self._cluster(small_python_profile)
        budget = 3
        planner = PredictivePlanner(
            budget=budget,
            forecaster=DemandForecaster(min_history_seconds=0.5),
        )
        planner.calibrate("hot", boot_seconds=0.3, service_seconds=0.05)
        self._feed(planner, invokers, loop, rps=80.0)
        snapshots = [invoker.snapshot() for invoker in invokers]
        assert CapacityPlanner.total_containers(snapshots) <= budget

    def test_plan_determinism(self, small_python_profile):
        def history():
            loop, invokers = self._cluster(small_python_profile)
            planner = PredictivePlanner(
                budget=8, forecaster=DemandForecaster(min_history_seconds=1.0)
            )
            planner.calibrate("hot", boot_seconds=0.3, service_seconds=0.05)
            self._feed(planner, invokers, loop)
            return planner

        first, second = history(), history()
        assert first.decisions == second.decisions
        assert first.predictive_seeds == second.predictive_seeds

    def test_forecast_stats_shape(self):
        stats = PredictivePlanner(4).forecast_stats()
        assert set(stats) == {
            "predictive_seeds",
            "forecast_fallback_ticks",
            "forecast_tracked_actions",
            "forecast_ready_actions",
        }


class TestArrivalSurfaces:
    def test_snapshot_exports_arrival_totals(self, small_python_profile):
        loop = EventLoop()
        invoker = Invoker(loop, cores=1)
        invoker.register(_action(small_python_profile, "seen"), max_containers=1)
        assert invoker.snapshot().arrivals_total == {}
        for _ in range(3):
            invoker.submit(
                Invocation(action="seen", submitted_at=loop.now), lambda inv: None
            )
        assert invoker.snapshot().arrivals_total == {"seen": 3}
        assert invoker.arrivals_total("seen") == 3
        assert invoker.arrivals_total() == 3

    def test_recent_arrival_times_window(self, small_python_profile):
        loop = EventLoop()
        invoker = Invoker(loop, cores=1)
        invoker.register(_action(small_python_profile, "timed"), max_containers=1)
        for at in (0.5, 1.5, 2.5):
            loop.run(until=at)
            invoker.submit(
                Invocation(action="timed", submitted_at=loop.now), lambda inv: None
            )
        assert invoker.recent_arrival_times("timed") == [0.5, 1.5, 2.5]
        assert invoker.recent_arrival_times("timed", since=1.5) == [1.5, 2.5]

    def test_cluster_aggregates_arrivals(self, small_python_profile):
        cluster = FaaSCluster(SimulationConfig(cores=1, invokers=2, seed=5))
        cluster.deploy(_action(small_python_profile, "agg"))
        for _ in range(4):
            cluster.invoke_async("agg")
        # Arrivals register when the controller delivers them to invokers.
        cluster.run()
        assert cluster.arrivals_per_action() == {"agg": 4}
        times = cluster.recent_arrival_times("agg")
        assert len(times) == 4 and times == sorted(times)

    def test_cold_start_and_dispatch_times_recorded(self, small_python_profile):
        loop = EventLoop()
        invoker = Invoker(loop, cores=1)
        invoker.register(_action(small_python_profile, "cold"), max_containers=1)
        done = []
        invoker.submit(Invocation(action="cold", submitted_at=loop.now), done.append)
        loop.run(until=100.0)
        assert len(invoker.cold_start_times) == invoker.cold_starts == 1
        # The request waited on its own boot: one cold dispatch, after the
        # boot was requested.
        assert len(invoker.cold_dispatch_times) == 1
        assert invoker.cold_dispatch_times[0] >= invoker.cold_start_times[0]

    def test_can_prewarm_reflects_ceiling_and_raise(self, small_python_profile):
        loop = EventLoop()
        invoker = Invoker(loop, cores=2)
        invoker.register(_action(small_python_profile, "room"), max_containers=1)
        assert invoker.can_prewarm("room")
        invoker.prewarm("room")
        loop.run(until=100.0)
        # Ceiling 1 is full; only a ceiling raise (clamped at cores=2)
        # would admit another container.
        assert not invoker.can_prewarm("room")
        assert invoker.can_prewarm("room", raise_ceiling=True)
        invoker.scale_action("room", +1)
        invoker.prewarm("room")
        loop.run(until=200.0)
        # Both cores' worth of containers exist: not even a raise helps.
        assert not invoker.can_prewarm("room", raise_ceiling=True)


class TestDiurnalRisingWindows:
    def test_windows_cover_the_trough_to_peak_halves(self):
        from repro.analysis.experiments import diurnal_rising_windows

        assert diurnal_rising_windows(10.0, 4.0) == [(3.0, 5.0), (7.0, 9.0)]
        # skip_cycles=0 includes cycle 0's rising half, clipped at t=0.
        assert diurnal_rising_windows(10.0, 4.0, skip_cycles=0) == [
            (0.0, 1.0), (3.0, 5.0), (7.0, 9.0),
        ]
        # The final window clips at the run's end.
        assert diurnal_rising_windows(8.0, 4.0) == [(3.0, 5.0), (7.0, 8.0)]
        with pytest.raises(ValueError):
            diurnal_rising_windows(0.0, 4.0)
        with pytest.raises(ValueError):
            diurnal_rising_windows(10.0, 4.0, skip_cycles=-1)


class TestControlPlaneForecastWiring:
    def test_config_selects_the_predictive_planner(self, small_python_profile):
        cluster = FaaSCluster(
            SimulationConfig(
                cores=1, invokers=2, control_plane=True, planner="predictive",
                forecast_period_seconds=4.0, seed=3,
            )
        )
        assert isinstance(cluster.control_plane.planner, PredictivePlanner)
        forecaster = cluster.control_plane.planner.forecaster
        assert forecaster.season_period_seconds == 4.0
        stats = cluster.control_plane_stats()
        assert stats["planner"] == "predictive"
        assert "predictive_seeds" in stats

    def test_reactive_remains_the_default(self):
        cluster = FaaSCluster(SimulationConfig(control_plane=True))
        assert not isinstance(cluster.control_plane.planner, PredictivePlanner)
        assert cluster.control_plane_stats()["planner"] == "reactive"

    def test_deploy_calibrates_the_predictive_planner(self, small_python_profile):
        cluster = FaaSCluster(
            SimulationConfig(cores=1, invokers=2, control_plane=True,
                             planner="predictive", seed=3)
        )
        planner = cluster.control_plane.planner
        cluster.deploy(_action(small_python_profile, "cal"))
        # The measured boot time became the forecast lead for the action.
        assert planner.lead_seconds("cal") != planner.lead_seconds("other")
        assert planner.lead_seconds("cal") > 0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SimulationConfig(planner="nope")
        with pytest.raises(ValueError):
            SimulationConfig(planner="predictive")  # needs control_plane
        with pytest.raises(ValueError):
            # A declared season period without the predictive planner (the
            # only consumer) would be silently dead configuration — refuse
            # it loudly instead.
            SimulationConfig(forecast_period_seconds=4.0)
        with pytest.raises(ValueError):
            SimulationConfig(control_plane=True, forecast_period_seconds=4.0)
        with pytest.raises(ValueError):
            SimulationConfig(
                control_plane=True, planner="predictive",
                forecast_period_seconds=0.0,
            )
        with pytest.raises(ValueError):
            SimulationConfig(
                control_plane=True, forecast_min_history_seconds=-1.0
            )
        with pytest.raises(ValueError):
            SimulationConfig(
                control_plane=True, forecast_horizon_margin_seconds=-0.5
            )

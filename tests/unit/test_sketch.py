"""Unit tests for the streaming sketch primitives (``repro.faas.sketch``).

The sketch is the foundation of the bounded metrics mode: percentile
queries must stay inside the documented relative value-error bound,
moments must be *exact* (Welford/Chan, not approximations), and merging
two sketches must be lossless — identical to sketching the concatenated
stream.  Everything here is deterministic; the randomised/adversarial
exploration lives in ``tests/property/test_prop_sketch.py``.
"""

from __future__ import annotations

import math
import pickle
import random
import statistics

import pytest

from repro.faas.metrics import LatencyStats, percentile, summarize
from repro.faas.sketch import (
    DEFAULT_MAX_BINS,
    DEFAULT_RELATIVE_ACCURACY,
    LatencySketch,
    QuantileSketch,
    StreamingMoments,
    merged,
)


class TestStreamingMoments:
    def test_matches_batch_statistics(self):
        rng = random.Random(7)
        samples = [rng.expovariate(10.0) for _ in range(500)]
        moments = StreamingMoments()
        for sample in samples:
            moments.add(sample)
        assert moments.count == len(samples)
        assert moments.mean == pytest.approx(statistics.fmean(samples))
        assert moments.std == pytest.approx(statistics.pstdev(samples))
        assert moments.minimum == min(samples)
        assert moments.maximum == max(samples)

    def test_merge_equals_single_stream(self):
        rng = random.Random(11)
        left = [rng.random() for _ in range(100)]
        right = [rng.random() * 10 for _ in range(37)]
        a, b, both = StreamingMoments(), StreamingMoments(), StreamingMoments()
        for sample in left:
            a.add(sample)
            both.add(sample)
        for sample in right:
            b.add(sample)
            both.add(sample)
        a.merge(b)
        assert a.count == both.count
        assert a.mean == pytest.approx(both.mean)
        assert a.std == pytest.approx(both.std)
        assert a.minimum == both.minimum
        assert a.maximum == both.maximum

    def test_merge_into_empty_and_with_empty(self):
        filled = StreamingMoments()
        for sample in (1.0, 2.0, 3.0):
            filled.add(sample)
        empty = StreamingMoments()
        empty.merge(filled)
        assert empty == filled
        before = pickle.loads(pickle.dumps(filled))
        filled.merge(StreamingMoments())
        assert filled == before

    def test_empty_moments(self):
        moments = StreamingMoments()
        assert moments.count == 0
        assert moments.variance == 0.0
        assert moments.std == 0.0


class TestQuantileSketch:
    def test_quantile_within_relative_accuracy(self):
        rng = random.Random(3)
        samples = sorted(rng.lognormvariate(-3.5, 1.0) for _ in range(2000))
        sketch = QuantileSketch()
        for sample in samples:
            sketch.add(sample)
        for pct in (1, 10, 25, 50, 75, 90, 95, 99, 99.9):
            rank = min(len(samples) - 1, int(pct / 100 * (len(samples) - 1) + 0.5))
            exact = samples[rank]
            estimate = sketch.quantile(pct)
            assert abs(estimate - exact) <= DEFAULT_RELATIVE_ACCURACY * exact * 1.0001

    def test_extremes_hit_min_and_max_buckets(self):
        sketch = QuantileSketch()
        for sample in (0.001, 0.002, 0.004, 1.5):
            sketch.add(sample)
        assert sketch.quantile(0) == pytest.approx(0.001, rel=0.01)
        assert sketch.quantile(100) == pytest.approx(1.5, rel=0.01)

    def test_zero_and_tiny_values_use_the_zero_bucket(self):
        sketch = QuantileSketch()
        sketch.add(0.0)
        sketch.add(0.0)
        sketch.add(1.0)
        assert sketch.count == 3
        assert sketch.quantile(0) == 0.0
        assert sketch.quantile(100) == pytest.approx(1.0, rel=0.01)

    def test_rejects_negative_and_nan(self):
        sketch = QuantileSketch()
        with pytest.raises(ValueError):
            sketch.add(-0.5)
        with pytest.raises(ValueError):
            sketch.add(float("nan"))

    def test_rejects_bad_accuracy(self):
        with pytest.raises(ValueError):
            QuantileSketch(relative_accuracy=0.0)
        with pytest.raises(ValueError):
            QuantileSketch(relative_accuracy=1.0)

    def test_empty_quantile_raises(self):
        with pytest.raises(ValueError):
            QuantileSketch().quantile(50)

    def test_merge_is_lossless(self):
        rng = random.Random(5)
        left = [rng.expovariate(1.0) for _ in range(400)]
        right = [rng.expovariate(100.0) for _ in range(300)]
        a, b, both = QuantileSketch(), QuantileSketch(), QuantileSketch()
        for sample in left:
            a.add(sample)
            both.add(sample)
        for sample in right:
            b.add(sample)
            both.add(sample)
        a.merge(b)
        assert a == both

    def test_merge_rejects_mismatched_accuracy(self):
        with pytest.raises(ValueError):
            QuantileSketch(relative_accuracy=0.005).merge(
                QuantileSketch(relative_accuracy=0.01)
            )

    def test_bin_cap_collapses_lowest_buckets(self):
        # Samples spanning many orders of magnitude overflow a tiny bin
        # budget; the sketch folds the *lowest* bins together so the tail
        # (what SLOs look at) keeps full resolution.
        sketch = QuantileSketch(max_bins=16)
        for exponent in range(64):
            sketch.add(1.5 ** (exponent - 32))
        assert len(sketch._bins) <= 16
        assert sketch.count == 64
        top = 1.5 ** 31
        assert sketch.quantile(100) == pytest.approx(top, rel=DEFAULT_RELATIVE_ACCURACY * 2)

    def test_memory_is_bounded_by_value_range_not_count(self):
        sketch = QuantileSketch()
        rng = random.Random(9)
        for _ in range(50_000):
            sketch.add(0.020 + rng.random() * 0.020)  # 20-40 ms latencies
        # log-bucketed: a 2x value range at 0.5 % accuracy is ~70 buckets.
        assert len(sketch._bins) < 100
        assert sketch.count == 50_000


class TestLatencySketch:
    def test_stats_shape_and_exact_fields(self):
        rng = random.Random(13)
        samples = [rng.uniform(0.010, 0.200) for _ in range(1500)]
        sketch = LatencySketch()
        sketch.extend(samples)
        stats = sketch.stats()
        exact = summarize(samples)
        assert isinstance(stats, LatencyStats)
        # count/mean/std/min/max are exact by construction.
        assert stats.count == exact.count
        assert stats.mean == pytest.approx(exact.mean)
        assert stats.std == pytest.approx(exact.std)
        assert stats.minimum == exact.minimum
        assert stats.maximum == exact.maximum
        # Percentiles carry the documented relative bound.
        for name in ("p10", "p25", "median", "p75", "p90", "p95", "p99"):
            got = getattr(stats, name)
            want = getattr(exact, name)
            assert abs(got - want) <= DEFAULT_RELATIVE_ACCURACY * want * 1.0001

    def test_percentiles_clamped_to_observed_envelope(self):
        sketch = LatencySketch()
        sketch.add(0.5)
        stats = sketch.stats()
        assert stats.minimum == stats.maximum == 0.5
        assert stats.median == 0.5
        assert stats.p99 == 0.5

    def test_empty_stats_raises(self):
        with pytest.raises(ValueError):
            LatencySketch().stats()

    def test_merge_matches_concatenation(self):
        rng = random.Random(17)
        left = [rng.expovariate(30.0) for _ in range(200)]
        right = [rng.expovariate(5.0) for _ in range(90)]
        a, b, both = LatencySketch(), LatencySketch(), LatencySketch()
        a.extend(left)
        b.extend(right)
        both.extend(left + right)
        a.merge(b)
        # Bucket counts merge losslessly (integer arithmetic) ...
        assert a.quantiles == both.quantiles
        # ... while Chan-merged moments agree with the one-pass stream up
        # to float round-off (means/variances are not associative in fp).
        assert a.moments.count == both.moments.count
        assert a.moments.mean == pytest.approx(both.moments.mean)
        assert a.moments.std == pytest.approx(both.moments.std)
        assert a.moments.minimum == both.moments.minimum
        assert a.moments.maximum == both.moments.maximum

    def test_merged_helper(self):
        sketches = []
        for offset in range(3):
            sketch = LatencySketch()
            sketch.extend([0.01 * (offset + 1)] * 10)
            sketches.append(sketch)
        pooled = merged(sketches)
        assert pooled is not None
        assert pooled.count == 30
        assert merged([]) is None

    def test_round_trips_through_pickle(self):
        # The multi-seed fan-out ships sketches across process boundaries.
        sketch = LatencySketch()
        sketch.extend([0.001, 0.030, 2.5])
        clone = pickle.loads(pickle.dumps(sketch))
        assert clone == sketch
        assert clone.stats() == sketch.stats()

    def test_rank_convention_matches_metrics_percentile(self):
        # Degenerate single-bucket streams reproduce percentile() exactly.
        samples = [0.042] * 101
        sketch = LatencySketch()
        sketch.extend(samples)
        assert sketch.stats().p99 == pytest.approx(percentile(samples, 99), rel=1e-9)

"""Tests for the isolation mechanisms (policy layer + baselines)."""

from __future__ import annotations

import random

import pytest

from repro.baselines.registry import MECHANISMS, create_mechanism, mechanism_class, supported_mechanisms
from repro.core.policy import GroundhogMechanism, GroundhogNopMechanism
from repro.errors import IsolationError
from repro.runtime.profiles import Language


ISOLATING = ("gh", "fork", "faasm", "cold", "criu")
NON_ISOLATING = ("base", "gh-nop")


def _mechanism(name, profile, **kwargs):
    return create_mechanism(name, profile, rng=random.Random(7), **kwargs)


class TestRegistry:
    def test_all_expected_configurations_registered(self):
        assert set(MECHANISMS) == {"base", "gh", "gh-nop", "fork", "faasm", "cold", "criu"}

    def test_unknown_configuration_rejected(self):
        with pytest.raises(IsolationError):
            mechanism_class("vmm")

    def test_isolation_flags(self):
        for name in ISOLATING:
            assert mechanism_class(name).provides_isolation, name
        for name in NON_ISOLATING:
            assert not mechanism_class(name).provides_isolation, name

    def test_supported_mechanisms_for_node(self, small_node_profile):
        supported = supported_mechanisms(small_node_profile)
        assert "fork" not in supported
        assert "faasm" not in supported
        assert "gh" in supported and "base" in supported

    def test_supported_mechanisms_for_python(self, small_python_profile):
        supported = supported_mechanisms(small_python_profile)
        assert set(ISOLATING) <= set(supported) | {"faasm"}
        assert "fork" in supported


class TestInitialization:
    @pytest.mark.parametrize("name", list(MECHANISMS))
    def test_initialize_reports_lifecycle_phases(self, name, small_python_profile):
        mech = _mechanism(name, small_python_profile)
        init = mech.initialize()
        assert init.container_create_seconds > 0
        assert init.boot_seconds > 0
        assert init.warm_seconds > 0
        assert init.total_seconds == pytest.approx(
            init.container_create_seconds + init.boot_seconds
            + init.warm_seconds + init.prepare_seconds
        )
        assert init.mapped_pages > 0

    def test_double_initialize_rejected(self, small_python_profile):
        mech = _mechanism("base", small_python_profile)
        mech.initialize()
        with pytest.raises(IsolationError):
            mech.initialize()

    def test_invoke_before_initialize_rejected(self, small_python_profile):
        mech = _mechanism("gh", small_python_profile)
        with pytest.raises(IsolationError):
            mech.invoke(b"x")

    def test_fork_refuses_node(self, small_node_profile):
        mech = _mechanism("fork", small_node_profile)
        with pytest.raises(IsolationError):
            mech.initialize()

    def test_snapshot_mechanisms_report_prepare_cost(self, small_python_profile):
        for name in ("gh", "gh-nop", "faasm", "criu"):
            mech = _mechanism(name, small_python_profile)
            init = mech.initialize()
            assert init.prepare_seconds > 0, name
            assert init.snapshot_pages > 0, name

    def test_base_has_no_prepare_cost(self, small_python_profile):
        init = _mechanism("base", small_python_profile).initialize()
        assert init.prepare_seconds == 0.0


class TestIsolationProperty:
    @pytest.mark.parametrize("name", ISOLATING)
    def test_isolating_mechanisms_prevent_leaks(self, name, small_python_profile):
        mech = _mechanism(name, small_python_profile)
        if not mech.supports(small_python_profile):
            pytest.skip(f"{name} does not support this profile")
        mech.initialize()
        mech.invoke(b"alice-secret", "r1", caller="alice")
        second = mech.invoke(b"bob-request", "r2", caller="bob")
        assert b"alice-secret" not in second.result.residual

    @pytest.mark.parametrize("name", NON_ISOLATING)
    def test_non_isolating_mechanisms_leak(self, name, small_python_profile):
        mech = _mechanism(name, small_python_profile)
        mech.initialize()
        mech.invoke(b"alice-secret", "r1", caller="alice")
        second = mech.invoke(b"bob-request", "r2", caller="bob")
        assert b"alice-secret" in second.result.residual

    def test_gh_isolates_node_functions(self, small_node_profile):
        mech = _mechanism("gh", small_node_profile)
        mech.initialize()
        mech.invoke(b"alice-secret", "r1", caller="alice")
        second = mech.invoke(b"bob-request", "r2", caller="bob")
        assert b"alice-secret" not in second.result.residual

    def test_gh_verified_restores(self, small_python_profile):
        mech = _mechanism("gh", small_python_profile, verify_restores=True)
        mech.initialize()
        for index in range(4):
            report = mech.invoke(f"secret-{index}".encode(), f"r{index}", caller=f"c{index}")
            assert report.restore is not None and report.restore.verified

    def test_gh_skip_rollback_for_same_caller(self, small_python_profile):
        mech = _mechanism("gh", small_python_profile, skip_rollback_for_same_caller=True)
        mech.initialize()
        mech.invoke(b"alice-1", "r1", caller="alice")
        # Same caller again: no rollback happened, Alice may see her own
        # earlier data, and no restoration cost was paid.
        same = mech.invoke(b"alice-2", "r2", caller="alice")
        assert same.post_skipped
        assert same.pre_seconds == 0.0 and same.post_seconds == 0.0
        assert b"alice-1" in same.result.residual
        # Caller change: the deferred rollback happens before Bob's request
        # runs (paid on its critical path), so Bob sees nothing of Alice.
        different = mech.invoke(b"bob-1", "r3", caller="bob")
        assert different.pre_seconds > 0.0
        assert b"alice" not in different.result.residual

    def test_gh_nop_never_restores(self, small_python_profile):
        mech = _mechanism("gh-nop", small_python_profile)
        mech.initialize()
        for index in range(3):
            report = mech.invoke(b"x", f"r{index}", caller=f"c{index}")
            assert report.restore is None
            assert report.post_seconds == 0.0


class TestCostShape:
    def test_gh_critical_overhead_small_relative_to_base(self, small_python_profile):
        base = _mechanism("base", small_python_profile)
        base.initialize()
        gh = _mechanism("gh", small_python_profile)
        gh.initialize()
        base_crit = base.invoke(b"x", "r1", caller="a").critical_seconds
        gh.invoke(b"x", "r1", caller="a")
        gh_crit = gh.invoke(b"x", "r2", caller="b").critical_seconds
        # Groundhog adds interposition + soft-dirty faults but stays within a
        # modest factor of the baseline for a 10 ms function.
        assert gh_crit < base_crit * 1.6

    def test_gh_restoration_off_critical_path(self, small_python_profile):
        gh = _mechanism("gh", small_python_profile)
        gh.initialize()
        report = gh.invoke(b"x", "r1", caller="a")
        assert report.post_seconds > 0
        assert report.restore is not None
        assert report.post_seconds == pytest.approx(report.restore.total_seconds)

    def test_fork_pre_invoke_cost_on_critical_path(self, small_python_profile):
        fork = _mechanism("fork", small_python_profile)
        fork.initialize()
        report = fork.invoke(b"x", "r1", caller="a")
        assert report.pre_seconds > 0

    def test_fork_cow_faults_cost_more_than_gh_sd_faults(self, small_c_profile):
        profile = small_c_profile
        fork = _mechanism("fork", profile)
        fork.initialize()
        gh = _mechanism("gh", profile)
        gh.initialize()
        gh.invoke(b"x", "w", caller="a")  # arm tracking effects
        fork_faults = fork.invoke(b"x", "r1", caller="a").result.fault_seconds
        gh_faults = gh.invoke(b"x", "r2", caller="b").result.fault_seconds
        assert fork_faults > gh_faults

    def test_faasm_reset_cheap_and_mostly_size_independent(self, small_python_profile):
        faasm = _mechanism("faasm", small_python_profile)
        faasm.initialize()
        report = faasm.invoke(b"x", "r1", caller="a")
        assert report.post_seconds < 0.01

    def test_faasm_python_executes_slower_than_native(self, small_python_profile):
        base = _mechanism("base", small_python_profile)
        base.initialize()
        faasm = _mechanism("faasm", small_python_profile)
        faasm.initialize()
        base_busy = base.invoke(b"x", "r1", caller="a").result.compute_seconds
        faasm_busy = faasm.invoke(b"x", "r1", caller="a").result.compute_seconds
        assert faasm_busy > base_busy

    def test_coldstart_turnaround_dwarfs_gh_restore(self, small_c_profile):
        gh = _mechanism("gh", small_c_profile)
        gh.initialize()
        cold = _mechanism("cold", small_c_profile)
        cold.initialize()
        gh_post = gh.invoke(b"x", "r1", caller="a").post_seconds
        cold_post = cold.invoke(b"x", "r1", caller="a").post_seconds
        assert cold_post > 50 * gh_post

    def test_criu_restore_orders_of_magnitude_slower_than_gh(self, small_python_profile):
        gh = _mechanism("gh", small_python_profile)
        gh.initialize()
        criu = _mechanism("criu", small_python_profile)
        criu.initialize()
        gh_post = gh.invoke(b"x", "r1", caller="a").post_seconds
        criu_post = criu.invoke(b"x", "r1", caller="a").post_seconds
        assert criu_post > 20 * gh_post

    def test_gh_uffd_tracker_slower_in_function_for_large_write_sets(self, small_python_profile):
        sd = _mechanism("gh", small_python_profile, tracker="soft-dirty")
        sd.initialize()
        uffd = _mechanism("gh", small_python_profile, tracker="uffd")
        uffd.initialize()
        sd.invoke(b"x", "w1", caller="a")
        uffd.invoke(b"x", "w1", caller="a")
        sd_fault = sd.invoke(b"x", "r", caller="b").result.fault_seconds
        uffd_fault = uffd.invoke(b"x", "r", caller="b").result.fault_seconds
        assert uffd_fault > sd_fault

    def test_leaky_function_slows_down_under_base_not_under_gh(self, leaky_profile):
        base = _mechanism("base", leaky_profile)
        base.initialize()
        gh = _mechanism("gh", leaky_profile)
        gh.initialize()
        for index in range(8):
            base_report = base.invoke(b"x", f"b{index}", caller=f"c{index}")
            gh_report = gh.invoke(b"x", f"g{index}", caller=f"c{index}")
        assert base_report.result.compute_seconds > gh_report.result.compute_seconds

"""Tests for the cluster control plane: SLO monitoring, AIMD tuning,
capacity planning, and the loop's wiring into the cluster."""

from __future__ import annotations

import pytest

from repro.config import SimulationConfig
from repro.errors import PlatformError
from repro.faas.action import ActionSpec
from repro.faas.admission import TenantQuotas
from repro.faas.cluster import FaaSCluster
from repro.faas.container import ContainerState
from repro.faas.controlplane import (
    CapacityPlanner,
    ControlPlane,
    QuotaTuner,
    SLOMonitor,
    TenantSLO,
    TenantSLOStatus,
)
from repro.faas.invoker import Invoker
from repro.faas.metrics import MetricsCollector
from repro.faas.request import Invocation, InvocationStatus
from repro.runtime.profiles import FunctionProfile
from repro.sim.events import EventLoop


def _action(profile: FunctionProfile, name: str, mechanism: str = "base") -> ActionSpec:
    return ActionSpec.for_profile(profile, mechanism, name=name)


def _finished(caller: str, at: float, *, status=InvocationStatus.COMPLETED,
              latency: float = 0.010) -> Invocation:
    inv = Invocation(action="act", caller=caller, submitted_at=at - latency)
    if status is InvocationStatus.COMPLETED:
        inv.mark_completed(at, {})
    elif status is InvocationStatus.REJECTED:
        inv.mark_rejected(at)
    else:
        inv.mark_throttled(at)
    return inv


def _status(tenant: str, *, slo=None, p99_ms=None, goodput=1.0,
            demand_rps=0.0, violated=False) -> TenantSLOStatus:
    return TenantSLOStatus(
        tenant=tenant, slo=slo, window_seconds=2.0,
        completed=int(demand_rps * 2), rejected=0, throttled=0,
        p99_ms=p99_ms, goodput=goodput, demand_rps=demand_rps,
        latency_violated=violated, goodput_violated=False,
    )


class TestMetricsWindow:
    def test_window_restricts_to_finish_times(self):
        metrics = MetricsCollector()
        for at in (1.0, 2.0, 3.0, 4.0):
            metrics.record(_finished("t", at))
        assert metrics.window(2.0, 3.0).num_completed == 2
        assert metrics.window(3.5).num_completed == 1
        assert metrics.num_completed == 4  # the source is untouched

    def test_window_keeps_all_outcome_kinds(self):
        metrics = MetricsCollector()
        metrics.record(_finished("t", 1.0))
        metrics.record(_finished("t", 1.1, status=InvocationStatus.REJECTED))
        metrics.record(_finished("t", 1.2, status=InvocationStatus.THROTTLED))
        clipped = metrics.window(0.0, 2.0)
        assert clipped.num_recorded == 3
        assert clipped.num_rejected == 1
        assert clipped.num_throttled == 1

    def test_by_caller_supports_windowing(self):
        metrics = MetricsCollector()
        metrics.record(_finished("old", 1.0))
        metrics.record(_finished("new", 5.0))
        recent = metrics.by_caller(since=4.0)
        assert set(recent) == {"new"}
        everyone = metrics.by_caller()
        assert set(everyone) == {"old", "new"}


class TestTenantSLO:
    def test_validation(self):
        with pytest.raises(PlatformError):
            TenantSLO(p99_ms=0.0)
        with pytest.raises(PlatformError):
            TenantSLO(p99_ms=10.0, min_goodput=1.5)
        with pytest.raises(PlatformError):
            TenantSLO()  # no objective at all
        TenantSLO(p99_ms=10.0)
        TenantSLO(min_goodput=0.5)


class TestSLOMonitor:
    def test_scores_only_the_recent_window(self):
        metrics = MetricsCollector()
        # An old, terrible sample followed by recent good ones.
        metrics.record(_finished("t", 1.0, latency=5.0))
        for at in (9.0, 9.2, 9.4):
            metrics.record(_finished("t", at, latency=0.010))
        monitor = SLOMonitor({"t": TenantSLO(p99_ms=100.0)}, window_seconds=2.0)
        status = monitor.assess(metrics, now=10.0)["t"]
        assert status.completed == 3  # the old spike aged out
        assert status.p99_ms is not None and status.p99_ms < 100.0
        assert not status.violated
        # Over the whole run the lifetime p99 would still be violating.
        assert metrics.e2e_stats().p99 * 1000 > 100.0

    def test_flags_latency_and_goodput_violations(self):
        metrics = MetricsCollector()
        metrics.record(_finished("t", 9.0, latency=0.500))
        metrics.record(_finished("t", 9.1, status=InvocationStatus.REJECTED))
        monitor = SLOMonitor(
            {"t": TenantSLO(p99_ms=100.0, min_goodput=0.9)}, window_seconds=2.0
        )
        status = monitor.assess(metrics, now=10.0)["t"]
        assert status.latency_violated
        assert status.goodput_violated
        assert status.violated

    def test_reports_demand_of_tenants_without_slo(self):
        metrics = MetricsCollector()
        for at in (9.0, 9.5):
            metrics.record(_finished("noisy", at))
        monitor = SLOMonitor({"quiet": TenantSLO(p99_ms=50.0)}, window_seconds=2.0)
        statuses = monitor.assess(metrics, now=10.0)
        assert statuses["noisy"].slo is None
        assert not statuses["noisy"].violated
        assert statuses["noisy"].demand_rps == pytest.approx(1.0)
        # The declared-but-idle tenant is present and unviolated.
        assert statuses["quiet"].completed == 0
        assert not statuses["quiet"].violated

    def test_starved_tenant_with_queued_work_is_violating(self):
        # A tenant whose requests are all stuck queued finishes nothing in
        # the window — that must read as a violation, not as compliance.
        metrics = MetricsCollector()
        monitor = SLOMonitor({"t": TenantSLO(p99_ms=50.0)}, window_seconds=2.0)
        starving = monitor.assess(metrics, now=10.0, queued_by_tenant={"t": 5})
        assert starving["t"].violated
        # Without queued work an empty window is just idleness.
        idle = monitor.assess(metrics, now=10.0, queued_by_tenant={})
        assert not idle["t"].violated

    def test_validation(self):
        with pytest.raises(PlatformError):
            SLOMonitor(window_seconds=0.0)


class TestQuotaTunerAIMD:
    """AIMD convergence: the violating tenant is throttled down
    multiplicatively, and recovers additively once the SLO holds."""

    def _tuner(self, **overrides) -> QuotaTuner:
        defaults = dict(cut_hold_ticks=1, raise_hold_ticks=1)
        defaults.update(overrides)
        return QuotaTuner(**defaults)

    def test_offender_is_cut_multiplicatively(self):
        tuner = self._tuner()
        quotas = TenantQuotas(1e9)
        slo = TenantSLO(p99_ms=50.0)
        statuses = {
            "victim": _status("victim", slo=slo, p99_ms=400.0, violated=True,
                              demand_rps=10.0),
            "offender": _status("offender", demand_rps=500.0),
        }
        tuner.apply(statuses, quotas=quotas)
        first = tuner.rate_for("offender")
        assert first == pytest.approx(250.0)  # demand * 0.5
        tuner.apply(statuses, quotas=quotas)
        assert tuner.rate_for("offender") == pytest.approx(125.0)
        assert quotas.rate("offender") == pytest.approx(125.0)
        # The victim is never the one throttled.
        assert tuner.rate_for("victim") is None
        assert tuner.rate_cuts == 2

    def test_compliant_tenant_recovers_additively_to_its_demand(self):
        tuner = self._tuner(increase_fraction=0.1)
        quotas = TenantQuotas(1e9)
        slo = TenantSLO(p99_ms=50.0)
        violating = {
            "victim": _status("victim", slo=slo, p99_ms=400.0, violated=True),
            "offender": _status("offender", demand_rps=100.0),
        }
        tuner.apply(violating, quotas=quotas)
        assert tuner.rate_for("offender") == pytest.approx(50.0)
        clean = {
            "victim": _status("victim", slo=slo, p99_ms=10.0),
            "offender": _status("offender", demand_rps=100.0),
        }
        rates = []
        for _ in range(10):
            tuner.apply(clean, quotas=quotas)
            rates.append(quotas.rate("offender"))
        # Strictly increasing by the additive step (10% of the anchor)...
        assert rates[:4] == [
            pytest.approx(60.0), pytest.approx(70.0), pytest.approx(80.0),
            pytest.approx(90.0),
        ]
        # ...until the rate reaches the demand the tenant showed when
        # first cut, at which point the override is *cleared* — the
        # tenant is genuinely unlimited again, not capped at its anchor
        # forever (its quota reverts to the permissive default).
        assert rates[4] == quotas.rate_rps
        assert tuner.rate_for("offender") is None
        assert quotas.burst_for("offender") == quotas.burst

    def test_cut_hold_prevents_cascades(self):
        tuner = self._tuner(cut_hold_ticks=4)
        quotas = TenantQuotas(1e9)
        slo = TenantSLO(p99_ms=50.0)
        statuses = {
            "victim": _status("victim", slo=slo, p99_ms=400.0, violated=True),
            "offender": _status("offender", demand_rps=100.0),
        }
        for _ in range(4):
            tuner.apply(statuses, quotas=quotas)
        # Four violated ticks, but only the first one cut (hold = 4).
        assert tuner.rate_cuts == 1
        tuner.apply(statuses, quotas=quotas)
        assert tuner.rate_cuts == 2

    def test_raise_hold_requires_a_clean_streak(self):
        tuner = self._tuner(raise_hold_ticks=3)
        quotas = TenantQuotas(1e9)
        slo = TenantSLO(p99_ms=50.0)
        violating = {
            "victim": _status("victim", slo=slo, p99_ms=400.0, violated=True),
            "offender": _status("offender", demand_rps=100.0),
        }
        clean = {
            "victim": _status("victim", slo=slo, p99_ms=10.0),
            "offender": _status("offender", demand_rps=100.0),
        }
        tuner.apply(violating, quotas=quotas)
        tuner.apply(clean, quotas=quotas)
        tuner.apply(clean, quotas=quotas)
        assert tuner.rate_raises == 0
        tuner.apply(clean, quotas=quotas)  # third consecutive clean tick
        assert tuner.rate_raises == 1

    def test_weights_boost_on_violation_and_decay_when_clean(self):
        tuner = self._tuner()
        applied = []
        slo = TenantSLO(p99_ms=50.0)
        violating = {
            "victim": _status("victim", slo=slo, p99_ms=400.0, violated=True),
            "offender": _status("offender", demand_rps=100.0),
        }
        clean = {
            "victim": _status("victim", slo=slo, p99_ms=10.0),
            "offender": _status("offender", demand_rps=100.0),
        }
        actuate = lambda tenant, weight: applied.append((tenant, weight))
        tuner.apply(violating, weights=actuate)
        tuner.apply(violating, weights=actuate)
        assert tuner.weight_for("victim") == 4.0
        for _ in range(2):
            tuner.apply(clean, weights=actuate)
        assert tuner.weight_for("victim") == 1.0
        assert ("victim", 2.0) in applied and ("victim", 4.0) in applied

    def test_no_offender_means_no_cut(self):
        tuner = self._tuner()
        quotas = TenantQuotas(1e9)
        slo = TenantSLO(p99_ms=50.0)
        # Every active tenant is itself violating: a capacity problem,
        # not a fairness one — throttling the victims would not help.
        statuses = {
            "a": _status("a", slo=slo, p99_ms=400.0, violated=True,
                         demand_rps=10.0),
        }
        actions = tuner.apply(statuses, quotas=quotas)
        # The victim's weight may still be boosted, but nobody is cut.
        assert not any(action.startswith("cut:") for action in actions)
        assert tuner.rate_cuts == 0
        assert tuner.rate_for("a") is None

    def test_validation(self):
        with pytest.raises(PlatformError):
            QuotaTuner(decrease_factor=1.0)
        with pytest.raises(PlatformError):
            QuotaTuner(increase_fraction=0.0)
        with pytest.raises(PlatformError):
            QuotaTuner(min_rps=0.0)
        with pytest.raises(PlatformError):
            QuotaTuner(weight_boost=1.0)
        with pytest.raises(PlatformError):
            QuotaTuner(cut_hold_ticks=0)


class TestPrewarmAndDrain:
    def test_prewarm_boots_a_dynamic_container(self, small_python_profile):
        loop = EventLoop()
        invoker = Invoker(loop, cores=2)
        invoker.register(_action(small_python_profile, "seed"), max_containers=2)
        assert invoker.prewarm("seed")
        loop.run(until=100.0)
        pool = invoker.pool("seed")
        assert len(pool) == 1 and pool[0].dynamic
        assert invoker.prewarms == 1
        # A seed boots off the demand path, so it is accounted as a
        # prewarm — not as a demand cold start.
        assert invoker.cold_starts == 0

    def test_prewarm_respects_headroom(self, small_python_profile):
        loop = EventLoop()
        invoker = Invoker(loop, cores=2)
        invoker.register(_action(small_python_profile, "full"), max_containers=1)
        assert invoker.prewarm("full")
        loop.run(until=100.0)
        assert not invoker.prewarm("full")  # ceiling reached
        assert invoker.prewarms == 1

    def test_prewarmed_first_dispatch_is_a_warm_hit(self, small_python_profile):
        loop = EventLoop()
        invoker = Invoker(loop, cores=2)
        invoker.register(_action(small_python_profile, "ahead"), max_containers=1)
        invoker.prewarm("ahead")
        loop.run(until=100.0)  # the seed finishes booting before any request
        done = []
        invoker.submit(Invocation(action="ahead", submitted_at=loop.now), done.append)
        loop.run(until=200.0)
        assert done[0].status is InvocationStatus.COMPLETED
        assert invoker.warm_hits == 1  # the boot was off this request's path

    def test_demand_boot_first_dispatch_stays_cold(self, small_python_profile):
        loop = EventLoop()
        invoker = Invoker(loop, cores=2)
        invoker.register(_action(small_python_profile, "cold"), max_containers=1)
        done = []
        invoker.submit(Invocation(action="cold", submitted_at=loop.now), done.append)
        loop.run(until=100.0)
        assert done[0].status is InvocationStatus.COMPLETED
        assert invoker.warm_hits == 0  # the request waited on its boot

    def test_drain_reclaims_only_idle_dynamic_containers(self, small_python_profile):
        loop = EventLoop()
        invoker = Invoker(loop, cores=2)
        spec = _action(small_python_profile, "drainable")
        invoker.deploy(spec, containers=1, max_containers=2)
        invoker.prewarm("drainable")
        loop.run(until=100.0)
        assert len(invoker.pool("drainable")) == 2
        assert invoker.drain("drainable", 5) == 1  # only the dynamic one
        pool = invoker.pool("drainable")
        assert len(pool) == 1 and not pool[0].dynamic
        assert invoker.drains == 1 and invoker.evictions == 1

    def test_drain_refuses_while_work_is_queued(self, small_python_profile):
        loop = EventLoop()
        invoker = Invoker(loop, cores=1)
        spec = _action(small_python_profile, "busy")
        invoker.deploy(spec, containers=1, max_containers=2)
        invoker.prewarm("busy")
        loop.run(until=100.0)
        for _ in range(3):
            invoker.submit(Invocation(action="busy", submitted_at=loop.now),
                           lambda inv: None)
        assert invoker.queued_invocations("busy") > 0
        assert invoker.drain("busy") == 0

    def test_drain_honours_min_idle_seconds(self, small_python_profile):
        loop = EventLoop()
        invoker = Invoker(loop, cores=2)
        invoker.register(_action(small_python_profile, "fresh"), max_containers=1)
        invoker.prewarm("fresh")
        loop.run(until=100.0)
        # The container just became idle at its boot completion (< 100s ago
        # is fine; require far more idle time than it has).
        assert invoker.drain("fresh", min_idle_seconds=1e6) == 0
        assert invoker.drain("fresh", min_idle_seconds=0.0) == 1

    def test_set_tenant_weight_counts_fair_queues(self, small_python_profile):
        loop = EventLoop()
        wfq_invoker = Invoker(loop, cores=1, admission="wfq")
        wfq_invoker.register(_action(small_python_profile, "w1"), max_containers=1)
        wfq_invoker.register(_action(small_python_profile, "w2"), max_containers=1)
        assert wfq_invoker.set_tenant_weight("t", 4.0) == 2
        fifo_invoker = Invoker(loop, cores=1)
        fifo_invoker.register(_action(small_python_profile, "f1"), max_containers=1)
        assert fifo_invoker.set_tenant_weight("t", 4.0) == 0  # no-op, no error


class TestCapacityPlanner:
    def _invokers(self, loop, spec, *, count=3, cores=2, ceiling=2):
        invokers = []
        for index in range(count):
            invoker = Invoker(loop, cores=cores, invoker_id=f"invoker-{index}")
            if index == 0:
                invoker.deploy(spec, containers=1, max_containers=ceiling)
            else:
                invoker.register(spec, max_containers=ceiling)
            invokers.append(invoker)
        return invokers

    def _backlog(self, invoker, action, count, now=0.0):
        for _ in range(count):
            invoker.submit(
                Invocation(action=action, caller="t", submitted_at=now),
                lambda inv: None,
            )

    def test_seeds_backlogged_action_on_idle_peer(self, small_python_profile):
        loop = EventLoop()
        spec = _action(small_python_profile, "hot")
        invokers = self._invokers(loop, spec)
        self._backlog(invokers[0], "hot", 8)
        planner = CapacityPlanner(budget=10, queue_high=4)
        decisions = planner.plan(invokers, loop.now)
        assert decisions and decisions[0].kind == "prewarm"
        assert decisions[0].source == "invoker-0"
        assert decisions[0].target in ("invoker-1", "invoker-2")
        assert sum(inv.prewarms for inv in invokers) == len(decisions)

    def test_does_not_seed_below_queue_high(self, small_python_profile):
        loop = EventLoop()
        spec = _action(small_python_profile, "calm")
        invokers = self._invokers(loop, spec)
        self._backlog(invokers[0], "calm", 3)
        planner = CapacityPlanner(budget=10, queue_high=4)
        assert planner.plan(invokers, loop.now) == []

    def test_never_exceeds_the_budget(self, small_python_profile):
        loop = EventLoop()
        spec = _action(small_python_profile, "capped")
        invokers = self._invokers(loop, spec)
        self._backlog(invokers[0], "capped", 12)
        # Budget 2: one deployed container + its cold start in flight
        # already fill it, and nothing is drainable (the home pool has
        # queued work), so the planner must stand down.
        planner = CapacityPlanner(budget=2, queue_high=4)
        decisions = planner.plan(invokers, loop.now)
        assert [d for d in decisions if d.kind == "prewarm"] == []
        snapshots = [inv.snapshot() for inv in invokers]
        assert CapacityPlanner.total_containers(snapshots) <= 2

    def test_drains_idle_capacity_to_fund_a_seed(self, small_python_profile):
        loop = EventLoop()
        hot = _action(small_python_profile, "hot")
        cold = _action(small_python_profile, "cold")
        invokers = self._invokers(loop, hot)
        for index, invoker in enumerate(invokers):
            if index == 2:
                invoker.deploy(cold, containers=1, max_containers=2)
            else:
                invoker.register(cold, max_containers=2)
        # An idle dynamic container of the cold action on invoker 2...
        invokers[2].prewarm("cold")
        loop.run(until=100.0)
        # ...and a deep backlog of the hot action on invoker 0.
        self._backlog(invokers[0], "hot", 8, now=loop.now)
        total_before = CapacityPlanner.total_containers(
            [inv.snapshot() for inv in invokers]
        )
        planner = CapacityPlanner(
            budget=total_before, queue_high=4, min_idle_seconds=0.0
        )
        decisions = planner.plan(invokers, loop.now)
        kinds = [d.kind for d in decisions]
        assert "drain" in kinds and "prewarm" in kinds
        assert CapacityPlanner.total_containers(
            [inv.snapshot() for inv in invokers]
        ) <= total_before

    def test_never_drains_a_busy_container(self, small_python_profile):
        loop = EventLoop()
        spec = _action(small_python_profile, "running")
        invoker = Invoker(loop, cores=1)
        invoker.deploy(spec, containers=1, max_containers=2)
        invoker.prewarm("running")
        loop.run(until=100.0)
        # Dispatch one request and stop mid-service: one container busy.
        invoker.submit(Invocation(action="running", submitted_at=loop.now),
                       lambda inv: None)
        busy = [c for c in invoker.pool("running")
                if c not in invoker.idle_pool("running")]
        assert busy
        planner = CapacityPlanner(budget=1, queue_high=1, min_idle_seconds=0.0)
        planner.plan([invoker], loop.now)
        for container in busy:
            assert container in invoker.pool("running")
            assert container.state is not ContainerState.DEAD

    def test_validation(self):
        with pytest.raises(PlatformError):
            CapacityPlanner(budget=0)
        with pytest.raises(PlatformError):
            CapacityPlanner(budget=4, queue_high=0)
        with pytest.raises(PlatformError):
            CapacityPlanner(budget=4, min_idle_seconds=-1.0)


class TestPlannerBudgetBoundary:
    """Regressions for the seed-funding path exactly at ``total == budget``."""

    def _build(self, small_python_profile, loop):
        hot = _action(small_python_profile, "hot")
        cold = _action(small_python_profile, "cold")
        invokers = []
        for index in range(3):
            invoker = Invoker(loop, cores=2, invoker_id=f"invoker-{index}")
            if index == 0:
                invoker.deploy(hot, containers=1, max_containers=2)
            else:
                invoker.register(hot, max_containers=2)
            if index == 2:
                invoker.deploy(cold, containers=1, max_containers=2)
            else:
                invoker.register(cold, max_containers=2)
            invokers.append(invoker)
        return hot, cold, invokers

    def _backlog(self, invoker, action, count):
        for _ in range(count):
            invoker.submit(
                Invocation(action=action, caller="t", submitted_at=invoker.loop.now),
                lambda inv: None,
            )

    def test_seed_at_exact_budget_is_funded_and_stays_within(
        self, small_python_profile
    ):
        loop = EventLoop()
        hot, cold, invokers = self._build(small_python_profile, loop)
        # One idle dynamic container of the cold action funds the shift.
        invokers[2].prewarm("cold")
        loop.run(until=100.0)
        self._backlog(invokers[0], "hot", 8)
        total = CapacityPlanner.total_containers(
            [inv.snapshot() for inv in invokers]
        )
        planner = CapacityPlanner(budget=total, queue_high=4, min_idle_seconds=0.0)
        decisions = planner.plan(invokers, loop.now)
        kinds = sorted(d.kind for d in decisions)
        assert kinds == ["drain", "prewarm"]  # one funded shift, no extras
        after = CapacityPlanner.total_containers(
            [inv.snapshot() for inv in invokers]
        )
        assert after <= total

    def test_no_drain_when_the_seed_cannot_land(self, small_python_profile):
        """The over-drain regression: at the budget boundary, a seed whose
        target has no room must be skipped *before* funding it — draining
        first would reclaim a container for nothing.

        The target looks attractive to placement (a free core, no idle
        warm/boot/queue for the action) but cannot host the seed: its hot
        pool already exceeds the lowered ceiling, so even the planner's
        one-step ceiling raise cannot admit another container.
        """
        loop = EventLoop()
        hot = _action(small_python_profile, "hot")
        cold = _action(small_python_profile, "cold")
        home = Invoker(loop, cores=2, invoker_id="invoker-0")
        home.deploy(hot, containers=1, max_containers=2)
        home.register(cold, max_containers=2)
        peer = Invoker(loop, cores=4, invoker_id="invoker-1")
        peer.register(hot, max_containers=2)
        peer.register(cold, max_containers=2)
        peer.prewarm("hot")
        peer.prewarm("hot")
        peer.prewarm("cold")  # the drainable-looking idle dynamic container
        loop.run(until=100.0)
        # Lower the hot ceiling below the grown pool, then occupy both hot
        # containers: no idle warm, a free core — placement will pick the
        # peer — but containers (2) >= min(ceiling 1 + raise 1, cores) = 2.
        peer.set_max_containers("hot", 1)
        for _ in range(2):
            peer.submit(
                Invocation(action="hot", caller="t", submitted_at=loop.now),
                lambda inv: None,
            )
        self._backlog(home, "hot", 8)
        total = CapacityPlanner.total_containers(
            [inv.snapshot() for inv in (home, peer)]
        )
        planner = CapacityPlanner(budget=total, queue_high=4, min_idle_seconds=0.0)
        planner.plan([home, peer], loop.now)
        # Nothing was seeded (no room on the peer) — and, crucially, the
        # idle cold container was not drained to fund a seed that could
        # never land.
        assert planner.prewarms == 0
        assert planner.drains == 0
        assert peer.drains == 0
        assert len(peer.idle_pool("cold")) == 1

    def test_no_livelock_when_everything_is_busy_at_the_boundary(
        self, small_python_profile
    ):
        """The final drain loop must terminate when the cluster sits at
        (or above) budget but every container is busy or protected."""
        loop = EventLoop()
        spec = _action(small_python_profile, "busy")
        invoker = Invoker(loop, cores=1)
        invoker.deploy(spec, containers=1, max_containers=2)
        self._backlog(invoker, "busy", 3)  # container mid-request + queue
        total = CapacityPlanner.total_containers([invoker.snapshot()])
        planner = CapacityPlanner(budget=1, queue_high=1, min_idle_seconds=0.0)
        assert total >= planner.budget
        decisions = planner.plan([invoker], loop.now)  # must return, not spin
        assert all(d.kind != "drain" for d in decisions)
        loop.run()  # the queued work still completes untouched


class TestControlPlaneWiring:
    def test_timer_arms_on_submit_and_stands_down_idle(self, small_python_profile):
        cluster = FaaSCluster(
            SimulationConfig(cores=1, invokers=2, control_plane=True, seed=3)
        )
        cluster.deploy(_action(small_python_profile, "wired"))
        assert not cluster.control_plane.running
        cluster.invoke_async("wired")
        assert cluster.control_plane.running
        # The run drains: the control timer must have cancelled itself,
        # otherwise this would loop forever on its recurring events.
        cluster.run()
        assert not cluster.control_plane.running
        assert cluster.control_plane.ticks >= 1

    def test_timer_rearms_on_later_submissions(self, small_python_profile):
        cluster = FaaSCluster(
            SimulationConfig(cores=1, invokers=2, control_plane=True, seed=3)
        )
        cluster.deploy(_action(small_python_profile, "again"))
        cluster.invoke_async("again")
        cluster.run()
        ticks = cluster.control_plane.ticks
        cluster.invoke_async("again")
        assert cluster.control_plane.running
        cluster.run()
        assert cluster.control_plane.ticks >= ticks

    def test_control_plane_gets_permissive_quotas(self, small_python_profile):
        cluster = FaaSCluster(SimulationConfig(control_plane=True))
        assert cluster.quotas is not None
        assert cluster.quotas.rate_rps == FaaSCluster.UNTUNED_QUOTA_RPS

    def test_tenant_slos_require_the_control_plane(self):
        with pytest.raises(PlatformError):
            FaaSCluster(
                SimulationConfig(),
                tenant_slos={"t": TenantSLO(p99_ms=10.0)},
            )

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SimulationConfig(control_interval_seconds=0.0)
        with pytest.raises(ValueError):
            SimulationConfig(slo_window_seconds=0.0)
        with pytest.raises(ValueError):
            SimulationConfig(global_container_budget=4)  # needs control_plane
        with pytest.raises(ValueError):
            SimulationConfig(control_plane=True, global_container_budget=0)

    def test_stats_and_migrations_are_observable(self, small_python_profile):
        cluster = FaaSCluster(
            SimulationConfig(cores=1, invokers=2, control_plane=True, seed=3)
        )
        cluster.deploy(_action(small_python_profile, "obs"))
        cluster.invoke_async("obs")
        cluster.run()
        stats = cluster.control_plane_stats()
        assert stats["ticks"] >= 1
        assert "budget" in stats
        assert isinstance(cluster.migrations, list)
        row = cluster.cluster_stats()[0]
        assert "prewarms" in row and "drains" in row and "prewarmed" in row

    def test_disabled_plane_surfaces_are_empty(self, small_python_profile):
        cluster = FaaSCluster(SimulationConfig())
        assert cluster.control_plane is None
        assert cluster.control_plane_stats() == {}
        assert cluster.migrations == []

"""Tests for the benchmark suites and the microbenchmark."""

from __future__ import annotations

import pytest

from repro.errors import WorkloadError
from repro.runtime.profiles import Language
from repro.workloads import (
    all_benchmarks,
    benchmarks_by_suite,
    find_benchmark,
    fork_compatible_benchmarks,
    microbenchmark_profile,
    representative_benchmarks,
    wasm_benchmarks,
)
from repro.workloads.microbench import FIXED_SECONDS, READ_WORD_SECONDS, WRITE_WORD_SECONDS


class TestSuites:
    def test_total_benchmark_count_matches_paper(self):
        assert len(all_benchmarks()) == 58

    def test_per_suite_counts_match_paper(self):
        assert len(benchmarks_by_suite("pyperformance")) == 22
        assert len(benchmarks_by_suite("polybench")) == 23
        assert len(benchmarks_by_suite("faasprofiler")) == 13

    def test_faasprofiler_language_split(self):
        specs = benchmarks_by_suite("faasprofiler")
        python = [s for s in specs if s.profile.language is Language.PYTHON]
        node = [s for s in specs if s.profile.language is Language.NODE]
        assert len(python) == 6
        assert len(node) == 7

    def test_unknown_suite_rejected(self):
        with pytest.raises(WorkloadError):
            benchmarks_by_suite("spec-cpu")

    def test_qualified_names_are_unique(self):
        names = [spec.qualified_name for spec in all_benchmarks()]
        assert len(names) == len(set(names))

    def test_every_profile_is_internally_consistent(self):
        for spec in all_benchmarks():
            profile = spec.profile
            assert profile.exec_seconds > 0
            assert profile.dirtied_kpages <= profile.total_kpages
            assert profile.total_pages >= 1
            assert profile.suite == spec.suite

    def test_node_functions_are_multithreaded_and_not_wasm(self):
        for spec in benchmarks_by_suite("faasprofiler"):
            if spec.profile.language is Language.NODE:
                assert spec.profile.threads > 1
                assert not spec.profile.wasm_compatible

    def test_polybench_footprints_are_small(self):
        for spec in benchmarks_by_suite("polybench"):
            assert spec.profile.total_kpages <= 5.0

    def test_node_footprints_are_large(self):
        node = [s for s in benchmarks_by_suite("faasprofiler")
                if s.profile.language is Language.NODE]
        assert all(s.profile.total_kpages > 100 for s in node)

    def test_paper_references_present_for_all(self):
        for spec in all_benchmarks():
            assert spec.paper.base_invoker_ms is not None
            assert spec.paper.restore_ms is not None


class TestLookups:
    def test_find_by_unique_name(self):
        spec = find_benchmark("pyaes")
        assert spec.suite == "pyperformance"

    def test_ambiguous_name_requires_language(self):
        with pytest.raises(WorkloadError):
            find_benchmark("get-time")
        assert find_benchmark("get-time", "p").profile.language is Language.PYTHON
        assert find_benchmark("get-time", "n").profile.language is Language.NODE

    def test_unknown_name_rejected(self):
        with pytest.raises(WorkloadError):
            find_benchmark("does-not-exist")

    def test_representative_subset_matches_paper(self):
        subset = representative_benchmarks()
        assert len(subset) == 14
        names = {spec.qualified_name for spec in subset}
        assert "base64 (n)" in names and "seidel-2d (c)" in names

    def test_wasm_subset_excludes_node_and_faasprofiler_python(self):
        subset = wasm_benchmarks()
        assert len(subset) == 45
        assert all(spec.profile.language is not Language.NODE for spec in subset)

    def test_fork_subset_excludes_node(self):
        subset = fork_compatible_benchmarks()
        assert len(subset) == 51
        assert all(spec.profile.language is not Language.NODE for spec in subset)

    def test_logging_models_a_memory_leak(self):
        spec = find_benchmark("logging")
        assert spec.profile.leak_pages_per_invocation > 0

    def test_img_resize_is_gc_sensitive(self):
        spec = find_benchmark("img-resize", "n")
        assert spec.profile.restore_gc_seconds > 0
        assert spec.profile.restore_gc_probability > 0


class TestMicrobenchmark:
    def test_profile_reflects_parameters(self):
        profile = microbenchmark_profile(10_000, 2_500)
        assert profile.total_pages == 10_000
        assert profile.dirtied_pages == 2_500
        assert profile.read_pages == 10_000

    def test_exec_time_scales_with_work(self):
        small = microbenchmark_profile(10_000, 0)
        large = microbenchmark_profile(10_000, 10_000)
        expected_delta = 10_000 * WRITE_WORD_SECONDS
        assert large.exec_seconds - small.exec_seconds == pytest.approx(expected_delta)
        assert small.exec_seconds >= FIXED_SECONDS + 10_000 * READ_WORD_SECONDS

    def test_invalid_parameters_rejected(self):
        with pytest.raises(WorkloadError):
            microbenchmark_profile(0, 0)
        with pytest.raises(WorkloadError):
            microbenchmark_profile(100, 200)
        with pytest.raises(WorkloadError):
            microbenchmark_profile(100, -1)

    def test_distinct_sweep_points_have_distinct_names(self):
        a = microbenchmark_profile(1_000, 100)
        b = microbenchmark_profile(1_000, 200)
        assert a.name != b.name

"""Sketch-mode ``MetricsCollector``: bounded memory, exact-parity windows.

The bounded mode must be a drop-in replacement for the control plane's
whole signal surface — ``window``/``by_caller``/``e2e_stats``/counters —
while holding O(buckets) state instead of O(run).  These tests pin:

* window/by_caller parity with exact mode when window edges sit on
  bucket boundaries (the control-loop case — ticks are multiples of the
  bucket width);
* counters staying exact (they are scalars, not sketched);
* the retention archive absorbing evicted buckets losslessly for
  whole-run queries;
* sample-level accessors failing loudly instead of silently returning
  nothing;
* lossless ``merge_from`` (the multi-seed fan-out reduction).
"""

from __future__ import annotations

import pytest

from repro.errors import PlatformError
from repro.faas.metrics import MetricsCollector
from repro.faas.request import Invocation, InvocationStatus


def _finished(caller: str, at: float, *, status=InvocationStatus.COMPLETED,
              latency: float = 0.010) -> Invocation:
    inv = Invocation(action="act", caller=caller, submitted_at=at - latency)
    if status is InvocationStatus.COMPLETED:
        inv.mark_completed(at, {})
    elif status is InvocationStatus.REJECTED:
        inv.mark_rejected(at)
    elif status is InvocationStatus.THROTTLED:
        inv.mark_throttled(at)
    else:
        inv.mark_failed(at, "boom")
    return inv


def _pair(**kwargs):
    """An exact and a sketch collector fed identically."""
    exact = MetricsCollector()
    sketch = MetricsCollector("sketch", **kwargs)
    return exact, sketch


def _feed(collectors, invocations):
    for inv in invocations:
        for collector in collectors:
            collector.record(inv)


class TestModeValidation:
    def test_unknown_mode_rejected(self):
        with pytest.raises(PlatformError):
            MetricsCollector("approximate")

    def test_bad_bucket_shape_rejected(self):
        with pytest.raises(PlatformError):
            MetricsCollector("sketch", bucket_seconds=0.0)
        with pytest.raises(PlatformError):
            MetricsCollector("sketch", max_buckets=0)

    def test_sample_accessors_raise_in_sketch_mode(self):
        collector = MetricsCollector("sketch")
        collector.record(_finished("t", 1.0))
        for surface in ("completed", "failed", "rejected", "throttled"):
            with pytest.raises(PlatformError):
                getattr(collector, surface)

    def test_skip_warmup_requires_samples(self):
        collector = MetricsCollector("sketch")
        collector.record(_finished("t", 1.0))
        with pytest.raises(PlatformError):
            collector.e2e_stats(skip_warmup=1)
        # skip_warmup=0 is the control plane's call shape and works.
        assert collector.e2e_stats().count == 1

    def test_merge_from_requires_matching_shape(self):
        sketch = MetricsCollector("sketch", bucket_seconds=0.25)
        with pytest.raises(PlatformError):
            sketch.merge_from(MetricsCollector())
        with pytest.raises(PlatformError):
            sketch.merge_from(MetricsCollector("sketch", bucket_seconds=0.5))


class TestExactParity:
    def test_counters_and_rates_match_exact(self):
        exact, sketch = _pair()
        stream = [
            _finished("a", 0.1),
            _finished("b", 0.2, status=InvocationStatus.REJECTED),
            _finished("a", 0.3, status=InvocationStatus.THROTTLED),
            _finished("b", 0.4, status=InvocationStatus.FAILED),
            _finished("a", 0.6),
        ]
        _feed((exact, sketch), stream)
        for name in ("num_completed", "num_failed", "num_rejected",
                     "num_throttled", "num_recorded"):
            assert getattr(sketch, name) == getattr(exact, name), name
        assert sketch.rejection_rate == exact.rejection_rate
        assert sketch.throttle_rate == exact.throttle_rate

    def test_control_loop_window_counts_match_exact(self):
        # The control-loop shape: window edges at multiples of the bucket
        # width and ``end`` = now (nothing recorded later).  That is the
        # regime where the quantised sketch window covers exactly the
        # exact-mode closed interval.
        exact, sketch = _pair(bucket_seconds=0.25)
        stream = [_finished("t", round(0.05 * i, 2)) for i in range(1, 80)]
        _feed((exact, sketch), stream)
        now = 3.95
        for start in (0.0, 0.25, 1.5, 3.75):
            got = sketch.window(start, now)
            want = exact.window(start, now)
            assert got.num_completed == want.num_completed, start
        assert (
            sketch.window(2.0, None).num_completed
            == exact.window(2.0, None).num_completed
        )

    def test_quantisation_overshoot_is_bounded_by_one_bucket(self):
        # With samples *after* the window end, the sketch window may
        # include stragglers from the end bucket — but never anything
        # outside ``[floor(start), end + bucket)``.  Pinned so the
        # documented quantisation cannot silently widen.
        exact, sketch = _pair(bucket_seconds=0.25)
        stream = [_finished("t", round(0.05 * i, 2)) for i in range(1, 80)]
        _feed((exact, sketch), stream)
        got = sketch.window(0.25, 1.0).num_completed
        exact_closed = exact.window(0.25, 1.0).num_completed
        exact_widened = exact.window(0.25, 1.0 + 0.25 - 1e-9).num_completed
        assert exact_closed <= got <= exact_widened

    def test_windowed_stats_match_exact_within_bound(self):
        exact, sketch = _pair(bucket_seconds=0.25)
        stream = [
            _finished("t", 0.25 * i, latency=0.005 + 0.001 * (i % 7))
            for i in range(1, 41)
        ]
        _feed((exact, sketch), stream)
        got = sketch.window(2.0, 8.0).e2e_stats()
        want = exact.window(2.0, 8.0).e2e_stats()
        assert got.count == want.count
        assert got.mean == pytest.approx(want.mean)
        assert got.minimum == want.minimum
        assert got.maximum == want.maximum
        alpha = sketch.relative_accuracy
        assert abs(got.p99 - want.p99) <= alpha * want.p99 * 1.0001
        assert abs(got.median - want.median) <= alpha * want.median * 1.0001

    def test_by_caller_matches_exact_per_tenant(self):
        exact, sketch = _pair(bucket_seconds=0.25)
        stream = [
            _finished(f"tenant-{i % 3}", 0.25 * i,
                      status=(InvocationStatus.REJECTED if i % 5 == 0
                              else InvocationStatus.COMPLETED))
            for i in range(1, 61)
        ]
        _feed((exact, sketch), stream)
        got = sketch.by_caller(since=5.0, until=12.0)
        want = exact.by_caller(since=5.0, until=12.0)
        assert set(got) == set(want)
        for tenant in want:
            assert got[tenant].num_completed == want[tenant].num_completed
            assert got[tenant].num_rejected == want[tenant].num_rejected
            if want[tenant].num_completed:
                assert got[tenant].e2e_stats().mean == pytest.approx(
                    want[tenant].e2e_stats().mean
                )

    def test_by_caller_unwindowed_covers_whole_run(self):
        exact, sketch = _pair()
        stream = [_finished(f"t{i % 2}", 0.1 * i) for i in range(1, 30)]
        _feed((exact, sketch), stream)
        got = sketch.by_caller()
        want = exact.by_caller()
        assert {t: c.num_completed for t, c in got.items()} == {
            t: c.num_completed for t, c in want.items()
        }

    def test_throughput_matches_exact(self):
        exact, sketch = _pair(bucket_seconds=0.5)
        stream = [_finished("t", 0.5 * i) for i in range(1, 21)]
        _feed((exact, sketch), stream)
        assert sketch.throughput(2.0, 8.0) == exact.throughput(2.0, 8.0)
        assert sketch.throughput(0.0, 10.0) == exact.throughput(0.0, 10.0)

    def test_invoker_stats_parity(self):
        exact, sketch = _pair()
        stream = [_finished("t", 0.3 * i) for i in range(1, 25)]
        _feed((exact, sketch), stream)
        got, want = sketch.invoker_stats(), exact.invoker_stats()
        assert got.count == want.count
        assert got.mean == pytest.approx(want.mean)


class TestBoundedMemory:
    def test_live_buckets_never_exceed_cap(self):
        collector = MetricsCollector("sketch", bucket_seconds=1.0, max_buckets=8)
        for i in range(100):
            collector.record(_finished("t", float(i) + 0.5))
        assert len(collector._buckets) <= 8
        # Nothing was lost to the cap: the archive holds the history.
        assert collector.num_completed == 100
        assert collector.e2e_stats().count == 100

    def test_windows_see_only_live_buckets(self):
        collector = MetricsCollector("sketch", bucket_seconds=1.0, max_buckets=4)
        for i in range(20):
            collector.record(_finished("t", float(i) + 0.5))
        # The last 4 seconds are live; a window over them is exact.
        assert collector.window(16.0, 20.0).num_completed == 4
        # A window reaching past the retention horizon sees only what is
        # still live (documented), not the archived history.
        assert collector.window(0.0, 20.0).num_completed == 4

    def test_late_stragglers_fold_into_the_archive(self):
        collector = MetricsCollector("sketch", bucket_seconds=1.0, max_buckets=4)
        for i in range(10):
            collector.record(_finished("t", float(i) + 0.5))
        # Bucket 0 has been archived; a record landing there must not
        # resurrect it (which would breach the cap and unsort history).
        collector.record(_finished("t", 0.25))
        assert len(collector._buckets) <= 4
        assert collector.num_completed == 11
        assert collector.e2e_stats().count == 11

    def test_state_is_independent_of_sample_count(self):
        small = MetricsCollector("sketch", bucket_seconds=1.0, max_buckets=16)
        big = MetricsCollector("sketch", bucket_seconds=1.0, max_buckets=16)
        for i in range(100):
            small.record(_finished("t", (i % 10) + 0.5))
        for i in range(10_000):
            big.record(_finished("t", (i % 10) + 0.5))
        assert len(big._buckets) == len(small._buckets)
        assert big.num_completed == 10_000


class TestMergeFrom:
    def test_sketch_merge_is_lossless(self):
        left = MetricsCollector("sketch", bucket_seconds=0.5)
        right = MetricsCollector("sketch", bucket_seconds=0.5)
        both = MetricsCollector("sketch", bucket_seconds=0.5)
        for i in range(1, 40):
            inv = _finished(f"t{i % 2}", 0.2 * i)
            (left if i % 2 else right).record(inv)
            both.record(inv)
        left.merge_from(right)
        assert left.num_recorded == both.num_recorded
        assert left.e2e_stats().count == both.e2e_stats().count
        assert left.e2e_stats().p99 == both.e2e_stats().p99
        assert left.window(2.0, 6.0).num_completed == both.window(2.0, 6.0).num_completed
        got = left.by_caller()
        want = both.by_caller()
        assert {t: c.num_completed for t, c in got.items()} == {
            t: c.num_completed for t, c in want.items()
        }

"""Regression tests pinning the windowed-metrics semantics.

The control plane's whole signal surface flows through
:meth:`MetricsCollector.window` and :meth:`MetricsCollector.by_caller`:
a boundary off-by-one here silently mis-scores every tenant every tick.
These tests pin the exact membership rules:

* the window is the **closed** interval ``[start, end]`` — both
  boundaries are members (a control tick at ``now`` must see completions
  recorded earlier in the same instant);
* adjacent windows sharing a boundary therefore both count the boundary
  sample (deliberate — pinned so a "fix" cannot slip in silently);
* an inverted window is empty, empty buckets are fine;
* out-of-order recordings (a caller replaying history) keep the buckets
  sorted, so binary-searched windows stay correct.
"""

from __future__ import annotations

import pytest

from repro.faas.metrics import MetricsCollector
from repro.faas.request import Invocation, InvocationStatus


def _finished(caller: str, at: float, *, status=InvocationStatus.COMPLETED,
              latency: float = 0.010) -> Invocation:
    inv = Invocation(action="act", caller=caller, submitted_at=at - latency)
    if status is InvocationStatus.COMPLETED:
        inv.mark_completed(at, {})
    elif status is InvocationStatus.REJECTED:
        inv.mark_rejected(at)
    elif status is InvocationStatus.THROTTLED:
        inv.mark_throttled(at)
    else:
        inv.mark_failed(at, "boom")
    return inv


class TestWindowBoundaries:
    def test_both_boundaries_are_inclusive(self):
        metrics = MetricsCollector()
        for at in (1.0, 2.0, 3.0):
            metrics.record(_finished("t", at))
        window = metrics.window(1.0, 3.0)
        assert window.num_completed == 3  # == start and == end both count
        assert metrics.window(1.0, 2.0).num_completed == 2
        assert metrics.window(2.0, 2.0).num_completed == 1  # degenerate point
        assert metrics.window(1.0 + 1e-9, 3.0 - 1e-9).num_completed == 1

    def test_exact_membership_is_pinned(self):
        metrics = MetricsCollector()
        stamps = (0.5, 1.0, 1.25, 2.0, 2.75)
        for at in stamps:
            metrics.record(_finished("t", at))
        clipped = metrics.window(1.0, 2.0)
        assert [inv.completed_at for inv in clipped.completed] == [1.0, 1.25, 2.0]

    def test_adjacent_windows_share_the_boundary_sample(self):
        # The closed-interval corollary, pinned deliberately: adjacent
        # windows are NOT a partition — the boundary sample is in both.
        metrics = MetricsCollector()
        for at in (1.0, 2.0, 3.0):
            metrics.record(_finished("t", at))
        first = metrics.window(1.0, 2.0)
        second = metrics.window(2.0, 3.0)
        assert first.num_completed == 2
        assert second.num_completed == 2
        assert first.num_completed + second.num_completed == 4  # 3 samples

    def test_inverted_and_out_of_range_windows_are_empty(self):
        metrics = MetricsCollector()
        metrics.record(_finished("t", 5.0))
        assert metrics.window(6.0, 4.0).num_recorded == 0  # inverted
        assert metrics.window(10.0, 20.0).num_recorded == 0  # past the data
        assert metrics.window(0.0, 1.0).num_recorded == 0  # before the data

    def test_empty_collector_windows_are_empty(self):
        metrics = MetricsCollector()
        assert metrics.window(0.0, 10.0).num_recorded == 0
        assert metrics.window(0.0).num_recorded == 0

    def test_open_right_window(self):
        metrics = MetricsCollector()
        for at in (1.0, 2.0, 3.0):
            metrics.record(_finished("t", at))
        assert metrics.window(2.0).num_completed == 2
        assert metrics.window(3.5).num_completed == 0

    def test_window_spans_every_outcome_bucket(self):
        metrics = MetricsCollector()
        metrics.record(_finished("t", 1.0))
        metrics.record(_finished("t", 1.0, status=InvocationStatus.REJECTED))
        metrics.record(_finished("t", 1.0, status=InvocationStatus.THROTTLED))
        metrics.record(_finished("t", 1.0, status=InvocationStatus.FAILED))
        clipped = metrics.window(1.0, 1.0)
        assert clipped.num_recorded == 4
        assert clipped.num_rejected == 1
        assert clipped.num_throttled == 1
        assert len(clipped.failed) == 1


class TestOutOfOrderRecording:
    def test_out_of_order_recordings_keep_windows_correct(self):
        """A replayed history (descending timestamps) must window exactly
        like the same history recorded in order."""
        stamps = (5.0, 1.0, 3.0, 2.0, 4.0)
        replayed = MetricsCollector()
        for at in stamps:
            replayed.record(_finished("t", at))
        ordered = MetricsCollector()
        for at in sorted(stamps):
            ordered.record(_finished("t", at))
        for window in ((1.0, 3.0), (2.0, 2.0), (3.5, 5.0), (0.0, 10.0)):
            assert (
                replayed.window(*window).num_completed
                == ordered.window(*window).num_completed
            )
        assert [inv.completed_at for inv in replayed.window(2.0, 4.0).completed] == [
            2.0, 3.0, 4.0,
        ]

    def test_buckets_stay_sorted_after_interleaved_inserts(self):
        metrics = MetricsCollector()
        for at in (2.0, 1.0, 2.0, 1.5, 3.0, 0.5):
            metrics.record(_finished("t", at))
        finished = [inv.completed_at for inv in metrics.completed]
        assert finished == sorted(finished)

    def test_out_of_order_across_outcome_buckets(self):
        metrics = MetricsCollector()
        metrics.record(_finished("t", 4.0))
        metrics.record(_finished("t", 2.0, status=InvocationStatus.REJECTED))
        metrics.record(_finished("t", 1.0))  # out of order in _completed
        metrics.record(_finished("t", 3.0, status=InvocationStatus.REJECTED))
        clipped = metrics.window(1.0, 3.0)
        assert clipped.num_completed == 1
        assert clipped.num_rejected == 2


class TestWindowedByCaller:
    def test_interleaved_multi_tenant_completions_split_exactly(self):
        """The satellite coverage: by_caller(since/until) under a dense
        interleaving of three tenants with mixed outcomes."""
        metrics = MetricsCollector()
        # alice completes at 1.0, 2.0, ..., bob at 1.25, 2.25, ...,
        # carol alternates completions and rejections at 1.5, 2.5, ...
        for tick in range(8):
            base = 1.0 + tick
            metrics.record(_finished("alice", base, latency=0.010))
            metrics.record(_finished("bob", base + 0.25, latency=0.050))
            metrics.record(_finished(
                "carol", base + 0.5,
                status=(
                    InvocationStatus.COMPLETED
                    if tick % 2 == 0
                    else InvocationStatus.REJECTED
                ),
            ))
        split = metrics.by_caller(since=3.0, until=6.0)
        assert set(split) == {"alice", "bob", "carol"}
        # alice: completions at 3.0, 4.0, 5.0, 6.0 (closed interval).
        assert split["alice"].num_completed == 4
        # bob: 3.25, 4.25, 5.25 — 6.25 is outside.
        assert split["bob"].num_completed == 3
        # carol: 3.5 (completed, tick 2), 4.5 (rejected, tick 3),
        # 5.5 (completed, tick 4).
        assert split["carol"].num_completed == 2
        assert split["carol"].num_rejected == 1

    def test_windowed_percentiles_come_from_the_window_only(self):
        metrics = MetricsCollector()
        metrics.record(_finished("t", 1.0, latency=9.0))  # ancient outlier
        for at in (5.0, 5.1, 5.2):
            metrics.record(_finished("t", at, latency=0.010))
        split = metrics.by_caller(since=4.0, until=6.0)
        stats = split["t"].e2e_stats()
        assert stats.count == 3
        assert stats.p99 < 0.1  # the outlier aged out

    def test_until_only_and_since_only(self):
        metrics = MetricsCollector()
        metrics.record(_finished("early", 1.0))
        metrics.record(_finished("late", 9.0))
        assert set(metrics.by_caller(until=5.0)) == {"early"}
        assert set(metrics.by_caller(since=5.0)) == {"late"}
        assert set(metrics.by_caller()) == {"early", "late"}

    def test_tenant_quiet_in_window_is_absent(self):
        metrics = MetricsCollector()
        metrics.record(_finished("quiet", 1.0))
        metrics.record(_finished("busy", 5.0))
        split = metrics.by_caller(since=4.0, until=6.0)
        assert "quiet" not in split

    def test_split_preserves_outcome_ordering_per_tenant(self):
        metrics = MetricsCollector()
        for at in (1.0, 3.0, 2.0):  # deliberately out of order
            metrics.record(_finished("t", at))
        split = metrics.by_caller(since=0.0, until=10.0)
        finished = [inv.completed_at for inv in split["t"].completed]
        assert finished == sorted(finished)


class TestByCallerBulkAdoption:
    """Regression: the bulk-slice ``by_caller`` equals per-sample recording.

    ``by_caller`` adopts sorted window slices wholesale instead of
    re-``record()``-ing every sample into fresh collectors.  This pins the
    optimisation to the semantics of the naive implementation: recording
    each windowed invocation one by one must produce identical per-tenant
    collectors.
    """

    def test_windowed_by_caller_equals_per_sample_recording(self):
        metrics = MetricsCollector()
        stamps_and_states = [
            (0.4, InvocationStatus.COMPLETED),
            (0.8, InvocationStatus.REJECTED),
            (1.0, InvocationStatus.COMPLETED),
            (1.3, InvocationStatus.THROTTLED),
            (1.3, InvocationStatus.COMPLETED),
            (1.9, InvocationStatus.FAILED),
            (2.0, InvocationStatus.COMPLETED),
            (2.6, InvocationStatus.COMPLETED),
        ]
        invocations = [
            _finished(f"tenant-{i % 3}", at, status=status)
            for i, (at, status) in enumerate(stamps_and_states)
        ]
        for inv in invocations:
            metrics.record(inv)

        since, until = 1.0, 2.0
        fast = metrics.by_caller(since=since, until=until)

        naive: dict = {}
        for inv in invocations:
            if since <= inv.completed_at <= until:
                naive.setdefault(inv.caller, MetricsCollector()).record(inv)

        assert set(fast) == set(naive)
        for tenant, want in naive.items():
            got = fast[tenant]
            # Same sample objects, same order, in every outcome bucket.
            assert got.completed == want.completed
            assert got.failed == want.failed
            assert got.rejected == want.rejected
            assert got.throttled == want.throttled
            if want.num_completed:
                assert got.e2e_stats() == want.e2e_stats()

    def test_unwindowed_by_caller_equals_per_sample_recording(self):
        metrics = MetricsCollector()
        invocations = [
            _finished(f"t{i % 2}", 0.3 * i + 0.1) for i in range(1, 12)
        ]
        for inv in invocations:
            metrics.record(inv)
        fast = metrics.by_caller()
        naive: dict = {}
        for inv in invocations:
            naive.setdefault(inv.caller, MetricsCollector()).record(inv)
        assert set(fast) == set(naive)
        for tenant, want in naive.items():
            assert fast[tenant].completed == want.completed

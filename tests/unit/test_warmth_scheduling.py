"""Tests for core-charged cold starts, the warmth surface, and work stealing."""

from __future__ import annotations

import pytest

from repro.config import SCHEDULER_POLICIES
from repro.errors import PlatformError
from repro.faas.action import ActionSpec
from repro.faas.invoker import Invoker
from repro.faas.request import Invocation, InvocationStatus
from repro.faas.scheduler import (
    HashAffinityPolicy,
    Scheduler,
    WarmAwarePolicy,
    create_policy,
    home_index,
)
from repro.runtime.profiles import FunctionProfile, Language
from repro.sim.events import EventLoop


def _action(profile: FunctionProfile, name: str, mechanism: str = "base") -> ActionSpec:
    return ActionSpec.for_profile(profile, mechanism, name=name)


def _steady_profile(name: str = "steady") -> FunctionProfile:
    """A profile with zero execution jitter: identical requests take
    identical time, so completion order is fully determined by dispatch
    order and the FIFO assertions below are exact."""
    return FunctionProfile(
        name=name,
        language=Language.PYTHON,
        suite="unit",
        exec_seconds=0.010,
        exec_jitter=0.0,
        total_kpages=1.2,
        dirtied_kpages=0.15,
        regions_mapped_per_invocation=1,
        regions_unmapped_per_invocation=1,
        heap_growth_pages=4,
        input_bytes=128,
        output_bytes=256,
    )


def _homed_name(prefix: str, invokers: int, home: int) -> str:
    """An action name whose hash home is ``home`` of ``invokers``."""
    index = 0
    while True:
        name = f"{prefix}-{index}"
        if home_index(name, invokers) == home:
            return name
        index += 1


class TestCoreChargedColdStarts:
    def test_boot_waits_for_a_busy_core(self, small_python_profile, small_c_profile):
        # One core, occupied by a warm request; a registered action's boot
        # must wait in the backlog until the core frees.
        loop = EventLoop()
        invoker = Invoker(loop, cores=1)
        invoker.deploy(_action(small_python_profile, "warm"), containers=1)
        invoker.register(_action(small_c_profile, "cold"), max_containers=1)
        done = []
        invoker.submit(Invocation(action="warm", payload=b"x"), done.append)
        invoker.submit(Invocation(action="cold", payload=b"x"), done.append)
        assert invoker.cold_starts == 1
        assert invoker.cores_in_use == 1  # the warm request, not the boot
        assert invoker.pending_boots == 1  # the boot is backlogged
        # Bound the run so the keep-alive eviction (10 min out) has not yet
        # reclaimed the dynamic container whose init report we read.
        loop.run(until=100.0)
        assert [inv.status for inv in done] == [InvocationStatus.COMPLETED] * 2
        warm, cold = done
        boot_seconds = invoker.pool("cold")[0].init_report.total_seconds
        # The cold request could only dispatch after the warm request
        # finished *and* the boot ran its full duration on the core.
        assert cold.dispatched_at >= warm.completed_at + boot_seconds * 0.99
        assert invoker.boot_core_seconds == pytest.approx(boot_seconds)

    def test_concurrent_boots_serialise_on_a_full_invoker(
        self, small_python_profile, small_c_profile
    ):
        # Two cold actions, one core: the boots run back to back, not in
        # parallel — a booting container occupies the core like any other.
        loop = EventLoop()
        invoker = Invoker(loop, cores=1)
        invoker.register(_action(small_python_profile, "first"), max_containers=1)
        invoker.register(_action(small_c_profile, "second"), max_containers=1)
        done = []
        invoker.submit(Invocation(action="first", payload=b"x"), done.append)
        invoker.submit(Invocation(action="second", payload=b"x"), done.append)
        assert invoker.cores_in_use == 1  # one boot on the core...
        assert invoker.booting == 1
        assert invoker.pending_boots == 1  # ...the other waiting
        loop.run(until=100.0)
        first, second = done
        first_boot = invoker.pool("first")[0].init_report.total_seconds
        second_boot = invoker.pool("second")[0].init_report.total_seconds
        assert first.dispatched_at >= first_boot * 0.99
        # The second boot could only start once the first one released the
        # core, so its request dispatched after both full boot durations.
        assert second.dispatched_at >= first_boot + second_boot * 0.99
        assert invoker.boot_core_seconds == pytest.approx(first_boot + second_boot)

    def test_parallel_boots_use_parallel_cores(
        self, small_python_profile, small_c_profile
    ):
        # With two cores the same two boots overlap instead of serialising.
        loop = EventLoop()
        invoker = Invoker(loop, cores=2)
        invoker.register(_action(small_python_profile, "first"), max_containers=1)
        invoker.register(_action(small_c_profile, "second"), max_containers=1)
        done = []
        invoker.submit(Invocation(action="first", payload=b"x"), done.append)
        invoker.submit(Invocation(action="second", payload=b"x"), done.append)
        assert invoker.cores_in_use == 2
        assert invoker.pending_boots == 0
        loop.run(until=100.0)
        first_boot = invoker.pool("first")[0].init_report.total_seconds
        second_boot = invoker.pool("second")[0].init_report.total_seconds
        assert done[1].dispatched_at < first_boot + second_boot

    def test_load_counts_boots_in_flight(self, small_python_profile, small_c_profile):
        # Boots on a core and boots in the backlog both show up in the
        # least-loaded metric, so policies are not blind to them — but a
        # queued invocation whose boot is already in flight is the *same*
        # unit of demand as that boot, and must not be counted twice.
        loop = EventLoop()
        invoker = Invoker(loop, cores=1)
        invoker.register(_action(small_python_profile, "a"), max_containers=1)
        invoker.register(_action(small_c_profile, "b"), max_containers=1)
        assert invoker.load == 0
        invoker.submit(Invocation(action="a", payload=b"x"), lambda inv: None)
        # One boot occupying the core; the queued invocation it will serve
        # is covered by it, not added on top.
        assert invoker.cores_in_use == 1
        assert invoker.queued_invocations() == 1
        assert invoker.load == 1
        invoker.submit(Invocation(action="b", payload=b"x"), lambda inv: None)
        # + one backlogged boot covering the second queued invocation.
        assert invoker.pending_boots == 1
        assert invoker.load == 2

    def test_load_counts_uncovered_queue_beyond_boots(self, small_python_profile):
        # Regression for the double-count fix's other direction: queued
        # work *beyond* what the boots in flight can absorb still counts.
        loop = EventLoop()
        invoker = Invoker(loop, cores=1)
        invoker.register(_action(small_python_profile, "a"), max_containers=1)
        for _ in range(3):
            invoker.submit(Invocation(action="a", payload=b"x"), lambda inv: None)
        # One boot on the core (covers one queued entry), two uncovered.
        assert invoker.cores_in_use == 1
        assert invoker.queued_invocations() == 3
        assert invoker.queued_uncovered() == 2
        assert invoker.load == 3
        snap = invoker.snapshot()
        assert snap.queued == 3
        assert snap.queued_uncovered == 2
        assert snap.load == invoker.load


class TestInvokerSnapshot:
    def test_snapshot_reports_warmth_and_headroom(
        self, small_python_profile, small_c_profile
    ):
        loop = EventLoop()
        invoker = Invoker(loop, cores=2)
        invoker.deploy(_action(small_python_profile, "hot"), containers=2)
        invoker.register(_action(small_c_profile, "cold"), max_containers=4)
        snap = invoker.snapshot()
        assert snap.invoker_id == "invoker-0"
        assert snap.cores == 2 and snap.cores_in_use == 0
        assert snap.idle_warm == {"hot": 2}
        assert snap.warm_total == {"hot": 2}
        assert snap.boots_in_flight == {}
        # Growth is capped by the core count, not just max_containers.
        assert snap.growth_headroom == {"cold": 2}
        assert snap.load == 0 and snap.free_cores == 2
        assert snap.warmth("hot") == 2 and snap.warmth("cold") == 0

    def test_snapshot_tracks_dispatch_and_boots(self, small_python_profile):
        loop = EventLoop()
        invoker = Invoker(loop, cores=2)
        invoker.deploy(
            _action(small_python_profile, "busy"), containers=1, max_containers=2
        )
        invoker.submit(Invocation(action="busy", payload=b"x"), lambda inv: None)
        invoker.submit(Invocation(action="busy", payload=b"x"), lambda inv: None)
        snap = invoker.snapshot()
        assert snap.cores_in_use == 2  # one executing + one booting
        assert snap.booting == 1
        assert snap.idle_warm == {}
        assert snap.boots_in_flight == {"busy": 1}
        assert snap.queued == 1
        # A boot in flight counts as warmth: the policy should not route a
        # second boot's worth of traffic elsewhere.
        assert snap.warmth("busy") == 2

    def test_growth_headroom_accessor(self, small_python_profile):
        loop = EventLoop()
        invoker = Invoker(loop, cores=1)
        invoker.deploy(
            _action(small_python_profile, "capped"), containers=1, max_containers=4
        )
        # One container on one core: no growth can ever help.
        assert invoker.growth_headroom("capped") == 0


class TestWarmAwarePolicy:
    def test_prefers_warm_invoker_over_idle_cold(self, small_python_profile):
        loop = EventLoop()
        cold = Invoker(loop, cores=2, invoker_id="invoker-0")
        warm = Invoker(loop, cores=2, invoker_id="invoker-1")
        spec = _action(small_python_profile, "wa")
        cold.register(spec, max_containers=2)
        warm.deploy(spec, containers=1, max_containers=2)
        policy = WarmAwarePolicy()
        assert policy.select([cold, warm], Invocation(action="wa")) == 1

    def test_spills_once_backlog_outweighs_the_penalty(self, small_python_profile):
        loop = EventLoop()
        warm = Invoker(loop, cores=1, invoker_id="invoker-0")
        cold = Invoker(loop, cores=1, invoker_id="invoker-1")
        spec = _action(small_python_profile, "spill")
        warm.deploy(spec, containers=1, max_containers=1)
        cold.register(spec, max_containers=1)
        # Build a backlog of 3 on the warm invoker (1 running + 2 queued).
        for _ in range(3):
            warm.submit(Invocation(action="spill", payload=b"x"), lambda inv: None)
        # Backlog below the penalty: stay warm.  Above it: pay the boot.
        assert WarmAwarePolicy(cold_start_penalty=8.0).select(
            [warm, cold], Invocation(action="spill")
        ) == 0
        assert WarmAwarePolicy(cold_start_penalty=2.0).select(
            [warm, cold], Invocation(action="spill")
        ) == 1

    def test_boot_in_flight_counts_as_warmth(self, small_python_profile):
        # An invoker already booting a container for the action does not
        # pay the cold-start penalty again.
        loop = EventLoop()
        booting = Invoker(loop, cores=4, invoker_id="invoker-0")
        cold = Invoker(loop, cores=4, invoker_id="invoker-1")
        spec = _action(small_python_profile, "inflight")
        booting.register(spec, max_containers=4)
        cold.register(spec, max_containers=4)
        booting.submit(Invocation(action="inflight", payload=b"x"), lambda inv: None)
        policy = WarmAwarePolicy(cold_start_penalty=32.0)
        # booting has load 1 (boot on core; the queued invocation it will
        # serve is covered) but warmth 1; cold has load 0 but would boot
        # fresh: 1 < 0 + 32.
        assert policy.select([cold, booting], Invocation(action="inflight")) == 1

    def test_registry_and_config_expose_warm_aware(self):
        assert "warm-aware" in SCHEDULER_POLICIES
        assert isinstance(create_policy("warm-aware"), WarmAwarePolicy)
        with pytest.raises(PlatformError):
            WarmAwarePolicy(cold_start_penalty=-1.0)


class TestWorkStealing:
    def _affinity_cluster(self, spec_name_prefix: str, loop: EventLoop):
        invokers = [
            Invoker(loop, cores=1, invoker_id=f"invoker-{i}") for i in range(2)
        ]
        return invokers

    def test_instant_steal_takes_the_queue_head(self):
        # Both invokers hold a warm container; affinity funnels everything
        # to the home.  The idle peer must pull the *oldest* queued
        # invocation and completions must stay in submission order.
        profile = _steady_profile()
        name = _homed_name("steal", 2, 0)
        loop = EventLoop()
        invokers = self._affinity_cluster("steal", loop)
        spec = _action(profile, name)
        for invoker in invokers:
            invoker.deploy(spec, containers=1, max_containers=1)
        scheduler = Scheduler(
            invokers, HashAffinityPolicy(), work_stealing=True
        )
        submitted = [Invocation(action=name, payload=b"x") for _ in range(4)]
        finished = []
        for invocation in submitted:
            scheduler.submit(invocation, finished.append)
        assert scheduler.steals >= 1
        assert invokers[1].steals >= 1
        assert invokers[0].stolen_away >= 1
        loop.run()
        assert finished == submitted  # per-action FIFO completion order
        dispatch_times = [inv.dispatched_at for inv in submitted]
        assert dispatch_times == sorted(dispatch_times)

    def test_boot_steal_takes_the_tail_and_seeds_a_warm_container(
        self, small_python_profile
    ):
        # The home is capped (no growth headroom) with a deep backlog; the
        # idle peer boots a container for the *newest* queued invocation.
        name = _homed_name("boot-steal", 2, 0)
        loop = EventLoop()
        home = Invoker(loop, cores=1, invoker_id="invoker-0")
        thief = Invoker(loop, cores=1, invoker_id="invoker-1")
        spec = _action(small_python_profile, name)
        home.deploy(spec, containers=1, max_containers=1)
        thief.register(spec, max_containers=1)
        scheduler = Scheduler(
            [home, thief], HashAffinityPolicy(), work_stealing=True,
            boot_steal_min_queue=8,
        )
        submitted = [Invocation(action=name, payload=b"x") for _ in range(9)]
        finished = []
        for invocation in submitted:
            scheduler.submit(invocation, finished.append)
        assert thief.cold_starts == 1  # the steal triggered a boot
        assert scheduler.steals >= 1
        loop.run(until=100.0)
        assert len(finished) == 9
        assert all(inv.status is InvocationStatus.COMPLETED for inv in submitted)
        # FIFO completion order was preserved: the home drained its eight
        # older requests during the boot and the stolen (newest) invocation
        # completed last.  (It may even have been instant-stolen *back* to
        # the home's warm container if that freed before the boot finished
        # — whichever dispatch happens first wins.)
        assert finished == submitted
        assert home.invocations_completed + thief.invocations_completed == 9
        # Either way the boot ran to completion and left a warm container
        # on the once-cold peer.
        assert len(thief.pool(name)) == 1

    def test_no_boot_steal_while_victim_can_grow(self, small_python_profile):
        # As long as the home still has growth headroom for the action, a
        # burst is its own problem to absorb (its demand-matched boots are
        # already underway): the peer must not spend a core booting for it.
        name = _homed_name("patient", 2, 0)
        loop = EventLoop()
        home = Invoker(loop, cores=8, invoker_id="invoker-0")
        thief = Invoker(loop, cores=8, invoker_id="invoker-1")
        spec = _action(small_python_profile, name)
        home.register(spec, max_containers=8)
        thief.register(spec, max_containers=8)
        scheduler = Scheduler(
            [home, thief], HashAffinityPolicy(), work_stealing=True,
            boot_steal_min_queue=2,
        )
        for _ in range(6):
            scheduler.submit(Invocation(action=name, payload=b"x"), lambda inv: None)
        assert home.queued_invocations(name) >= 2  # deep enough to tempt
        assert home.growth_headroom(name) > 0  # but the home can still grow
        assert thief.cold_starts == 0
        assert scheduler.steals == 0

    def test_steal_cancels_the_victims_surplus_boot(self, small_python_profile):
        # A backlogged boot whose demand was stolen away is cancelled
        # before it wastes a core.
        name = _homed_name("cancel", 2, 0)
        loop = EventLoop()
        home = Invoker(loop, cores=1, invoker_id="invoker-0")
        thief = Invoker(loop, cores=1, invoker_id="invoker-1")
        spec = _action(small_python_profile, name)
        # The home is registered only: its first submission requests a boot
        # that must wait behind... nothing, it boots.  Use two actions so
        # the home's core is busy booting another action first.
        other = _action(small_python_profile, f"{name}-other", mechanism="base")
        home.register(other, max_containers=1)
        home.register(spec, max_containers=1)
        thief.deploy(spec, containers=1, max_containers=1)
        scheduler = Scheduler([home, thief], HashAffinityPolicy(), work_stealing=False)
        # Occupy the home's core with the other action's boot, then queue
        # work for `spec`: its boot lands in the backlog.
        home.submit(Invocation(action=other.name, payload=b"x"), lambda inv: None)
        home.submit(Invocation(action=name, payload=b"x"), lambda inv: None)
        assert home.pending_boots == 1
        # Stealing the queued invocation removes the boot's reason to exist.
        entry = home.release_queued(name)
        assert home.pending_boots == 0
        assert home.boots_cancelled == 1
        thief.adopt(*entry)
        loop.run()
        assert entry[0].status is InvocationStatus.COMPLETED
        assert thief.steals == 1

    def test_stealing_disabled_by_default(self, small_python_profile):
        name = _homed_name("nosteal", 2, 0)
        loop = EventLoop()
        invokers = [
            Invoker(loop, cores=1, invoker_id=f"invoker-{i}") for i in range(2)
        ]
        spec = _action(small_python_profile, name)
        for invoker in invokers:
            invoker.deploy(spec, containers=1, max_containers=1)
        scheduler = Scheduler(invokers, HashAffinityPolicy())
        for _ in range(4):
            scheduler.submit(Invocation(action=name, payload=b"x"), lambda inv: None)
        loop.run()
        assert scheduler.steals == 0
        assert invokers[1].invocations_completed == 0  # peer never helped

    def test_release_queued_requires_waiting_work(self, small_python_profile):
        loop = EventLoop()
        invoker = Invoker(loop, cores=1)
        invoker.deploy(_action(small_python_profile, "empty"), containers=1)
        with pytest.raises(PlatformError):
            invoker.release_queued("empty")

    def test_routing_skew_reports_imbalance(self, small_python_profile):
        name = _homed_name("skew", 2, 0)
        loop = EventLoop()
        invokers = [
            Invoker(loop, cores=1, invoker_id=f"invoker-{i}") for i in range(2)
        ]
        spec = _action(small_python_profile, name)
        scheduler = Scheduler(invokers, HashAffinityPolicy())
        scheduler.deploy(spec, containers=1, max_containers=1)
        assert scheduler.routing_skew() == 0.0  # nothing routed yet
        for _ in range(4):
            scheduler.submit(Invocation(action=name, payload=b"x"), lambda inv: None)
        # Everything went to the home: max/mean = 4 / 2.
        assert scheduler.routing_skew() == pytest.approx(2.0)

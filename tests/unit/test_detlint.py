"""Tests for the determinism lint (``repro.devtools.detlint``).

Every rule D001–D006 is exercised with one *firing* fixture (the hazard
the rule exists to catch) and one *clean* fixture (the nearest legitimate
idiom, which must not fire) — so a rule that silently stops firing and a
rule that starts over-firing both break this suite.  The final class is
the self-check: the repository's own sim-domain tree and scripts must
lint clean, which is what makes the lint a regression gate rather than
an advisory tool.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.devtools.detlint.engine import Finding, lint_paths, lint_source
from repro.devtools.detlint.frontend import (
    DEFAULT_LINT_PATHS,
    EXIT_CLEAN,
    EXIT_ERROR,
    EXIT_FINDINGS,
    main as detlint_main,
)
from repro.devtools.detlint.policy import DEFAULT_POLICY, PathPolicy, PolicyEntry
from repro.devtools.detlint.report import render_human, render_json
from repro.devtools.detlint.rules import RULES, SUPPRESSIBLE_RULE_IDS

REPO_ROOT = Path(__file__).resolve().parents[2]

STRICT = PathPolicy(entries=())


def rules_fired(source: str, path: str = "src/repro/fixture.py") -> list:
    """Rule ids of unsuppressed findings for ``source`` under no waivers."""
    return [f.rule for f in lint_source(source, path, STRICT) if not f.suppressed]


# ---------------------------------------------------------------------------
# Rule catalogue sanity
# ---------------------------------------------------------------------------


class TestRuleCatalogue:
    def test_all_rules_documented(self):
        assert set(RULES) == {"D000", "D001", "D002", "D003", "D004", "D005", "D006"}
        for rule in RULES.values():
            assert rule.title
            assert rule.rationale

    def test_d000_is_not_suppressible(self):
        assert "D000" not in SUPPRESSIBLE_RULE_IDS
        assert SUPPRESSIBLE_RULE_IDS == frozenset(
            {"D001", "D002", "D003", "D004", "D005", "D006"}
        )


# ---------------------------------------------------------------------------
# D001 — wall-clock reads
# ---------------------------------------------------------------------------


class TestD001WallClock:
    def test_fires_on_time_module_reads(self):
        src = (
            "import time\n"
            "def stamp():\n"
            "    return time.time() + time.perf_counter()\n"
        )
        assert rules_fired(src) == ["D001", "D001"]

    def test_fires_on_datetime_now_and_aliased_import(self):
        src = (
            "from datetime import datetime as dt\n"
            "def stamp():\n"
            "    return dt.now()\n"
        )
        assert rules_fired(src) == ["D001"]

    def test_clean_on_virtual_clock(self):
        src = (
            "def stamp(clock):\n"
            "    return clock.now()\n"
        )
        assert rules_fired(src) == []

    def test_clean_on_unrelated_time_attribute(self):
        # A local object that merely *has* a ``time`` attribute is fine.
        src = (
            "def f(report):\n"
            "    return report.time\n"
        )
        assert rules_fired(src) == []


# ---------------------------------------------------------------------------
# D002 — ambient randomness
# ---------------------------------------------------------------------------


class TestD002AmbientRandomness:
    def test_fires_on_module_level_random_draw(self):
        src = (
            "import random\n"
            "def jitter():\n"
            "    return random.random() * random.gauss(0, 1)\n"
        )
        assert rules_fired(src) == ["D002", "D002"]

    def test_fires_on_unseeded_random_instance(self):
        src = (
            "import random\n"
            "def make_rng():\n"
            "    return random.Random()\n"
        )
        assert rules_fired(src) == ["D002"]

    def test_clean_on_injected_rng(self):
        src = (
            "def jitter(rng):\n"
            "    return rng.random() + rng.gauss(0, 1)\n"
        )
        assert rules_fired(src) == []

    def test_clean_on_seeded_random_instance(self):
        src = (
            "import random\n"
            "def make_rng(seed):\n"
            "    return random.Random(seed)\n"
        )
        assert rules_fired(src) == []


# ---------------------------------------------------------------------------
# D003 — escaping set iteration order
# ---------------------------------------------------------------------------


class TestD003SetOrder:
    def test_fires_on_for_loop_over_set(self):
        src = (
            "def drain(items):\n"
            "    pending = set(items)\n"
            "    for item in pending:\n"
            "        handle(item)\n"
        )
        assert rules_fired(src) == ["D003"]

    def test_fires_on_list_of_set(self):
        src = (
            "def snapshot(warm):\n"
            "    s = frozenset(warm)\n"
            "    return list(s)\n"
        )
        assert rules_fired(src) == ["D003"]

    def test_fires_on_set_typed_self_attribute(self):
        src = (
            "class Pool:\n"
            "    def __init__(self):\n"
            "        self.warm = set()\n"
            "    def drain(self):\n"
            "        return [c for c in self.warm]\n"
        )
        assert rules_fired(src) == ["D003"]

    def test_clean_when_sorted(self):
        src = (
            "def drain(items):\n"
            "    pending = set(items)\n"
            "    for item in sorted(pending):\n"
            "        handle(item)\n"
        )
        assert rules_fired(src) == []

    def test_clean_on_order_insensitive_consumers(self):
        src = (
            "def stats(s):\n"
            "    pending = set(s)\n"
            "    return len(pending), sum(pending), min(pending), any(pending)\n"
        )
        assert rules_fired(src) == []

    def test_clean_on_membership_test(self):
        src = (
            "def hit(s, x):\n"
            "    warm = set(s)\n"
            "    return x in warm\n"
        )
        assert rules_fired(src) == []


# ---------------------------------------------------------------------------
# D004 — id()-based ordering
# ---------------------------------------------------------------------------


class TestD004IdOrdering:
    def test_fires_on_id_sort_key(self):
        src = (
            "def pick(containers):\n"
            "    return sorted(containers, key=lambda c: id(c))\n"
        )
        assert rules_fired(src) == ["D004"]

    def test_fires_on_id_in_min_key(self):
        src = (
            "def pick(containers):\n"
            "    return min(containers, key=lambda c: (c.load, id(c)))\n"
        )
        assert rules_fired(src) == ["D004"]

    def test_clean_on_stable_identifier_key(self):
        src = (
            "def pick(containers):\n"
            "    return sorted(containers, key=lambda c: c.container_id)\n"
        )
        assert rules_fired(src) == []


# ---------------------------------------------------------------------------
# D005 — mutable module-level state / mutable default args
# ---------------------------------------------------------------------------


class TestD005MutableState:
    def test_fires_on_module_level_dict(self):
        src = "REGISTRY = {}\n"
        assert rules_fired(src) == ["D005"]

    def test_fires_on_module_level_counter(self):
        src = (
            "import itertools\n"
            "_counter = itertools.count()\n"
        )
        assert rules_fired(src) == ["D005"]

    def test_fires_on_mutable_default_arg(self):
        src = (
            "def record(event, sink=[]):\n"
            "    sink.append(event)\n"
        )
        assert rules_fired(src) == ["D005"]

    def test_clean_on_mapping_proxy_and_tuples(self):
        src = (
            "from types import MappingProxyType\n"
            "REGISTRY = MappingProxyType({'a': 1})\n"
            "ORDERED = ('a', 'b')\n"
            "FROZEN = frozenset({'a', 'b'})\n"
        )
        assert rules_fired(src) == []

    def test_clean_on_dunder_assignments(self):
        src = "__all__ = ['x']\n"
        assert rules_fired(src) == []

    def test_clean_on_instance_state(self):
        src = (
            "class Sim:\n"
            "    def __init__(self):\n"
            "        self.registry = {}\n"
        )
        assert rules_fired(src) == []


# ---------------------------------------------------------------------------
# D006 — ambient inputs
# ---------------------------------------------------------------------------


class TestD006AmbientInputs:
    def test_fires_on_environ_read(self):
        src = (
            "import os\n"
            "def scale():\n"
            "    return os.environ.get('REPRO_SCALE', '1')\n"
        )
        assert rules_fired(src) == ["D006"]

    def test_fires_on_urandom_and_uuid(self):
        src = (
            "import os\n"
            "import uuid\n"
            "def token():\n"
            "    return os.urandom(8), uuid.uuid4()\n"
        )
        assert rules_fired(src) == ["D006", "D006"]

    def test_clean_on_config_parameter(self):
        src = (
            "def scale(config):\n"
            "    return config.scale\n"
        )
        assert rules_fired(src) == []


# ---------------------------------------------------------------------------
# Suppressions
# ---------------------------------------------------------------------------


class TestSuppressions:
    def test_suppression_with_reason_is_honoured(self):
        src = (
            "import itertools\n"
            "_counter = itertools.count()  # detlint: ignore[D005] id mint, labels only\n"
        )
        findings = lint_source(src, "src/repro/fixture.py", STRICT)
        assert [f.rule for f in findings] == ["D005"]
        assert findings[0].suppressed
        assert findings[0].suppression_reason == "id mint, labels only"

    def test_suppression_without_reason_fires_d000(self):
        src = (
            "import itertools\n"
            "_counter = itertools.count()  # detlint: ignore[D005]\n"
        )
        fired = rules_fired(src)
        # The reason-less suppression is rejected (D000) and therefore
        # does not silence the underlying D005.
        assert "D000" in fired
        assert "D005" in fired

    def test_suppression_for_unknown_rule_fires_d000(self):
        src = "x = 1  # detlint: ignore[D999] no such rule\n"
        assert rules_fired(src) == ["D000"]

    def test_suppression_only_covers_named_rule(self):
        src = (
            "import random, itertools\n"
            "_c = itertools.count()  # detlint: ignore[D005] id mint, labels only\n"
            "def f():\n"
            "    return random.random()\n"
        )
        assert rules_fired(src) == ["D002"]

    def test_suppression_inside_docstring_is_inert(self):
        src = (
            '"""Docs mentioning # detlint: ignore[D005] are not suppressions."""\n'
            "REGISTRY = {}\n"
        )
        assert rules_fired(src) == ["D005"]

    def test_multi_rule_suppression(self):
        src = (
            "import os, uuid\n"
            "def f():\n"
            "    return os.urandom(4), {}.keys()  # detlint: ignore[D006] fixture reason\n"
        )
        findings = lint_source(src, "src/repro/fixture.py", STRICT)
        d006 = [f for f in findings if f.rule == "D006"]
        assert d006 and all(f.suppressed for f in d006)


# ---------------------------------------------------------------------------
# Path policy
# ---------------------------------------------------------------------------


class TestPathPolicy:
    def test_harness_waiver_matches_scripts(self):
        policy = PathPolicy()
        waivers = policy.waivers_for("/anywhere/checkout/scripts/run_thing.py")
        assert "D001" in waivers and "D005" in waivers and "D006" in waivers

    def test_sim_domain_gets_no_waivers(self):
        policy = PathPolicy()
        assert policy.waivers_for("src/repro/sim/events.py") == {}

    def test_experiments_waiver_is_d001_only(self):
        policy = PathPolicy()
        waivers = policy.waivers_for("src/repro/analysis/experiments.py")
        assert "D001" in waivers
        assert "D002" not in waivers and "D003" not in waivers

    def test_config_boundary_gets_d006_only(self):
        policy = PathPolicy()
        waivers = policy.waivers_for("/root/repo/src/repro/config.py")
        assert set(waivers) == {"D006"}

    def test_waived_rule_does_not_fire(self, tmp_path):
        harness = tmp_path / "scripts"
        harness.mkdir()
        target = harness / "probe.py"
        target.write_text("import time\nT0 = time.time()\n")
        report = lint_paths([str(target)], PathPolicy())
        assert [f.rule for f in report.unsuppressed] == []

    def test_same_code_fires_outside_waived_paths(self, tmp_path):
        sim = tmp_path / "src" / "repro" / "sim"
        sim.mkdir(parents=True)
        target = sim / "probe.py"
        target.write_text("import time\ndef f():\n    return time.time()\n")
        report = lint_paths([str(target)], PathPolicy())
        assert [f.rule for f in report.unsuppressed] == ["D001"]

    def test_every_policy_entry_names_a_known_rule_and_reason(self):
        for entry in DEFAULT_POLICY:
            assert entry.rule_id in RULES
            assert entry.reason

    def test_custom_policy_entries(self):
        policy = PathPolicy(entries=(PolicyEntry("D003", "gen/*.py", "generated"),))
        assert policy.waivers_for("a/b/gen/x.py") == {"D003": "generated"}
        assert policy.waivers_for("a/b/other/x.py") == {}


# ---------------------------------------------------------------------------
# Reports: JSON schema and human rendering
# ---------------------------------------------------------------------------


class TestReports:
    def _report_for(self, tmp_path):
        target = tmp_path / "probe.py"
        target.write_text(
            "import time\n"
            "import itertools\n"
            "def f():\n"
            "    return time.time()\n"
            "_c = itertools.count()  # detlint: ignore[D005] fixture reason\n"
        )
        return lint_paths([str(target)], PathPolicy(entries=()))

    def test_json_schema(self, tmp_path):
        report = self._report_for(tmp_path)
        payload = json.loads(render_json(report))
        assert payload["version"] == 1
        assert payload["files_scanned"] == 1
        assert payload["counts"]["total"] == 2
        assert payload["counts"]["suppressed"] == 1
        assert payload["counts"]["unsuppressed"] == 1
        assert payload["counts"]["by_rule"] == {"D001": 1, "D005": 1}
        for finding in payload["findings"]:
            assert set(finding) == {
                "rule", "path", "line", "col", "message",
                "suppressed", "suppression_reason",
            }
        suppressed = [f for f in payload["findings"] if f["suppressed"]]
        assert suppressed[0]["suppression_reason"] == "fixture reason"

    def test_human_rendering(self, tmp_path):
        report = self._report_for(tmp_path)
        text = render_human(report)
        assert "D001" in text
        assert "1 finding(s), 1 suppressed" in text
        # Suppressed findings appear only on request.
        assert "D005" not in text
        assert "D005" in render_human(report, show_suppressed=True)

    def test_findings_sorted_and_deterministic(self, tmp_path):
        a = tmp_path / "a.py"
        b = tmp_path / "b.py"
        a.write_text("import time\nX = time.time()\nY = {}\n")
        b.write_text("import random\nZ = random.random()\n")
        r1 = lint_paths([str(tmp_path)], PathPolicy(entries=()))
        r2 = lint_paths([str(b), str(a)], PathPolicy(entries=()))
        key = [(f.path, f.line, f.col, f.rule) for f in r1.findings]
        assert key == sorted(key)
        assert [(f.rule, f.line) for f in r1.findings] == [
            (f.rule, f.line) for f in r2.findings
        ]


# ---------------------------------------------------------------------------
# Front-end: exit codes
# ---------------------------------------------------------------------------


class TestFrontend:
    def test_exit_clean(self, tmp_path, capsys):
        target = tmp_path / "pure.py"
        target.write_text("def f(x):\n    return x + 1\n")
        assert detlint_main([str(target)]) == EXIT_CLEAN
        assert "0 finding(s)" in capsys.readouterr().out

    def test_exit_findings(self, tmp_path, capsys):
        target = tmp_path / "dirty.py"
        target.write_text("import time\nT = time.time()\n")
        assert detlint_main([str(target)]) == EXIT_FINDINGS
        capsys.readouterr()

    def test_exit_error_on_missing_path(self, capsys):
        assert detlint_main([str(REPO_ROOT / "no-such-dir")]) == EXIT_ERROR
        capsys.readouterr()

    def test_json_output_flag(self, tmp_path, capsys):
        target = tmp_path / "dirty.py"
        target.write_text("import time\nT = time.time()\n")
        assert detlint_main([str(target), "--format", "json"]) == EXIT_FINDINGS
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"]["unsuppressed"] == 1

    def test_syntax_error_reports_d000(self, tmp_path, capsys):
        target = tmp_path / "broken.py"
        target.write_text("def f(:\n")
        assert detlint_main([str(target)]) == EXIT_FINDINGS
        assert "D000" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# Self-check: the repository lints clean (the regression gate)
# ---------------------------------------------------------------------------


class TestRepositoryIsClean:
    def test_sim_domain_and_scripts_lint_clean(self):
        paths = [str(REPO_ROOT / p) for p in DEFAULT_LINT_PATHS]
        report = lint_paths(paths, PathPolicy())
        offenders = [
            f"{f.path}:{f.line}: {f.rule} {f.message}" for f in report.unsuppressed
        ]
        assert not offenders, (
            "determinism lint regression — fix the finding or add a justified "
            "suppression:\n" + "\n".join(offenders)
        )

    def test_every_suppression_in_tree_carries_a_reason(self):
        paths = [str(REPO_ROOT / p) for p in DEFAULT_LINT_PATHS]
        report = lint_paths(paths, PathPolicy())
        for finding in report.suppressed:
            assert finding.suppression_reason, (
                f"{finding.path}:{finding.line} suppressed without a reason"
            )

    def test_cli_lint_subcommand_is_wired(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.cli", "lint", "--format", "json"],
            capture_output=True,
            text=True,
            cwd=str(REPO_ROOT),
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == EXIT_CLEAN, proc.stdout + proc.stderr
        payload = json.loads(proc.stdout)
        assert payload["counts"]["unsuppressed"] == 0

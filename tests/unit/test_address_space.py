"""Tests for the simulated address space: mappings, faults, tracking, CoW."""

from __future__ import annotations

import pytest

from repro.config import PAGE_SIZE
from repro.errors import MappingError, SegmentationFault
from repro.mem.address_space import AddressSpace
from repro.mem.page import Protection
from repro.mem.vma import VmaKind
from repro.sim.costs import CostModel


@pytest.fixture
def space() -> AddressSpace:
    return AddressSpace(CostModel())


class TestMapping:
    def test_mmap_creates_page_aligned_vma(self, space):
        vma = space.mmap(3 * PAGE_SIZE + 1)
        assert vma.num_pages == 4
        assert vma.start % PAGE_SIZE == 0
        assert space.total_mapped_pages == 4

    def test_mmap_rejects_nonpositive_length(self, space):
        with pytest.raises(MappingError):
            space.mmap(0)

    def test_mmap_fixed_address(self, space):
        vma = space.mmap(PAGE_SIZE, address=0x10000000)
        assert vma.start == 0x10000000

    def test_mmap_fixed_address_must_be_aligned(self, space):
        with pytest.raises(MappingError):
            space.mmap(PAGE_SIZE, address=123)

    def test_mmap_overlap_rejected(self, space):
        space.mmap(4 * PAGE_SIZE, address=0x10000000)
        with pytest.raises(MappingError):
            space.mmap(PAGE_SIZE, address=0x10000000 + PAGE_SIZE)

    def test_mmap_populate_makes_pages_resident(self, space):
        vma = space.mmap(4 * PAGE_SIZE, populate=True)
        assert space.resident_pages == 4
        assert all(space.page(p) is not None for p in vma.pages())

    def test_munmap_removes_pages_and_mapping(self, space):
        vma = space.mmap(4 * PAGE_SIZE, populate=True)
        dropped = space.munmap(vma.start, vma.length)
        assert dropped == 4
        assert space.total_mapped_pages == 0
        assert space.resident_pages == 0

    def test_munmap_partial_splits_vma(self, space):
        vma = space.mmap(4 * PAGE_SIZE, populate=True)
        space.munmap(vma.start + PAGE_SIZE, PAGE_SIZE)
        assert space.total_mapped_pages == 3
        assert len(space.vmas) == 2

    def test_mprotect_changes_protection(self, space):
        vma = space.mmap(2 * PAGE_SIZE)
        space.mprotect(vma.start, PAGE_SIZE, Protection.r())
        protections = {v.prot for v in space.vmas}
        assert Protection.r() in protections
        assert Protection.rw() in protections

    def test_mprotect_unmapped_range_rejected(self, space):
        with pytest.raises(MappingError):
            space.mprotect(0x500000, PAGE_SIZE, Protection.r())

    def test_madvise_dontneed_drops_contents_keeps_mapping(self, space):
        vma = space.mmap(2 * PAGE_SIZE)
        space.write_page(vma.first_page, b"data")
        dropped = space.madvise_dontneed(vma.start, vma.length)
        assert dropped == 1
        assert space.total_mapped_pages == 2
        assert space.page_content(vma.first_page) == b""

    def test_map_stack_is_separate_region(self, space):
        stack = space.map_stack(8 * PAGE_SIZE)
        assert stack.kind is VmaKind.STACK
        assert space.find_vma(stack.start) == stack


class TestBrk:
    def test_brk_grows_heap(self, space):
        new_brk = space.set_brk(space.brk_base + 4 * PAGE_SIZE)
        assert new_brk == space.brk_base + 4 * PAGE_SIZE
        heap = space.find_vma(space.brk_base)
        assert heap is not None and heap.kind is VmaKind.HEAP

    def test_brk_shrink_drops_pages(self, space):
        space.set_brk(space.brk_base + 4 * PAGE_SIZE)
        space.write_page(space.brk_base // PAGE_SIZE + 3, b"top")
        space.set_brk(space.brk_base + PAGE_SIZE)
        assert space.page(space.brk_base // PAGE_SIZE + 3) is None

    def test_brk_below_base_rejected(self, space):
        with pytest.raises(MappingError):
            space.set_brk(space.brk_base - PAGE_SIZE)

    def test_sbrk_adjusts_relative(self, space):
        space.sbrk(2 * PAGE_SIZE)
        assert space.brk == space.brk_base + 2 * PAGE_SIZE

    def test_brk_shrink_to_base_removes_heap_vma(self, space):
        space.set_brk(space.brk_base + 2 * PAGE_SIZE)
        space.set_brk(space.brk_base)
        assert space.find_vma(space.brk_base) is None


class TestAccessAndFaults:
    def test_write_to_unmapped_address_faults(self, space):
        with pytest.raises(SegmentationFault):
            space.write(0xDEAD0000, b"x")

    def test_write_to_readonly_mapping_faults(self, space):
        vma = space.mmap(PAGE_SIZE, Protection.r())
        with pytest.raises(SegmentationFault):
            space.write_page(vma.first_page, b"x")

    def test_read_of_unmapped_address_faults(self, space):
        with pytest.raises(SegmentationFault):
            space.read(0xDEAD0000)

    def test_first_write_takes_minor_fault(self, space):
        vma = space.mmap(PAGE_SIZE)
        space.write_page(vma.first_page, b"hello")
        assert space.meter.counters.minor_faults == 1
        assert space.page_content(vma.first_page) == b"hello"

    def test_second_write_to_same_page_takes_no_fault(self, space):
        vma = space.mmap(PAGE_SIZE)
        space.write_page(vma.first_page, b"a")
        space.write_page(vma.first_page, b"b")
        assert space.meter.counters.minor_faults == 1
        assert space.meter.counters.soft_dirty_faults == 0

    def test_soft_dirty_fault_only_after_tracking_armed(self, space):
        vma = space.mmap(PAGE_SIZE, populate=True)
        space.write_page(vma.first_page, b"a")
        assert space.meter.counters.soft_dirty_faults == 0
        space.clear_soft_dirty()
        space.write_page(vma.first_page, b"b")
        assert space.meter.counters.soft_dirty_faults == 1

    def test_soft_dirty_bits_track_writes(self, space):
        vma = space.mmap(4 * PAGE_SIZE, populate=True)
        space.clear_soft_dirty()
        assert space.soft_dirty_page_numbers() == set()
        space.write_page(vma.first_page, b"x")
        space.write_page(vma.first_page + 2, b"y")
        assert space.soft_dirty_page_numbers() == {vma.first_page, vma.first_page + 2}

    def test_write_range_dirties_every_page(self, space):
        vma = space.mmap(10 * PAGE_SIZE)
        space.write_range(vma.first_page, 10, b"bulk")
        assert len(space.soft_dirty_page_numbers()) == 10
        assert space.meter.counters.pages_written == 10

    def test_read_page_returns_zero_content_for_untouched_page(self, space):
        vma = space.mmap(PAGE_SIZE)
        assert space.read_page(vma.first_page) == b""

    def test_touch_read_range_charges_reads(self, space):
        vma = space.mmap(8 * PAGE_SIZE, populate=True)
        space.touch_read_range(vma.first_page, 8)
        assert space.meter.counters.pages_read == 8

    def test_meter_checkpoint_delta(self, space):
        vma = space.mmap(4 * PAGE_SIZE)
        checkpoint = space.meter.checkpoint()
        space.write_range(vma.first_page, 4, b"x")
        delta = space.meter.since(checkpoint)
        assert delta.pages_written == 4
        assert delta.minor_faults == 4
        assert delta.cost_seconds > 0


class TestKernelSideAccess:
    def test_kernel_write_does_not_charge_function_faults(self, space):
        vma = space.mmap(PAGE_SIZE)
        space.kernel_write_page(vma.first_page, b"restored")
        assert space.meter.counters.minor_faults == 0
        assert space.page_content(vma.first_page) == b"restored"

    def test_kernel_write_outside_mapping_faults(self, space):
        with pytest.raises(SegmentationFault):
            space.kernel_write_page(0xDEAD, b"x")

    def test_kernel_read_of_non_resident_page_is_zero(self, space):
        vma = space.mmap(PAGE_SIZE)
        assert space.kernel_read_page(vma.first_page) == b""

    def test_kernel_drop_page_removes_residency(self, space):
        vma = space.mmap(PAGE_SIZE, populate=True)
        space.kernel_drop_page(vma.first_page)
        assert space.page(vma.first_page) is None


class TestFork:
    def test_fork_shares_content_copy_on_write(self, space):
        vma = space.mmap(2 * PAGE_SIZE)
        space.write_page(vma.first_page, b"parent")
        child = space.fork()
        child.write_page(vma.first_page, b"child")
        assert space.page_content(vma.first_page) == b"parent"
        assert child.page_content(vma.first_page) == b"child"

    def test_child_write_charges_cow_fault(self, space):
        vma = space.mmap(PAGE_SIZE)
        space.write_page(vma.first_page, b"p")
        child = space.fork()
        child.write_page(vma.first_page, b"c")
        assert child.meter.counters.cow_faults == 1

    def test_parent_write_after_fork_also_pays_cow(self, space):
        vma = space.mmap(PAGE_SIZE)
        space.write_page(vma.first_page, b"p")
        space.fork()
        space.write_page(vma.first_page, b"p2")
        assert space.meter.counters.cow_faults == 1

    def test_child_first_read_pays_first_touch(self, space):
        vma = space.mmap(4 * PAGE_SIZE)
        space.write_range(vma.first_page, 4, b"p")
        child = space.fork()
        child.touch_read_range(vma.first_page, 4)
        assert child.meter.counters.first_touch_faults == 4

    def test_fork_preserves_layout(self, space):
        space.mmap(2 * PAGE_SIZE)
        space.set_brk(space.brk_base + PAGE_SIZE)
        child = space.fork()
        assert child.layout() == space.layout()


class TestWriteProtection:
    def test_uffd_handler_invoked_on_write(self, space):
        vma = space.mmap(2 * PAGE_SIZE, populate=True)
        written = []
        space.arm_write_protection(written.append)
        space.write_page(vma.first_page, b"x")
        assert written == [vma.first_page]
        assert space.meter.counters.uffd_faults == 1

    def test_uffd_fault_charged_once_per_page(self, space):
        vma = space.mmap(PAGE_SIZE, populate=True)
        space.arm_write_protection()
        space.write_page(vma.first_page, b"a")
        space.write_page(vma.first_page, b"b")
        assert space.meter.counters.uffd_faults == 1

    def test_disarm_stops_faults(self, space):
        vma = space.mmap(PAGE_SIZE, populate=True)
        space.arm_write_protection()
        space.disarm_write_protection()
        space.write_page(vma.first_page, b"a")
        assert space.meter.counters.uffd_faults == 0

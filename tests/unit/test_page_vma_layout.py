"""Tests for pages, VMAs, the pagemap view and layout diffing."""

from __future__ import annotations

import pytest

from repro.config import PAGE_SIZE
from repro.errors import MappingError, PagemapError
from repro.mem.address_space import AddressSpace
from repro.mem.layout import MemoryLayout, VmaRecord, diff_layouts
from repro.mem.page import Frame, Page, Protection
from repro.mem.pagemap import PagemapView
from repro.mem.vma import Vma, VmaKind


class TestProtection:
    def test_describe_matches_maps_format(self):
        assert Protection.rw().describe() == "rw-"
        assert Protection.rx().describe() == "r-x"
        assert Protection.r().describe() == "r--"
        assert Protection.NONE.describe() == "---"


class TestFrameAndPage:
    def test_frame_refcounting(self):
        frame = Frame(b"x")
        frame.share()
        assert frame.refcount == 2
        frame.release()
        assert frame.refcount == 1

    def test_frame_release_underflow(self):
        frame = Frame()
        frame.release()
        with pytest.raises(ValueError):
            frame.release()

    def test_frame_copy_is_independent(self):
        frame = Frame(b"orig")
        copy = frame.copy()
        copy.content = b"new"
        assert frame.content == b"orig"

    def test_page_clone_for_fork_shares_frame(self):
        page = Page(Frame(b"data"))
        clone = page.clone_for_fork()
        assert clone.frame is page.frame
        assert clone.cow is True
        assert clone.tlb_cold is True
        assert page.frame.refcount == 2


class TestVma:
    def test_bounds_must_be_page_aligned(self):
        with pytest.raises(MappingError):
            Vma(start=1, end=PAGE_SIZE, prot=Protection.rw())

    def test_positive_length_required(self):
        with pytest.raises(MappingError):
            Vma(start=PAGE_SIZE, end=PAGE_SIZE, prot=Protection.rw())

    def test_page_accessors(self):
        vma = Vma(start=2 * PAGE_SIZE, end=5 * PAGE_SIZE, prot=Protection.rw())
        assert vma.num_pages == 3
        assert vma.first_page == 2
        assert vma.last_page == 4
        assert list(vma.pages()) == [2, 3, 4]

    def test_contains_and_overlaps(self):
        vma = Vma(start=0, end=2 * PAGE_SIZE, prot=Protection.rw())
        assert vma.contains(PAGE_SIZE)
        assert not vma.contains(2 * PAGE_SIZE)
        assert vma.overlaps(PAGE_SIZE, 3 * PAGE_SIZE)
        assert not vma.overlaps(2 * PAGE_SIZE, 3 * PAGE_SIZE)

    def test_describe_renders_like_maps(self):
        vma = Vma(start=0, end=PAGE_SIZE, prot=Protection.rx(), name="libc.so")
        assert "r-x" in vma.describe()
        assert "libc.so" in vma.describe()


class TestPagemapView:
    def test_scan_finds_only_dirty_pages(self):
        space = AddressSpace()
        vma = space.mmap(8 * PAGE_SIZE, populate=True)
        space.clear_soft_dirty()
        space.write_page(vma.first_page + 3, b"x")
        result = PagemapView(space).scan_mapped()
        assert result.dirty_pages == (vma.first_page + 3,)
        assert result.scanned_pages == 8

    def test_scan_cost_proportional_to_mapped_pages(self):
        space = AddressSpace()
        space.mmap(100 * PAGE_SIZE)
        small = PagemapView(space).scan_mapped().cost_seconds
        space.mmap(900 * PAGE_SIZE)
        large = PagemapView(space).scan_mapped().cost_seconds
        assert large == pytest.approx(small * 10, rel=0.01)

    def test_entry_reports_present_and_dirty(self):
        space = AddressSpace()
        vma = space.mmap(2 * PAGE_SIZE)
        space.write_page(vma.first_page, b"x")
        view = PagemapView(space)
        entry = view.entry(vma.first_page)
        assert entry.present and entry.soft_dirty
        other = view.entry(vma.first_page + 1)
        assert not other.present

    def test_entry_raw_encoding_sets_bits(self):
        space = AddressSpace()
        vma = space.mmap(PAGE_SIZE)
        space.write_page(vma.first_page, b"x")
        raw = PagemapView(space).entry(vma.first_page).to_raw()
        assert raw & (1 << 55)
        assert raw & (1 << 63)

    def test_negative_page_number_rejected(self):
        space = AddressSpace()
        with pytest.raises(PagemapError):
            PagemapView(space).entry(-1)

    def test_scan_range_restricts_to_window(self):
        space = AddressSpace()
        vma = space.mmap(10 * PAGE_SIZE, populate=True)
        space.clear_soft_dirty()
        space.write_page(vma.first_page, b"x")
        space.write_page(vma.first_page + 9, b"y")
        result = PagemapView(space).scan_range(vma.first_page, 5)
        assert result.dirty_pages == (vma.first_page,)


def _record(start_page: int, pages: int, prot=Protection.rw(), kind=VmaKind.ANON, name=""):
    return VmaRecord(
        start=start_page * PAGE_SIZE,
        end=(start_page + pages) * PAGE_SIZE,
        prot=prot,
        kind=kind,
        name=name,
    )


class TestLayoutDiff:
    def test_identical_layouts_produce_empty_diff(self):
        layout = MemoryLayout(records=(_record(1, 4, name="a"),), brk=0x2000000)
        diff = diff_layouts(layout, layout)
        assert diff.is_empty
        assert diff.num_operations == 0

    def test_added_region_detected(self):
        old = MemoryLayout(records=(_record(1, 4, name="a"),), brk=0)
        new = MemoryLayout(records=(_record(1, 4, name="a"), _record(10, 2, name="b")), brk=0)
        diff = diff_layouts(old, new)
        assert [r.name for r in diff.added] == ["b"]
        assert not diff.removed

    def test_removed_region_detected(self):
        old = MemoryLayout(records=(_record(1, 4, name="a"), _record(10, 2, name="b")), brk=0)
        new = MemoryLayout(records=(_record(1, 4, name="a"),), brk=0)
        diff = diff_layouts(old, new)
        assert [r.name for r in diff.removed] == ["b"]

    def test_grown_region_detected(self):
        old = MemoryLayout(records=(_record(1, 4, name="a"),), brk=0)
        new = MemoryLayout(records=(_record(1, 8, name="a"),), brk=0)
        diff = diff_layouts(old, new)
        assert len(diff.changed) == 1
        assert diff.changed[0].grew
        assert diff.changed[0].page_delta == 4

    def test_shrunk_region_detected(self):
        old = MemoryLayout(records=(_record(1, 8, name="a"),), brk=0)
        new = MemoryLayout(records=(_record(1, 4, name="a"),), brk=0)
        diff = diff_layouts(old, new)
        assert diff.changed[0].shrank

    def test_protection_change_detected(self):
        old = MemoryLayout(records=(_record(1, 4, name="a", prot=Protection.rw()),), brk=0)
        new = MemoryLayout(records=(_record(1, 4, name="a", prot=Protection.r()),), brk=0)
        diff = diff_layouts(old, new)
        assert diff.changed[0].prot_changed

    def test_brk_change_detected(self):
        old = MemoryLayout(records=(), brk=100 * PAGE_SIZE)
        new = MemoryLayout(records=(), brk=200 * PAGE_SIZE)
        diff = diff_layouts(old, new)
        assert diff.brk_changed
        assert diff.num_operations == 1

    def test_num_operations_counts_all_changes(self):
        old = MemoryLayout(
            records=(_record(1, 4, name="a"), _record(10, 2, name="gone")), brk=0
        )
        new = MemoryLayout(
            records=(_record(1, 8, name="a"), _record(20, 2, name="new")), brk=PAGE_SIZE
        )
        diff = diff_layouts(old, new)
        # one added, one removed, one grown, one brk change
        assert diff.num_operations == 4

    def test_layout_total_pages(self):
        layout = MemoryLayout(records=(_record(1, 4), _record(10, 6)), brk=0)
        assert layout.total_pages == 10
        assert layout.num_vmas == 2

    def test_layout_find(self):
        record = _record(1, 4, name="a")
        layout = MemoryLayout(records=(record,), brk=0)
        assert layout.find(PAGE_SIZE) == record
        assert layout.find(100 * PAGE_SIZE) is None

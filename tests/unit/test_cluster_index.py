"""Unit tests for the incrementally-maintained cluster index.

Covers the index structures directly (lazy heap, warm sets, queue-depth
maps, compaction), the invoker surfaces that feed them (O(1) load,
dirty-flag snapshot caching, Counter-based tenant aggregation), and the
scheduler's indexed query paths against their scan references
(least-loaded argmin, warm-aware scoring, steal-victim search).
"""

from __future__ import annotations

from typing import List

from repro.faas.action import ActionSpec
from repro.faas.index import ClusterIndex, _HEAP_SLACK_FACTOR
from repro.faas.invoker import Invoker
from repro.faas.request import Invocation
from repro.faas.scheduler import (
    LeastLoadedPolicy,
    RoundRobinPolicy,
    Scheduler,
    WarmAwarePolicy,
)
from repro.runtime.profiles import FunctionProfile, Language
from repro.sim.events import EventLoop


def _profile(name: str, exec_seconds: float = 0.01) -> FunctionProfile:
    return FunctionProfile(
        name=name,
        language=Language.PYTHON,
        suite="unit",
        exec_seconds=exec_seconds,
        exec_jitter=0.0,
        total_kpages=1.0,
        dirtied_kpages=0.1,
        regions_mapped_per_invocation=1,
        regions_unmapped_per_invocation=1,
        heap_growth_pages=2,
        input_bytes=64,
        output_bytes=64,
    )


def _spec(name: str) -> ActionSpec:
    return ActionSpec.for_profile(_profile(name), "base", name=name)


def _cluster(num_invokers: int, cores: int = 1):
    loop = EventLoop()
    invokers = [
        Invoker(loop, cores=cores, invoker_id=f"invoker-{i}")
        for i in range(num_invokers)
    ]
    return loop, invokers


def _scan_least_loaded(invokers: List[Invoker]) -> int:
    return min(range(len(invokers)), key=lambda i: (invokers[i].load, i))


class TestClusterIndexStructures:
    def test_attach_backfills_existing_state(self):
        # Deployments that happened before the index existed must be
        # visible the moment it attaches.
        loop, invokers = _cluster(3)
        invokers[1].deploy(_spec("act-a"), containers=1, max_containers=2)
        invokers[2].register(_spec("act-a"), max_containers=1)
        invokers[1].submit(Invocation(action="act-a", payload=b"x"), lambda inv: None)
        invokers[1].submit(Invocation(action="act-a", payload=b"x"), lambda inv: None)
        index = ClusterIndex(invokers)
        index.verify()
        assert index.load_of(1) == invokers[1].load
        assert index.least_loaded() == _scan_least_loaded(invokers)

    def test_least_loaded_tracks_transitions(self):
        loop, invokers = _cluster(3)
        index = ClusterIndex(invokers)
        for invoker in invokers:
            invoker.deploy(_spec("act-a"), containers=1, max_containers=1)
        assert index.least_loaded() == 0  # all equal: lowest position wins
        invokers[0].submit(Invocation(action="act-a", payload=b"x"), lambda inv: None)
        assert index.least_loaded() == 1
        invokers[1].submit(Invocation(action="act-a", payload=b"x"), lambda inv: None)
        assert index.least_loaded() == 2
        loop.run(until=10.0)  # everything drains
        index.verify()
        assert index.least_loaded() == 0

    def test_heap_compaction_keeps_size_bounded_and_argmin_exact(self):
        loop, invokers = _cluster(2)
        index = ClusterIndex(invokers)
        for invoker in invokers:
            invoker.deploy(_spec("act-a"), containers=1, max_containers=1)
        # Thousands of load transitions on two invokers force many stale
        # heap entries; compaction must keep the heap near-live.
        for round_number in range(400):
            target = invokers[round_number % 2]
            target.submit(
                Invocation(action="act-a", payload=b"x"), lambda inv: None
            )
            loop.run(until=loop.now + 1.0)
        assert index.compactions > 0
        assert len(index._heap) <= _HEAP_SLACK_FACTOR * len(invokers) + 8 + 1
        index.verify()
        assert index.least_loaded() == _scan_least_loaded(invokers)

    def test_depth_and_warmth_maps_stay_sparse(self):
        loop, invokers = _cluster(2)
        index = ClusterIndex(invokers)
        invokers[0].deploy(_spec("act-a"), containers=1, max_containers=1)
        assert not index.any_queued()
        assert index.depths_for("act-a") == {}
        # One running + two queued on a 1-core invoker.
        for _ in range(3):
            invokers[0].submit(
                Invocation(action="act-a", payload=b"x"), lambda inv: None
            )
        assert index.any_queued()
        assert index.depths_for("act-a") == {0: 2}
        assert list(index.queued_actions()) == ["act-a"]
        loop.run(until=10.0)
        # Drained queues leave no empty inner maps behind.
        assert not index.any_queued()
        assert index._depths == {}
        assert index._warm == {"act-a": {0}}
        index.verify()

    def test_warm_aware_choose_matches_reference_scan(self):
        # Drive the cluster into a mixed warm/cold, mixed-load state and
        # compare the indexed argmin against the snapshot-based reference
        # (`WarmAwarePolicy.choose`) for every action and penalty.
        loop, invokers = _cluster(4)
        index = ClusterIndex(invokers)
        specs = [_spec(f"act-{i}") for i in range(3)]
        invokers[0].deploy(specs[0], containers=1, max_containers=1)
        invokers[1].deploy(specs[0], containers=1, max_containers=1)
        invokers[1].deploy(specs[1], containers=1, max_containers=1)
        invokers[3].deploy(specs[2], containers=1, max_containers=1)
        for invoker in invokers:
            for spec in specs:
                if not invoker.hosts(spec.name):
                    invoker.register(spec, max_containers=1)
        for _ in range(2):
            invokers[1].submit(
                Invocation(action="act-0", payload=b"x"), lambda inv: None
            )
        invokers[3].submit(
            Invocation(action="act-2", payload=b"x"), lambda inv: None
        )
        index.verify()
        policy = WarmAwarePolicy()
        snapshots = [invoker.snapshot() for invoker in invokers]
        for action in ("act-0", "act-1", "act-2"):
            for penalty in (0.0, 0.5, 2.0, 32.0):
                expected = policy.choose(
                    snapshots, Invocation(action=action, payload=b"")
                ) if penalty == policy.penalty_for(action) else min(
                    range(len(snapshots)),
                    key=lambda i: (
                        snapshots[i].load
                        + (0.0 if snapshots[i].warmth(action) > 0 else penalty),
                        snapshots[i].load,
                        i,
                    ),
                )
                assert index.warm_aware_choose(action, penalty) == expected

    def test_warm_aware_choose_with_no_warm_invoker_is_least_loaded(self):
        loop, invokers = _cluster(3)
        index = ClusterIndex(invokers)
        # "act-x" deployed nowhere: everyone pays the same penalty.
        assert index.warm_aware_choose("act-x", 32.0) == index.least_loaded()


class TestSchedulerIndexWiring:
    def test_index_built_only_when_a_consumer_exists(self):
        loop, invokers = _cluster(3)
        assert Scheduler(invokers, WarmAwarePolicy()).index is not None
        assert Scheduler(invokers, LeastLoadedPolicy()).index is not None
        assert Scheduler(
            invokers, RoundRobinPolicy(), work_stealing=True
        ).index is not None
        # No index consumer: round-robin without stealing.
        assert Scheduler(invokers, RoundRobinPolicy()).index is None
        # Disabled by config flag.
        assert Scheduler(
            invokers, WarmAwarePolicy(), cluster_index=False
        ).index is None
        # Single invoker: no routing decision to index.
        loop2, solo = _cluster(1)
        assert Scheduler(solo, WarmAwarePolicy()).index is None

    def test_indexed_find_steal_matches_scan(self):
        # One saturated growth-exhausted victim, one idle warm thief: the
        # indexed and scan steal searches must agree at every point of
        # the drain, including "no steal possible".
        loop, invokers = _cluster(2)
        scheduler = Scheduler(
            invokers, RoundRobinPolicy(), work_stealing=True,
            boot_steal_min_queue=2,
        )
        assert scheduler.index is not None
        spec = _spec("act-a")
        invokers[0].deploy(spec, containers=1, max_containers=1)
        invokers[1].deploy(spec, containers=1, max_containers=1)
        for _ in range(6):
            invokers[0].submit(
                Invocation(action="act-a", payload=b"x"), lambda inv: None
            )
            # The scheduler's own rebalance is what normally runs; here
            # the two search implementations are compared directly.
            for thief in invokers:
                assert (
                    scheduler._find_steal_indexed(thief)
                    == scheduler._find_steal(thief)
                )
        while loop.step():
            for thief in invokers:
                assert (
                    scheduler._find_steal_indexed(thief)
                    == scheduler._find_steal(thief)
                )
        scheduler.index.verify()


class TestInvokerSurfaces:
    def test_snapshot_cached_until_state_changes(self):
        loop, invokers = _cluster(1)
        invoker = invokers[0]
        invoker.deploy(_spec("act-a"), containers=1, max_containers=2)
        first = invoker.snapshot()
        assert invoker.snapshot() is first  # no mutation: same object
        invoker.submit(Invocation(action="act-a", payload=b"x"), lambda inv: None)
        second = invoker.snapshot()
        assert second is not first
        assert second.load != first.load
        assert invoker.snapshot() is second
        loop.run(until=10.0)
        assert invoker.snapshot() is not second  # completion invalidated it

    def test_load_matches_snapshot_load(self):
        loop, invokers = _cluster(2, cores=2)
        invoker = invokers[0]
        invoker.deploy(_spec("act-a"), containers=1, max_containers=2)
        for _ in range(4):
            invoker.submit(
                Invocation(action="act-a", payload=b"x"), lambda inv: None
            )
            assert invoker.load == invoker.snapshot().load
            assert invoker.queued_uncovered() >= 0
        loop.run(until=10.0)
        assert invoker.load == invoker.snapshot().load == 0

    def test_queued_by_tenant_aggregates_with_counter(self):
        loop, invokers = _cluster(2)
        scheduler = Scheduler(invokers, RoundRobinPolicy())
        spec_a, spec_b = _spec("act-a"), _spec("act-b")
        for invoker in invokers:
            invoker.deploy(spec_a, containers=1, max_containers=1)
            invoker.deploy(spec_b, containers=1, max_containers=1)
        # Fill both invokers' queues from two tenants across two actions.
        for tenant, action, count in (
            ("alice", "act-a", 3),
            ("bob", "act-a", 2),
            ("bob", "act-b", 4),
        ):
            for _ in range(count):
                scheduler.submit(
                    Invocation(action=action, payload=b"x", caller=tenant),
                    lambda inv: None,
                )
        totals = scheduler.queued_by_tenant()
        assert totals == {
            tenant: sum(
                invoker.queued_by_tenant().get(tenant, 0)
                for invoker in invokers
            )
            for tenant in ("alice", "bob")
        }
        # Cluster-wide totals equal submissions minus whatever already
        # occupies a core (one per invoker per action at most here).
        running = sum(inv.cores_in_use for inv in invokers)
        assert sum(totals.values()) == 9 - running

"""Tests for the cluster substrate: scheduling, dynamic pools, backpressure."""

from __future__ import annotations

import pytest

from repro.config import CLUSTER_CONFIG, SimulationConfig
from repro.errors import ActionNotFoundError, PlatformError
from repro.faas.action import ActionSpec
from repro.faas.cluster import FaaSCluster
from repro.faas.container import ContainerState
from repro.faas.invoker import Invoker
from repro.faas.loadgen import MultiActionSaturatingClient
from repro.faas.platform import FaaSPlatform
from repro.faas.request import Invocation, InvocationStatus
from repro.faas.scheduler import (
    HashAffinityPolicy,
    LeastLoadedPolicy,
    RoundRobinPolicy,
    Scheduler,
    create_policy,
    home_index,
)
from repro.runtime.profiles import FunctionProfile
from repro.sim.events import EventLoop


def _action(profile: FunctionProfile, name: str, mechanism: str = "base") -> ActionSpec:
    return ActionSpec.for_profile(profile, mechanism, name=name)


def _cluster_invokers(loop: EventLoop, count: int, cores: int = 1) -> list:
    return [Invoker(loop, cores=cores, invoker_id=f"invoker-{i}") for i in range(count)]


class TestPolicies:
    def test_round_robin_cycles(self, small_python_profile):
        loop = EventLoop()
        invokers = _cluster_invokers(loop, 3)
        policy = RoundRobinPolicy()
        picks = [policy.select(invokers, Invocation(action="f")) for _ in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_least_loaded_picks_minimum(self, small_python_profile):
        loop = EventLoop()
        invokers = _cluster_invokers(loop, 3)
        spec = _action(small_python_profile, "ll-action")
        for invoker in invokers:
            invoker.register(spec, max_containers=1)
        # Load invoker 0 with queued work; 1 and 2 stay empty.
        invokers[0].submit(Invocation(action=spec.name), lambda inv: None)
        policy = LeastLoadedPolicy()
        assert policy.select(invokers, Invocation(action=spec.name)) == 1

    def test_hash_affinity_is_stable_and_sticky(self):
        loop = EventLoop()
        invokers = _cluster_invokers(loop, 4)
        policy = HashAffinityPolicy()
        picks = {
            policy.select(invokers, Invocation(action="sticky-action"))
            for _ in range(10)
        }
        assert picks == {home_index("sticky-action", 4)}

    def test_hash_affinity_spreads_actions(self):
        homes = {home_index(f"action-{i}", 4) for i in range(32)}
        assert len(homes) > 1

    def test_create_policy_registry(self):
        assert isinstance(create_policy("round-robin"), RoundRobinPolicy)
        assert isinstance(create_policy("least-loaded"), LeastLoadedPolicy)
        assert isinstance(create_policy("hash-affinity"), HashAffinityPolicy)
        with pytest.raises(PlatformError):
            create_policy("random-2-choices")

    def test_home_index_needs_invokers(self):
        with pytest.raises(PlatformError):
            home_index("f", 0)

    def test_home_index_is_stable_across_runs(self):
        # CRC-32 of the action name, not hash(): the assignment must not
        # move between interpreter runs (PYTHONHASHSEED) or releases, or
        # every deployment's warm containers would land somewhere else
        # than its traffic.  These literals pin the contract.
        assert home_index("pyaes", 2) == 1
        assert home_index("pyaes", 4) == 3
        assert home_index("pyaes", 8) == 7
        assert home_index("md2html", 4) == 0
        assert home_index("matmul", 4) == 2
        # Stable under repetition within a run, too.
        assert len({home_index("pyaes", 4) for _ in range(100)}) == 1


class TestScheduler:
    def test_deploy_prewarms_only_home(self, small_python_profile):
        loop = EventLoop()
        invokers = _cluster_invokers(loop, 4)
        scheduler = Scheduler(invokers, create_policy("hash-affinity"))
        spec = _action(small_python_profile, "homed")
        deployed = scheduler.deploy(spec, containers=2, max_containers=2)
        home = home_index("homed", 4)
        assert scheduler.home_invoker("homed") is invokers[home]
        assert len(deployed) == 2
        for index, invoker in enumerate(invokers):
            assert invoker.hosts("homed")
            expected = 2 if index == home else 0
            assert len(invoker.pool("homed")) == expected

    def test_submit_routes_and_counts(self, small_python_profile):
        loop = EventLoop()
        invokers = _cluster_invokers(loop, 2)
        scheduler = Scheduler(invokers, create_policy("round-robin"))
        spec = _action(small_python_profile, "routed")
        scheduler.deploy(spec, containers=1, max_containers=1)
        done = []
        for _ in range(4):
            scheduler.submit(Invocation(action="routed", payload=b"x"), done.append)
        loop.run()
        assert scheduler.routed_per_invoker == [2, 2]
        assert len(done) == 4

    def test_needs_at_least_one_invoker(self):
        with pytest.raises(PlatformError):
            Scheduler([], create_policy("round-robin"))


class TestClusterPlatform:
    def test_invoke_sync_round_trip(self, small_python_profile):
        cluster = FaaSCluster(SimulationConfig(cores=1, invokers=2))
        cluster.deploy(_action(small_python_profile, "c-sync", mechanism="gh"))
        invocation = cluster.invoke_sync("c-sync", b"hello", caller="alice")
        assert invocation.status is InvocationStatus.COMPLETED
        assert invocation.e2e_seconds > invocation.invoker_seconds

    def test_containers_aggregates_across_invokers(self, small_python_profile):
        cluster = FaaSCluster(
            SimulationConfig(cores=1, invokers=3, scheduler_policy="round-robin")
        )
        cluster.deploy(_action(small_python_profile, "agg"), containers=2)
        assert len(cluster.containers("agg")) == 2  # only the home pre-warms

    def test_unknown_action_raises(self):
        cluster = FaaSCluster(SimulationConfig(invokers=2))
        with pytest.raises(ActionNotFoundError):
            cluster.invoke_sync("missing")

    def test_duplicate_deploy_rejected(self, small_python_profile):
        cluster = FaaSCluster(SimulationConfig(invokers=2))
        cluster.deploy(_action(small_python_profile, "dup"))
        with pytest.raises(PlatformError):
            cluster.deploy(_action(small_python_profile, "dup"))

    def test_platform_is_single_invoker_special_case(self, small_python_profile):
        platform = FaaSPlatform(SimulationConfig(cores=1, containers_per_action=1))
        assert len(platform.invokers) == 1
        assert platform.invoker is platform.invokers[0]
        with pytest.raises(PlatformError):
            FaaSPlatform(SimulationConfig(invokers=2))

    def test_cluster_stats_reports_per_invoker_counters(self, small_python_profile):
        cluster = FaaSCluster(
            SimulationConfig(cores=1, invokers=2, scheduler_policy="round-robin")
        )
        cluster.deploy(_action(small_python_profile, "stats"))
        for _ in range(4):
            cluster.invoke_async("stats")
        cluster.run()
        stats = cluster.cluster_stats()
        assert [row["invoker"] for row in stats] == ["invoker-0", "invoker-1"]
        assert sum(row["routed"] for row in stats) == 4
        assert sum(row["completed"] for row in stats) == 4

    def test_multi_action_client_measures_per_action_throughput(self, small_python_profile):
        cluster = FaaSCluster(SimulationConfig(cores=2, invokers=2, seed=3))
        names = [f"ma-{i}" for i in range(4)]
        for name in names:
            cluster.deploy(_action(small_python_profile, name))
        client = MultiActionSaturatingClient(
            cluster, names, in_flight_per_action=1, duration_seconds=2.0,
        )
        aggregate = client.run()
        per_action = client.per_action_throughput()
        assert set(per_action) == set(names)
        assert sum(per_action.values()) == pytest.approx(aggregate)

    def test_per_action_throughput_requires_run(self, small_python_profile):
        cluster = FaaSCluster(SimulationConfig(invokers=1))
        cluster.deploy(_action(small_python_profile, "unrun"))
        client = MultiActionSaturatingClient(
            cluster, ["unrun"], in_flight_per_action=1, duration_seconds=1.0,
        )
        with pytest.raises(PlatformError):
            client.per_action_throughput()

    def test_cluster_config_preset_builds_a_cluster(self, small_python_profile):
        cluster = FaaSCluster(CLUSTER_CONFIG)
        assert len(cluster.invokers) == 4
        cluster.deploy(_action(small_python_profile, "preset"))
        result = cluster.invoke_sync("preset", b"x")
        assert result.status is InvocationStatus.COMPLETED

    def test_config_with_helpers(self):
        config = SimulationConfig().with_invokers(3).with_policy("least-loaded")
        assert config.invokers == 3
        assert config.scheduler_policy == "least-loaded"

    def test_config_validates_cluster_knobs(self):
        with pytest.raises(ValueError):
            SimulationConfig(invokers=0)
        with pytest.raises(ValueError):
            SimulationConfig(scheduler_policy="fifo")
        with pytest.raises(ValueError):
            SimulationConfig(containers_per_action=2, max_containers_per_action=1)
        with pytest.raises(ValueError):
            SimulationConfig(max_queue_per_action=0)
        with pytest.raises(ValueError):
            SimulationConfig(keep_alive_seconds=0.0)

    def test_hash_affinity_beats_round_robin_on_warm_hits(self, small_python_profile):
        def warm_rate(policy: str) -> float:
            cluster = FaaSCluster(
                SimulationConfig(
                    cores=2, containers_per_action=1, invokers=4,
                    scheduler_policy=policy, seed=7,
                )
            )
            names = [f"wh-{policy}-{i}" for i in range(8)]
            for name in names:
                cluster.deploy(_action(small_python_profile, name))
            for _ in range(4):
                for name in names:
                    cluster.invoke_async(name)
                cluster.run()  # drain: containers are idle before the next round
            return cluster.warm_hit_rate

        affinity = warm_rate("hash-affinity")
        round_robin = warm_rate("round-robin")
        assert affinity > round_robin
        assert affinity > 0.9  # every submission finds its home's warm container


class TestDynamicPools:
    def test_cold_start_on_demand_grows_pool(self, small_python_profile):
        loop = EventLoop()
        invoker = Invoker(loop, cores=2)
        spec = _action(small_python_profile, "grow")
        invoker.deploy(spec, containers=1, max_containers=2)
        done = []
        invoker.submit(Invocation(action="grow", payload=b"x"), done.append)
        invoker.submit(Invocation(action="grow", payload=b"x"), done.append)
        # Bound the run so the keep-alive timer (10 min out) has not fired yet.
        loop.run(until=100.0)
        assert invoker.cold_starts == 1
        assert len(invoker.pool("grow")) == 2
        assert [inv.status for inv in done] == [InvocationStatus.COMPLETED] * 2
        # Draining the rest of virtual time reclaims the dynamic container.
        loop.run()
        assert invoker.evictions == 1
        assert len(invoker.pool("grow")) == 1

    def test_registered_action_serves_entirely_via_cold_start(self, small_python_profile):
        loop = EventLoop()
        invoker = Invoker(loop, cores=1)
        spec = _action(small_python_profile, "cold-only")
        invoker.register(spec, max_containers=1)
        assert invoker.pool("cold-only") == []
        done = []
        invoker.submit(Invocation(action="cold-only", payload=b"x"), done.append)
        loop.run()
        assert done[0].status is InvocationStatus.COMPLETED
        # The request waited for the container boot, paid in virtual time.
        assert done[0].queue_seconds > 0
        assert invoker.cold_starts == 1

    def test_pool_never_exceeds_max_containers(self, small_python_profile):
        loop = EventLoop()
        invoker = Invoker(loop, cores=4)
        spec = _action(small_python_profile, "capped")
        invoker.deploy(spec, containers=1, max_containers=2)
        done = []
        for _ in range(6):
            invoker.submit(Invocation(action="capped", payload=b"x"), done.append)
        loop.run(until=100.0)
        assert len(invoker.pool("capped")) == 2
        assert invoker.cold_starts == 1
        assert len(done) == 6

    def test_no_cold_start_when_core_bound(self, small_python_profile, small_c_profile):
        # Action B has an idle warm container; only the core is busy (with
        # action A).  Another container cannot help, so the pool must not grow.
        loop = EventLoop()
        invoker = Invoker(loop, cores=1)
        invoker.deploy(_action(small_python_profile, "hog"), containers=1, max_containers=4)
        invoker.deploy(_action(small_c_profile, "bystander"), containers=1, max_containers=4)
        done = []
        invoker.submit(Invocation(action="hog", payload=b"x"), done.append)
        invoker.submit(Invocation(action="bystander", payload=b"x"), done.append)
        loop.run(until=100.0)
        assert invoker.cold_starts == 0
        assert len(invoker.pool("bystander")) == 1
        assert len(done) == 2

    def test_cold_starts_match_outstanding_demand(self, small_python_profile):
        # Boots already in flight cover the queue: a second queued request
        # triggers a second boot, a third does not exceed the demand.
        loop = EventLoop()
        invoker = Invoker(loop, cores=4)
        spec = _action(small_python_profile, "demand")
        invoker.register(spec, max_containers=8)
        for _ in range(3):
            invoker.submit(Invocation(action="demand", payload=b"x"), lambda inv: None)
        assert invoker.cold_starts == 3  # one boot per queued request
        invoker.submit(Invocation(action="demand", payload=b"x"), lambda inv: None)
        assert invoker.cold_starts == 4

    def test_growth_capped_at_core_count(self, small_python_profile):
        # A container holds its core through execution and restoration, so
        # containers beyond the core count can never run concurrently and
        # must not be booted, whatever max_containers allows.
        loop = EventLoop()
        invoker = Invoker(loop, cores=1)
        spec = _action(small_python_profile, "core-capped")
        invoker.deploy(spec, containers=1, max_containers=4)
        done = []
        for _ in range(8):
            invoker.submit(Invocation(action="core-capped", payload=b"x"), done.append)
        loop.run(until=1000.0)
        assert invoker.cold_starts == 0
        assert len(invoker.pool("core-capped")) == 1
        assert len(done) == 8

    def test_deploy_rejects_ceiling_below_prewarm(self, small_python_profile):
        loop = EventLoop()
        invoker = Invoker(loop, cores=1)
        with pytest.raises(PlatformError):
            invoker.deploy(_action(small_python_profile, "bad"), containers=2,
                           max_containers=1)

    def test_keep_alive_evicts_only_dynamic_containers(self, small_python_profile):
        loop = EventLoop()
        invoker = Invoker(loop, cores=2, keep_alive_seconds=1.0)
        spec = _action(small_python_profile, "evict")
        invoker.deploy(spec, containers=1, max_containers=2)
        done = []
        invoker.submit(Invocation(action="evict", payload=b"x"), done.append)
        invoker.submit(Invocation(action="evict", payload=b"x"), done.append)
        loop.run()
        assert invoker.evictions == 1
        pool = invoker.pool("evict")
        assert len(pool) == 1
        assert not pool[0].dynamic  # the pre-warmed container survives
        # The eviction timer cancelled itself: the loop fully drained.
        assert loop.pending == 0

    def test_evicted_container_is_dead(self, small_python_profile):
        loop = EventLoop()
        invoker = Invoker(loop, cores=1, keep_alive_seconds=0.5)
        spec = _action(small_python_profile, "dead")
        invoker.register(spec, max_containers=1)
        invoker.submit(Invocation(action="dead", payload=b"x"), lambda inv: None)
        loop.run()
        assert invoker.pool("dead") == []
        assert invoker.evictions == 1

    def test_eviction_floor_prewarmed_containers_survive_forever(
        self, small_python_profile
    ):
        # The eviction floor: however long pre-warmed containers sit idle,
        # and however many eviction periods pass, they are never reclaimed
        # — only dynamic (on-demand) growth above the floor is.
        loop = EventLoop()
        invoker = Invoker(loop, cores=4, keep_alive_seconds=1.0)
        spec = _action(small_python_profile, "floor")
        invoker.deploy(spec, containers=2, max_containers=4)
        done = []
        for _ in range(8):
            invoker.submit(Invocation(action="floor", payload=b"x"), done.append)
        # Serve the burst, grow the pool, then idle across many keep-alive
        # periods to give the timer every chance to over-evict.
        loop.run()
        assert len(done) == 8
        assert invoker.cold_starts == 2  # grew to the 4-container ceiling
        assert invoker.evictions == 2  # ...and reclaimed only the growth
        survivors = invoker.pool("floor")
        assert len(survivors) == 2
        assert all(not c.dynamic for c in survivors)
        # The timer cancelled itself once no dynamic containers remained,
        # so a fully drained loop means no further eviction can ever fire.
        assert loop.pending == 0
        # The floor still serves traffic after the idle period.
        invoker.submit(Invocation(action="floor", payload=b"x"), done.append)
        loop.run(until=loop.now + 10.0)
        assert len(done) == 9


class TestBackpressure:
    def test_saturated_invoker_queues_fifo_per_action(self, small_python_profile):
        loop = EventLoop()
        invoker = Invoker(loop, cores=1)
        invoker.deploy(_action(small_python_profile, "fifo"), containers=1)
        submitted = [Invocation(action="fifo", payload=b"x") for _ in range(4)]
        finished = []
        for invocation in submitted:
            invoker.submit(invocation, finished.append)
        # While saturated, the waiting invocations sit in FIFO order.
        assert invoker.queued_order("fifo") == submitted[1:]
        loop.run()
        assert finished == submitted  # completion preserves submission order
        queue_times = [inv.queue_seconds for inv in finished]
        assert queue_times == sorted(queue_times)

    def test_bounded_queue_rejects_with_distinct_status(self, small_python_profile):
        loop = EventLoop()
        invoker = Invoker(loop, cores=1, max_queue_per_action=2)
        invoker.deploy(_action(small_python_profile, "bounded"), containers=1)
        finished = []
        for _ in range(5):
            invoker.submit(Invocation(action="bounded", payload=b"x"), finished.append)
        # One dispatched + two queued fit; the last two are shed immediately.
        rejected = [inv for inv in finished if inv.status is InvocationStatus.REJECTED]
        assert len(rejected) == 2
        assert all(inv.status is not InvocationStatus.FAILED for inv in rejected)
        assert all("queue" in inv.error for inv in rejected)
        assert invoker.invocations_rejected == 2
        loop.run()
        completed = [inv for inv in finished if inv.status is InvocationStatus.COMPLETED]
        assert len(completed) == 3

    def test_shed_invocations_do_not_trigger_cold_starts(self, small_python_profile):
        # A request the bounded queue refuses is not demand: it must not
        # leave a surplus container booting behind it.
        loop = EventLoop()
        invoker = Invoker(loop, cores=4, max_queue_per_action=1)
        spec = _action(small_python_profile, "shed-no-boot")
        invoker.register(spec, max_containers=4)
        finished = []
        for _ in range(3):
            invoker.submit(Invocation(action="shed-no-boot", payload=b"x"), finished.append)
        assert invoker.invocations_rejected == 2
        assert invoker.cold_starts == 1  # one boot for the one queued request

    def test_rejections_reach_platform_metrics(self, small_python_profile):
        platform = FaaSPlatform(
            SimulationConfig(cores=1, containers_per_action=1, max_queue_per_action=1)
        )
        platform.deploy(_action(small_python_profile, "shed"))
        for _ in range(6):
            platform.invoke_async("shed")
        platform.run()
        metrics = platform.metrics
        assert metrics.num_rejected > 0
        assert metrics.num_completed + metrics.num_rejected == 6
        assert metrics.num_recorded == 6  # nothing silently dropped
        assert 0.0 < metrics.rejection_rate < 1.0
        per_action = platform.action_metrics("shed")
        assert per_action.num_rejected == metrics.num_rejected
        for invocation in metrics.rejected:
            assert invocation.status is InvocationStatus.REJECTED

    def test_saturating_rejections_terminate_with_zero_overhead(self, small_python_profile):
        # With no platform overhead a rejection completes at the same virtual
        # instant it was issued; the client's retry backoff must still move
        # time forward so the run terminates instead of looping at t=const.
        cluster = FaaSCluster(
            SimulationConfig(
                cores=1, containers_per_action=1, max_queue_per_action=1,
                platform_overhead_seconds=0.0, platform_jitter_seconds=0.0,
            )
        )
        cluster.deploy(_action(small_python_profile, "zero-ovh"))
        client = MultiActionSaturatingClient(
            cluster, ["zero-ovh"], in_flight_per_action=6, duration_seconds=0.5,
        )
        throughput = client.run()  # must return, not livelock
        assert cluster.now >= 0.5
        assert len(client.rejected) > 0
        assert throughput > 0

    def test_unbounded_queue_never_rejects(self, small_python_profile):
        platform = FaaSPlatform(SimulationConfig(cores=1, containers_per_action=1))
        platform.deploy(_action(small_python_profile, "patient"))
        for _ in range(6):
            platform.invoke_async("patient")
        platform.run()
        assert platform.metrics.num_rejected == 0
        assert platform.metrics.num_completed == 6

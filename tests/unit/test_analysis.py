"""Tests for the analysis layer: stats, tables, series, reports."""

from __future__ import annotations

import pytest

from repro.analysis.experiments import BenchmarkConfigResult, EvaluationResult
from repro.analysis.report import (
    headline_text,
    latency_table,
    paper_comparison_table,
    restoration_table,
    table3_rows,
    throughput_table,
)
from repro.analysis.series import Series, SweepResult
from repro.analysis.stats import (
    OverheadSummary,
    reductions_percent,
    relative_overhead_percent,
    summarize_overheads,
)
from repro.analysis.tables import format_percent, format_rate, format_seconds, render_table
from repro.analysis.experiments import BreakdownRecord
from repro.faas.metrics import LatencyStats
from repro.workloads import find_benchmark


class TestStats:
    def test_relative_overhead(self):
        assert relative_overhead_percent(110, 100) == pytest.approx(10.0)
        assert relative_overhead_percent(90, 100) == pytest.approx(-10.0)

    def test_relative_overhead_rejects_bad_baseline(self):
        with pytest.raises(ValueError):
            relative_overhead_percent(1, 0)

    def test_summarize_overheads(self):
        summary = summarize_overheads([1.0, 2.0, 3.0, 50.0])
        assert summary.median_percent == pytest.approx(2.5)
        assert summary.maximum_percent == 50.0
        assert summary.count == 4
        assert "median" in summary.describe()

    def test_summarize_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize_overheads([])

    def test_reductions_percent(self):
        assert reductions_percent([90.0], [100.0]) == [pytest.approx(10.0)]
        with pytest.raises(ValueError):
            reductions_percent([1.0], [0.0])


class TestTables:
    def test_render_table_alignment(self):
        text = render_table(["a", "benchmark"], [["1", "pyaes"], ["22", "go"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_render_table_with_title(self):
        text = render_table(["x"], [["1"]], title="My table")
        assert text.splitlines()[0] == "My table"

    def test_formatters(self):
        assert format_seconds(0.0015) == "1.50"
        assert format_seconds(None) == "-"
        assert format_seconds(1.5, unit="s") == "1.500"
        assert format_percent(3.21) == "+3.2%"
        assert format_percent(None) == "-"
        assert format_rate(1234.8) == "1235"
        assert format_rate(3.456) == "3.46"
        with pytest.raises(ValueError):
            format_seconds(1.0, unit="days")


class TestSeries:
    def test_series_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Series("s", (1.0, 2.0), (1.0,))

    def test_from_points_and_lookup(self):
        series = Series.from_points("gh", [(1.0, 10.0), (2.0, 20.0)])
        assert series.y_at(2.0) == 20.0
        with pytest.raises(KeyError):
            series.y_at(3.0)

    def test_monotonicity_and_slope(self):
        increasing = Series.from_points("inc", [(1, 1), (2, 2), (3, 3)])
        assert increasing.is_nondecreasing
        assert increasing.slope() == pytest.approx(1.0)
        flat = Series.from_points("flat", [(1, 2), (2, 2)])
        assert flat.slope() == pytest.approx(0.0)

    def test_sweep_result_access(self):
        sweep = SweepResult(x_label="x", y_label="y")
        sweep.add(Series.from_points("base", [(1, 1)]))
        assert sweep.names() == ["base"]
        assert sweep.get("base").y == (1.0,)


def _stats(median_ms: float) -> LatencyStats:
    value = median_ms / 1000.0
    return LatencyStats.from_samples([value * 0.95, value, value * 1.05])


def _evaluation() -> EvaluationResult:
    result = EvaluationResult()
    result.add(BenchmarkConfigResult(
        benchmark="pyaes (p)", suite="pyperformance", config="base",
        e2e=_stats(100.0), invoker=_stats(60.0), throughput_rps=10.0,
        total_kpages=6.2,
    ))
    result.add(BenchmarkConfigResult(
        benchmark="pyaes (p)", suite="pyperformance", config="gh",
        e2e=_stats(103.0), invoker=_stats(62.0), throughput_rps=9.5,
        restore_ms_mean=4.0, restored_pages_mean=800, faults_mean=820,
        total_kpages=6.2, snapshot_ms=9.0,
    ))
    return result


class TestEvaluationResult:
    def test_relative_latency_and_throughput(self):
        result = _evaluation()
        rel = result.relative_latency("gh", metric="e2e")
        assert rel["pyaes (p)"] == pytest.approx(3.0, rel=0.01)
        ratios = result.relative_throughput("gh")
        assert ratios["pyaes (p)"] == pytest.approx(0.95)

    def test_merge_fills_missing_fields(self):
        latency = _evaluation()
        throughput = EvaluationResult()
        throughput.add(BenchmarkConfigResult(
            benchmark="pyaes (p)", suite="pyperformance", config="base",
            throughput_rps=11.0, total_kpages=6.2,
        ))
        merged = latency.merge(throughput)
        record = merged.record("pyaes (p)", "base")
        # Existing value wins; only missing fields are filled.
        assert record.throughput_rps == 10.0
        assert record.e2e is not None

    def test_lookup_errors(self):
        result = _evaluation()
        with pytest.raises(KeyError):
            result.record("missing", "gh")
        assert not result.has("missing", "gh")

    def test_benchmarks_and_configs_order(self):
        result = _evaluation()
        assert result.benchmarks() == ["pyaes (p)"]
        assert result.configs() == ["base", "gh"]


class TestReports:
    def test_latency_and_throughput_tables_render(self):
        result = _evaluation()
        latency_text = latency_table(result)
        assert "pyaes (p)" in latency_text and "1.03x" in latency_text
        throughput_text = throughput_table(result)
        assert "0.95x" in throughput_text

    def test_table3_sorted_by_restore_time(self):
        result = _evaluation()
        text = table3_rows(result)
        assert "4.00" in text

    def test_restoration_table(self):
        record = BreakdownRecord(
            benchmark="pyaes (p)", restore_ms=4.0,
            fractions={"restoring_memory": 0.6, "scanning_page_metadata": 0.4},
            snapshot_ms=9.0, total_kpages=6.2, restored_kpages=0.8,
        )
        text = restoration_table([record])
        assert "restoring_memory" in text

    def test_paper_comparison_table(self):
        result = _evaluation()
        spec = find_benchmark("pyaes")
        text = paper_comparison_table(result, [spec])
        assert "paper restore" in text.splitlines()[1] or "paper restore (ms)" in text

    def test_headline_text(self):
        summary = OverheadSummary(
            count=3, median_percent=1.5, p95_percent=7.0,
            maximum_percent=10.0, minimum_percent=0.0, mean_percent=2.0,
        )
        text = headline_text({"e2e_latency_overhead": summary})
        assert "End-to-end latency overhead" in text
        assert "+1.5%" in text

"""Tests for the error hierarchy and smaller supporting components."""

from __future__ import annotations

import random

import pytest

import repro
from repro import errors
from repro.faas.controller import Controller
from repro.faas.invoker import Invoker
from repro.faas.action import ActionSpec
from repro.faas.proxy import ActionLoopProxy
from repro.faas.request import Invocation
from repro.core.policy import GroundhogMechanism
from repro.sim.costs import CostModel
from repro.sim.events import EventLoop


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception) and obj is not Exception:
                assert issubclass(obj, errors.ReproError), name

    def test_segfault_carries_address_and_access(self):
        err = errors.SegmentationFault(0x1234, access="write")
        assert err.address == 0x1234
        assert "write" in str(err)

    def test_no_such_process_carries_pid(self):
        assert errors.NoSuchProcessError(42).pid == 42

    def test_action_not_found_carries_action(self):
        assert errors.ActionNotFoundError("foo").action == "foo"

    def test_isolation_violation_is_isolation_error(self):
        assert issubclass(errors.IsolationViolation, errors.IsolationError)


class TestPackageSurface:
    def test_version_exposed(self):
        assert repro.__version__ == "1.0.0"

    def test_public_names_importable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_mechanism_registry_exposed(self):
        assert "gh" in repro.MECHANISMS
        mech = repro.create_mechanism("gh", repro.microbenchmark_profile(200, 20))
        assert isinstance(mech, GroundhogMechanism)


class TestProxy:
    def test_overhead_scales_with_payload(self):
        proxy = ActionLoopProxy(CostModel())
        small = proxy.request_overhead_seconds(100, 100)
        large = proxy.request_overhead_seconds(200_000, 100)
        assert large > small
        assert proxy.requests_proxied == 2

    def test_overhead_has_fixed_floor(self):
        proxy = ActionLoopProxy(CostModel())
        assert proxy.request_overhead_seconds(0, 0) >= CostModel().invoker_request_overhead_seconds


class TestController:
    def _setup(self, small_python_profile, overhead=0.02, jitter=0.0):
        loop = EventLoop()
        invoker = Invoker(loop, cores=1)
        invoker.deploy(ActionSpec.for_profile(small_python_profile, "base"))
        controller = Controller(
            loop, invoker,
            platform_overhead_seconds=overhead,
            platform_jitter_seconds=jitter,
            rng=random.Random(0),
        )
        return loop, controller

    def test_platform_overhead_added_to_e2e(self, small_python_profile):
        loop, controller = self._setup(small_python_profile)
        finished = []
        invocation = Invocation(action=small_python_profile.name, payload=b"x",
                                submitted_at=loop.now)
        controller.submit(invocation, finished.append)
        loop.run()
        assert len(finished) == 1
        e2e = finished[0].completed_at - finished[0].submitted_at
        assert e2e >= finished[0].invoker_seconds + 0.02 - 1e-9

    def test_zero_jitter_is_deterministic(self, small_python_profile):
        loop, controller = self._setup(small_python_profile, overhead=0.03, jitter=0.0)
        assert controller._overhead_sample() == 0.03

    def test_jitter_never_negative(self, small_python_profile):
        _, controller = self._setup(small_python_profile, overhead=0.001, jitter=0.05)
        assert all(controller._overhead_sample() >= 0 for _ in range(100))

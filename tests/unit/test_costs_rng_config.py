"""Tests for the cost model, RNG streams and global configuration."""

from __future__ import annotations

import pytest

from repro.config import (
    PAGE_SIZE,
    LATENCY_CONFIG,
    THROUGHPUT_CONFIG,
    SimulationConfig,
    bytes_for_pages,
    pages_for_bytes,
)
from repro.sim.costs import CostModel, DEFAULT_COST_MODEL
from repro.sim.rng import FALLBACK_SEEDS, RngStreams, fallback_stream


class TestCostModel:
    def test_default_is_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_COST_MODEL.minor_fault_seconds = 1.0  # type: ignore[misc]

    def test_cow_fault_costs_more_than_soft_dirty_fault(self):
        cm = CostModel()
        assert cm.cow_fault_seconds > cm.soft_dirty_fault_seconds

    def test_uffd_fault_costs_more_than_soft_dirty_fault(self):
        cm = CostModel()
        assert cm.uffd_fault_seconds > cm.soft_dirty_fault_seconds

    def test_coalesced_copy_is_cheaper(self):
        cm = CostModel()
        assert cm.page_copy_coalesced_seconds < cm.page_copy_seconds

    def test_criu_restore_orders_of_magnitude_slower_than_page_ops(self):
        cm = CostModel()
        assert cm.criu_restore_base_seconds > 1000 * cm.page_copy_seconds

    def test_scaled_multiplies_time_constants(self):
        cm = CostModel()
        faster = cm.scaled(0.5)
        assert faster.page_copy_seconds == pytest.approx(cm.page_copy_seconds * 0.5)
        assert faster.ptrace_interrupt_seconds == pytest.approx(
            cm.ptrace_interrupt_seconds * 0.5
        )
        # Non-time fields are untouched.
        assert faster.coalesce_threshold == cm.coalesce_threshold

    def test_scaled_rejects_nonpositive_factor(self):
        with pytest.raises(ValueError):
            CostModel().scaled(0.0)


class TestRngStreams:
    def test_same_seed_same_sequence(self):
        a = RngStreams(42).stream("jitter")
        b = RngStreams(42).stream("jitter")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_streams_are_independent(self):
        streams = RngStreams(42)
        first = streams.stream("a").random()
        # Drawing from stream "b" must not change what "a" yields next.
        streams_2 = RngStreams(42)
        streams_2.stream("b").random()
        assert streams_2.stream("a").random() == pytest.approx(
            RngStreams(42).stream("a").random()
        )
        assert first == pytest.approx(RngStreams(42).stream("a").random())

    def test_stream_is_cached(self):
        streams = RngStreams(1)
        assert streams.stream("x") is streams.stream("x")

    def test_reset_restarts_streams(self):
        streams = RngStreams(7)
        first = streams.stream("s").random()
        streams.reset()
        assert streams.stream("s").random() == pytest.approx(first)

    def test_gauss_positive_never_negative(self):
        streams = RngStreams(3)
        samples = [streams.gauss_positive("g", 0.001, 0.01) for _ in range(200)]
        assert all(s >= 0.0 for s in samples)

    def test_gauss_positive_zero_stddev_returns_mean(self):
        assert RngStreams(3).gauss_positive("g", 0.5, 0.0) == 0.5

    def test_expovariate_draws_poisson_gaps(self):
        streams = RngStreams(9)
        gaps = [streams.expovariate("arrivals", 100.0) for _ in range(500)]
        assert all(gap > 0.0 for gap in gaps)
        # The mean inter-arrival gap of a 100/s Poisson process is 10 ms.
        assert sum(gaps) / len(gaps) == pytest.approx(0.01, rel=0.25)
        # Deterministic per (seed, stream name).
        again = RngStreams(9)
        assert again.expovariate("arrivals", 100.0) == pytest.approx(
            RngStreams(9).expovariate("arrivals", 100.0)
        )

    def test_expovariate_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            RngStreams(9).expovariate("arrivals", 0.0)


class TestFallbackStreams:
    def test_seeds_are_the_historical_constants(self):
        # Load-bearing: these are the exact inline seeds the components
        # carried before the table existed.  Changing one silently changes
        # every simulation relying on the component's default jitter.
        assert dict(FALLBACK_SEEDS) == {
            "faas.container": 11,
            "faas.controller": 31,
            "faas.invoker": 23,
            "core.policy": 7,
            "runtime": 0,
            "cli.demo-leak": 1,
        }

    def test_fallback_stream_matches_inline_constant_bit_for_bit(self):
        import random

        for component, seed in FALLBACK_SEEDS.items():
            expected = random.Random(seed)
            got = fallback_stream(component)
            assert [got.random() for _ in range(8)] == [
                expected.random() for _ in range(8)
            ], component

    def test_fallback_stream_returns_fresh_generators(self):
        a = fallback_stream("faas.container")
        b = fallback_stream("faas.container")
        assert a is not b
        assert a.random() == b.random()

    def test_unknown_component_rejected(self):
        with pytest.raises(ValueError, match="unknown fallback stream"):
            fallback_stream("no.such.component")

    def test_streams_factory_fallback_derives_from_master_seed(self):
        streams = RngStreams(42)
        derived = streams.fallback("faas.container")
        assert derived is streams.stream("fallback:faas.container")
        # Different master seeds give different fallback sequences...
        other = RngStreams(43).fallback("faas.container")
        assert derived.random() != other.random()
        # ...and unknown names are still rejected.
        with pytest.raises(ValueError, match="unknown fallback stream"):
            streams.fallback("no.such.component")


class TestSimulationConfig:
    def test_defaults_are_valid(self):
        config = SimulationConfig()
        assert config.cores == 1
        assert config.containers_per_action == 1

    def test_paper_configs(self):
        assert LATENCY_CONFIG.cores == 1
        assert THROUGHPUT_CONFIG.cores == 4
        assert THROUGHPUT_CONFIG.containers_per_action == 4

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"cores": 0},
            {"containers_per_action": 0},
            {"memory_limit_bytes": 1},
            {"timeout_seconds": 0},
            {"platform_overhead_seconds": -1},
            {"platform_jitter_seconds": -1},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SimulationConfig(**kwargs)

    def test_with_cores_returns_modified_copy(self):
        config = SimulationConfig()
        modified = config.with_cores(4)
        assert modified.cores == 4
        assert config.cores == 1

    def test_with_containers_and_seed(self):
        config = SimulationConfig().with_containers(3).with_seed(99)
        assert config.containers_per_action == 3
        assert config.seed == 99

    def test_page_conversions_roundtrip(self):
        assert pages_for_bytes(0) == 0
        assert pages_for_bytes(1) == 1
        assert pages_for_bytes(PAGE_SIZE) == 1
        assert pages_for_bytes(PAGE_SIZE + 1) == 2
        assert bytes_for_pages(3) == 3 * PAGE_SIZE

    def test_page_conversions_reject_negative(self):
        with pytest.raises(ValueError):
            pages_for_bytes(-1)
        with pytest.raises(ValueError):
            bytes_for_pages(-1)

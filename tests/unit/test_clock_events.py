"""Tests for the virtual clock and the discrete-event loop."""

from __future__ import annotations

import pytest

from repro.errors import ClockError, EventLoopError
from repro.sim.clock import VirtualClock
from repro.sim.events import EventLoop


class TestVirtualClock:
    def test_starts_at_zero_by_default(self):
        assert VirtualClock().now == 0.0

    def test_starts_at_given_time(self):
        assert VirtualClock(5.0).now == 5.0

    def test_cannot_start_negative(self):
        with pytest.raises(ClockError):
            VirtualClock(-1.0)

    def test_advance_moves_forward(self):
        clock = VirtualClock()
        assert clock.advance(1.5) == 1.5
        assert clock.now == 1.5

    def test_advance_negative_rejected(self):
        clock = VirtualClock()
        with pytest.raises(ClockError):
            clock.advance(-0.1)

    def test_advance_to_absolute(self):
        clock = VirtualClock()
        clock.advance_to(3.0)
        assert clock.now == 3.0

    def test_advance_to_same_time_is_noop(self):
        clock = VirtualClock(2.0)
        clock.advance_to(2.0)
        assert clock.now == 2.0

    def test_advance_to_past_rejected(self):
        clock = VirtualClock(2.0)
        with pytest.raises(ClockError):
            clock.advance_to(1.0)


class TestEventLoop:
    def test_schedule_and_run_in_order(self):
        loop = EventLoop()
        order = []
        loop.schedule(2.0, lambda: order.append("b"))
        loop.schedule(1.0, lambda: order.append("a"))
        loop.schedule(3.0, lambda: order.append("c"))
        executed = loop.run()
        assert executed == 3
        assert order == ["a", "b", "c"]
        assert loop.now == 3.0

    def test_simultaneous_events_run_in_schedule_order(self):
        loop = EventLoop()
        order = []
        loop.schedule(1.0, lambda: order.append(1))
        loop.schedule(1.0, lambda: order.append(2))
        loop.run()
        assert order == [1, 2]

    def test_schedule_negative_delay_rejected(self):
        loop = EventLoop()
        with pytest.raises(EventLoopError):
            loop.schedule(-1.0, lambda: None)

    def test_schedule_at_past_rejected(self):
        loop = EventLoop()
        loop.clock.advance(5.0)
        with pytest.raises(EventLoopError):
            loop.schedule_at(1.0, lambda: None)

    def test_cancelled_events_do_not_run(self):
        loop = EventLoop()
        ran = []
        event = loop.schedule(1.0, lambda: ran.append("x"))
        event.cancel()
        loop.run()
        assert ran == []

    def test_run_until_stops_before_later_events(self):
        loop = EventLoop()
        ran = []
        loop.schedule(1.0, lambda: ran.append("early"))
        loop.schedule(10.0, lambda: ran.append("late"))
        loop.run(until=5.0)
        assert ran == ["early"]
        assert loop.now == 5.0
        assert loop.pending == 1

    def test_run_max_events(self):
        loop = EventLoop()
        for delay in (1.0, 2.0, 3.0):
            loop.schedule(delay, lambda: None)
        executed = loop.run(max_events=2)
        assert executed == 2
        assert loop.pending == 1

    def test_events_can_schedule_more_events(self):
        loop = EventLoop()
        seen = []

        def first():
            seen.append("first")
            loop.schedule(1.0, lambda: seen.append("second"))

        loop.schedule(1.0, first)
        loop.run()
        assert seen == ["first", "second"]
        assert loop.now == 2.0

    def test_step_returns_false_when_empty(self):
        assert EventLoop().step() is False

    def test_executed_events_counter(self):
        loop = EventLoop()
        loop.schedule(0.5, lambda: None)
        loop.schedule(1.0, lambda: None)
        loop.run()
        assert loop.executed_events == 2


class TestRecurringTimer:
    def test_fires_at_interval_multiples_until_cancelled(self):
        loop = EventLoop()
        fired = []
        timer = loop.schedule_recurring(1.0, lambda: fired.append(loop.now))
        loop.run(until=3.5)
        assert fired == [1.0, 2.0, 3.0]
        assert timer.fires == 3
        timer.cancel()
        loop.run(until=10.0)
        assert fired == [1.0, 2.0, 3.0]
        assert not timer.active

    def test_callback_can_cancel_own_timer(self):
        loop = EventLoop()
        fired = []
        timer = loop.schedule_recurring(1.0, lambda: (fired.append(loop.now),
                                                      timer.cancel() if len(fired) >= 2 else None))
        loop.run()  # terminates because the timer cancels itself
        assert fired == [1.0, 2.0]
        assert loop.pending == 0

    def test_cancel_before_first_fire(self):
        loop = EventLoop()
        fired = []
        timer = loop.schedule_recurring(1.0, lambda: fired.append(loop.now))
        timer.cancel()
        loop.run()
        assert fired == []

    def test_non_positive_interval_rejected(self):
        loop = EventLoop()
        with pytest.raises(EventLoopError):
            loop.schedule_recurring(0.0, lambda: None)
        with pytest.raises(EventLoopError):
            loop.schedule_recurring(-1.0, lambda: None)

    def test_interleaves_deterministically_with_one_shots(self):
        def trace() -> list:
            loop = EventLoop()
            seen = []
            timer = loop.schedule_recurring(1.0, lambda: seen.append(("tick", loop.now)))
            loop.schedule(1.0, lambda: seen.append(("shot", loop.now)))
            loop.schedule(2.5, lambda: (seen.append(("stop", loop.now)), timer.cancel()))
            loop.run()
            return seen

        first, second = trace(), trace()
        assert first == second
        # The recurring firing at t=1.0 was scheduled before the one-shot,
        # so (time, sequence) ordering runs it first.
        assert first == [("tick", 1.0), ("shot", 1.0), ("tick", 2.0), ("stop", 2.5)]


class TestHeapHygiene:
    """Cancelled-event accounting, compaction, and event recycling."""

    def test_pending_live_excludes_cancelled_corpses(self):
        loop = EventLoop()
        events = [loop.schedule(float(i + 1), lambda: None) for i in range(6)]
        assert loop.pending == 6
        assert loop.pending_live == 6
        for event in events[:4]:
            event.cancel()
        # Lazy cancellation: corpses still sit in the heap ...
        assert loop.pending == 6
        # ... but the live count sees through them.
        assert loop.pending_live == 2

    def test_cancel_is_idempotent_in_the_accounting(self):
        loop = EventLoop()
        event = loop.schedule(1.0, lambda: None)
        loop.schedule(2.0, lambda: None)
        event.cancel()
        event.cancel()
        event.cancel()
        assert loop.pending_live == 1

    def test_cancelling_a_fired_event_does_not_count(self):
        # A callback cancelling its own just-popped event (the recurring
        # timer's cancel-after-fire shape) must not be booked as a heap
        # corpse — there is nothing in the heap to reclaim.
        loop = EventLoop()
        holder = {}
        holder["event"] = loop.schedule(1.0, lambda: holder["event"].cancel())
        loop.schedule(2.0, lambda: None)
        loop.run()
        assert loop.pending == 0
        assert loop.pending_live == 0
        assert loop._cancelled_in_queue == 0

    def test_compaction_triggers_when_corpses_outnumber_live(self):
        from repro.sim.events import COMPACT_MIN_CANCELLED

        loop = EventLoop()
        doomed = [
            loop.schedule(float(i + 1), lambda: None)
            for i in range(COMPACT_MIN_CANCELLED)
        ]
        survivors = [
            loop.schedule(float(i + 100), lambda: None)
            for i in range(COMPACT_MIN_CANCELLED - 2)
        ]
        assert loop.compactions == 0
        for event in doomed:
            event.cancel()
        # Corpses (32) now outnumber the live events (30): one compaction
        # rebuilt the heap with only the survivors.
        assert loop.compactions == 1
        assert loop.pending == len(survivors)
        assert loop.pending_live == len(survivors)
        assert loop._cancelled_in_queue == 0

    def test_no_compaction_below_the_floor(self):
        loop = EventLoop()
        doomed = [loop.schedule(float(i + 1), lambda: None) for i in range(8)]
        for event in doomed:
            event.cancel()
        # 8 corpses vs 0 live would compact by ratio, but the floor keeps
        # tiny heaps from thrashing.
        assert loop.compactions == 0
        assert loop.pending == 8
        assert loop.pending_live == 0

    def test_compacted_run_executes_survivors_in_order(self):
        from repro.sim.events import COMPACT_MIN_CANCELLED

        loop = EventLoop()
        seen = []
        doomed = [
            loop.schedule(float(i + 1), lambda: seen.append("doomed"))
            for i in range(COMPACT_MIN_CANCELLED + 4)
        ]
        for offset in (3.5, 1.5, 2.5):
            loop.schedule(offset, lambda at=offset: seen.append(at))
        for event in doomed:
            event.cancel()
        assert loop.compactions >= 1
        loop.run()
        assert seen == [1.5, 2.5, 3.5]

    def test_keep_alive_churn_keeps_heap_small(self):
        # The motivating pattern: schedule-then-cancel over and over (a
        # keep-alive timer reset by every request).  Without compaction
        # the heap grows with the churn count; with it, memory stays
        # proportional to live events.
        loop = EventLoop()
        for _ in range(500):
            event = loop.schedule(1000.0, lambda: None)
            event.cancel()
        assert loop.pending_live == 0
        assert loop.pending < 500  # corpses were reclaimed along the way
        assert loop.compactions >= 1


class TestReschedule:
    def test_reschedule_reuses_the_event_object(self):
        loop = EventLoop()
        fired = []
        event = loop.schedule(1.0, lambda: fired.append(loop.now))
        loop.run()
        assert event.popped
        again = loop.reschedule(event, 2.0)
        assert again is event
        assert not event.popped
        loop.run()
        assert fired == [1.0, 3.0]

    def test_reschedule_refuses_queued_events(self):
        loop = EventLoop()
        event = loop.schedule(1.0, lambda: None)
        with pytest.raises(EventLoopError):
            loop.reschedule(event, 1.0)

    def test_reschedule_refuses_negative_delay(self):
        loop = EventLoop()
        event = loop.schedule(1.0, lambda: None)
        loop.run()
        with pytest.raises(EventLoopError):
            loop.reschedule(event, -0.5)

    def test_recurring_timer_recycles_its_event(self):
        loop = EventLoop()
        timer = loop.schedule_recurring(1.0, lambda: None)
        first = timer._event
        loop.run(until=3.5)
        # The fast path re-armed the same Event object each firing with a
        # fresh sequence number (ordering semantics preserved).
        assert timer._event is first
        assert timer.fires == 3
        timer.cancel()

    def test_recycling_preserves_interleaving_semantics(self):
        # Same scenario as test_interleaves_deterministically_with_one_shots:
        # recycling must not change the (time, sequence) interleaving.
        loop = EventLoop()
        seen = []
        timer = loop.schedule_recurring(1.0, lambda: seen.append(("tick", loop.now)))
        loop.schedule(1.0, lambda: seen.append(("shot", loop.now)))
        loop.schedule(2.5, lambda: (seen.append(("stop", loop.now)), timer.cancel()))
        loop.run()
        assert seen == [("tick", 1.0), ("shot", 1.0), ("tick", 2.0), ("stop", 2.5)]

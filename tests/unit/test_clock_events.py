"""Tests for the virtual clock and the discrete-event loop."""

from __future__ import annotations

import pytest

from repro.errors import ClockError, EventLoopError
from repro.sim.clock import VirtualClock
from repro.sim.events import EventLoop


class TestVirtualClock:
    def test_starts_at_zero_by_default(self):
        assert VirtualClock().now == 0.0

    def test_starts_at_given_time(self):
        assert VirtualClock(5.0).now == 5.0

    def test_cannot_start_negative(self):
        with pytest.raises(ClockError):
            VirtualClock(-1.0)

    def test_advance_moves_forward(self):
        clock = VirtualClock()
        assert clock.advance(1.5) == 1.5
        assert clock.now == 1.5

    def test_advance_negative_rejected(self):
        clock = VirtualClock()
        with pytest.raises(ClockError):
            clock.advance(-0.1)

    def test_advance_to_absolute(self):
        clock = VirtualClock()
        clock.advance_to(3.0)
        assert clock.now == 3.0

    def test_advance_to_same_time_is_noop(self):
        clock = VirtualClock(2.0)
        clock.advance_to(2.0)
        assert clock.now == 2.0

    def test_advance_to_past_rejected(self):
        clock = VirtualClock(2.0)
        with pytest.raises(ClockError):
            clock.advance_to(1.0)


class TestEventLoop:
    def test_schedule_and_run_in_order(self):
        loop = EventLoop()
        order = []
        loop.schedule(2.0, lambda: order.append("b"))
        loop.schedule(1.0, lambda: order.append("a"))
        loop.schedule(3.0, lambda: order.append("c"))
        executed = loop.run()
        assert executed == 3
        assert order == ["a", "b", "c"]
        assert loop.now == 3.0

    def test_simultaneous_events_run_in_schedule_order(self):
        loop = EventLoop()
        order = []
        loop.schedule(1.0, lambda: order.append(1))
        loop.schedule(1.0, lambda: order.append(2))
        loop.run()
        assert order == [1, 2]

    def test_schedule_negative_delay_rejected(self):
        loop = EventLoop()
        with pytest.raises(EventLoopError):
            loop.schedule(-1.0, lambda: None)

    def test_schedule_at_past_rejected(self):
        loop = EventLoop()
        loop.clock.advance(5.0)
        with pytest.raises(EventLoopError):
            loop.schedule_at(1.0, lambda: None)

    def test_cancelled_events_do_not_run(self):
        loop = EventLoop()
        ran = []
        event = loop.schedule(1.0, lambda: ran.append("x"))
        event.cancel()
        loop.run()
        assert ran == []

    def test_run_until_stops_before_later_events(self):
        loop = EventLoop()
        ran = []
        loop.schedule(1.0, lambda: ran.append("early"))
        loop.schedule(10.0, lambda: ran.append("late"))
        loop.run(until=5.0)
        assert ran == ["early"]
        assert loop.now == 5.0
        assert loop.pending == 1

    def test_run_max_events(self):
        loop = EventLoop()
        for delay in (1.0, 2.0, 3.0):
            loop.schedule(delay, lambda: None)
        executed = loop.run(max_events=2)
        assert executed == 2
        assert loop.pending == 1

    def test_events_can_schedule_more_events(self):
        loop = EventLoop()
        seen = []

        def first():
            seen.append("first")
            loop.schedule(1.0, lambda: seen.append("second"))

        loop.schedule(1.0, first)
        loop.run()
        assert seen == ["first", "second"]
        assert loop.now == 2.0

    def test_step_returns_false_when_empty(self):
        assert EventLoop().step() is False

    def test_executed_events_counter(self):
        loop = EventLoop()
        loop.schedule(0.5, lambda: None)
        loop.schedule(1.0, lambda: None)
        loop.run()
        assert loop.executed_events == 2


class TestRecurringTimer:
    def test_fires_at_interval_multiples_until_cancelled(self):
        loop = EventLoop()
        fired = []
        timer = loop.schedule_recurring(1.0, lambda: fired.append(loop.now))
        loop.run(until=3.5)
        assert fired == [1.0, 2.0, 3.0]
        assert timer.fires == 3
        timer.cancel()
        loop.run(until=10.0)
        assert fired == [1.0, 2.0, 3.0]
        assert not timer.active

    def test_callback_can_cancel_own_timer(self):
        loop = EventLoop()
        fired = []
        timer = loop.schedule_recurring(1.0, lambda: (fired.append(loop.now),
                                                      timer.cancel() if len(fired) >= 2 else None))
        loop.run()  # terminates because the timer cancels itself
        assert fired == [1.0, 2.0]
        assert loop.pending == 0

    def test_cancel_before_first_fire(self):
        loop = EventLoop()
        fired = []
        timer = loop.schedule_recurring(1.0, lambda: fired.append(loop.now))
        timer.cancel()
        loop.run()
        assert fired == []

    def test_non_positive_interval_rejected(self):
        loop = EventLoop()
        with pytest.raises(EventLoopError):
            loop.schedule_recurring(0.0, lambda: None)
        with pytest.raises(EventLoopError):
            loop.schedule_recurring(-1.0, lambda: None)

    def test_interleaves_deterministically_with_one_shots(self):
        def trace() -> list:
            loop = EventLoop()
            seen = []
            timer = loop.schedule_recurring(1.0, lambda: seen.append(("tick", loop.now)))
            loop.schedule(1.0, lambda: seen.append(("shot", loop.now)))
            loop.schedule(2.5, lambda: (seen.append(("stop", loop.now)), timer.cancel()))
            loop.run()
            return seen

        first, second = trace(), trace()
        assert first == second
        # The recurring firing at t=1.0 was scheduled before the one-shot,
        # so (time, sequence) ordering runs it first.
        assert first == [("tick", 1.0), ("shot", 1.0), ("tick", 2.0), ("stop", 2.5)]

"""Tests for the open-loop (Poisson / trace-driven) load generator."""

from __future__ import annotations

import pytest

from repro.config import SimulationConfig
from repro.errors import PlatformError
from repro.faas.action import ActionSpec
from repro.faas.cluster import FaaSCluster
from repro.faas.loadgen import OpenLoopClient
from repro.faas.platform import FaaSPlatform
from repro.runtime.profiles import FunctionProfile


def _action(profile: FunctionProfile, name: str, mechanism: str = "base") -> ActionSpec:
    return ActionSpec.for_profile(profile, mechanism, name=name)


class TestOpenLoopClient:
    def test_poisson_arrivals_issue_independent_of_completions(
        self, small_python_profile
    ):
        platform = FaaSPlatform(SimulationConfig(cores=1, containers_per_action=1))
        platform.deploy(_action(small_python_profile, "ol"))
        client = OpenLoopClient(
            platform, "ol", rate_rps=50.0, duration_seconds=2.0
        )
        result = client.run()
        # Mean of Poisson(50/s over 2s) = 100; a deterministic seeded draw
        # lands in a broad band around it.
        assert 50 <= result.issued <= 160
        assert result.completed == result.issued
        assert result.rejected == 0
        assert result.achieved_rps > 0
        assert result.offered_rps == 50.0
        assert result.e2e is not None and result.e2e.count > 0
        # The platform drained: in-flight work finished after the deadline.
        assert platform.metrics.num_completed == result.issued

    def test_runs_are_deterministic(self, small_python_profile):
        def run_once() -> float:
            platform = FaaSPlatform(SimulationConfig(seed=7))
            platform.deploy(_action(small_python_profile, "det"))
            return OpenLoopClient(
                platform, "det", rate_rps=40.0, duration_seconds=1.5
            ).run().achieved_rps

        assert run_once() == run_once()

    def test_overload_shows_up_as_goodput_below_one(self, small_python_profile):
        # One core at ~25 req/s capacity, offered 200/s: the open-loop
        # client keeps issuing, the backlog grows, goodput collapses.
        platform = FaaSPlatform(SimulationConfig(cores=1, containers_per_action=1))
        platform.deploy(_action(small_python_profile, "over", mechanism="gh"))
        result = OpenLoopClient(
            platform, "over", rate_rps=200.0, duration_seconds=2.0,
            warmup_seconds=0.25,
        ).run()
        assert result.goodput_fraction < 0.5
        assert result.e2e.p95 > result.e2e.median  # queueing inflates the tail

    def test_rejections_are_lost_not_retried(self, small_python_profile):
        platform = FaaSPlatform(
            SimulationConfig(cores=1, containers_per_action=1, max_queue_per_action=1)
        )
        platform.deploy(_action(small_python_profile, "shed"))
        result = OpenLoopClient(
            platform, "shed", rate_rps=300.0, duration_seconds=1.0
        ).run()
        assert result.rejected > 0
        assert result.completed + result.rejected == result.issued

    def test_trace_driven_arrivals(self, small_python_profile):
        platform = FaaSPlatform(SimulationConfig())
        platform.deploy(_action(small_python_profile, "traced"))
        trace = [0.0, 0.1, 0.1, 0.35, 0.9]
        client = OpenLoopClient(platform, "traced", trace=trace)
        result = client.run()
        assert result.issued == len(trace)
        assert result.duration_seconds == pytest.approx(0.9)
        assert result.offered_rps == pytest.approx(len(trace) / 0.9)
        # Submissions happened at the trace instants.
        times = sorted(inv.submitted_at for inv in client.completed)
        assert times == pytest.approx(trace)

    def test_multi_action_assignment_is_deterministic(self, small_python_profile):
        def actions_hit() -> list:
            cluster = FaaSCluster(SimulationConfig(invokers=2, seed=11))
            names = [f"ma-{i}" for i in range(3)]
            for name in names:
                cluster.deploy(_action(small_python_profile, name))
            client = OpenLoopClient(
                cluster, names, rate_rps=60.0, duration_seconds=1.0
            )
            client.run()
            return sorted(inv.action for inv in client.completed)

        first = actions_hit()
        assert len(set(first)) > 1  # arrivals spread over the actions
        assert first == actions_hit()

    def test_validation_errors(self, small_python_profile):
        platform = FaaSPlatform(SimulationConfig())
        platform.deploy(_action(small_python_profile, "v"))
        with pytest.raises(PlatformError):
            OpenLoopClient(platform, "v", rate_rps=10.0, trace=[0.1],
                           duration_seconds=1.0)
        with pytest.raises(PlatformError):
            OpenLoopClient(platform, "v")
        with pytest.raises(PlatformError):
            OpenLoopClient(platform, "v", rate_rps=0.0, duration_seconds=1.0)
        with pytest.raises(PlatformError):
            OpenLoopClient(platform, "v", rate_rps=10.0)  # no duration
        with pytest.raises(PlatformError):
            OpenLoopClient(platform, "v", trace=[])
        with pytest.raises(PlatformError):
            OpenLoopClient(platform, "v", trace=[0.5, 0.2])  # unsorted
        with pytest.raises(PlatformError):
            OpenLoopClient(platform, "v", rate_rps=10.0, duration_seconds=1.0,
                           warmup_seconds=1.0)  # warmup swallows the run
        with pytest.raises(PlatformError):
            OpenLoopClient(platform, [], rate_rps=10.0, duration_seconds=1.0)

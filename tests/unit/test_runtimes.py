"""Tests for the function profiles and language-runtime models."""

from __future__ import annotations

import random

import pytest

from repro.errors import RuntimeModelError, UnsupportedRuntimeError, WorkloadError
from repro.proc.process import SimProcess
from repro.runtime import build_runtime
from repro.runtime.native import NativeRuntime
from repro.runtime.node_rt import NodeRuntime
from repro.runtime.profiles import FunctionProfile, Language
from repro.runtime.python_rt import PythonRuntime
from repro.runtime.wasm import WasmRuntime, wasm_execution_factor
from repro.sim.costs import CostModel


class TestFunctionProfile:
    def test_qualified_name_uses_language_suffix(self, small_python_profile):
        assert small_python_profile.qualified_name == "unit-python (p)"

    def test_derived_page_counts(self, small_python_profile):
        assert small_python_profile.total_pages == 1200
        assert small_python_profile.dirtied_pages == 150

    def test_default_read_pages_scale_with_write_set(self, small_python_profile):
        assert small_python_profile.read_pages >= small_python_profile.dirtied_pages

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"exec_seconds": 0},
            {"total_kpages": 0},
            {"dirtied_kpages": -1},
            {"dirtied_kpages": 99.0},
            {"init_fraction": 0.0},
            {"init_fraction": 1.5},
            {"threads": 0},
            {"restore_gc_probability": 2.0},
        ],
    )
    def test_invalid_profiles_rejected(self, kwargs):
        base = dict(name="bad", language=Language.C, exec_seconds=0.01,
                    total_kpages=1.0, dirtied_kpages=0.1)
        base.update(kwargs)
        with pytest.raises(WorkloadError):
            FunctionProfile(**base)

    def test_scaled_profile_scales_memory_only(self, small_python_profile):
        scaled = small_python_profile.scaled(2.0)
        assert scaled.total_kpages == pytest.approx(2.4)
        assert scaled.exec_seconds == small_python_profile.exec_seconds

    def test_scaled_rejects_nonpositive(self, small_python_profile):
        with pytest.raises(WorkloadError):
            small_python_profile.scaled(0)


class TestRuntimeFactory:
    def test_language_dispatch(self, small_python_profile, small_c_profile, small_node_profile):
        assert isinstance(build_runtime(small_python_profile, SimProcess("a")), PythonRuntime)
        assert isinstance(build_runtime(small_c_profile, SimProcess("b")), NativeRuntime)
        assert isinstance(build_runtime(small_node_profile, SimProcess("c")), NodeRuntime)

    def test_wasm_flag_builds_wasm_runtime(self, small_c_profile):
        runtime = build_runtime(small_c_profile, SimProcess("d"), wasm=True)
        assert isinstance(runtime, WasmRuntime)

    def test_wasm_rejects_incompatible_profile(self, small_node_profile):
        with pytest.raises(UnsupportedRuntimeError):
            build_runtime(small_node_profile, SimProcess("e"), wasm=True)


class TestRuntimeLifecycle:
    def _runtime(self, profile):
        return build_runtime(profile, SimProcess(profile.name), random.Random(0))

    def test_boot_maps_roughly_the_profile_footprint(self, small_python_profile):
        runtime = self._runtime(small_python_profile)
        runtime.boot()
        runtime.warm()
        mapped = runtime.process.address_space.total_mapped_pages
        assert mapped == pytest.approx(small_python_profile.total_pages, rel=0.25)

    def test_warm_before_boot_rejected(self, small_python_profile):
        runtime = self._runtime(small_python_profile)
        with pytest.raises(RuntimeModelError):
            runtime.warm()

    def test_invoke_before_warm_rejected(self, small_python_profile):
        runtime = self._runtime(small_python_profile)
        runtime.boot()
        with pytest.raises(RuntimeModelError):
            runtime.invoke(b"x")

    def test_double_boot_rejected(self, small_python_profile):
        runtime = self._runtime(small_python_profile)
        runtime.boot()
        with pytest.raises(RuntimeModelError):
            runtime.boot()

    def test_invocation_dirties_roughly_profile_write_set(self, small_python_profile):
        runtime = self._runtime(small_python_profile)
        runtime.boot()
        runtime.warm()
        space = runtime.process.address_space
        space.clear_soft_dirty()
        runtime.invoke(b"payload", "r1")
        dirty = len(space.soft_dirty_page_numbers())
        assert dirty == pytest.approx(small_python_profile.dirtied_pages, rel=0.3)

    def test_request_data_lands_in_request_buffer(self, small_python_profile):
        runtime = self._runtime(small_python_profile)
        runtime.boot()
        runtime.warm()
        runtime.invoke(b"alice-secret", "r1")
        assert b"alice-secret" in runtime.read_request_buffer()

    def test_residual_exposes_previous_request_without_isolation(self, small_python_profile):
        runtime = self._runtime(small_python_profile)
        runtime.boot()
        runtime.warm()
        runtime.invoke(b"alice-secret", "r1")
        second = runtime.invoke(b"bob-data", "r2")
        assert b"alice-secret" in second.residual

    def test_compute_time_tracks_profile(self, small_python_profile):
        runtime = self._runtime(small_python_profile)
        runtime.boot()
        runtime.warm()
        result = runtime.invoke(b"x", "r1")
        assert result.compute_seconds == pytest.approx(
            small_python_profile.exec_seconds, rel=0.2
        )

    def test_native_runtime_is_single_threaded(self, small_c_profile):
        runtime = self._runtime(small_c_profile)
        runtime.boot()
        assert runtime.process.num_threads == 1

    def test_node_runtime_is_multithreaded(self, small_node_profile):
        runtime = self._runtime(small_node_profile)
        runtime.boot()
        assert runtime.process.num_threads >= 5

    def test_node_layout_churn_maps_and_unmaps_regions(self, small_node_profile):
        runtime = self._runtime(small_node_profile)
        runtime.boot()
        runtime.warm()
        before = len(runtime.process.address_space.vmas)
        runtime.invoke(b"x", "r1")
        after = len(runtime.process.address_space.vmas)
        assert after != before or small_node_profile.regions_mapped_per_invocation == 0

    def test_memory_leak_accumulates_and_slows_down(self, leaky_profile):
        runtime = self._runtime(leaky_profile)
        runtime.boot()
        runtime.warm()
        first = runtime.invoke(b"x", "r1").compute_seconds
        for index in range(10):
            last = runtime.invoke(b"x", f"r{index + 2}").compute_seconds
        assert last > first

    def test_reset_logical_state_reverts_leak_counter(self, leaky_profile):
        runtime = self._runtime(leaky_profile)
        runtime.boot()
        runtime.warm()
        runtime.mark_clean_state()
        for index in range(5):
            runtime.invoke(b"x", f"r{index}")
        slowed = runtime.invoke(b"x", "slow").compute_seconds
        runtime.notify_restored()
        recovered = runtime.invoke(b"x", "fast").compute_seconds
        assert recovered < slowed

    def test_node_gc_pause_only_after_restore(self, small_node_profile):
        profile = small_node_profile
        runtime = NodeRuntime(profile, SimProcess("n"), random.Random(1))
        runtime.boot()
        runtime.warm()
        normal = runtime.invoke(b"x", "r1")
        assert normal.gc_pause_seconds == 0.0
        # After a notified restore, a GC pause may occur (probability 0.5);
        # force determinism by running enough trials.
        pauses = []
        for index in range(20):
            runtime.notify_restored()
            pauses.append(runtime.invoke(b"x", f"g{index}").gc_pause_seconds)
        assert any(p > 0 for p in pauses)


class TestWasmRuntime:
    def test_python_runs_slower_under_wasm(self, small_python_profile):
        factor = wasm_execution_factor(small_python_profile, CostModel())
        assert factor > 1.0
        runtime = WasmRuntime(small_python_profile, SimProcess("w"), random.Random(0))
        runtime.boot()
        runtime.warm()
        result = runtime.invoke(b"x", "r1")
        assert result.compute_seconds == pytest.approx(
            small_python_profile.exec_seconds * factor, rel=0.2
        )

    def test_c_runs_faster_under_wasm(self, small_c_profile):
        assert wasm_execution_factor(small_c_profile, CostModel()) < 1.0

    def test_profile_override_wins(self):
        profile = FunctionProfile(
            name="override", language=Language.C, exec_seconds=0.01,
            total_kpages=0.5, dirtied_kpages=0.05, wasm_factor=2.5,
        )
        assert wasm_execution_factor(profile, CostModel()) == 2.5

    def test_node_profile_has_no_wasm_factor(self, small_node_profile):
        with pytest.raises(UnsupportedRuntimeError):
            wasm_execution_factor(small_node_profile, CostModel())

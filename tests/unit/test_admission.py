"""Tests for the admission layer: queues, quotas, autoscaling, calibration."""

from __future__ import annotations

import pytest

from repro.config import ADMISSION_POLICIES, SimulationConfig
from repro.errors import PlatformError
from repro.faas.action import ActionSpec
from repro.faas.admission import (
    FifoQueue,
    ReactiveAutoscaler,
    TenantQuotas,
    WeightedFairQueue,
    create_admission_queue,
)
from repro.faas.cluster import FaaSCluster
from repro.faas.invoker import Invoker
from repro.faas.loadgen import TenantMix, azure_functions_arrivals
from repro.faas.metrics import MetricsCollector
from repro.faas.platform import FaaSPlatform
from repro.faas.request import Invocation, InvocationStatus
from repro.faas.scheduler import WarmAwarePolicy, estimated_service_seconds
from repro.sim.events import EventLoop


def _action(profile, name: str, mechanism: str = "base") -> ActionSpec:
    return ActionSpec.for_profile(profile, mechanism, name=name)


def _entry(tenant: str, index: int = 0, action: str = "act"):
    invocation = Invocation(action=action, payload=b"x", caller=tenant)
    return (invocation, lambda inv: None, float(index))


def _drain(queue):
    order = []
    while queue:
        order.append(queue.pop_next()[0].caller)
    return order


class TestFifoQueue:
    def test_preserves_arrival_order(self):
        queue = FifoQueue()
        for index, tenant in enumerate(["a", "b", "a", "c"]):
            queue.push(_entry(tenant, index))
        assert len(queue) == 4
        assert _drain(queue) == ["a", "b", "a", "c"]

    def test_pop_newest_takes_the_tail(self):
        queue = FifoQueue()
        first, second = _entry("a", 0), _entry("a", 1)
        queue.push(first)
        queue.push(second)
        assert queue.pop_newest() is second
        assert queue.pop_next() is first

    def test_never_displaces(self):
        queue = FifoQueue()
        for index in range(4):
            queue.push(_entry("hog", index))
        assert queue.displace("victim") is None
        assert len(queue) == 4

    def test_tenants_and_invocations(self):
        queue = FifoQueue()
        queue.push(_entry("a", 0))
        queue.push(_entry("b", 1))
        queue.push(_entry("a", 2))
        assert queue.tenants() == {"a": 2, "b": 1}
        assert [inv.caller for inv in queue.invocations()] == ["a", "b", "a"]

    def test_empty_pops_raise(self):
        queue = FifoQueue()
        with pytest.raises(PlatformError):
            queue.pop_next()
        with pytest.raises(PlatformError):
            queue.pop_newest()


class TestWeightedFairQueue:
    def test_round_robins_across_tenants(self):
        queue = WeightedFairQueue()
        # One tenant floods, the other trickles: dispatch alternates.
        for index in range(4):
            queue.push(_entry("hog", index))
        queue.push(_entry("polite", 4))
        order = _drain(queue)
        assert order[:3] == ["hog", "polite", "hog"]

    def test_single_tenant_degenerates_to_fifo(self):
        wfq, fifo = WeightedFairQueue(), FifoQueue()
        entries = [_entry("solo", index) for index in range(6)]
        for entry in entries:
            wfq.push(entry)
            fifo.push(entry)
        assert [wfq.pop_next() for _ in range(6)] == [
            fifo.pop_next() for _ in range(6)
        ]

    def test_weights_bias_the_service_ratio(self):
        queue = WeightedFairQueue(weights={"gold": 2.0, "bronze": 1.0})
        for index in range(12):
            queue.push(_entry("gold", index))
            queue.push(_entry("bronze", index))
        served = [queue.pop_next()[0].caller for _ in range(9)]
        # Gold is served twice per bronze once (2:1 deficit credit).
        assert served.count("gold") == 6
        assert served.count("bronze") == 3

    def test_fractional_weight_accumulates_credit(self):
        queue = WeightedFairQueue(weights={"slow": 0.5})
        queue.push(_entry("slow", 0))
        queue.push(_entry("fast", 1))
        # The fractional-weight tenant needs two round visits per service,
        # but is still served — no starvation, no infinite loop.
        assert sorted(_drain(queue)) == ["fast", "slow"]

    def test_pop_newest_takes_globally_newest(self):
        queue = WeightedFairQueue()
        queue.push(_entry("a", 0))
        newest = _entry("b", 1)
        queue.push(newest)
        assert queue.pop_newest() is newest
        assert queue.pop_next()[0].caller == "a"

    def test_displace_evicts_the_dominant_tenants_newest(self):
        queue = WeightedFairQueue()
        for index in range(5):
            queue.push(_entry("hog", index))
        queue.push(_entry("polite", 5))
        displaced = queue.displace("polite")
        assert displaced is not None
        assert displaced[0].caller == "hog"
        # The evicted entry is the hog's newest (largest arrival stamp).
        assert displaced[2] == 4.0
        assert queue.tenants() == {"hog": 4, "polite": 1}

    def test_displace_refuses_when_incoming_dominates(self):
        queue = WeightedFairQueue()
        for index in range(5):
            queue.push(_entry("hog", index))
        queue.push(_entry("small", 5))
        # The hog asking for room must not displace the smaller tenant.
        assert queue.displace("hog") is None
        # Ties are refused too: equal backlogs shed the newcomer.
        balanced = WeightedFairQueue()
        balanced.push(_entry("a", 0))
        balanced.push(_entry("b", 1))
        assert balanced.displace("a") is None

    def test_invocations_lists_arrival_order(self):
        queue = WeightedFairQueue()
        queue.push(_entry("a", 0))
        queue.push(_entry("b", 1))
        queue.push(_entry("a", 2))
        assert [inv.caller for inv in queue.invocations()] == ["a", "b", "a"]

    def test_validation(self):
        with pytest.raises(PlatformError):
            WeightedFairQueue(weights={"t": 0.0})
        with pytest.raises(PlatformError):
            WeightedFairQueue(quantum=0.0)
        with pytest.raises(PlatformError):
            WeightedFairQueue().pop_next()

    def test_registry(self):
        assert isinstance(create_admission_queue("fifo"), FifoQueue)
        assert isinstance(create_admission_queue("wfq"), WeightedFairQueue)
        with pytest.raises(PlatformError):
            create_admission_queue("lifo")
        assert set(ADMISSION_POLICIES) == {"fifo", "wfq"}


class TestTenantQuotas:
    def test_burst_then_throttle_then_refill(self):
        quotas = TenantQuotas(10.0, burst=2.0)
        assert quotas.admit("t", now=0.0)
        assert quotas.admit("t", now=0.0)
        # Bucket drained: a same-instant third request is refused.
        assert not quotas.admit("t", now=0.0)
        # 0.1s later one token has refilled.
        assert quotas.admit("t", now=0.1)
        assert not quotas.admit("t", now=0.1)
        assert quotas.admitted == 3
        assert quotas.throttled == 2

    def test_tenants_are_independent(self):
        quotas = TenantQuotas(5.0, burst=1.0)
        assert quotas.admit("a", now=0.0)
        assert not quotas.admit("a", now=0.0)
        # Tenant b still has its own full bucket.
        assert quotas.admit("b", now=0.0)

    def test_per_tenant_rate_override(self):
        quotas = TenantQuotas(1.0, burst=1.0, per_tenant_rates={"vip": 100.0})
        assert quotas.rate("vip") == 100.0
        assert quotas.rate("anyone-else") == 1.0
        assert quotas.admit("vip", now=0.0)
        # The VIP refills 100x faster.
        assert quotas.admit("vip", now=0.01)

    def test_bank_is_capped_at_burst(self):
        quotas = TenantQuotas(100.0, burst=3.0)
        assert quotas.tokens("t", now=1000.0) == 3.0

    def test_validation(self):
        with pytest.raises(PlatformError):
            TenantQuotas(0.0)
        with pytest.raises(PlatformError):
            TenantQuotas(1.0, burst=0.5)
        with pytest.raises(PlatformError):
            TenantQuotas(1.0, per_tenant_rates={"t": -1.0})


class TestInvokerAdmission:
    def test_quota_throttles_with_distinct_status(self, small_python_profile):
        loop = EventLoop()
        invoker = Invoker(loop, cores=1, quotas=TenantQuotas(10.0, burst=1.0))
        invoker.deploy(_action(small_python_profile, "q"), containers=1)
        done = []
        invoker.submit(Invocation(action="q", payload=b"x", caller="t"), done.append)
        invoker.submit(Invocation(action="q", payload=b"x", caller="t"), done.append)
        # Second same-instant request is over quota: refused immediately,
        # without occupying a queue slot or triggering a boot.
        assert invoker.invocations_throttled == 1
        assert invoker.invocations_rejected == 0
        assert done[0].status is InvocationStatus.THROTTLED
        assert "quota" in done[0].error
        loop.run(until=10.0)
        assert done[-1].status is InvocationStatus.COMPLETED

    def test_wfq_interleaves_tenants_on_one_invoker(self, small_python_profile):
        loop = EventLoop()
        invoker = Invoker(loop, cores=1, admission="wfq")
        invoker.deploy(_action(small_python_profile, "fair"), containers=1)
        finished = []
        # The hog floods first; the polite tenant's single request must not
        # wait behind the whole flood.
        for _ in range(5):
            invoker.submit(
                Invocation(action="fair", payload=b"x", caller="hog"),
                finished.append,
            )
        invoker.submit(
            Invocation(action="fair", payload=b"x", caller="polite"),
            finished.append,
        )
        loop.run(until=50.0)
        callers = [inv.caller for inv in finished]
        # One hog request was already running; the polite request is served
        # after at most one more queued hog request, not after all five.
        assert "polite" in callers[:3]

    def test_wfq_displacement_protects_the_polite_tenant(
        self, small_python_profile
    ):
        loop = EventLoop()
        invoker = Invoker(
            loop, cores=1, admission="wfq", max_queue_per_action=3
        )
        invoker.deploy(_action(small_python_profile, "full"), containers=1)
        shed = []
        # One running + 3 queued hog requests fill the bounded queue.
        for _ in range(4):
            invoker.submit(
                Invocation(action="full", payload=b"x", caller="hog"),
                lambda inv: None,
            )
        polite_done = []
        invoker.submit(
            Invocation(action="full", payload=b"x", caller="polite"),
            polite_done.append,
        )
        # The polite request took a slot; the hog's newest entry was shed.
        assert invoker.invocations_rejected == 1
        assert invoker.queued_by_tenant("full") == {"hog": 2, "polite": 1}
        loop.run(until=50.0)
        assert polite_done[0].status is InvocationStatus.COMPLETED

    def test_fifo_sheds_the_newcomer_bit_for_bit(self, small_python_profile):
        # Under FIFO admission the bounded-queue behaviour is unchanged:
        # the incoming invocation is shed, whoever is queued.
        loop = EventLoop()
        invoker = Invoker(loop, cores=1, max_queue_per_action=2)
        invoker.deploy(_action(small_python_profile, "fifo"), containers=1)
        done = []
        for _ in range(4):
            invoker.submit(
                Invocation(action="fifo", payload=b"x", caller="hog"), done.append
            )
        polite = Invocation(action="fifo", payload=b"x", caller="polite")
        invoker.submit(polite, done.append)
        assert polite.status is InvocationStatus.REJECTED
        assert invoker.invocations_rejected == 2

    def test_unknown_admission_policy_rejected(self):
        with pytest.raises(PlatformError):
            Invoker(EventLoop(), cores=1, admission="lifo")

    def test_custom_admission_factory(self, small_python_profile):
        loop = EventLoop()
        invoker = Invoker(
            loop, cores=1,
            admission=lambda: WeightedFairQueue(weights={"gold": 4.0}),
        )
        invoker.deploy(_action(small_python_profile, "custom"), containers=1)
        assert isinstance(
            invoker._pools["custom"].queue, WeightedFairQueue
        )

    def test_snapshot_reports_per_tenant_queue_depth(self, small_python_profile):
        loop = EventLoop()
        invoker = Invoker(loop, cores=1)
        invoker.deploy(_action(small_python_profile, "snap"), containers=1)
        for caller in ("a", "a", "b"):
            invoker.submit(
                Invocation(action="snap", payload=b"x", caller=caller),
                lambda inv: None,
            )
        snap = invoker.snapshot()
        # One request of tenant a is running; the rest wait.
        assert snap.queued_by_tenant == {"a": 1, "b": 1}
        assert snap.queued == 2


class TestMetricsThrottledAccounting:
    def test_throttled_accounted_separately_from_rejected(self):
        collector = MetricsCollector()
        rejected = Invocation(action="a", caller="t")
        rejected.mark_rejected(1.0)
        throttled = Invocation(action="a", caller="t")
        throttled.mark_throttled(1.0)
        collector.record(rejected)
        collector.record(throttled)
        assert collector.num_rejected == 1
        assert collector.num_throttled == 1
        assert collector.num_recorded == 2
        assert collector.rejection_rate == pytest.approx(0.5)
        assert collector.throttle_rate == pytest.approx(0.5)
        assert collector.throttled[0] is throttled

    def test_platform_metrics_track_throttled(self, small_python_profile):
        platform = FaaSPlatform(
            SimulationConfig(
                cores=1, containers_per_action=1,
                tenant_quota_rps=10.0, tenant_quota_burst=1.0,
            )
        )
        platform.deploy(_action(small_python_profile, "m"))
        for _ in range(3):
            platform.invoke_async("m", b"x", caller="same-instant")
        platform.run(until=10.0)
        assert platform.metrics.num_throttled == 2
        assert platform.throttled == 2
        assert platform.metrics.num_completed == 1
        per_tenant = platform.metrics.by_caller()
        assert per_tenant["same-instant"].num_throttled == 2

    def test_latency_stats_expose_p99(self):
        from repro.faas.metrics import LatencyStats

        stats = LatencyStats.from_samples(list(range(1, 101)))
        assert stats.p95 <= stats.p99 <= stats.maximum
        assert stats.p99 == pytest.approx(99.01)


class TestReactiveAutoscaler:
    def _pressured_invoker(self, profile, *, queue_high=2, cooldown=0.05):
        loop = EventLoop()
        invoker = Invoker(loop, cores=4, keep_alive_seconds=0.5)
        ReactiveAutoscaler(
            queue_high=queue_high, cooldown_seconds=cooldown
        ).attach(invoker)
        invoker.deploy(
            _action(profile, "scale"), containers=1, max_containers=1
        )
        return loop, invoker

    def test_queue_pressure_raises_the_ceiling(self, small_python_profile):
        loop, invoker = self._pressured_invoker(small_python_profile)
        for _ in range(4):
            invoker.submit(
                Invocation(action="scale", payload=b"x"), lambda inv: None
            )
        # Queue depth crossed the high-water mark: the ceiling rose above
        # the deployed maximum of 1 and a demand-matched boot started.
        assert invoker.max_containers("scale") >= 2
        assert invoker.autoscaler.scale_ups >= 1
        assert invoker.cold_starts >= 1

    def test_cooldown_limits_scaling_rate(self, small_python_profile):
        loop, invoker = self._pressured_invoker(
            small_python_profile, cooldown=100.0
        )
        for _ in range(8):
            invoker.submit(
                Invocation(action="scale", payload=b"x"), lambda inv: None
            )
        # However deep the queue gets, one burst scales at most one step
        # inside the cooldown window.
        assert invoker.autoscaler.scale_ups == 1
        assert invoker.max_containers("scale") == 2

    def test_eviction_lowers_the_ceiling(self, small_python_profile):
        loop, invoker = self._pressured_invoker(small_python_profile)
        for _ in range(4):
            invoker.submit(
                Invocation(action="scale", payload=b"x"), lambda inv: None
            )
        raised = invoker.max_containers("scale")
        assert raised >= 2
        # Drain and let keep-alive reclaim the dynamic containers.
        loop.run(until=30.0)
        assert invoker.evictions >= 1
        assert invoker.autoscaler.scale_downs >= 1
        assert invoker.max_containers("scale") < raised
        # Never below the pre-warmed floor.
        assert invoker.max_containers("scale") >= 1

    def test_rejection_pressure_raises_the_ceiling(self, small_python_profile):
        loop = EventLoop()
        invoker = Invoker(loop, cores=2, max_queue_per_action=1)
        ReactiveAutoscaler(queue_high=50, cooldown_seconds=0.01).attach(invoker)
        invoker.deploy(
            _action(small_python_profile, "rej"), containers=1, max_containers=1
        )
        for _ in range(4):
            invoker.submit(
                Invocation(action="rej", payload=b"x"), lambda inv: None
            )
        # The queue bound (1) never reaches queue_high, but the shed
        # invocations are rejection pressure.
        assert invoker.invocations_rejected >= 1
        assert invoker.autoscaler.scale_ups >= 1

    def test_attach_is_exclusive(self, small_python_profile):
        loop = EventLoop()
        autoscaler = ReactiveAutoscaler()
        autoscaler.attach(Invoker(loop, cores=1))
        with pytest.raises(PlatformError):
            autoscaler.attach(Invoker(loop, cores=1, invoker_id="invoker-1"))

    def test_validation(self):
        with pytest.raises(PlatformError):
            ReactiveAutoscaler(queue_high=0)
        with pytest.raises(PlatformError):
            ReactiveAutoscaler(cooldown_seconds=0.0)

    def test_scale_action_clamps_to_cores_and_floor(self, small_python_profile):
        loop = EventLoop()
        invoker = Invoker(loop, cores=2)
        invoker.deploy(
            _action(small_python_profile, "clamp"), containers=1, max_containers=1
        )
        assert invoker.scale_action("clamp", +1) == 2
        assert invoker.scale_action("clamp", +1) is None  # capped at cores
        assert invoker.scale_action("clamp", -1) == 1
        assert invoker.scale_action("clamp", -1) is None  # at the floor
        with pytest.raises(PlatformError):
            invoker.set_max_containers("clamp", 0)

    def test_cluster_config_attaches_autoscalers(self, small_python_profile):
        cluster = FaaSCluster(
            SimulationConfig(cores=2, invokers=2, autoscale=True)
        )
        assert len(cluster.autoscalers) == 2
        assert all(
            invoker.autoscaler is not None for invoker in cluster.invokers
        )
        off = FaaSCluster(SimulationConfig(cores=2, invokers=2))
        assert off.autoscalers == []
        assert all(invoker.autoscaler is None for invoker in off.invokers)


class TestCalibratedWarmPenalty:
    def test_constant_fallback_for_uncalibrated_actions(self):
        policy = WarmAwarePolicy(cold_start_penalty=7.0)
        assert policy.penalty_for("anything") == 7.0

    def test_calibration_is_the_boot_service_ratio(self):
        policy = WarmAwarePolicy()
        penalty = policy.calibrate(
            "heavy", boot_seconds=0.8, service_seconds=0.1
        )
        assert penalty == pytest.approx(8.0)
        assert policy.penalty_for("heavy") == pytest.approx(8.0)
        assert policy.penalty_for("other") == 32.0  # the constant fallback
        with pytest.raises(PlatformError):
            policy.calibrate("bad", boot_seconds=-1.0, service_seconds=0.1)
        with pytest.raises(PlatformError):
            policy.calibrate("bad", boot_seconds=1.0, service_seconds=0.0)

    def test_calibrated_penalty_changes_the_spill_point(
        self, small_python_profile
    ):
        # A backlog of 3 on the warm invoker: the constant (32) keeps
        # traffic there, a small calibrated penalty spills to the cold one.
        loop = EventLoop()
        warm = Invoker(loop, cores=1, invoker_id="invoker-0")
        cold = Invoker(loop, cores=1, invoker_id="invoker-1")
        spec = _action(small_python_profile, "spill")
        warm.deploy(spec, containers=1, max_containers=1)
        cold.register(spec, max_containers=1)
        for _ in range(4):
            warm.submit(Invocation(action="spill", payload=b"x"), lambda inv: None)
        policy = WarmAwarePolicy()
        assert policy.select([warm, cold], Invocation(action="spill")) == 0
        policy.calibrate("spill", boot_seconds=0.02, service_seconds=0.01)
        assert policy.select([warm, cold], Invocation(action="spill")) == 1

    def test_cluster_calibrates_at_deploy(self, small_python_profile):
        cluster = FaaSCluster(
            SimulationConfig(
                cores=2, invokers=2,
                scheduler_policy="warm-aware",
                calibrate_warm_penalty=True,
            )
        )
        spec = _action(small_python_profile, "cal")
        containers = cluster.deploy(spec)
        policy = cluster.scheduler.policy
        assert isinstance(policy, WarmAwarePolicy)
        expected = containers[0].init_report.total_seconds / (
            estimated_service_seconds(small_python_profile)
        )
        assert policy.penalty_for("cal") == pytest.approx(expected)
        # Without the flag the constant stays in force.
        plain = FaaSCluster(
            SimulationConfig(cores=2, invokers=2, scheduler_policy="warm-aware")
        )
        plain.deploy(_action(small_python_profile, "cal"))
        assert plain.scheduler.policy.penalty_for("cal") == 32.0


class TestTenantMixAndAzureTrace:
    def test_mix_is_proportional_and_deterministic(self):
        mix = TenantMix({"big": 3.0, "small": 1.0})
        first = [mix(i) for i in range(400)]
        assert first.count("big") == 300
        assert first.count("small") == 100
        again = TenantMix({"big": 3.0, "small": 1.0})
        assert [again(i) for i in range(400)] == first
        assert mix.share("big") == pytest.approx(0.75)

    def test_mix_interleaves_smoothly(self):
        mix = TenantMix({"a": 1.0, "b": 1.0})
        assert [mix(i) for i in range(6)] == ["a", "b", "a", "b", "a", "b"]

    def test_mix_validation(self):
        with pytest.raises(PlatformError):
            TenantMix({})
        with pytest.raises(PlatformError):
            TenantMix({"t": 0.0})
        with pytest.raises(PlatformError):
            TenantMix({"t": 1.0})(-1)

    def test_azure_trace_is_heavy_tailed_and_sorted(self):
        import random

        offsets, sequence = azure_functions_arrivals(
            [f"fn-{i}" for i in range(8)],
            duration_seconds=20.0,
            mean_rps=50.0,
            rng=random.Random(7),
        )
        assert len(offsets) == len(sequence)
        assert offsets == sorted(offsets)
        assert all(0 <= offset <= 20.0 for offset in offsets)
        counts = [sequence.count(f"fn-{i}") for i in range(8)]
        # The head action dominates and the tail is rarely invoked — the
        # Azure-Functions-shaped skew.
        assert counts[0] > 3 * counts[-1]
        assert counts[0] > len(sequence) * 0.3

    def test_azure_trace_determinism(self):
        import random

        first = azure_functions_arrivals(
            ["a", "b"], duration_seconds=5.0, mean_rps=20.0,
            rng=random.Random(3),
        )
        second = azure_functions_arrivals(
            ["a", "b"], duration_seconds=5.0, mean_rps=20.0,
            rng=random.Random(3),
        )
        assert first == second

    def test_azure_trace_validation(self):
        import random

        with pytest.raises(PlatformError):
            azure_functions_arrivals(
                [], duration_seconds=1.0, mean_rps=1.0, rng=random.Random(1)
            )
        with pytest.raises(PlatformError):
            azure_functions_arrivals(
                ["a"], duration_seconds=0.0, mean_rps=1.0, rng=random.Random(1)
            )
        with pytest.raises(PlatformError):
            azure_functions_arrivals(
                ["a"], duration_seconds=1.0, mean_rps=0.0, rng=random.Random(1)
            )


class TestAzureDiurnalArrivals:
    def test_diurnal_cycle_concentrates_arrivals_at_the_peak(self):
        import random

        from repro.faas.loadgen import azure_diurnal_arrivals

        offsets, sequence = azure_diurnal_arrivals(
            [f"fn-{i}" for i in range(4)],
            duration_seconds=40.0,
            mean_rps=60.0,
            rng=random.Random(11),
            amplitude=0.8,
            burst_fraction=0.0,  # isolate the diurnal component
        )
        assert offsets == sorted(offsets)
        assert all(0 <= offset <= 40.0 for offset in offsets)
        # One sinusoidal cycle over the run: the first half (rising to the
        # peak at t=10) must clearly out-arrive the second half (trough at
        # t=30).
        first_half = sum(1 for offset in offsets if offset < 20.0)
        second_half = len(offsets) - first_half
        assert first_half > 1.5 * second_half
        # The per-action mix keeps the heavy-tailed Azure shape.
        counts = [sequence.count(f"fn-{i}") for i in range(4)]
        assert counts[0] > 2 * counts[-1]

    def test_bursts_raise_the_local_rate(self):
        import random

        from repro.faas.loadgen import azure_diurnal_arrivals

        offsets, _ = azure_diurnal_arrivals(
            ["a"],
            duration_seconds=60.0,
            mean_rps=40.0,
            rng=random.Random(5),
            amplitude=0.0,  # isolate the burst component
            burst_multiplier=8.0,
            burst_fraction=0.15,
            burst_dwell_seconds=2.0,
        )
        # With rate jumps of 8x covering ~15% of the timeline, the busiest
        # second must far exceed the quietest stretch: compare the top
        # per-second arrival count against the mean.
        per_second = [0] * 60
        for offset in offsets:
            per_second[min(59, int(offset))] += 1
        mean = len(offsets) / 60.0
        assert max(per_second) > 3 * mean

    def test_determinism_and_validation(self):
        import random

        from repro.faas.loadgen import azure_diurnal_arrivals

        args = dict(duration_seconds=10.0, mean_rps=30.0)
        first = azure_diurnal_arrivals(["a", "b"], rng=random.Random(9), **args)
        second = azure_diurnal_arrivals(["a", "b"], rng=random.Random(9), **args)
        assert first == second
        with pytest.raises(PlatformError):
            azure_diurnal_arrivals(
                ["a"], duration_seconds=1.0, mean_rps=1.0,
                rng=random.Random(1), amplitude=1.0,
            )
        with pytest.raises(PlatformError):
            azure_diurnal_arrivals(
                ["a"], duration_seconds=1.0, mean_rps=1.0,
                rng=random.Random(1), burst_multiplier=0.5,
            )
        with pytest.raises(PlatformError):
            azure_diurnal_arrivals(
                ["a"], duration_seconds=1.0, mean_rps=1.0,
                rng=random.Random(1), burst_fraction=1.0,
            )


class TestAzureTraceCsvLoader:
    HEADER = "HashOwner,HashApp,HashFunction,Trigger,1,2,3,4,5\n"

    def _write(self, tmp_path, body: str) -> str:
        path = tmp_path / "trace.csv"
        path.write_text(self.HEADER + body)
        return str(path)

    def test_loads_top_functions_heaviest_first(self, tmp_path):
        import random

        from repro.faas.loadgen import load_azure_trace_csv

        path = self._write(
            tmp_path,
            "o,a,f-light,http,1,0,2,0,0\n"
            "o,a,f-heavy,http,10,20,5,0,1\n",
        )
        offsets, sequence = load_azure_trace_csv(
            path, ["first", "second"], duration_seconds=10.0,
            rng=random.Random(3),
        )
        assert offsets == sorted(offsets)
        assert all(0 <= offset <= 10.0 for offset in offsets)
        # Replay mode: absolute counts survive, and the heaviest function
        # maps onto the first action.
        assert sequence.count("first") == 36
        assert sequence.count("second") == 3
        # Minute 2's (compressed) window holds f-heavy's 20 arrivals:
        # minutes compress onto 2-second windows of the 10s run.
        in_second_window = [
            o for o, action in zip(offsets, sequence)
            if action == "first" and 2.0 <= o < 4.0
        ]
        assert len(in_second_window) == 20

    def test_mean_rps_rescales_the_totals(self, tmp_path):
        import random

        from repro.faas.loadgen import load_azure_trace_csv

        path = self._write(tmp_path, "o,a,f,http,100,100,100,100,100\n")
        offsets, _ = load_azure_trace_csv(
            path, ["x"], duration_seconds=10.0,
            rng=random.Random(3), mean_rps=5.0,
        )
        # Expected 50 arrivals (5 rps x 10 s); Bernoulli rounding keeps
        # the expectation exact, so the draw lands very close.
        assert 40 <= len(offsets) <= 60

    def test_determinism(self, tmp_path):
        import random

        from repro.faas.loadgen import load_azure_trace_csv

        path = self._write(tmp_path, "o,a,f,http,3,1,4,1,5\n")
        first = load_azure_trace_csv(
            path, ["x"], duration_seconds=5.0, rng=random.Random(21)
        )
        second = load_azure_trace_csv(
            path, ["x"], duration_seconds=5.0, rng=random.Random(21)
        )
        assert first == second

    def test_validation(self, tmp_path):
        import random

        from repro.faas.loadgen import load_azure_trace_csv

        empty = tmp_path / "empty.csv"
        empty.write_text("")
        with pytest.raises(PlatformError):
            load_azure_trace_csv(
                str(empty), ["x"], duration_seconds=1.0, rng=random.Random(1)
            )
        no_minutes = tmp_path / "nomin.csv"
        no_minutes.write_text("HashFunction,Trigger\nf,http\n")
        with pytest.raises(PlatformError):
            load_azure_trace_csv(
                str(no_minutes), ["x"], duration_seconds=1.0,
                rng=random.Random(1),
            )
        garbage = tmp_path / "garbage.csv"
        garbage.write_text(self.HEADER + "o,a,f,http,1,2,three,4,5\n")
        with pytest.raises(PlatformError):
            load_azure_trace_csv(
                str(garbage), ["x"], duration_seconds=1.0, rng=random.Random(1)
            )
        zeros = tmp_path / "zeros.csv"
        zeros.write_text(self.HEADER + "o,a,f,http,0,0,0,0,0\n")
        with pytest.raises(PlatformError):
            load_azure_trace_csv(
                str(zeros), ["x"], duration_seconds=1.0, rng=random.Random(1)
            )


class TestConfigValidation:
    def test_admission_knobs(self):
        with pytest.raises(ValueError):
            SimulationConfig(admission_policy="lifo")
        with pytest.raises(ValueError):
            SimulationConfig(tenant_quota_rps=0.0)
        with pytest.raises(ValueError):
            SimulationConfig(tenant_quota_burst=4.0)  # burst without a rate
        with pytest.raises(ValueError):
            SimulationConfig(tenant_quota_rps=10.0, tenant_quota_burst=0.5)
        with pytest.raises(ValueError):
            SimulationConfig(autoscale_queue_high=0)
        with pytest.raises(ValueError):
            SimulationConfig(autoscale_cooldown_seconds=0.0)
        config = SimulationConfig(
            admission_policy="wfq", tenant_quota_rps=10.0, autoscale=True
        )
        assert config.admission_policy == "wfq"

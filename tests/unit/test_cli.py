"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestCli:
    def test_list_benchmarks_all(self, capsys):
        assert main(["list-benchmarks"]) == 0
        out = capsys.readouterr().out
        assert "58 benchmarks" in out
        assert "pyaes (p)" in out

    def test_list_benchmarks_by_suite(self, capsys):
        assert main(["list-benchmarks", "--suite", "polybench"]) == 0
        out = capsys.readouterr().out
        assert "23 benchmarks" in out
        assert "pyaes (p)" not in out

    def test_demo_leak_shows_both_configurations(self, capsys):
        assert main(["demo-leak", "--benchmark", "get-time", "--language", "p"]) == 0
        out = capsys.readouterr().out
        assert "base" in out and "gh" in out
        assert "YES" in out and "no" in out

    def test_restore_stats_reports_paper_value(self, capsys):
        assert main(["restore-stats", "--benchmark", "bicg", "--invocations", "2"]) == 0
        out = capsys.readouterr().out
        assert "mean restoration" in out
        assert "paper-reported restoration" in out

    def test_lifecycle_command(self, capsys):
        assert main(["lifecycle", "--benchmark", "get-time", "--language", "p"]) == 0
        out = capsys.readouterr().out
        assert "environment_instantiation_seconds" in out

    def test_cluster_scaling_reports_skew(self, capsys):
        assert main([
            "cluster-scaling", "--benchmark", "get-time", "--language", "p",
            "--invokers", "1", "--policies", "hash-affinity", "--rounds", "1",
            "--actions", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "skew (max/mean)" in out
        assert "steals" in out
        assert "hash-affinity" in out

    def test_latency_under_load_sweeps_strategies(self, capsys):
        assert main([
            "latency-under-load", "--benchmark", "get-time", "--language", "p",
            "--invokers", "2", "--actions", "2",
            "--load-factors", "0.4", "--duration", "1.0",
        ]) == 0
        out = capsys.readouterr().out
        assert "Latency under open-loop load" in out
        assert "least-loaded" in out
        assert "warm-aware+steal" in out
        assert "goodput" in out

    def test_latency_under_load_azure_arrivals(self, capsys):
        assert main([
            "latency-under-load", "--benchmark", "get-time", "--language", "p",
            "--invokers", "2", "--actions", "2",
            "--load-factors", "0.4", "--duration", "1.0",
            "--arrivals", "azure",
        ]) == 0
        out = capsys.readouterr().out
        assert "azure arrivals" in out

    def test_latency_under_load_azure_diurnal_arrivals(self, capsys):
        assert main([
            "latency-under-load", "--benchmark", "get-time", "--language", "p",
            "--invokers", "2", "--actions", "2",
            "--load-factors", "0.4", "--duration", "2.0",
            "--arrivals", "azure-diurnal",
        ]) == 0
        out = capsys.readouterr().out
        assert "azure-diurnal arrivals" in out

    def test_latency_under_load_azure_file_arrivals(self, capsys, tmp_path):
        trace = tmp_path / "trace.csv"
        trace.write_text(
            "HashOwner,HashApp,HashFunction,Trigger,1,2,3,4\n"
            "o,a,f-hot,http,20,10,15,5\n"
            "o,a,f-cool,timer,2,1,0,1\n"
        )
        assert main([
            "latency-under-load", "--benchmark", "get-time", "--language", "p",
            "--invokers", "2", "--actions", "2",
            "--load-factors", "0.4", "--duration", "2.0",
            "--arrivals", "azure-file", "--trace-file", str(trace),
        ]) == 0
        out = capsys.readouterr().out
        assert "azure-file arrivals" in out

    def test_azure_file_arrivals_require_a_trace_file(self):
        with pytest.raises(ValueError):
            main([
                "latency-under-load", "--benchmark", "get-time",
                "--language", "p", "--invokers", "2", "--actions", "2",
                "--load-factors", "0.4", "--duration", "1.0",
                "--arrivals", "azure-file",
            ])

    def test_slo_control_quota_part(self, capsys):
        assert main([
            "slo-control", "--parts", "quota",
            "--duration", "5.0", "--warmup", "2.0",
        ]) == 0
        out = capsys.readouterr().out
        assert "SLO quota control" in out
        assert "controlled" in out and "static" in out and "solo" in out
        assert "control loop:" in out

    def test_tenant_fairness_reports_all_scenarios(self, capsys):
        assert main([
            "tenant-fairness", "--invokers", "1", "--cores", "2",
            "--actions", "2", "--duration", "3.0", "--warmup", "1.5",
        ]) == 0
        out = capsys.readouterr().out
        assert "Tenant fairness" in out
        for token in ("solo", "fifo", "wfq+quota", "throttled", "aggressive", "polite"):
            assert token in out

    def test_cluster_scaling_accepts_admission_and_autoscale(self, capsys):
        assert main([
            "cluster-scaling", "--benchmark", "get-time", "--language", "p",
            "--invokers", "2", "--policies", "least-loaded", "--rounds", "1",
            "--actions", "2", "--admission", "wfq", "--autoscale",
        ]) == 0
        assert "least-loaded" in capsys.readouterr().out

    def test_latency_under_load_restorable_snapshots(self, capsys):
        assert main([
            "latency-under-load", "--benchmark", "get-time", "--language", "p",
            "--invokers", "2", "--actions", "2",
            "--load-factors", "0.4", "--duration", "1.0",
            "--restorable-snapshots", "--snapshot-budget", "4",
            "--isolation-mechanism", "gh",
        ]) == 0
        out = capsys.readouterr().out
        assert "Latency under open-loop load" in out

    def test_spectrum_knobs_parse_with_defaults(self):
        parser = build_parser()
        for command in ("latency-under-load", "slo-control"):
            args = parser.parse_args([command])
            assert args.restorable_snapshots is False
            assert args.snapshot_budget is None
            assert args.isolation_mechanism == "gh"
            args = parser.parse_args([
                command, "--restorable-snapshots",
                "--snapshot-budget", "8", "--isolation-mechanism", "criu",
            ])
            assert args.restorable_snapshots is True
            assert args.snapshot_budget == 8
            assert args.isolation_mechanism == "criu"
            with pytest.raises(SystemExit):
                parser.parse_args([command, "--isolation-mechanism", "bogus"])

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_ambiguous_benchmark_needs_language(self):
        from repro.errors import WorkloadError

        with pytest.raises(WorkloadError):
            main(["demo-leak", "--benchmark", "get-time"])


class TestPerfTraceCli:
    def test_shape_choices_and_defaults(self):
        parser = build_parser()
        args = parser.parse_args(["perf-trace"])
        assert args.shape == "metrics"
        assert args.trace_file is None
        assert args.cluster_invocations == 30_000
        args = parser.parse_args(["perf-trace", "--shape", "cluster-scale"])
        assert args.shape == "cluster-scale"
        args = parser.parse_args(["perf-trace", "--shape", "warmth-spectrum"])
        assert args.shape == "warmth-spectrum"
        assert args.warmth_invocations == 150_000
        assert args.isolation_mechanism == "gh"
        with pytest.raises(SystemExit):
            parser.parse_args(["perf-trace", "--shape", "bogus"])
        with pytest.raises(SystemExit):
            parser.parse_args(["perf-trace", "--isolation-mechanism", "bogus"])

    def test_merge_preserves_sections_not_regenerated(self, tmp_path):
        import json

        from repro.cli import _merge_perf_sections

        path = tmp_path / "BENCH_perf.json"
        path.write_text(json.dumps({
            "benchmark": "perf-trace",
            "modes": {"exact": {"invocations_per_second": 1.0}},
            "cluster_scale": {"benchmark": "cluster-scale", "points": {}},
            "warmth_spectrum": {"benchmark": "warmth-spectrum", "regimes": {}},
        }))
        # Regenerating only the metrics shape keeps the other sections.
        merged = _merge_perf_sections(str(path), {
            "metrics": {"benchmark": "perf-trace", "modes": {}},
        })
        assert merged["modes"] == {}
        assert merged["cluster_scale"]["benchmark"] == "cluster-scale"
        assert merged["warmth_spectrum"]["benchmark"] == "warmth-spectrum"
        # Regenerating only the cluster shape keeps the metrics section.
        merged = _merge_perf_sections(str(path), {
            "cluster-scale": {"benchmark": "cluster-scale", "points": {"a": 1}},
        })
        assert merged["modes"] == {"exact": {"invocations_per_second": 1.0}}
        assert merged["cluster_scale"]["points"] == {"a": 1}
        assert merged["warmth_spectrum"]["benchmark"] == "warmth-spectrum"
        # Regenerating only the warmth shape keeps everything else.
        merged = _merge_perf_sections(str(path), {
            "warmth-spectrum": {
                "benchmark": "warmth-spectrum", "regimes": {"on": {}},
            },
        })
        assert merged["modes"] == {"exact": {"invocations_per_second": 1.0}}
        assert merged["cluster_scale"]["benchmark"] == "cluster-scale"
        assert merged["warmth_spectrum"]["regimes"] == {"on": {}}
        # All regenerated: nothing survives from the file.
        merged = _merge_perf_sections(str(path), {
            "metrics": {"benchmark": "perf-trace", "modes": {"m": {}}},
            "cluster-scale": {"benchmark": "cluster-scale", "points": {}},
            "warmth-spectrum": {"benchmark": "warmth-spectrum", "regimes": {}},
        })
        assert merged["modes"] == {"m": {}}
        assert merged["cluster_scale"]["points"] == {}
        assert merged["warmth_spectrum"]["regimes"] == {}

    def test_merge_tolerates_missing_or_corrupt_baseline(self, tmp_path):
        from repro.cli import _merge_perf_sections

        missing = tmp_path / "nope.json"
        merged = _merge_perf_sections(str(missing), {
            "cluster-scale": {"benchmark": "cluster-scale", "points": {}},
        })
        assert set(merged) == {"cluster_scale"}
        corrupt = tmp_path / "bad.json"
        corrupt.write_text("{not json")
        merged = _merge_perf_sections(str(corrupt), {
            "metrics": {"benchmark": "perf-trace", "modes": {}},
        })
        assert merged == {"benchmark": "perf-trace", "modes": {}}

    def test_merge_preserves_tracing_overhead_section(self, tmp_path):
        import json

        from repro.cli import _merge_perf_sections

        path = tmp_path / "BENCH_perf.json"
        path.write_text(json.dumps({
            "benchmark": "perf-trace",
            "modes": {"exact": {"invocations_per_second": 1.0}},
            "tracing_overhead": {
                "benchmark": "tracing-overhead", "modes": {"off": {}},
            },
        }))
        # Regenerating only the metrics shape keeps tracing_overhead.
        merged = _merge_perf_sections(str(path), {
            "metrics": {"benchmark": "perf-trace", "modes": {}},
        })
        assert merged["tracing_overhead"]["benchmark"] == "tracing-overhead"
        # Regenerating only tracing-overhead keeps the metrics section.
        merged = _merge_perf_sections(str(path), {
            "tracing-overhead": {
                "benchmark": "tracing-overhead", "modes": {"sampled": {}},
            },
        })
        assert merged["modes"] == {"exact": {"invocations_per_second": 1.0}}
        assert merged["tracing_overhead"]["modes"] == {"sampled": {}}

    def test_tracing_overhead_shape_parses(self):
        parser = build_parser()
        args = parser.parse_args(["perf-trace", "--shape", "tracing-overhead"])
        assert args.shape == "tracing-overhead"
        assert args.tracing_invocations == 150_000
        assert args.trace_out is None
        args = parser.parse_args([
            "perf-trace", "--shape", "all", "--trace-out", "t.json",
        ])
        assert args.trace_out == "t.json"


class TestTraceCli:
    def test_trace_command_prints_decomposition(self, capsys):
        assert main(["trace", "--invocations", "2000"]) == 0
        out = capsys.readouterr().out
        assert "warmth spectrum on" in out
        assert "invocation traces kept" in out
        # The decomposition table groups by tenant/dispatch-class with
        # one phase-share column per lifecycle phase.
        for token in ("*/*", "inbound", "queue", "boot", "restore",
                      "execute", "outbound"):
            assert token in out

    def test_trace_command_writes_chrome_json(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "trace.json"
        assert main([
            "trace", "--invocations", "2000", "--out", str(out_path),
        ]) == 0
        assert "wrote Chrome trace" in capsys.readouterr().out
        document = json.loads(out_path.read_text())
        assert document["traceEvents"]
        assert document["otherData"]["recorder_mode"] == "sampled"

    def test_trace_command_unwritable_output_errors(self, capsys, tmp_path):
        missing_dir = tmp_path / "does-not-exist" / "trace.json"
        assert main([
            "trace", "--invocations", "500", "--out", str(missing_dir),
        ]) == 2
        err = capsys.readouterr().err
        assert "cannot write trace output" in err

    def test_latency_under_load_trace_out(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "load_trace.json"
        assert main([
            "latency-under-load", "--benchmark", "get-time", "--language", "p",
            "--invokers", "2", "--actions", "2",
            "--load-factors", "0.4", "--duration", "1.0",
            "--tracing", "full", "--trace-out", str(out_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "wrote Chrome trace of the last point" in out
        document = json.loads(out_path.read_text())
        assert document["otherData"]["recorder_mode"] == "full"

    def test_trace_out_requires_tracing(self, capsys):
        assert main([
            "latency-under-load", "--trace-out", "x.json",
        ]) == 2
        assert "--trace-out requires --tracing" in capsys.readouterr().err
        assert main([
            "slo-control", "--trace-out", "x.json",
        ]) == 2
        assert "--trace-out requires --tracing" in capsys.readouterr().err

    def test_slo_control_trace_flags_parse(self):
        parser = build_parser()
        args = parser.parse_args(["slo-control"])
        assert args.tracing == "off"
        assert args.trace_out is None
        args = parser.parse_args([
            "slo-control", "--tracing", "sampled", "--trace-out", "t.json",
        ])
        assert args.tracing == "sampled"
        assert args.trace_out == "t.json"
        with pytest.raises(SystemExit):
            parser.parse_args(["slo-control", "--tracing", "bogus"])

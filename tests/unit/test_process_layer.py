"""Tests for processes, threads, registers, pipes, procfs, ptrace and fork."""

from __future__ import annotations

import pytest

from repro.config import PAGE_SIZE
from repro.errors import (
    NoSuchProcessError,
    ProcessStateError,
    PtraceError,
    SyscallInjectionError,
    UnsupportedRuntimeError,
)
from repro.mem.page import Protection
from repro.mem.vma import VmaKind
from repro.proc.forkexec import fork_process
from repro.proc.pipes import Message, Pipe
from repro.proc.process import ProcessState, SimProcess
from repro.proc.procfs import ProcFs
from repro.proc.ptrace import InjectedSyscall, Ptrace
from repro.proc.registers import RegisterSet
from repro.proc.thread import ThreadState


class TestRegisterSet:
    def test_initial_sets_rip_and_rsp(self):
        regs = RegisterSet.initial(rip=0x1000, rsp=0x2000)
        assert regs.get("rip") == 0x1000
        assert regs.get("rsp") == 0x2000
        assert regs.get("rbp") == 0x2000

    def test_with_updates_returns_new_set(self):
        regs = RegisterSet.initial()
        updated = regs.with_updates(rax=42)
        assert updated.get("rax") == 42
        assert regs.get("rax") == 0

    def test_unknown_register_rejected(self):
        with pytest.raises(KeyError):
            RegisterSet.initial().with_updates(xyz=1)
        with pytest.raises(KeyError):
            RegisterSet.initial().get("xyz")

    def test_advanced_changes_state_deterministically(self):
        regs = RegisterSet.initial()
        a = regs.advanced(100, stack_delta=8)
        b = regs.advanced(100, stack_delta=8)
        assert a == b
        assert a != regs
        assert a.get("rip") == regs.get("rip") + 100

    def test_equality_and_hash(self):
        a = RegisterSet.initial()
        b = RegisterSet.initial()
        assert a == b
        assert hash(a) == hash(b)


class TestThreadsAndProcess:
    def test_process_start_creates_main_thread(self):
        proc = SimProcess("fn")
        proc.start()
        assert proc.num_threads == 1
        assert proc.state is ProcessState.RUNNING

    def test_spawn_thread_assigns_unique_tids(self):
        proc = SimProcess("fn")
        t1 = proc.spawn_thread()
        t2 = proc.spawn_thread()
        assert t1.tid != t2.tid
        assert proc.thread(t1.tid) is t1

    def test_stop_and_resume_all_threads(self):
        proc = SimProcess("fn")
        proc.start()
        proc.spawn_thread()
        assert proc.stop_all_threads() == 2
        assert proc.is_stopped
        assert proc.resume_all_threads() == 2
        assert proc.state is ProcessState.RUNNING

    def test_exit_terminates_all_threads(self):
        proc = SimProcess("fn")
        proc.start()
        proc.exit(3)
        assert not proc.is_alive
        assert proc.exit_code == 3
        with pytest.raises(ProcessStateError):
            proc.start()

    def test_thread_cannot_run_while_stopped(self):
        proc = SimProcess("fn")
        proc.start()
        proc.stop_all_threads()
        with pytest.raises(ProcessStateError):
            proc.main_thread.run_instructions(10)

    def test_drop_privileges(self):
        proc = SimProcess("fn")
        proc.drop_privileges(1001)
        assert proc.uid == 1001
        with pytest.raises(ValueError):
            proc.drop_privileges(0)

    def test_unknown_thread_lookup_fails(self):
        proc = SimProcess("fn")
        with pytest.raises(ProcessStateError):
            proc.thread(999999)


class TestPipes:
    def test_fifo_ordering(self):
        pipe = Pipe("p")
        pipe.write(Message(payload_bytes=1, label="a"))
        pipe.write(Message(payload_bytes=2, label="b"))
        assert pipe.read().label == "a"
        assert pipe.read().label == "b"

    def test_read_empty_raises(self):
        with pytest.raises(LookupError):
            Pipe("p").read()

    def test_transfer_cost_scales_with_payload(self):
        pipe = Pipe("p")
        small = pipe.transfer_cost(Message(payload_bytes=100))
        large = pipe.transfer_cost(Message(payload_bytes=200_000))
        assert large > small

    def test_counters_accumulate(self):
        pipe = Pipe("p")
        pipe.write(Message(payload_bytes=10))
        pipe.write(Message(payload_bytes=20))
        assert pipe.bytes_transferred == 30
        assert pipe.messages_transferred == 2

    def test_drain_discards_messages(self):
        pipe = Pipe("p")
        pipe.write(Message(payload_bytes=1))
        assert pipe.drain() == 1
        assert pipe.empty

    def test_negative_payload_rejected(self):
        with pytest.raises(ValueError):
            Message(payload_bytes=-1)


class TestProcFs:
    def test_read_maps_reflects_address_space(self, process):
        process.address_space.mmap(4 * PAGE_SIZE, name="lib.so")
        layout, cost = ProcFs(process).read_maps()
        assert layout.num_vmas == 1
        assert cost > 0

    def test_scan_pagemap_and_clear_refs(self, process):
        vma = process.address_space.mmap(8 * PAGE_SIZE, populate=True)
        procfs = ProcFs(process)
        procfs.clear_soft_dirty()
        process.address_space.write_page(vma.first_page, b"x")
        scan = procfs.scan_pagemap()
        assert scan.dirty_pages == (vma.first_page,)
        cleared, _ = procfs.clear_soft_dirty()
        assert cleared == 1
        assert procfs.scan_pagemap().dirty_pages == ()

    def test_mem_read_write(self, process):
        vma = process.address_space.mmap(PAGE_SIZE)
        procfs = ProcFs(process)
        procfs.write_mem_page(vma.first_page, b"abc")
        content, _ = procfs.read_mem_page(vma.first_page)
        assert content == b"abc"

    def test_status_summary(self, process):
        process.address_space.mmap(4 * PAGE_SIZE, populate=True)
        status, _ = ProcFs(process).read_status()
        assert status["vm_size_pages"] == 4
        assert status["threads"] == 1

    def test_dead_process_rejected(self, process):
        procfs = ProcFs(process)
        process.exit()
        with pytest.raises(NoSuchProcessError):
            procfs.read_maps()


class TestPtrace:
    def test_attach_interrupt_resume_detach(self, process):
        ptrace = Ptrace(process)
        ptrace.seize()
        assert ptrace.interrupt_all() > 0
        assert process.is_stopped
        ptrace.resume_all()
        assert process.state is ProcessState.RUNNING
        ptrace.detach()
        assert not ptrace.attached

    def test_operations_require_attachment(self, process):
        ptrace = Ptrace(process)
        with pytest.raises(PtraceError):
            ptrace.interrupt_all()

    def test_register_roundtrip(self, process):
        ptrace = Ptrace(process)
        ptrace.seize()
        ptrace.interrupt_all()
        regs, _ = ptrace.get_registers()
        tid = process.main_thread.tid
        modified = {tid: regs[tid].with_updates(rax=99)}
        ptrace.set_registers(modified)
        assert process.main_thread.get_registers().get("rax") == 99

    def test_registers_require_stop(self, process):
        ptrace = Ptrace(process)
        ptrace.seize()
        with pytest.raises(PtraceError):
            ptrace.get_registers()

    def test_peek_poke_page(self, process):
        vma = process.address_space.mmap(PAGE_SIZE)
        ptrace = Ptrace(process)
        ptrace.seize()
        ptrace.interrupt_all()
        ptrace.poke_page(vma.first_page, b"poked")
        content, _ = ptrace.peek_page(vma.first_page)
        assert content == b"poked"

    def test_inject_mmap_and_munmap(self, process):
        ptrace = Ptrace(process)
        ptrace.seize()
        ptrace.interrupt_all()
        address = 0x30000000
        ptrace.inject_syscall(
            InjectedSyscall("mmap", (address, 2 * PAGE_SIZE, Protection.rw(), VmaKind.ANON, "inj"))
        )
        assert process.address_space.find_vma(address) is not None
        ptrace.inject_syscall(InjectedSyscall("munmap", (address, 2 * PAGE_SIZE)))
        assert process.address_space.find_vma(address) is None

    def test_inject_brk(self, process):
        ptrace = Ptrace(process)
        ptrace.seize()
        ptrace.interrupt_all()
        target = process.address_space.brk_base + 4 * PAGE_SIZE
        ptrace.inject_syscall(InjectedSyscall("brk", (target,)))
        assert process.address_space.brk == target

    def test_unsupported_syscall_rejected(self, process):
        ptrace = Ptrace(process)
        ptrace.seize()
        ptrace.interrupt_all()
        with pytest.raises(SyscallInjectionError):
            ptrace.inject_syscall(InjectedSyscall("open", ("/etc/passwd",)))

    def test_failed_syscall_wrapped(self, process):
        ptrace = Ptrace(process)
        ptrace.seize()
        ptrace.interrupt_all()
        with pytest.raises(SyscallInjectionError):
            ptrace.inject_syscall(InjectedSyscall("munmap", (12345, PAGE_SIZE)))

    def test_double_attach_rejected(self, process):
        ptrace = Ptrace(process)
        ptrace.seize()
        with pytest.raises(PtraceError):
            ptrace.seize()


class TestForkExec:
    def test_fork_rejects_multithreaded_parent(self, process):
        process.spawn_thread()
        with pytest.raises(UnsupportedRuntimeError):
            fork_process(process)

    def test_fork_allows_override_for_experiments(self, process):
        process.spawn_thread()
        result = fork_process(process, require_single_threaded=False)
        assert result.child.is_alive

    def test_fork_cost_grows_with_vma_count(self, process):
        result_small = fork_process(process)
        for _ in range(50):
            process.address_space.mmap(PAGE_SIZE)
        result_large = fork_process(process)
        assert result_large.cost_seconds > result_small.cost_seconds

    def test_fork_child_starts_running_with_parent_registers(self, process):
        process.main_thread.run_instructions(500)
        result = fork_process(process)
        assert result.child.state is ProcessState.RUNNING
        assert result.child.main_thread.get_registers() == process.main_thread.get_registers()

    def test_cannot_fork_exited_process(self, process):
        process.exit()
        with pytest.raises(ProcessStateError):
            fork_process(process)


class TestKernel:
    def test_create_and_reap(self, kernel):
        proc = kernel.create_process("fn")
        assert kernel.num_processes == 1
        kernel.reap(proc)
        assert kernel.num_processes == 0
        assert kernel.stats.processes_exited == 1

    def test_lookup_unknown_pid(self, kernel):
        with pytest.raises(NoSuchProcessError):
            kernel.process(424242)

    def test_fork_registers_child(self, kernel):
        parent = kernel.create_process("fn")
        parent.start()
        result = kernel.fork(parent)
        assert kernel.process(result.child.pid) is result.child
        assert kernel.stats.forks == 1

    def test_views_require_registered_process(self, kernel):
        foreign = SimProcess("foreign")
        with pytest.raises(NoSuchProcessError):
            kernel.procfs(foreign)
        with pytest.raises(NoSuchProcessError):
            kernel.ptrace(foreign)

    def test_fault_record_reflects_meter(self, kernel):
        proc = kernel.create_process("fn")
        proc.start()
        vma = proc.address_space.mmap(4 * PAGE_SIZE)
        proc.address_space.write_range(vma.first_page, 4, b"x")
        record = kernel.fault_record(proc)
        assert record.minor == 4
        assert record.total == 4
        assert record.cost_seconds(proc.cost_model) > 0

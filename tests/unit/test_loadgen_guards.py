"""Regression tests for the arrival-generator edge-case guards.

Two failure modes the satellites pinned down:

* :func:`azure_diurnal_arrivals` (and the stationary generator) draw
  exponential gaps at each action's rate — a per-action rate that
  underflows to zero (deep Zipf tail under a steep skew, or a vanishing
  ``mean_rps``) must contribute no arrivals rather than divide by zero
  inside ``expovariate`` or emit a single arrival at an astronomical
  offset; a trace that ends up empty must raise a clear
  :class:`PlatformError`, never return silently empty.
* :func:`load_azure_trace_csv` must refuse malformed input (non-numeric,
  non-finite, or negative counts; truncated rows) with a
  :class:`PlatformError` naming the row — not a bare ``ValueError`` /
  ``OverflowError`` / ``IndexError`` from the parsing internals.
"""

from __future__ import annotations

import random

import pytest

from repro.errors import PlatformError
from repro.faas.loadgen import (
    azure_diurnal_arrivals,
    azure_functions_arrivals,
    load_azure_trace_csv,
)


class TestZeroRateGuards:
    def test_diurnal_underflowed_tail_rates_are_skipped(self):
        """A steep skew underflows the tail's weights to 0.0 — those
        actions legitimately produce nothing; the head still arrives."""
        actions = [f"a{i}" for i in range(40)]
        offsets, sequence = azure_diurnal_arrivals(
            actions,
            duration_seconds=5.0,
            mean_rps=50.0,
            rng=random.Random(7),
            skew=200.0,  # weight of a1 is already ~1e-61; a9 underflows
        )
        assert offsets  # the head action still produced arrivals
        assert set(sequence) == {"a0"}
        assert all(0.0 <= at <= 5.0 for at in offsets)

    def test_stationary_underflowed_tail_rates_are_skipped(self):
        offsets, sequence = azure_functions_arrivals(
            [f"a{i}" for i in range(40)],
            duration_seconds=5.0,
            mean_rps=50.0,
            rng=random.Random(7),
            skew=200.0,
        )
        assert offsets and set(sequence) == {"a0"}

    def test_diurnal_vanishing_rate_raises_clearly(self):
        """A rate so low nothing arrives raises PlatformError, instead of
        returning a silently empty trace."""
        with pytest.raises(PlatformError, match="no arrivals"):
            azure_diurnal_arrivals(
                ["only"],
                duration_seconds=1.0,
                mean_rps=1e-12,
                rng=random.Random(3),
            )

    def test_diurnal_determinism_with_skipped_actions(self):
        kwargs = dict(
            duration_seconds=4.0, mean_rps=30.0, skew=150.0,
            period_seconds=2.0, amplitude=0.8,
        )
        first = azure_diurnal_arrivals(
            ["x", "y", "z"], rng=random.Random(11), **kwargs
        )
        second = azure_diurnal_arrivals(
            ["x", "y", "z"], rng=random.Random(11), **kwargs
        )
        assert first == second


class TestAzureTraceCsvGuards:
    HEADER = "HashOwner,HashApp,HashFunction,Trigger,1,2,3\n"

    def _load(self, tmp_path, body, **kwargs):
        path = tmp_path / "trace.csv"
        path.write_text(self.HEADER + body)
        defaults = dict(
            actions=["act-a", "act-b"],
            duration_seconds=2.0,
            rng=random.Random(5),
        )
        defaults.update(kwargs)
        return load_azure_trace_csv(str(path), **defaults)

    def test_well_formed_trace_loads(self, tmp_path):
        offsets, sequence = self._load(
            tmp_path, "o1,a1,f1,http,10,20,30\no2,a2,f2,timer,1,2,3\n"
        )
        assert offsets == sorted(offsets)
        assert set(sequence) <= {"act-a", "act-b"}

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(PlatformError, match="is empty"):
            load_azure_trace_csv(
                str(path), ["a"], duration_seconds=1.0, rng=random.Random(1)
            )

    def test_header_only_file_raises(self, tmp_path):
        with pytest.raises(PlatformError, match="no function rows"):
            self._load(tmp_path, "")

    def test_blank_rows_are_skipped_not_fatal(self, tmp_path):
        offsets, _ = self._load(
            tmp_path, "\n,,,,,,\no1,a1,f1,http,10,20,30\n\n"
        )
        assert offsets

    def test_non_numeric_count_raises_platform_error(self, tmp_path):
        with pytest.raises(PlatformError, match="row 2.*finite numbers"):
            self._load(tmp_path, "o1,a1,f1,http,10,twenty,30\n")

    def test_infinite_count_raises_platform_error(self, tmp_path):
        # int(float("inf")) raises OverflowError internally — the caller
        # must still see a PlatformError naming the row.
        with pytest.raises(PlatformError, match="row 2.*finite numbers"):
            self._load(tmp_path, "o1,a1,f1,http,inf,20,30\n")

    def test_nan_count_raises_platform_error(self, tmp_path):
        with pytest.raises(PlatformError, match="row 2.*finite numbers"):
            self._load(tmp_path, "o1,a1,f1,http,nan,20,30\n")

    def test_negative_count_raises_platform_error(self, tmp_path):
        with pytest.raises(PlatformError, match="row 2.*>= 0"):
            self._load(tmp_path, "o1,a1,f1,http,10,-5,30\n")

    def test_truncated_row_raises_platform_error(self, tmp_path):
        with pytest.raises(PlatformError, match="row 3"):
            self._load(tmp_path, "o1,a1,f1,http,10,20,30\no2,a2\n")

    def test_all_zero_counts_raise(self, tmp_path):
        with pytest.raises(PlatformError, match="no invocations"):
            self._load(tmp_path, "o1,a1,f1,http,0,0,0\n")

    def test_rescale_to_nothing_raises(self, tmp_path):
        with pytest.raises(PlatformError, match="no arrivals"):
            self._load(
                tmp_path,
                "o1,a1,f1,http,10,20,30\n",
                mean_rps=1e-12,
                rng=random.Random(8),
            )

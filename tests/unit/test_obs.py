"""Tests for the flight recorder: spans, sampling, exporter, decomposer.

The exporter-correctness tests run one real traced cluster (full tracing,
open-loop overload so queueing, cold starts and steals all occur) and then
check structural invariants of the Chrome trace-event output: valid JSON,
per-track timestamp monotonicity, exact ``B``/``E`` pairing, and the
six-phase decomposition telescoping to the end-to-end latency.
"""

from __future__ import annotations

import json

import pytest

from repro.config import SimulationConfig
from repro.faas.action import ActionSpec
from repro.faas.cluster import FaaSCluster
from repro.faas.loadgen import OpenLoopClient, TenantMix
from repro.faas.obs import (
    InvocationTrace,
    TraceRecorder,
    chrome_trace_events,
    export_chrome_trace,
    latency_decompose,
    render_decomposition,
    write_chrome_trace,
)
from repro.faas.obs.trace import PHASES, _sampled
from repro.faas.request import Invocation
from repro.runtime.profiles import FunctionProfile, Language

_PROFILE = FunctionProfile(
    name="obs-python",
    language=Language.PYTHON,
    suite="unit",
    exec_seconds=0.010,
    total_kpages=1.2,
    dirtied_kpages=0.15,
    heap_growth_pages=4,
    threads=1,
    init_fraction=0.7,
)

_RECORDED_CACHE: dict = {}


def _recorded_run(tracing: str = "full", seed: int = 11):
    """One traced two-invoker overload run, cached per (tracing, seed)."""
    key = (tracing, seed)
    if key not in _RECORDED_CACHE:
        platform = FaaSCluster(SimulationConfig(
            cores=1,
            containers_per_action=1,
            invokers=2,
            scheduler_policy="warm-aware",
            work_stealing=True,
            max_containers_per_action=2,
            seed=seed,
            tracing=tracing,
        ))
        names = [f"obs-{i}" for i in range(4)]
        for name in names:
            platform.deploy(ActionSpec.for_profile(_PROFILE, "gh", name=name))
        client = OpenLoopClient(
            platform, names, rate_rps=150.0, duration_seconds=2.0,
            caller_for=TenantMix({"tenant-a": 1.0, "tenant-b": 1.0}),
        )
        result = client.run()
        _RECORDED_CACHE[key] = (platform, result)
    return _RECORDED_CACHE[key]


class TestInvocationTracePhases:
    def _base_trace(self) -> InvocationTrace:
        trace = InvocationTrace("inv-1", "f", "tenant", 0.0)
        trace.route("warm-aware", 1)
        trace.arrive(0.01, "invoker-1")
        return trace

    def test_phases_none_until_completed(self):
        trace = self._base_trace()
        assert trace.phases() is None
        assert trace.e2e_seconds is None
        trace.dispatch(0.5, "cold", "c-1", 0.3)
        assert trace.phases() is None  # still not completed

    def test_cold_dispatch_phases_telescope_exactly(self):
        trace = self._base_trace()
        trace.dispatch(0.5, "cold", "c-1", 0.3)
        trace.execute_seconds = 0.1
        trace.finish("completed", 0.7)
        phases = trace.phases()
        assert phases["inbound"] == pytest.approx(0.01)
        # Blocked on the boot until ready_at 0.3, then a residual queue
        # wait for the core until dispatch at 0.5.
        assert phases["boot"] == pytest.approx(0.29)
        assert phases["restore"] == 0.0
        assert phases["queue"] == pytest.approx(0.20)
        assert phases["execute"] == pytest.approx(0.1)
        assert phases["outbound"] == pytest.approx(0.1)
        assert sum(phases.values()) == pytest.approx(trace.e2e_seconds)
        assert set(phases) == set(PHASES)

    def test_restore_dispatch_attributes_blocked_wait_to_restore(self):
        trace = self._base_trace()
        trace.dispatch(0.05, "restore", "c-2", 0.04)
        trace.execute_seconds = 0.01
        trace.finish("completed", 0.07)
        phases = trace.phases()
        assert phases["restore"] == pytest.approx(0.03)
        assert phases["boot"] == 0.0
        assert sum(phases.values()) == pytest.approx(trace.e2e_seconds)

    def test_warm_dispatch_has_no_blocked_phase(self):
        trace = self._base_trace()
        trace.dispatch(0.02, "warm", "c-3", 0.0)
        trace.execute_seconds = 0.01
        trace.finish("completed", 0.04)
        phases = trace.phases()
        assert phases["boot"] == 0.0 and phases["restore"] == 0.0
        assert phases["queue"] == pytest.approx(0.01)

    def test_blocked_wait_never_exceeds_total_wait(self):
        trace = self._base_trace()
        # Container became ready long after dispatch was possible — the
        # blocked share is clamped to the actual wait.
        trace.dispatch(0.2, "cold", "c-4", 5.0)
        trace.execute_seconds = 0.01
        trace.finish("completed", 0.3)
        phases = trace.phases()
        assert phases["boot"] == pytest.approx(0.19)
        assert phases["queue"] == 0.0

    def test_arrive_is_first_arrival_wins(self):
        trace = self._base_trace()
        trace.arrive(0.5, "invoker-9")
        assert trace.invoker_id == "invoker-1"
        assert trace.invoker_arrival_at == 0.01


class TestTraceRecorder:
    def _invocation(self, submitted_at: float = 0.0) -> Invocation:
        invocation = Invocation(action="f", caller="tenant")
        invocation.submitted_at = submitted_at
        return invocation

    def test_mode_and_knob_validation(self):
        with pytest.raises(ValueError):
            TraceRecorder("bogus", seed=1)
        with pytest.raises(ValueError):
            TraceRecorder("sampled", seed=1, sample_period=0)
        with pytest.raises(ValueError):
            TraceRecorder("full", seed=1, capacity=0)

    def test_full_mode_records_every_invocation(self):
        recorder = TraceRecorder("full", seed=1)
        traces = [recorder.begin_invocation(self._invocation()) for _ in range(20)]
        assert all(trace is not None for trace in traces)
        assert recorder.seen == recorder.started == 20

    def test_sampled_mode_is_a_deterministic_subset(self):
        kept_a = [
            recorder.begin_invocation(self._invocation()) is not None
            for recorder in [TraceRecorder("sampled", seed=7, sample_period=4)]
            for _ in range(200)
        ]
        kept_b = [
            recorder.begin_invocation(self._invocation()) is not None
            for recorder in [TraceRecorder("sampled", seed=7, sample_period=4)]
            for _ in range(200)
        ]
        assert kept_a == kept_b
        # The crc-keyed filter keeps roughly 1/period of the arrivals.
        assert 200 // 4 * 0.4 <= sum(kept_a) <= 200 // 4 * 2.5
        # A different seed samples a different subset.
        kept_c = [
            recorder.begin_invocation(self._invocation()) is not None
            for recorder in [TraceRecorder("sampled", seed=8, sample_period=4)]
            for _ in range(200)
        ]
        assert kept_a != kept_c

    def test_sampling_key_is_process_stable(self):
        # The published invariant: crc32 of "seed:ordinal", independent of
        # PYTHONHASHSEED and of the process-global invocation id counter.
        import zlib

        for seed, ordinal, period in [(1, 0, 16), (20230501, 123, 16), (9, 7, 4)]:
            expected = zlib.crc32(f"{seed}:{ordinal}".encode("ascii")) % period == 0
            assert _sampled(seed, ordinal, period) is expected

    def test_ring_buffer_bounds_retained_traces(self):
        recorder = TraceRecorder("full", seed=1, capacity=4)
        for index in range(10):
            invocation = self._invocation(float(index))
            invocation.trace = recorder.begin_invocation(invocation)
            invocation.completed_at = float(index) + 0.5
            recorder.finish_invocation(invocation)
        counts = recorder.counts()
        assert counts["finished"] == 10
        assert counts["retained"] == 4
        assert counts["dropped"] == 6
        # The ring keeps the most recent traces.
        assert [trace.submitted_at for trace in recorder.invocations] == [
            6.0, 7.0, 8.0, 9.0,
        ]

    def test_digest_excludes_the_process_global_invocation_id(self):
        def build(id_offset: int) -> TraceRecorder:
            recorder = TraceRecorder("full", seed=1)
            for index in range(5):
                invocation = Invocation(action="f", caller="t")
                invocation.invocation_id = f"inv-{index + id_offset:08d}"
                invocation.submitted_at = float(index)
                invocation.trace = recorder.begin_invocation(invocation)
                invocation.completed_at = float(index) + 0.25
                recorder.finish_invocation(invocation)
            return recorder

        assert build(0).trace_digest() == build(1000).trace_digest()

    def test_audit_and_container_span_buffers(self):
        recorder = TraceRecorder("full", seed=1)
        recorder.audit(1.0, "keep-alive", "evict c-1", actor="invoker-0")
        recorder.record_container_span(
            kind="boot", invoker="invoker-0", container_id="c-2",
            action="f", start=1.0, end=1.5,
        )
        assert recorder.audit_log[0].category == "keep-alive"
        span = recorder.container_spans[0]
        assert span.name == "boot" and span.duration == pytest.approx(0.5)


class TestChromeExporter:
    def test_export_is_valid_chrome_trace_json(self, tmp_path):
        platform, _ = _recorded_run()
        recorder = platform.trace()
        assert recorder is not None and recorder.invocations
        path = tmp_path / "trace.json"
        count = write_chrome_trace(recorder, str(path))
        document = json.loads(path.read_text())
        assert len(document["traceEvents"]) == count
        assert document["displayTimeUnit"] == "ms"
        assert document["otherData"]["recorder_mode"] == "full"
        for event in document["traceEvents"]:
            assert event["ph"] in ("B", "E", "X", "i", "M")
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
            assert "name" in event
            if event["ph"] != "M":
                assert event["ts"] >= 0.0
            if event["ph"] == "X":
                assert event["dur"] >= 0.0
            if event["ph"] == "i":
                assert event["s"] == "t"

    def test_timestamps_are_monotone_per_track(self):
        platform, _ = _recorded_run()
        events = chrome_trace_events(platform.trace())
        last_ts: dict = {}
        for event in events:
            if event["ph"] == "M":
                continue
            tid = event["tid"]
            assert event["ts"] >= last_ts.get(tid, 0.0)
            last_ts[tid] = event["ts"]

    def test_begin_end_events_pair_exactly(self):
        platform, _ = _recorded_run()
        stacks: dict = {}
        for event in chrome_trace_events(platform.trace()):
            if event["ph"] == "B":
                stacks.setdefault(event["tid"], []).append(event["name"])
            elif event["ph"] == "E":
                stack = stacks.get(event["tid"])
                assert stack, f"E without B on tid {event['tid']}"
                assert stack.pop() == event["name"]
        assert all(not stack for stack in stacks.values())

    def test_phase_sums_equal_end_to_end_latency(self):
        platform, _ = _recorded_run()
        recorder = platform.trace()
        checked = 0
        for trace in recorder.invocations:
            phases = trace.phases()
            if phases is None:
                continue
            assert sum(phases.values()) == pytest.approx(
                trace.e2e_seconds, rel=1e-9, abs=1e-12
            )
            assert all(duration >= 0.0 for duration in phases.values())
            checked += 1
        assert checked > 0

    def test_container_boot_spans_are_recorded(self):
        platform, _ = _recorded_run()
        recorder = platform.trace()
        boots = [span for span in recorder.container_spans if span.name == "boot"]
        assert boots
        assert all(span.end >= span.start for span in boots)

    def test_keep_alive_audits_land_on_the_timeline(self):
        platform, _ = _recorded_run()
        categories = {audit.category for audit in platform.trace().audit_log}
        # The overload run evicts idle containers after the keep-alive
        # and (with stealing on) adopts queued work across invokers.
        assert "keep-alive" in categories or "steal" in categories


class TestLatencyDecomposer:
    def test_decomposition_groups_and_shares(self):
        platform, _ = _recorded_run()
        report = latency_decompose(platform.trace())
        groups = report["groups"]
        assert "*/*" in groups
        overall = groups["*/*"]
        assert overall["count"] > 0
        shares = overall["phase_share_of_mean"]
        assert set(shares) == set(PHASES)
        assert sum(shares.values()) == pytest.approx(1.0, rel=1e-6)
        # Per-tenant groups exist for both tenants of the mix.
        assert any(key.startswith("tenant-a/") for key in groups)
        assert any(key.startswith("tenant-b/") for key in groups)

    def test_render_decomposition_is_a_table(self):
        platform, _ = _recorded_run()
        rendered = render_decomposition(latency_decompose(platform.trace()))
        assert "*/*" in rendered
        for phase in PHASES:
            assert phase in rendered


class TestTracingChangesNothingSimulated:
    def test_off_and_full_runs_are_bit_identical(self):
        platform_off, result_off = _recorded_run(tracing="off", seed=23)
        platform_on, result_on = _recorded_run(tracing="full", seed=23)
        assert platform_off.trace() is None
        assert platform_on.trace() is not None
        assert result_off.achieved_rps == result_on.achieved_rps
        assert result_off.completed == result_on.completed
        assert result_off.rejected == result_on.rejected
        assert platform_off.steals == platform_on.steals
        assert (
            sum(inv.cold_starts for inv in platform_off.invokers)
            == sum(inv.cold_starts for inv in platform_on.invokers)
        )
        stats_off = result_off.e2e
        stats_on = result_on.e2e
        assert stats_off is not None and stats_on is not None
        assert stats_off.p99 == stats_on.p99

"""Tests for the restoration-aware warmth spectrum.

With ``restorable_snapshots`` on, keep-alive eviction and drains demote
idle dynamic containers to held snapshots instead of destroying them,
and demand (or a planner pre-warm) revives a snapshot with an on-core
*restore* priced by the isolation mechanism — far cheaper than a boot,
but not free.  These tests pin the state transitions, the restore's
core accounting, the dispatch classification, and the spectrum-off
escape hatch.
"""

from __future__ import annotations

import pytest

from repro.baselines.registry import MECHANISMS
from repro.config import ISOLATION_MECHANISMS, SimulationConfig
from repro.faas.action import ActionSpec
from repro.faas.invoker import Invoker
from repro.faas.request import Invocation, InvocationStatus
from repro.faas.restorecost import restore_seconds_for
from repro.runtime.profiles import FunctionProfile, Language
from repro.sim.events import EventLoop


def _profile(name: str, exec_seconds: float = 0.010) -> FunctionProfile:
    """A jitter-free profile so every timing assertion below is exact."""
    return FunctionProfile(
        name=name,
        language=Language.PYTHON,
        suite="unit",
        exec_seconds=exec_seconds,
        exec_jitter=0.0,
        total_kpages=1.2,
        dirtied_kpages=0.15,
        regions_mapped_per_invocation=1,
        regions_unmapped_per_invocation=1,
        heap_growth_pages=4,
        input_bytes=128,
        output_bytes=256,
    )


def _action(name: str, exec_seconds: float = 0.010) -> ActionSpec:
    return ActionSpec.for_profile(_profile(name, exec_seconds), "base", name=name)


def _spectrum_invoker(loop: EventLoop, **kwargs) -> Invoker:
    kwargs.setdefault("cores", 1)
    kwargs.setdefault("keep_alive_seconds", 0.05)
    kwargs.setdefault("restorable_snapshots", True)
    return Invoker(loop, **kwargs)


def _make_demoted_snapshot(loop: EventLoop, invoker: Invoker, action: str) -> None:
    """Run one request through a registered (all-dynamic) action and let
    keep-alive eviction demote the container to a held snapshot."""
    done = []
    invoker.submit(Invocation(action=action, payload=b"x"), done.append)
    loop.run(until=loop.now + 3.0)
    assert [inv.status for inv in done] == [InvocationStatus.COMPLETED]
    assert invoker.demotes >= 1
    assert invoker.snapshots_held(action) == 1


class TestDemoteOnEvict:
    def test_keep_alive_eviction_demotes_instead_of_destroying(self):
        loop = EventLoop()
        invoker = _spectrum_invoker(loop)
        invoker.register(_action("act"), max_containers=1)
        _make_demoted_snapshot(loop, invoker, "act")
        # The container left the pool (it serves nothing, counts toward
        # no budget) but survives as a revivable snapshot.
        assert invoker.pool("act") == []
        assert invoker.evictions == 1
        assert invoker.demotes == 1
        assert invoker.snapshots_held() == 1

    def test_spectrum_off_eviction_destroys(self):
        loop = EventLoop()
        invoker = Invoker(
            loop, cores=1, keep_alive_seconds=0.05, restorable_snapshots=False
        )
        invoker.register(_action("act"), max_containers=1)
        done = []
        invoker.submit(Invocation(action="act", payload=b"x"), done.append)
        loop.run(until=3.0)
        assert invoker.evictions == 1
        assert invoker.demotes == 0
        assert invoker.snapshots_held() == 0
        # The next request pays a full cold start again.
        invoker.submit(Invocation(action="act", payload=b"x"), done.append)
        loop.run(until=6.0)
        assert invoker.cold_starts == 2
        assert invoker.restores == 0

    def test_snapshot_budget_discards_least_recently_demoted(self):
        loop = EventLoop()
        invoker = _spectrum_invoker(loop, cores=2, snapshot_budget=1)
        invoker.register(_action("a"), max_containers=1)
        invoker.register(_action("b"), max_containers=1)
        done = []
        invoker.submit(Invocation(action="a", payload=b"x"), done.append)
        loop.run(until=3.0)
        assert invoker.snapshots_held("a") == 1
        invoker.submit(Invocation(action="b", payload=b"x"), done.append)
        loop.run(until=6.0)
        # b's demotion breached the budget of 1: a's older snapshot went.
        assert invoker.demotes == 2
        assert invoker.snapshot_discards == 1
        assert invoker.snapshots_held("a") == 0
        assert invoker.snapshots_held("b") == 1
        assert invoker.snapshots_held() == 1


class TestRestoreAccounting:
    def test_demand_revives_snapshot_as_priced_restore(self):
        loop = EventLoop()
        invoker = _spectrum_invoker(loop)
        invoker.register(_action("act"), max_containers=1)
        _make_demoted_snapshot(loop, invoker, "act")
        # Stop the short keep-alive from demoting the revived container
        # again, so the post-restore pool state stays observable.
        invoker.keep_alive_seconds = 60.0
        cold_before = invoker.cold_starts
        start = loop.now
        done = []
        invoker.submit(Invocation(action="act", payload=b"x"), done.append)
        loop.run(until=start + 3.0)
        assert done[0].status is InvocationStatus.COMPLETED
        # Revived by restore, not by a second boot.
        assert invoker.restores == 1
        assert invoker.cold_starts == cold_before
        assert invoker.snapshots_held() == 0
        # The restore sat on the request's critical path: a restore
        # dispatch, priced by the mechanism's restore model.
        assert invoker.restore_dispatches == 1
        container = invoker.pool("act")[0]
        price = restore_seconds_for(
            invoker.isolation_mechanism, container.init_report, invoker.cost_model
        )
        assert price > 0.0
        assert done[0].dispatched_at == pytest.approx(start + price)
        # And the restore is orders of magnitude cheaper than the boot
        # it replaced — the whole point of holding the snapshot.
        assert price < container.init_report.total_seconds / 10

    def test_restore_waits_for_a_busy_core(self):
        # A restore is CPU work exactly like a boot: with the only core
        # executing a long request, the restore waits in the backlog and
        # the revived request dispatches only after core-free + price.
        loop = EventLoop()
        invoker = _spectrum_invoker(loop)
        invoker.register(_action("act"), max_containers=1)
        invoker.deploy(_action("blocker", exec_seconds=1.0), containers=1)
        _make_demoted_snapshot(loop, invoker, "act")
        invoker.keep_alive_seconds = 60.0
        done = []
        invoker.submit(Invocation(action="blocker", payload=b"x"), done.append)
        assert invoker.cores_in_use == 1
        invoker.submit(Invocation(action="act", payload=b"x"), done.append)
        # The restore began (the snapshot is claimed) but is backlogged.
        assert invoker.restores == 1
        assert invoker.snapshots_held() == 0
        assert invoker.pending_boots == 1
        assert invoker.cores_in_use == 1
        loop.run(until=loop.now + 5.0)
        blocker, revived = done
        container = invoker.pool("act")[0]
        price = restore_seconds_for(
            invoker.isolation_mechanism, container.init_report, invoker.cost_model
        )
        # Serialised: the restore could only run after the blocker freed
        # the core, and the request only after the restore completed.
        assert revived.dispatched_at >= blocker.completed_at + price * 0.99
        assert invoker.restore_dispatches == 1

    def test_request_after_restore_completion_is_a_warm_hit(self):
        # The pre-warm honesty rule, mirrored for restores: a restore
        # finishing *before* a request is submitted bought that request
        # genuine warm service, so it must not count as a restore
        # dispatch.
        loop = EventLoop()
        invoker = _spectrum_invoker(loop)
        invoker.register(_action("act"), max_containers=1)
        _make_demoted_snapshot(loop, invoker, "act")
        invoker.keep_alive_seconds = 60.0
        warm_before = invoker.warm_hits
        # A planner-style pre-warm revives the snapshot ahead of demand.
        assert invoker.prewarm("act") is True
        assert invoker.restores == 1
        loop.run(until=loop.now + 1.0)  # restore completes off-path
        container = invoker.pool("act")[0]
        assert container.ready_at < loop.now
        done = []
        # submitted_at matters here: the honesty rule compares it against
        # the restore's completion (the cluster layer stamps it on entry).
        invoker.submit(
            Invocation(action="act", payload=b"x", submitted_at=loop.now),
            done.append,
        )
        loop.run(until=loop.now + 1.0)
        assert done[0].status is InvocationStatus.COMPLETED
        assert invoker.restore_dispatches == 0
        assert invoker.warm_hits == warm_before + 1


class TestDrainDemotes:
    def test_drain_demotes_and_never_resurrects_work(self):
        loop = EventLoop()
        invoker = _spectrum_invoker(loop, cores=2, keep_alive_seconds=60.0)
        invoker.register(_action("act"), max_containers=2)
        done = []
        for _ in range(2):
            invoker.submit(Invocation(action="act", payload=b"x"), done.append)
        loop.run(until=5.0)
        assert len(invoker.pool("act")) == 2
        dispatched_before = invoker.invocations_dispatched
        # Drain both idle dynamic containers: they demote (the budget
        # frees) and nothing runs, restores, or boots as a side effect.
        assert invoker.drain("act", 2) == 2
        assert invoker.demotes == 2
        assert invoker.snapshots_held("act") == 2
        assert invoker.pool("act") == []
        assert invoker.restores == 0
        assert invoker.pending_boots == 0
        assert invoker.cores_in_use == 0
        assert invoker.invocations_dispatched == dispatched_before
        # A drain of the now-empty (snapshot-holding) pool reclaims
        # nothing further — snapshots are not drainable capacity.
        assert invoker.drain("act", 2) == 0
        assert invoker.snapshots_held("act") == 2
        assert invoker.restores == 0

    def test_prewarm_prefers_held_snapshot_over_boot(self):
        loop = EventLoop()
        invoker = _spectrum_invoker(loop, keep_alive_seconds=60.0)
        invoker.register(_action("act"), max_containers=1)
        done = []
        invoker.submit(Invocation(action="act", payload=b"x"), done.append)
        loop.run(until=3.0)
        assert invoker.drain("act", 1) == 1
        cold_before = invoker.cold_starts
        assert invoker.can_prewarm("act") is True
        assert invoker.prewarm("act") is True
        loop.run(until=6.0)
        assert invoker.restores == 1
        assert invoker.cold_starts == cold_before
        assert len(invoker.pool("act")) == 1


class TestSpectrumOffEscapeHatch:
    def test_config_defaults_keep_the_spectrum_off(self):
        config = SimulationConfig()
        assert config.restorable_snapshots is False
        assert config.snapshot_budget is None
        assert config.isolation_mechanism == "gh"

    def test_off_run_never_enters_spectrum_state(self):
        loop = EventLoop()
        invoker = Invoker(loop, cores=2, keep_alive_seconds=0.05)
        invoker.register(_action("a"), max_containers=2)
        done = []
        for _ in range(4):
            invoker.submit(Invocation(action="a", payload=b"x"), done.append)
        loop.run(until=5.0)
        assert invoker.demotes == 0
        assert invoker.restores == 0
        assert invoker.restore_dispatches == 0
        assert invoker.snapshot_discards == 0
        assert invoker.snapshots_held() == 0
        stats = invoker.stats()
        assert stats["demotes"] == 0
        assert stats["restores"] == 0

    def test_default_invoker_matches_explicit_spectrum_off(self):
        # The escape hatch: constructing with the spectrum knobs at their
        # documented defaults is the same machine as not passing them —
        # a default cluster reproduces pre-spectrum behaviour bit for bit.
        def run(**kwargs):
            loop = EventLoop()
            invoker = Invoker(loop, cores=1, keep_alive_seconds=0.05, **kwargs)
            invoker.register(_action("a"), max_containers=2)
            done = []
            for _ in range(3):
                invoker.submit(Invocation(action="a", payload=b"x"), done.append)
            loop.run(until=5.0)
            trace = [(inv.dispatched_at, inv.completed_at) for inv in done]
            return trace, invoker.stats()

        assert run() == run(
            restorable_snapshots=False,
            snapshot_budget=None,
            isolation_mechanism="gh",
        )


class TestMechanismCatalogue:
    def test_isolation_mechanisms_match_the_baseline_registry(self):
        # config.ISOLATION_MECHANISMS is a literal (the registry import
        # would cycle); this pins it to the real mechanism catalogue so
        # adding a mechanism cannot silently miss the CLI choices.
        assert set(ISOLATION_MECHANISMS) == set(MECHANISMS)

    def test_restore_prices_order_sensibly(self):
        # gh restores page-served snapshots orders of magnitude faster
        # than a cold boot; "base"/"cold" have no snapshot to restore and
        # price at the full boot.
        loop = EventLoop()
        invoker = _spectrum_invoker(loop)
        invoker.register(_action("act"), max_containers=1)
        _make_demoted_snapshot(loop, invoker, "act")
        invoker.keep_alive_seconds = 60.0
        loop.run(until=loop.now + 1.0)
        invoker.prewarm("act")
        loop.run(until=loop.now + 3.0)
        init = invoker.pool("act")[0].init_report
        boot = init.total_seconds
        gh = restore_seconds_for("gh", init, invoker.cost_model)
        base = restore_seconds_for("base", init, invoker.cost_model)
        assert 0.0 < gh < boot / 10
        assert base == pytest.approx(boot)

"""End-to-end integration tests: the security property through the platform.

These tests drive the full stack — platform, controller, invoker, container,
isolation mechanism, runtime, simulated kernel — exactly the way the
examples and benchmark harness do, and check the property Groundhog exists
to provide: no data from one request is observable by the next request,
while warm containers keep being reused.
"""

from __future__ import annotations

import pytest

from repro.config import SimulationConfig
from repro.faas import ActionSpec, ClosedLoopClient, FaaSPlatform
from repro.workloads import find_benchmark


def _platform(profile, mechanism, **options):
    platform = FaaSPlatform(SimulationConfig(cores=1, containers_per_action=1))
    platform.deploy(ActionSpec.for_profile(profile, mechanism, **options))
    return platform


class TestSequentialRequestIsolation:
    def test_base_leaks_across_callers(self, small_python_profile):
        platform = _platform(small_python_profile, "base")
        platform.invoke_sync(small_python_profile.name, b"alice-tax-return", caller="alice")
        bob = platform.invoke_sync(small_python_profile.name, b"bob-query", caller="bob")
        assert b"alice-tax-return" in bob.response["residual"]

    def test_groundhog_prevents_the_leak(self, small_python_profile):
        platform = _platform(small_python_profile, "gh")
        platform.invoke_sync(small_python_profile.name, b"alice-tax-return", caller="alice")
        bob = platform.invoke_sync(small_python_profile.name, b"bob-query", caller="bob")
        assert b"alice-tax-return" not in bob.response["residual"]

    def test_groundhog_prevents_the_leak_for_node(self, small_node_profile):
        platform = _platform(small_node_profile, "gh")
        platform.invoke_sync(small_node_profile.name, b"alice-photo", caller="alice")
        bob = platform.invoke_sync(small_node_profile.name, b"bob-doc", caller="bob")
        assert b"alice-photo" not in bob.response["residual"]

    def test_isolation_holds_over_many_sequential_requests(self, small_python_profile):
        platform = FaaSPlatform(
            SimulationConfig(cores=1, containers_per_action=1), verify_isolation=True
        )
        platform.deploy(ActionSpec.for_profile(small_python_profile, "gh"))
        secrets = []
        for index in range(10):
            secret = f"secret-{index}".encode()
            secrets.append(secret)
            response = platform.invoke_sync(
                small_python_profile.name, secret, caller=f"user-{index}"
            )
            residual = response.response["residual"]
            for previous in secrets[:-1]:
                assert previous not in residual

    def test_container_is_reused_not_recreated(self, small_python_profile):
        platform = _platform(small_python_profile, "gh")
        for index in range(5):
            platform.invoke_sync(small_python_profile.name, b"x", caller=f"c{index}")
        containers = platform.containers(small_python_profile.name)
        assert len(containers) == 1
        assert containers[0].requests_served == 5

    def test_skip_rollback_only_skips_for_same_caller(self, small_python_profile):
        platform = _platform(
            small_python_profile, "gh", skip_rollback_for_same_caller=True
        )
        name = small_python_profile.name
        platform.invoke_sync(name, b"alice-1", caller="alice")
        platform.invoke_sync(name, b"alice-2", caller="alice")
        bob = platform.invoke_sync(name, b"bob-1", caller="bob")
        # Alice's consecutive requests may see her own earlier data, but the
        # caller change forces a rollback before Bob runs.
        assert b"alice" not in bob.response["residual"]

    def test_real_benchmark_profile_isolated(self):
        spec = find_benchmark("md2html", "p")
        platform = _platform(spec.profile, "gh")
        platform.invoke_sync(spec.profile.name, b"# alice's private notes", caller="alice")
        bob = platform.invoke_sync(spec.profile.name, b"# bob", caller="bob")
        assert b"private notes" not in bob.response["residual"]


class TestPlatformBehaviour:
    def test_closed_loop_latency_includes_platform_overhead(self, small_python_profile):
        platform = _platform(small_python_profile, "gh")
        client = ClosedLoopClient(
            platform, small_python_profile.name, num_requests=6, think_time_seconds=0.05
        )
        client.run()
        metrics = platform.action_metrics(small_python_profile.name)
        e2e = metrics.e2e_stats(skip_warmup=1)
        invoker = metrics.invoker_stats(skip_warmup=1)
        assert e2e.median > invoker.median
        assert invoker.median > small_python_profile.exec_seconds

    def test_restoration_overlaps_think_time_under_low_load(self, small_python_profile):
        """With enough think time, GH latency matches GH-NOP latency."""
        def median_latency(mechanism):
            platform = _platform(small_python_profile, mechanism)
            client = ClosedLoopClient(
                platform, small_python_profile.name, num_requests=8,
                think_time_seconds=0.2,
            )
            client.run()
            return platform.action_metrics(small_python_profile.name).invoker_stats(2).median

        gh = median_latency("gh")
        gh_nop = median_latency("gh-nop")
        assert gh == pytest.approx(gh_nop, rel=0.15)

    def test_multiple_actions_coexist(self, small_python_profile, small_c_profile):
        platform = FaaSPlatform(SimulationConfig(cores=2, containers_per_action=1))
        platform.deploy(ActionSpec.for_profile(small_python_profile, "gh"))
        platform.deploy(ActionSpec.for_profile(small_c_profile, "base"))
        a = platform.invoke_sync(small_python_profile.name, b"x", caller="a")
        b = platform.invoke_sync(small_c_profile.name, b"y", caller="b")
        assert a.response["ok"] and b.response["ok"]

    def test_queueing_under_high_load_increases_e2e(self, small_python_profile):
        platform = FaaSPlatform(SimulationConfig(cores=1, containers_per_action=1))
        platform.deploy(ActionSpec.for_profile(small_python_profile, "gh"))
        invocations = [
            platform.invoke_async(small_python_profile.name, b"x", caller=f"c{i}")
            for i in range(5)
        ]
        platform.run()
        latencies = [inv.e2e_seconds for inv in invocations]
        assert latencies[-1] > latencies[0]

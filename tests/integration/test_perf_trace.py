"""Integration tests for the perf-trace stack (sketch mode + fan-out).

End-to-end claims from the bounded-metrics and indexed-routing work are
pinned here:

* **Control-plane parity** — swapping the metrics collector into sketch
  mode must not change what the simulation *does*.  Metrics are
  observe-only unless a tenant SLO is declared, so the PR 5 forecast
  comparison (reactive vs predictive pre-warming) must reproduce the
  same verdict with bit-identical cold-start counts under either mode.
* **Fan-out determinism** — ``run_replicated`` returns bit-identical
  results whether the per-seed runs execute serially in-process or
  fanned out across spawn-started worker processes, and the per-seed
  sketches pool losslessly.
* **Published-trace replay** — ``perf-trace --trace-file`` drives the
  same measurement path from a real Azure Functions CSV instead of the
  synthetic diurnal generator, deterministically.
* **Cluster-scale routing parity** — the ``--shape cluster-scale``
  harness runs bit-identical simulations under indexed and scan
  routing (the acceptance contract of the cluster index).

All use reduced scales; the full-size numbers live in
``benchmarks/test_bench_perf_trace.py``,
``benchmarks/test_bench_cluster_index.py`` and ``BENCH_perf.json``.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import (
    _cluster_scale_run,
    _perf_trace_run,
    pooled_sketch_stats,
    run_replicated,
    run_slo_control,
)
from repro.faas.sketch import LatencySketch
from repro.workloads import find_benchmark


def _small_trace_worker(seed: int):
    """Module-level (picklable) reduced perf-trace run for fan-out tests."""
    return _perf_trace_run("sketch", invocations=2_500, seed=seed)


def _drop_timing(result):
    """Strip wall-clock fields (the only legitimately nondeterministic ones)."""
    cleaned = dict(result)
    cleaned.pop("wall_seconds", None)
    cleaned.pop("invocations_per_second", None)
    return cleaned


class TestForecastVerdictParity:
    def test_sketch_mode_reproduces_the_predictive_prewarm_verdict(self):
        # The PR 5 experiment, once per metrics mode, same seed and trace.
        spec = find_benchmark("md2html", "p")
        runs = {
            mode: run_slo_control(
                spec,
                parts=("forecast",),
                forecast_duration_seconds=9.0,
                metrics_mode=mode,
            ).forecast
            for mode in ("exact", "sketch")
        }
        for forecast in runs.values():
            assert set(forecast) == {"reactive", "predictive"}

        # The verdict: predictive wins the rising edges in both modes.
        for mode, forecast in runs.items():
            assert (
                forecast["predictive"].rising_cold_starts
                < forecast["reactive"].rising_cold_starts
            ), mode

        # Metrics are observe-only here (no tenant SLOs declared), so the
        # two modes run bit-identical simulations: every behavioural
        # counter matches exactly, not approximately.
        for regime in ("reactive", "predictive"):
            exact = runs["exact"][regime]
            sketch = runs["sketch"][regime]
            assert sketch.cold_starts == exact.cold_starts, regime
            assert sketch.rising_cold_starts == exact.rising_cold_starts
            assert sketch.cold_dispatches == exact.cold_dispatches
            assert sketch.rising_cold_dispatches == exact.rising_cold_dispatches
            assert sketch.prewarms == exact.prewarms
            assert sketch.drains == exact.drains
            assert sketch.budget == exact.budget
            assert sketch.achieved_rps == exact.achieved_rps
            assert sketch.goodput_fraction == exact.goodput_fraction
            # The reported p99 comes from the client's own exact samples,
            # so it is inside the sketch error bound trivially: bit-equal.
            assert sketch.p99_ms == exact.p99_ms


class TestReplicatedFanOut:
    SEEDS = (101, 202, 303)

    def test_parallel_fan_out_is_bit_identical_to_serial(self):
        serial = run_replicated(_small_trace_worker, seeds=self.SEEDS)
        fanned = run_replicated(
            _small_trace_worker, seeds=self.SEEDS, processes=2
        )
        assert len(serial) == len(fanned) == len(self.SEEDS)
        for mine, theirs in zip(serial, fanned):
            # Everything except wall-clock timing — including the e2e
            # sketch (integer bucket counts, exact __eq__) — matches
            # bit-for-bit across the process boundary.
            assert _drop_timing(mine) == _drop_timing(theirs)

    def test_seeds_actually_differentiate_runs(self):
        a, b = run_replicated(_small_trace_worker, seeds=(101, 202))
        assert a["seed"] != b["seed"]
        assert a["e2e_sketch"] != b["e2e_sketch"]

    def test_pooled_sketch_stats_is_a_lossless_reduction(self):
        results = run_replicated(_small_trace_worker, seeds=(101, 202))
        pooled = pooled_sketch_stats(results)
        assert pooled.count == sum(r["recorded"] for r in results)
        # Pooling by merge equals one sketch fed both runs' streams.
        manual = LatencySketch(
            relative_accuracy=results[0]["e2e_sketch"].relative_accuracy
        )
        for result in results:
            manual.merge(result["e2e_sketch"])
        assert pooled == manual.stats()
        assert pooled.minimum == min(r["e2e_sketch"].moments.minimum for r in results)
        assert pooled.maximum == max(r["e2e_sketch"].moments.maximum for r in results)

    def test_empty_pool_raises(self):
        with pytest.raises(ValueError):
            pooled_sketch_stats([])

    def test_empty_seed_list_raises(self):
        with pytest.raises(ValueError):
            run_replicated(_small_trace_worker, seeds=())


def _write_azure_csv(path, rows):
    """A minimal invocations-per-function CSV in the published layout."""
    minutes = len(rows[0][1])
    header = ["HashOwner", "HashApp", "HashFunction", "Trigger"] + [
        str(minute + 1) for minute in range(minutes)
    ]
    lines = [",".join(header)]
    for name, counts in rows:
        lines.append(
            ",".join(["owner", "app", name, "http"] + [str(c) for c in counts])
        )
    path.write_text("\n".join(lines) + "\n")


class TestAzureTraceReplay:
    def test_trace_file_drives_the_perf_trace_harness(self, tmp_path):
        csv_path = tmp_path / "invocations_per_function.csv"
        # Ten "minutes" with a mid-trace hump, heaviest function first.
        _write_azure_csv(csv_path, [
            ("fn-heavy", [5, 8, 20, 40, 60, 60, 40, 20, 8, 5]),
            ("fn-light", [1, 1, 2, 4, 6, 6, 4, 2, 1, 1]),
        ])
        result = _perf_trace_run(
            "sketch", invocations=2_000, seed=7, trace_file=str(csv_path)
        )
        assert result["trace_file"] == str(csv_path)
        assert result["arrivals"] > 0
        assert result["completed"] > 0
        assert 0.0 < result["goodput_fraction"] <= 1.0

    def test_trace_file_replay_is_deterministic(self, tmp_path):
        csv_path = tmp_path / "trace.csv"
        _write_azure_csv(csv_path, [
            ("fn-a", [10, 30, 50, 30, 10]),
            ("fn-b", [2, 6, 10, 6, 2]),
        ])
        first = _perf_trace_run(
            "sketch", invocations=1_500, seed=11, trace_file=str(csv_path)
        )
        second = _perf_trace_run(
            "sketch", invocations=1_500, seed=11, trace_file=str(csv_path)
        )
        assert _drop_timing(first) == _drop_timing(second)

    def test_trace_file_changes_the_arrival_pattern(self, tmp_path):
        # Same seed, synthetic vs file-driven: different traces, same
        # measurement path.
        csv_path = tmp_path / "trace.csv"
        _write_azure_csv(csv_path, [("fn-a", [0, 0, 100, 0, 0])])
        synthetic = _perf_trace_run("sketch", invocations=1_500, seed=11)
        replayed = _perf_trace_run(
            "sketch", invocations=1_500, seed=11, trace_file=str(csv_path)
        )
        assert synthetic["trace_file"] is None
        assert replayed["trace_file"] == str(csv_path)
        assert replayed["e2e_sketch"] != synthetic["e2e_sketch"]


class TestClusterScaleParity:
    def test_indexed_and_scan_runs_are_bit_identical(self):
        # The acceptance contract at integration scale: the full harness
        # (diurnal trace, warm-aware routing, work stealing) behaves
        # identically under both routing implementations.
        kwargs = dict(invokers=8, actions=32, invocations=2_500, seed=13)
        indexed = _cluster_scale_run("indexed", **kwargs)
        scan = _cluster_scale_run("scan", **kwargs)
        assert indexed["arrivals"] == scan["arrivals"] > 0
        assert indexed["goodput_fraction"] == scan["goodput_fraction"]
        assert indexed["cold_starts"] == scan["cold_starts"]
        assert indexed["steals"] == scan["steals"] > 0
        assert indexed["routed_per_invoker"] == scan["routed_per_invoker"]
        assert indexed["p99_ms"] == scan["p99_ms"]

    def test_unknown_routing_is_rejected(self):
        from repro.errors import PlatformError
        with pytest.raises(PlatformError):
            _cluster_scale_run(
                "magic", invokers=2, actions=4, invocations=100, seed=1
            )

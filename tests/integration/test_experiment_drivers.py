"""Integration tests for the experiment drivers (reduced-scale versions).

Each test runs the same driver the benchmark harness uses — at a much
smaller scale — and asserts the qualitative findings the paper reports
(who wins, what grows with what), not absolute numbers.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import (
    colliding_action_names,
    headline_summary,
    measure_latency,
    measure_restores,
    measure_throughput,
    run_breakdown,
    run_cluster_scaling,
    run_coldstart_comparison,
    run_fig3_dirty_sweep,
    run_fig3_size_sweep,
    run_latency_suite,
    run_latency_under_load,
    run_lifecycle,
    run_restoration_comparison,
    run_scaling,
    run_skip_rollback_ablation,
    run_slo_control,
    run_throughput_suite,
    run_tracking_ablation,
)
from repro.workloads import find_benchmark, microbenchmark_profile

SMALL_SET = [
    find_benchmark("fannkuch"),
    find_benchmark("bicg"),
    find_benchmark("md2html", "p"),
]


class TestLifecycle:
    def test_phases_match_paper_ordering(self):
        phases = run_lifecycle()
        # Environment instantiation is 100s of ms; runtime init and the
        # snapshot are much smaller; restoration is milliseconds.
        assert phases["environment_instantiation_seconds"] > 0.1
        assert phases["gh_restoration_seconds"] < 0.05
        assert phases["gh_restoration_seconds"] > 0
        assert phases["snapshot_seconds"] > 0


class TestFig3Microbenchmark:
    def test_dirty_sweep_shapes(self):
        low, high = run_fig3_dirty_sweep(
            mapped_pages=4000,
            dirty_fractions=(0.0, 0.5, 1.0),
            invocations=2,
        )
        # In-function overhead: GH grows with dirtied pages, GH-NOP tracks
        # the baseline, FORK grows faster than GH.
        gh_growth = low.get("gh").y[-1] - low.get("gh").y[0]
        base_growth = low.get("base").y[-1] - low.get("base").y[0]
        fork_growth = low.get("fork").y[-1] - low.get("fork").y[0]
        assert gh_growth > base_growth
        assert fork_growth > gh_growth
        # GH-NOP adds only the (fixed) interposition cost on top of the
        # baseline: its overhead must not grow with the dirtied fraction.
        nop_growth = low.get("gh-nop").y[-1] - low.get("gh-nop").y[0]
        assert abs(nop_growth - base_growth) < 0.3 * gh_growth + 1e-4
        # With restoration included, GH's latency exceeds its own low-load
        # latency and still grows with the write set.
        assert high.get("gh").y[-1] > low.get("gh").y[-1]
        assert high.get("gh").is_nondecreasing

    def test_size_sweep_shapes(self):
        low, high = run_fig3_size_sweep(
            sizes=(1000, 4000, 8000), dirtied_pages=500, invocations=2
        )
        # In-function GH overhead is flat w.r.t. address-space size...
        gh_low = low.get("gh")
        assert abs(gh_low.y[-1] - gh_low.y[0]) < 0.25 * gh_low.y[0]
        # ...but restoration grows with it (pagemap scan), and fork's
        # in-function cost grows with it too (cold TLB on every mapped page).
        assert high.get("gh").y[-1] > high.get("gh").y[0]
        assert low.get("fork").slope() > low.get("gh").slope()


class TestSuiteDrivers:
    def test_latency_suite_produces_records_for_applicable_configs(self):
        result = run_latency_suite(SMALL_SET, configs=("base", "gh"), invocations=4)
        assert len(result.records) == 6
        for benchmark in result.benchmarks():
            gh = result.record(benchmark, "gh")
            base = result.record(benchmark, "base")
            assert gh.e2e is not None and base.e2e is not None
            assert gh.restore_ms_mean is not None and gh.restore_ms_mean > 0
            # GH latency overhead stays modest for these benchmarks.
            assert gh.invoker.median < base.invoker.median * 2.0

    def test_throughput_suite_gh_close_to_base_for_long_functions(self):
        spec = find_benchmark("md2html", "p")
        result = run_throughput_suite([spec], configs=("base", "gh"), rounds=6)
        ratios = result.relative_throughput("gh")
        assert 0.7 <= ratios[spec.qualified_name] <= 1.1

    def test_headline_summary_from_suites(self):
        latency = run_latency_suite(SMALL_SET, configs=("base", "gh"), invocations=4)
        summary = headline_summary(latency)
        assert "e2e_latency_overhead" in summary
        assert summary["e2e_latency_overhead"].count == len(SMALL_SET)
        # End-to-end overhead stays modest (the paper reports median 1.5%).
        assert summary["e2e_latency_overhead"].median_percent < 20.0

    def test_restoration_comparison_gh_vs_faasm(self):
        durations = run_restoration_comparison(SMALL_SET[:2], invocations=3)
        assert set(durations) == {"gh", "faasm"}
        for config in durations.values():
            assert all(v > 0 for v in config.values())

    def test_breakdown_records_sorted_and_consistent(self):
        records = run_breakdown([find_benchmark("bicg"), find_benchmark("pyflate")],
                                invocations=3)
        assert records[0].restore_ms >= records[-1].restore_ms
        for record in records:
            assert record.fractions
            assert sum(record.fractions.values()) == pytest.approx(1.0, rel=0.01)
            assert record.snapshot_ms > 0

    def test_scaling_is_nearly_linear(self):
        sweeps = run_scaling([find_benchmark("telco")], configs=("base", "gh"),
                             cores=(1, 2, 4), rounds=4)
        sweep = sweeps["telco (p)"]
        for config in ("base", "gh"):
            series = sweep.get(config)
            assert series.is_nondecreasing
            assert series.y_at(4.0) > 2.5 * series.y_at(1.0)

    def test_cluster_scaling_reports_throughput_and_skew(self):
        spec = find_benchmark("md2html", "p")
        sweeps = run_cluster_scaling(
            [spec], invoker_counts=(1, 2),
            policies=("hash-affinity", "warm-aware"), rounds=2,
        )
        result = sweeps[spec.qualified_name]
        for policy in ("hash-affinity", "warm-aware"):
            throughput = result["throughput"].get(policy)
            assert throughput.y_at(2.0) >= throughput.y_at(1.0)
            skew = result["skew"].get(policy)
            assert skew.y_at(1.0) == 1.0  # one invoker is trivially even
            assert skew.y_at(2.0) >= 1.0

    def test_latency_under_load_sweeps_strategies(self):
        spec = find_benchmark("md2html", "p")
        sweeps = run_latency_under_load(
            spec,
            strategies=(("least-loaded", False), ("warm-aware", True)),
            load_factors=(0.4, 0.8),
            duration_seconds=2.0, warmup_seconds=0.25,
        )
        throughput = sweeps["throughput"]
        latency = sweeps["p95_ms"]
        for label in ("least-loaded", "warm-aware+steal"):
            series = throughput.get(label)
            assert len(series.y) == 2
            assert all(value > 0 for value in series.y)
            assert all(value > 0 for value in latency.get(label).y)
        # The headline shape at the higher offered load: pricing cold
        # starts into routing sustains more of the offered arrivals.
        assert (
            throughput.get("warm-aware+steal").y[-1]
            > throughput.get("least-loaded").y[-1]
        )

    def test_colliding_action_names_share_one_home(self):
        names = colliding_action_names(5, invokers=4, home=2)
        assert len(names) == len(set(names)) == 5
        from repro.faas.scheduler import home_index
        assert {home_index(name, 4) for name in names} == {2}

    def test_slo_control_quota_loop_acts_without_configured_quotas(self):
        spec = find_benchmark("get-time", "p")
        result = run_slo_control(
            spec, parts=("quota",),
            duration_seconds=6.0, warmup_seconds=3.0,
        )
        assert set(result.quota) == {"solo", "static", "controlled"}
        assert result.capacity == {}
        assert result.polite_slo_p99_ms is not None
        controlled = result.quota["controlled"]
        # The loop ran and actuated knobs nobody configured by hand.
        assert controlled.control
        assert controlled.control_stats["ticks"] > 0
        assert controlled.control_stats["rate_cuts"] >= 1
        assert controlled.outcome("aggressive").throttled > 0
        # Qualitative shape: the controlled polite tenant clearly beats
        # its static-knob self on goodput.
        static_polite = result.quota["static"].outcome("polite")
        controlled_polite = controlled.outcome("polite")
        assert controlled_polite.achieved_rps > static_polite.achieved_rps

    def test_slo_control_capacity_loop_migrates_under_budget(self):
        spec = find_benchmark("md2html", "p")
        result = run_slo_control(
            spec, parts=("capacity",),
            capacity_duration_seconds=4.0, capacity_warmup_seconds=1.0,
        )
        assert result.quota == {}
        assert set(result.capacity) == {"reactive", "planned"}
        reactive = result.capacity["reactive"]
        planned = result.capacity["planned"]
        assert reactive.prewarms == 0 and reactive.migrations == ()
        assert planned.prewarms > 0
        assert planned.migrations
        budget = planned.control_stats["budget"]
        # The planner's bookkeeping: prewarm decisions are observable and
        # bounded by the global budget.
        prewarm_targets = [
            decision.target for decision in planned.migrations
            if decision.kind == "prewarm"
        ]
        assert prewarm_targets and all(
            target != "invoker-0" for target in prewarm_targets
        )
        assert planned.control_stats["prewarms"] <= budget

    def test_slo_control_forecast_loop_seeds_ahead_of_the_wave(self):
        spec = find_benchmark("md2html", "p")
        result = run_slo_control(
            spec, parts=("forecast",),
            forecast_duration_seconds=9.0,
        )
        assert result.quota == {} and result.capacity == {}
        assert set(result.forecast) == {"reactive", "predictive"}
        reactive = result.forecast["reactive"]
        predictive = result.forecast["predictive"]
        # Equal footing: identical trace and global budget.
        assert predictive.budget == reactive.budget
        assert predictive.offered_rps == reactive.offered_rps
        assert predictive.rising_windows == reactive.rising_windows
        # The forecaster became forecastable and drove real seeds the
        # reactive regime never placed.
        stats = predictive.control_stats
        assert stats["planner"] == "predictive"
        assert reactive.control_stats["planner"] == "reactive"
        assert stats["forecast_ready_actions"] > 0
        assert stats["predictive_seeds"] > 0
        assert predictive.prewarms > reactive.prewarms
        # Qualitative shape (the bench pins the margins): fewer rising-edge
        # cold starts, no goodput loss.
        assert predictive.rising_cold_starts < reactive.rising_cold_starts
        assert predictive.achieved_rps >= 0.95 * reactive.achieved_rps


class TestAblations:
    def test_tracking_ablation_uffd_loses_for_large_write_sets(self):
        sweep = run_tracking_ablation(
            mapped_pages=3000, dirty_fractions=(0.0, 0.3), invocations=2
        )
        soft = sweep.get("soft-dirty")
        uffd = sweep.get("uffd")
        assert uffd.y[-1] > soft.y[-1]

    def test_skip_rollback_reduces_post_work(self):
        spec = find_benchmark("bicg")
        results = run_skip_rollback_ablation(
            spec, invocations=8, callers=("alice", "alice", "alice", "bob")
        )
        assert results["skip-same-caller"] < results["always-restore"]

    def test_coldstart_and_criu_turnarounds_dwarf_gh(self):
        turnaround = run_coldstart_comparison(
            [find_benchmark("bicg")], configs=("gh", "cold", "criu"), invocations=2
        )
        bench = "bicg (c)"
        assert turnaround["cold"][bench] > 100 * turnaround["gh"][bench]
        assert turnaround["criu"][bench] > 20 * turnaround["gh"][bench]


class TestCalibrationAgainstPaper:
    """Order-of-magnitude checks of measured values against the paper."""

    def test_restore_time_in_paper_range_for_small_c_function(self):
        spec = find_benchmark("bicg")
        measurement = measure_restores(spec, "gh", invocations=3)
        assert 0.1 <= measurement.restore_ms_mean <= 5.0

    def test_restore_time_grows_with_footprint_and_write_set(self):
        small = measure_restores(find_benchmark("bicg"), "gh", invocations=3)
        medium = measure_restores(find_benchmark("pyflate"), "gh", invocations=3)
        assert medium.restore_ms_mean > small.restore_ms_mean

    def test_restores_track_paper_ordering_across_suites(self):
        ordered_specs = [find_benchmark("bicg"), find_benchmark("telco"),
                         find_benchmark("mdp")]
        measured = [
            measure_restores(spec, "gh", invocations=3).restore_ms_mean
            for spec in ordered_specs
        ]
        assert measured == sorted(measured)

    def test_throughput_short_function_magnitude(self):
        spec = find_benchmark("get-time", "p")
        base = measure_throughput(spec, "base", rounds=6)
        assert 500 <= base.throughput_rps <= 2000

    def test_latency_of_long_function_dominated_by_compute(self):
        spec = find_benchmark("fannkuch")
        base = measure_latency(spec, "base", invocations=4)
        gh = measure_latency(spec, "gh", invocations=4)
        assert gh.e2e.median < base.e2e.median * 1.5

"""Setuptools shim.

The project is configured through ``pyproject.toml``; this file exists so
that legacy editable installs (``pip install -e . --no-use-pep517`` or
``python setup.py develop``) work on environments whose setuptools predates
PEP 660 editable-wheel support (no ``wheel`` package available offline).
"""

from setuptools import setup

setup()

"""Table 1 — absolute latency and throughput for every configuration.

Regenerates, for the 14 representative benchmarks (run the latency and
throughput suite drivers over ``all_benchmarks()`` for the full 58-row
table), the absolute end-to-end latency, invoker latency and peak throughput
of BASE, GH-NOP, GH, FORK and FAASM.
"""

from __future__ import annotations

from repro.analysis.experiments import run_latency_suite, run_throughput_suite
from repro.analysis.tables import format_rate, format_seconds, render_table
from repro.workloads import representative_benchmarks

INVOCATIONS = 8
ROUNDS = 5
SMOKE_INVOCATIONS = 5
SMOKE_ROUNDS = 2


def _merged_results(invocations: int, rounds: int):
    benchmarks = representative_benchmarks()
    latency = run_latency_suite(benchmarks, invocations=invocations)
    throughput = run_throughput_suite(benchmarks, rounds=rounds)
    return latency.merge(throughput)


def test_table1_absolute_measurements(benchmark, bench_once, bench_scale):
    invocations = bench_scale(INVOCATIONS, SMOKE_INVOCATIONS)
    rounds = bench_scale(ROUNDS, SMOKE_ROUNDS)
    result = bench_once(benchmark, lambda: _merged_results(invocations, rounds))

    headers = ["benchmark", "config", "E2E lat (ms)", "Inv lat (ms)", "T'put (req/s)"]
    rows = []
    for name in result.benchmarks():
        for config in result.configs():
            if not result.has(name, config):
                continue
            record = result.record(name, config)
            rows.append([
                name,
                config,
                format_seconds(record.e2e.median if record.e2e else None),
                format_seconds(record.invoker.median if record.invoker else None),
                format_rate(record.throughput_rps),
            ])
    print()
    print(render_table(headers, rows, title="Table 1 — absolute latency and throughput"))

    # Sanity anchors against the paper's Table 1 (order of magnitude):
    # ocr-img (n) baseline invoker latency ~2.5 s, get-time (p) ~3 ms.
    ocr_base = result.record("ocr-img (n)", "base")
    get_time_base = result.record("get-time (p)", "base")
    assert 1.5 < ocr_base.invoker.median < 4.0
    assert get_time_base.invoker.median < 0.02
    benchmark.extra_info["ocr_img_base_invoker_s"] = round(ocr_base.invoker.median, 3)
    benchmark.extra_info["get_time_base_invoker_ms"] = round(
        get_time_base.invoker.median * 1000, 3
    )

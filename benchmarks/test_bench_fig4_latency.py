"""Fig. 4 — relative end-to-end and invoker latency for all 58 benchmarks.

Regenerates the per-benchmark relative latencies of GH-NOP, GH, FORK and
FAASM against the insecure BASE configuration, plus the headline overhead
distribution the abstract quotes (median ~1.5 %, 95p ~7 % end-to-end for GH).
"""

from __future__ import annotations

from repro.analysis.experiments import headline_summary, run_latency_suite
from repro.analysis.report import headline_text, latency_table
from repro.workloads import all_benchmarks

INVOCATIONS = 8


def test_fig4_relative_latency_all_benchmarks(benchmark, bench_once):
    result = bench_once(
        benchmark,
        lambda: run_latency_suite(all_benchmarks(), invocations=INVOCATIONS),
    )
    print()
    print(latency_table(result))
    summaries = headline_summary(result)
    print()
    print(headline_text(summaries))

    e2e = summaries["e2e_latency_overhead"]
    benchmark.extra_info["gh_e2e_overhead_median_pct"] = round(e2e.median_percent, 2)
    benchmark.extra_info["gh_e2e_overhead_p95_pct"] = round(e2e.p95_percent, 2)

    # Shape: GH end-to-end overhead is modest across the suite (paper:
    # median 1.5 %, 95p 7 %); individual outliers (img-resize) are larger.
    assert e2e.median_percent < 10.0
    assert e2e.count == 58

    # FAASM is slower than GH on the Python (pyperformance) benchmarks and
    # faster on the PolyBench kernels, driven by wasm-vs-native execution.
    faasm_rel = result.relative_latency("faasm", metric="invoker")
    pyperf = [v for b, v in faasm_rel.items()
              if result.record(b, "faasm").suite == "pyperformance"]
    polybench = [v for b, v in faasm_rel.items()
                 if result.record(b, "faasm").suite == "polybench"]
    assert sum(pyperf) / len(pyperf) > 20.0
    assert sum(polybench) / len(polybench) < 0.0

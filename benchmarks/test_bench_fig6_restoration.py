"""Fig. 6 — restoration duration of GH vs FAASM.

For the WebAssembly-compatible benchmarks (pyperformance + PolyBench),
compares Groundhog's between-requests restoration time with the Faaslet
reset time.  The paper's observation: both are a few milliseconds; the
overall latency differences between the two systems come from native vs
WebAssembly execution speed, not from the isolation step.
"""

from __future__ import annotations

from repro.analysis.experiments import run_restoration_comparison
from repro.analysis.tables import render_table
from repro.workloads import wasm_benchmarks

INVOCATIONS = 4


def test_fig6_restoration_gh_vs_faasm(benchmark, bench_once):
    durations = bench_once(
        benchmark,
        lambda: run_restoration_comparison(wasm_benchmarks(), invocations=INVOCATIONS),
    )
    gh = durations["gh"]
    faasm = durations["faasm"]
    rows = [
        [name, f"{gh[name]:.2f}", f"{faasm.get(name, 0.0):.2f}"]
        for name in sorted(gh)
    ]
    print()
    print(render_table(["benchmark", "GH restore (ms)", "FAASM reset (ms)"], rows,
                       title="Fig. 6 — restoration duration"))

    gh_values = list(gh.values())
    faasm_values = list(faasm.values())
    benchmark.extra_info["gh_restore_ms_max"] = round(max(gh_values), 2)
    benchmark.extra_info["faasm_reset_ms_max"] = round(max(faasm_values), 2)

    # Shape: both mechanisms restore in a few milliseconds for these
    # benchmarks (the paper's Fig. 6 tops out around 15 ms for GH).
    assert max(gh_values) < 30.0
    assert max(faasm_values) < 30.0
    # GH's restoration varies with the write set; the Faaslet reset is much
    # flatter across benchmarks.
    gh_spread = max(gh_values) - min(gh_values)
    faasm_spread = max(faasm_values) - min(faasm_values)
    assert gh_spread > faasm_spread

"""The million-request perf trace — sketch mode vs per-sample metrics.

:func:`run_perf_trace` replays the same synthetic multi-day diurnal
trace once per metrics mode on an identical warm cluster.  Metrics are
observe-only in this workload (no tenant SLOs are declared), so the two
runs are behaviourally bit-identical — equal goodput, equal cold-start
counts, every event timestamp the same — and the wall-clock/RSS gap is
purely the cost of per-sample storage plus the per-tick windowed
percentile sorts the SLO monitor performs over a five-minute horizon.

The committed full-scale numbers live in ``BENCH_perf.json`` at the repo
root (regenerate with ``python -m repro.cli perf-trace``); CI replays
the quick (10^5-invocation) variant on every push and fails if
throughput regresses by more than 25 % against that baseline (see
``scripts/check_perf_regression.py``).

By default this benchmark replays the quick trace — the full 10^6 run
costs tens of minutes of wall clock (that is the point: exact mode pays
O(window x rate) per control tick) and belongs to the CLI's tracked
baseline, not to every harness run.  Set ``REPRO_BENCH_FULL=1`` to
replay the million-request trace here and assert the full-scale >= 5x
speedup claim directly.
"""

from __future__ import annotations

import os

from repro.analysis.experiments import run_perf_trace
from repro.analysis.tables import render_table

#: Full-scale replay on request only; see the module docstring.
BENCH_FULL = os.environ.get("REPRO_BENCH_FULL", "").strip().lower() in (
    "1", "true", "yes", "on",
)


def _render(report):
    rows = [
        [
            run["mode"],
            f"{run['arrivals']:,}",
            f"{run['wall_seconds']:.1f}",
            f"{run['invocations_per_second']:,.0f}",
            f"{run['max_rss_mb']:.0f}",
            f"{run['goodput_fraction'] * 100:.1f}%",
            str(run["cold_starts"]),
            f"{run['p99_ms']:.2f}",
        ]
        for run in report["modes"].values()
    ]
    print()
    print(render_table(
        ["mode", "arrivals", "wall (s)", "inv/s", "RSS (MB)",
         "goodput", "cold starts", "p99 (ms)"],
        rows,
        title=(
            f"Perf trace — {report['invocations_requested']:,} requested "
            f"invocations, speedup {report['speedup_sketch_vs_exact']:.2f}x, "
            f"p99 rel err {report['p99_relative_error']:.4f}"
        ),
    ))


def test_sketch_mode_is_faster_at_equal_fidelity(benchmark, bench_once):
    invocations = 1_000_000 if BENCH_FULL else 100_000
    report = bench_once(
        benchmark, lambda: run_perf_trace(invocations=invocations)
    )
    _render(report)

    exact = report["modes"]["exact"]
    sketch = report["modes"]["sketch"]

    # Fidelity first: both modes simulated the *same* cluster doing the
    # same work — metrics bookkeeping must never leak into behaviour.
    assert report["equal_goodput"], (exact["goodput_fraction"],
                                     sketch["goodput_fraction"])
    assert report["equal_cold_starts"], (exact["cold_starts"],
                                         sketch["cold_starts"])
    assert sketch["arrivals"] == exact["arrivals"]
    assert sketch["recorded"] == exact["recorded"]
    # The trace is oversized to absorb burst-realisation variance, so a
    # "million-request" run really replays at least a million.
    assert exact["arrivals"] >= invocations

    # The sketched p99 sits inside the documented relative error bound
    # (0.5 % by construction; the acceptance bar is 1 %).
    assert report["p99_relative_error"] < 0.01

    # The perf claim.  The full-scale run clears 5x (windows saturate at
    # the five-minute horizon for most of the trace); the quick variant
    # spends most of its duration still filling the window, so its floor
    # is deliberately conservative.
    floor = 5.0 if BENCH_FULL else 1.2
    assert report["speedup_sketch_vs_exact"] >= floor, report[
        "speedup_sketch_vs_exact"
    ]

    # Bounded collector state shows up as a peak-RSS gap that widens
    # with retained invocations; even the quick run must show daylight.
    assert report["rss_ratio_exact_vs_sketch"] > 1.0, report[
        "rss_ratio_exact_vs_sketch"
    ]

    benchmark.extra_info.update(
        speedup=report["speedup_sketch_vs_exact"],
        exact_inv_per_s=exact["invocations_per_second"],
        sketch_inv_per_s=sketch["invocations_per_second"],
        rss_ratio=report["rss_ratio_exact_vs_sketch"],
        p99_relative_error=report["p99_relative_error"],
    )

"""Table 2 — relative overheads of every configuration vs the insecure baseline.

Regenerates the per-benchmark relative end-to-end latency, invoker latency
and throughput overheads of GH-NOP, GH, FORK and FAASM for the
representative subset, together with the paper-vs-measured comparison
columns recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from repro.analysis.experiments import headline_summary, run_latency_suite, run_throughput_suite
from repro.analysis.report import headline_text, paper_comparison_table
from repro.analysis.tables import format_percent, render_table
from repro.workloads import representative_benchmarks

INVOCATIONS = 8
ROUNDS = 5
SMOKE_INVOCATIONS = 5
SMOKE_ROUNDS = 2


def test_table2_relative_overheads(benchmark, bench_once, bench_scale):
    benchmarks = representative_benchmarks()
    invocations = bench_scale(INVOCATIONS, SMOKE_INVOCATIONS)
    rounds = bench_scale(ROUNDS, SMOKE_ROUNDS)

    def run():
        latency = run_latency_suite(benchmarks, invocations=invocations)
        throughput = run_throughput_suite(benchmarks, rounds=rounds)
        return latency, throughput

    latency, throughput = bench_once(benchmark, run)

    headers = ["benchmark", "gh e2e", "gh inv", "gh xput", "gh-nop e2e", "fork inv"]
    gh_e2e = latency.relative_latency("gh", metric="e2e")
    gh_inv = latency.relative_latency("gh", metric="invoker")
    nop_e2e = latency.relative_latency("gh-nop", metric="e2e")
    fork_inv = latency.relative_latency("fork", metric="invoker")
    gh_xput = throughput.relative_throughput("gh")
    rows = []
    for name in latency.benchmarks():
        rows.append([
            name,
            format_percent(gh_e2e.get(name)),
            format_percent(gh_inv.get(name)),
            f"{gh_xput[name]:.2f}x" if name in gh_xput else "-",
            format_percent(nop_e2e.get(name)),
            format_percent(fork_inv.get(name)),
        ])
    print()
    print(render_table(headers, rows, title="Table 2 — overheads relative to BASE"))
    print()
    print(paper_comparison_table(latency, benchmarks))
    print()
    print(headline_text(headline_summary(latency, throughput)))

    summaries = headline_summary(latency, throughput)
    benchmark.extra_info["gh_e2e_median_pct"] = round(
        summaries["e2e_latency_overhead"].median_percent, 2
    )
    benchmark.extra_info["gh_xput_reduction_median_pct"] = round(
        summaries["throughput_reduction"].median_percent, 2
    )

    # Shape: end-to-end overheads stay modest even on this restore-heavy
    # subset; the GC-sensitive img-resize is the known outlier.
    assert summaries["e2e_latency_overhead"].median_percent < 15.0
    assert gh_e2e["img-resize (n)"] == max(gh_e2e.values())

"""Fig. 8 — deconstructed restoration overheads + snapshot cost.

For the 14 representative benchmarks, breaks one restoration into the
paper's steps (interrupting, reading maps, scanning page metadata, diffing
layouts, injected syscalls, restoring memory, clearing soft-dirty bits,
restoring registers, detaching) and reports the one-time snapshot latency.
"""

from __future__ import annotations

from repro.analysis.experiments import run_breakdown
from repro.analysis.report import restoration_table
from repro.analysis.tables import render_table
from repro.workloads import representative_benchmarks

INVOCATIONS = 4


def test_fig8_restoration_breakdown(benchmark, bench_once):
    records = bench_once(
        benchmark,
        lambda: run_breakdown(representative_benchmarks(), invocations=INVOCATIONS),
    )
    print()
    print(restoration_table(records))

    detail_rows = []
    for record in records:
        top = sorted(record.fractions.items(), key=lambda kv: kv[1], reverse=True)[:3]
        detail_rows.append(
            [record.benchmark]
            + [f"{name} {share * 100:.0f}%" for name, share in top]
        )
    print()
    print(render_table(["benchmark", "1st", "2nd", "3rd"], detail_rows,
                       title="Fig. 8 — dominant restoration steps"))

    by_name = {record.benchmark: record for record in records}
    benchmark.extra_info["restore_ms_base64_n"] = round(by_name["base64 (n)"].restore_ms, 2)
    benchmark.extra_info["restore_ms_seidel_2d_c"] = round(by_name["seidel-2d (c)"].restore_ms, 3)

    # Shape checks mirroring the paper's discussion:
    #  - ordering: the large Node.js functions dominate, the tiny PolyBench
    #    kernels restore in well under a millisecond;
    assert records[0].benchmark in {"base64 (n)", "img-resize (n)", "primes (n)"}
    assert by_name["seidel-2d (c)"].restore_ms < 1.5
    #  - memory restoration dominates for the write-heavy functions;
    heavy = by_name["base64 (n)"]
    assert max(heavy.fractions, key=heavy.fractions.get) == "restoring_memory"
    #  - pagemap scanning is a major component for functions with a huge
    #    address space but a small write set (ocr-img);
    ocr = by_name["ocr-img (n)"]
    assert ocr.fractions["scanning_page_metadata"] > 0.3
    #  - snapshot cost grows with the footprint.
    assert heavy.snapshot_ms > by_name["seidel-2d (c)"].snapshot_ms

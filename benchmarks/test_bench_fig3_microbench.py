"""Fig. 3 — microbenchmark latency sweeps.

Left panel: latency vs the percentage of dirtied pages (fixed mapped size).
Right panel: latency vs address-space size (fixed write set).
Solid lines = low load (in-function overheads only); dashed lines = high
load (restoration included).  Configurations: BASE, GH, GH-NOP, FORK.
"""

from __future__ import annotations

from repro.analysis.experiments import run_fig3_dirty_sweep, run_fig3_size_sweep
from repro.analysis.tables import render_table

#: Reduced-scale sweep parameters (the paper uses 100 K mapped pages and
#: 150 requests per point; pass larger values to the drivers to match).
MAPPED_PAGES = 20_000
DIRTY_FRACTIONS = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0)
SIZES = (1_000, 5_000, 10_000, 20_000, 40_000)
FIXED_DIRTIED = 1_000


def _print_sweep(title, low, high):
    configs = low.names()
    headers = ["x"] + [f"{c} (low)" for c in configs] + [f"{c} (high)" for c in configs]
    rows = []
    for index, x in enumerate(low.get(configs[0]).x):
        row = [f"{x:.0f}"]
        row += [f"{low.get(c).y[index] * 1000:.2f}" for c in configs]
        row += [f"{high.get(c).y[index] * 1000:.2f}" for c in configs]
        rows.append(row)
    print()
    print(render_table(headers, rows, title=title + " (latencies in ms)"))


def test_fig3_left_dirtied_pages_sweep(benchmark, bench_once):
    low, high = bench_once(
        benchmark,
        lambda: run_fig3_dirty_sweep(
            mapped_pages=MAPPED_PAGES, dirty_fractions=DIRTY_FRACTIONS, invocations=3
        ),
    )
    _print_sweep("Fig. 3 (left) — latency vs dirtied pages", low, high)

    # Shape checks from the paper: GH's in-function overhead grows with the
    # write set, FORK grows faster, GH-NOP tracks the baseline, and the
    # high-load (restoration-inclusive) GH latency grows further.
    gh_growth = low.get("gh").y[-1] - low.get("gh").y[0]
    fork_growth = low.get("fork").y[-1] - low.get("fork").y[0]
    base_growth = low.get("base").y[-1] - low.get("base").y[0]
    assert gh_growth > base_growth
    assert fork_growth > gh_growth
    assert high.get("gh").y[-1] > low.get("gh").y[-1]
    benchmark.extra_info["gh_low_ms_at_100pct"] = round(low.get("gh").y[-1] * 1000, 3)
    benchmark.extra_info["gh_high_ms_at_100pct"] = round(high.get("gh").y[-1] * 1000, 3)


def test_fig3_right_address_space_sweep(benchmark, bench_once):
    low, high = bench_once(
        benchmark,
        lambda: run_fig3_size_sweep(
            sizes=SIZES, dirtied_pages=FIXED_DIRTIED, invocations=3
        ),
    )
    _print_sweep("Fig. 3 (right) — latency vs address-space size", low, high)

    # Shape checks: GH's in-function overhead is flat w.r.t. address-space
    # size, its restoration grows with it (pagemap scan), and FORK's
    # in-function cost grows with it (cold TLB on every mapped page).
    gh_low = low.get("gh")
    assert abs(gh_low.y[-1] - gh_low.y[0]) < 0.3 * gh_low.y[0]
    assert high.get("gh").y[-1] > high.get("gh").y[0]
    assert low.get("fork").slope() > low.get("gh").slope()
    benchmark.extra_info["gh_restore_growth_ms"] = round(
        (high.get("gh").y[-1] - high.get("gh").y[0]) * 1000, 3
    )

"""Fig. 7 — throughput scaling with the number of cores.

For the 14 representative benchmarks, measures absolute throughput of BASE,
GH-NOP and GH with 1-4 cores (one container per core).  The paper's finding:
scaling is nearly linear for every configuration, because each core runs an
independent container with its own Groundhog manager.
"""

from __future__ import annotations

from repro.analysis.experiments import run_scaling
from repro.analysis.tables import render_table
from repro.workloads import representative_benchmarks

CORES = (1, 2, 3, 4)
ROUNDS = 4
SMOKE_ROUNDS = 2


def test_fig7_throughput_scaling_with_cores(benchmark, bench_once, bench_scale):
    rounds = bench_scale(ROUNDS, SMOKE_ROUNDS)
    sweeps = bench_once(
        benchmark,
        lambda: run_scaling(representative_benchmarks(), cores=CORES, rounds=rounds),
    )
    headers = ["benchmark"] + [f"gh @{c} cores" for c in CORES] + ["base @4", "gh-nop @4"]
    rows = []
    for name, sweep in sweeps.items():
        gh = sweep.get("gh")
        row = [name] + [f"{gh.y_at(float(c)):.1f}" for c in CORES]
        row.append(f"{sweep.get('base').y_at(4.0):.1f}")
        row.append(f"{sweep.get('gh-nop').y_at(4.0):.1f}")
        rows.append(row)
    print()
    print(render_table(headers, rows, title="Fig. 7 — throughput (req/s) vs cores"))

    # Shape: throughput never decreases with more cores and is near-linear
    # (4 cores deliver well over 2.5x the single-core throughput).
    speedups = []
    for name, sweep in sweeps.items():
        for config in ("base", "gh"):
            series = sweep.get(config)
            assert series.is_nondecreasing, f"{name}/{config} throughput regressed with cores"
            speedups.append(series.y_at(4.0) / max(series.y_at(1.0), 1e-9))
    median_speedup = sorted(speedups)[len(speedups) // 2]
    benchmark.extra_info["median_4core_speedup"] = round(median_speedup, 2)
    assert median_speedup > 2.5

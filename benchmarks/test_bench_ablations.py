"""Design-choice ablations called out in DESIGN.md.

* §4.3 — soft-dirty bits vs userfaultfd write-protection tracking,
* §4.4 — skipping rollback between mutually trusting consecutive callers,
* §3.2 — Groundhog vs the cold-start / CRIU-style designs that motivated it.
"""

from __future__ import annotations

from repro.analysis.experiments import (
    run_coldstart_comparison,
    run_skip_rollback_ablation,
    run_tracking_ablation,
)
from repro.analysis.tables import render_table
from repro.workloads import find_benchmark


def test_ablation_tracking_soft_dirty_vs_uffd(benchmark, bench_once):
    sweep = bench_once(
        benchmark,
        lambda: run_tracking_ablation(
            mapped_pages=10_000,
            dirty_fractions=(0.0, 0.01, 0.1, 0.3, 0.6),
            invocations=3,
        ),
    )
    soft = sweep.get("soft-dirty")
    uffd = sweep.get("uffd")
    rows = [
        [f"{x:.0f}%", f"{soft.y[i]:.2f}", f"{uffd.y[i]:.2f}"]
        for i, x in enumerate(soft.x)
    ]
    print()
    print(render_table(["dirtied", "soft-dirty (ms)", "userfaultfd (ms)"], rows,
                       title="§4.3 ablation — tracking mechanism"))

    # The paper's finding: UFFD only competes when almost nothing is written
    # and loses clearly once the write set grows.
    assert uffd.y[-1] > soft.y[-1]
    benchmark.extra_info["uffd_penalty_ms_at_60pct"] = round(uffd.y[-1] - soft.y[-1], 2)


def test_ablation_skip_rollback_same_caller(benchmark, bench_once):
    results = bench_once(
        benchmark,
        lambda: run_skip_rollback_ablation(
            find_benchmark("md2html", "p"),
            invocations=12,
            callers=("alice", "alice", "alice", "bob"),
        ),
    )
    rows = [[label, f"{seconds * 1000:.2f}"] for label, seconds in results.items()]
    print()
    print(render_table(["policy", "mean restore work per request (ms)"], rows,
                       title="§4.4 ablation — skip rollback for trusting callers"))

    assert results["skip-same-caller"] < results["always-restore"]
    benchmark.extra_info["skip_saving_pct"] = round(
        (1 - results["skip-same-caller"] / results["always-restore"]) * 100, 1
    )


def test_ablation_coldstart_and_criu_comparison(benchmark, bench_once):
    turnaround = bench_once(
        benchmark,
        lambda: run_coldstart_comparison(
            [find_benchmark("bicg"), find_benchmark("md2html", "p")],
            invocations=2,
        ),
    )
    rows = []
    for config, per_bench in turnaround.items():
        for name, seconds in per_bench.items():
            rows.append([config, name, f"{seconds * 1000:.2f}"])
    print()
    print(render_table(["config", "benchmark", "between-request work (ms)"], rows,
                       title="§3.2 — per-request isolation turnaround"))

    for name in ("bicg (c)", "md2html (p)"):
        assert turnaround["cold"][name] > 100 * turnaround["gh"][name]
        assert turnaround["criu"][name] > 20 * turnaround["gh"][name]
    benchmark.extra_info["gh_turnaround_ms_bicg"] = round(turnaround["gh"]["bicg (c)"] * 1000, 3)
    benchmark.extra_info["cold_turnaround_ms_bicg"] = round(
        turnaround["cold"]["bicg (c)"] * 1000, 1
    )

"""Table 3 — restoration time vs address-space size and write-set size.

Regenerates the full 58-benchmark table relating Groundhog's restoration
time to the number of mapped pages, restored pages and in-function faults,
sorted by restoration time, and checks the correlations the paper draws
from it.
"""

from __future__ import annotations

from repro.analysis.experiments import run_latency_suite
from repro.analysis.report import table3_rows
from repro.workloads import all_benchmarks

INVOCATIONS = 6


def test_table3_restoration_vs_pages(benchmark, bench_once):
    result = bench_once(
        benchmark,
        lambda: run_latency_suite(all_benchmarks(), configs=("base", "gh"),
                                  invocations=INVOCATIONS),
    )
    print()
    print(table3_rows(result))

    records = [result.record(name, "gh") for name in result.benchmarks()]
    restore_ms = {r.benchmark: r.restore_ms_mean for r in records}

    # Shape checks from the paper's Table 3:
    #  - the tiny PolyBench kernels restore in ~1 ms or less,
    assert restore_ms["seidel-2d (c)"] < 1.5
    assert restore_ms["bicg (c)"] < 1.5
    #  - the big Node.js functions take tens to hundreds of ms,
    assert restore_ms["base64 (n)"] > 50.0
    assert restore_ms["img-resize (n)"] > 20.0
    #  - restoration time grows with restored pages for a fixed footprint,
    assert restore_ms["base64 (n)"] > restore_ms["ocr-img (n)"]
    #  - and with the footprint for a similar write set.
    assert restore_ms["get-time (n)"] > restore_ms["get-time (p)"]

    ordered = sorted(records, key=lambda r: r.restore_ms_mean or 0.0)
    benchmark.extra_info["fastest_restore_ms"] = round(ordered[0].restore_ms_mean, 3)
    benchmark.extra_info["slowest_restore_ms"] = round(ordered[-1].restore_ms_mean, 2)
    benchmark.extra_info["median_restore_ms"] = round(
        ordered[len(ordered) // 2].restore_ms_mean, 2
    )
    # The paper's headline: restorations have a median of ~3.7 ms across the
    # benchmark population; ours should land in the same few-millisecond band.
    assert 0.5 < ordered[len(ordered) // 2].restore_ms_mean < 15.0

"""Cluster variant of Fig. 7 — aggregate throughput vs invokers × policy.

The paper's scaling experiment (Fig. 7) grows cores within one invoker; this
benchmark grows the number of *invokers* behind the cluster scheduler, under
each scheduling policy, driving the same representative benchmarks with a
multi-action saturating workload (8 copies of the action, so routing has
real choices to make).

Expected shape: aggregate throughput grows with invokers for the
warmth-aware policies, and hash-affinity / warm-aware — which keep each
action on invokers that already hold its warm containers — dominate
policies that scatter requests onto invokers that must cold-start
containers first.  Since cold starts are charged to cores, the scatter is
expensive: a booting container occupies a core for its whole
initialisation.  The routing-skew column (max/mean invocations routed per
invoker) shows the price hash affinity pays for its warm hits.
"""

from __future__ import annotations

from repro.analysis.experiments import run_cluster_scaling
from repro.analysis.tables import render_table
from repro.workloads import representative_benchmarks

INVOKERS = (1, 2, 4)
POLICIES = ("round-robin", "least-loaded", "hash-affinity", "warm-aware")
#: Representative benchmarks with small memory footprints: the cluster runs
#: simulate dozens of cold starts, so the huge Node profiles would dominate
#: harness wall-clock time without changing the scaling shape.
BENCHMARKS = ("md2html (p)", "bicg (c)")


def test_cluster_throughput_scaling_with_invokers(benchmark, bench_once, bench_scale):
    chosen = [
        spec for spec in representative_benchmarks()
        if spec.qualified_name in BENCHMARKS
    ]
    assert len(chosen) == len(BENCHMARKS)
    rounds = bench_scale(4, 2)
    sweeps = bench_once(
        benchmark,
        lambda: run_cluster_scaling(
            chosen,
            invoker_counts=INVOKERS,
            policies=POLICIES,
            rounds=rounds,
        ),
    )
    headers = ["benchmark", "policy"] + [f"@{n} invokers" for n in INVOKERS] + [
        f"skew@{INVOKERS[-1]}"
    ]
    rows = []
    for name, result in sweeps.items():
        throughput = result["throughput"]
        skew = result["skew"]
        for policy in POLICIES:
            series = throughput.get(policy)
            rows.append(
                [name, policy]
                + [f"{series.y_at(float(n)):.1f}" for n in INVOKERS]
                + [f"{skew.get(policy).y_at(float(INVOKERS[-1])):.2f}"]
            )
    print()
    print(render_table(
        headers, rows, title="Cluster scaling — aggregate throughput (req/s)"
    ))

    # Shape: under the warmth-aware policies (hash-affinity and warm-aware)
    # a 4-invoker cluster beats the single-invoker baseline outright and
    # never loses throughput by growing.  Load-blind policies are printed
    # for contrast — with cold starts charged to cores they can *lose*
    # throughput by routing to idle invokers whose boots then eat the very
    # cores the requests needed, which is exactly the behaviour
    # warmth-aware routing exists to avoid.
    for warm_policy in ("hash-affinity", "warm-aware"):
        speedups = []
        for name, result in sweeps.items():
            series = result["throughput"].get(warm_policy)
            baseline = series.y_at(1.0)
            assert series.is_nondecreasing, (
                f"{name}: {warm_policy} lost throughput with invokers"
            )
            assert series.y_at(4.0) > baseline, (
                f"{name}: 4 invokers ({series.y_at(4.0):.1f} req/s) did not beat "
                f"the single-invoker baseline ({baseline:.1f} req/s)"
            )
            speedups.append(series.y_at(4.0) / max(baseline, 1e-9))
        median_speedup = sorted(speedups)[len(speedups) // 2]
        benchmark.extra_info[f"median_4invoker_speedup_{warm_policy}"] = round(
            median_speedup, 2
        )
        assert median_speedup > 1.5

    # Routing skew is reported alongside throughput: with every policy the
    # sweep records max/mean routed per invoker, and a single-invoker
    # cluster is trivially even.
    for name, result in sweeps.items():
        for policy in POLICIES:
            assert result["skew"].get(policy).y_at(1.0) == 1.0

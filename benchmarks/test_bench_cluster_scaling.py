"""Cluster variant of Fig. 7 — aggregate throughput vs invokers × policy.

The paper's scaling experiment (Fig. 7) grows cores within one invoker; this
benchmark grows the number of *invokers* behind the cluster scheduler, under
each scheduling policy, driving the same representative benchmarks with a
multi-action saturating workload (8 copies of the action, so routing has
real choices to make).

Expected shape: aggregate throughput grows with invokers for every policy,
and hash-affinity — which keeps each action on its home invoker's warm
containers — dominates policies that scatter requests onto invokers that
must cold-start containers first.
"""

from __future__ import annotations

from repro.analysis.experiments import run_cluster_scaling
from repro.analysis.tables import render_table
from repro.workloads import representative_benchmarks

INVOKERS = (1, 2, 4)
POLICIES = ("round-robin", "least-loaded", "hash-affinity")
ROUNDS = 4
#: Representative benchmarks with small memory footprints: the cluster runs
#: simulate dozens of cold starts, so the huge Node profiles would dominate
#: harness wall-clock time without changing the scaling shape.
BENCHMARKS = ("md2html (p)", "bicg (c)")


def test_cluster_throughput_scaling_with_invokers(benchmark, bench_once):
    chosen = [
        spec for spec in representative_benchmarks()
        if spec.qualified_name in BENCHMARKS
    ]
    assert len(chosen) == len(BENCHMARKS)
    sweeps = bench_once(
        benchmark,
        lambda: run_cluster_scaling(
            chosen,
            invoker_counts=INVOKERS,
            policies=POLICIES,
            rounds=ROUNDS,
        ),
    )
    headers = ["benchmark", "policy"] + [f"@{n} invokers" for n in INVOKERS]
    rows = []
    for name, sweep in sweeps.items():
        for policy in POLICIES:
            series = sweep.get(policy)
            rows.append([name, policy] + [f"{series.y_at(float(n)):.1f}" for n in INVOKERS])
    print()
    print(render_table(
        headers, rows, title="Cluster scaling — aggregate throughput (req/s)"
    ))

    # Shape: under hash-affinity (the warm-aware policy) a 4-invoker cluster
    # beats the single-invoker baseline outright and never loses throughput
    # by growing.  Load-blind policies are printed for contrast — inside a
    # short window they can *lose* throughput by routing to idle invokers
    # that must cold-start containers first, which is exactly the behaviour
    # home-invoker affinity exists to avoid.
    speedups = []
    for name, sweep in sweeps.items():
        affinity = sweep.get("hash-affinity")
        baseline = affinity.y_at(1.0)
        assert affinity.is_nondecreasing, f"{name}: affinity lost throughput with invokers"
        assert affinity.y_at(4.0) > baseline, (
            f"{name}: 4 invokers ({affinity.y_at(4.0):.1f} req/s) did not beat "
            f"the single-invoker baseline ({baseline:.1f} req/s)"
        )
        speedups.append(affinity.y_at(4.0) / max(baseline, 1e-9))
    median_speedup = sorted(speedups)[len(speedups) // 2]
    benchmark.extra_info["median_4invoker_speedup"] = round(median_speedup, 2)
    assert median_speedup > 1.5

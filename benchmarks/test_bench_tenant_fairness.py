"""Tenant fairness — can an aggressive tenant collapse a polite one?

The request-isolation model is per caller, but before the admission layer
the queueing path was caller-blind: one tenant's burst filled every
bounded per-action FIFO and shed everyone's traffic alike.  This benchmark
drives the three scenarios of :func:`run_tenant_fairness` — the polite
tenant solo, both tenants under FIFO, both under WFQ + per-tenant quotas —
at two quota operating points:

* **Strict quota** (the default, ~1.2x estimated capacity): the aggressive
  tenant is throttled hard enough that queues stay shallow, so the polite
  tenant's goodput *and* p99 latency return to within 10% of its solo run
  while FIFO, on the same offered load, collapses both.
* **Work-conserving quota** (~1.8x estimated capacity): the quota admits
  enough aggressive traffic to keep every core busy, so aggregate
  throughput matches FIFO's saturation throughput within ~5% — and the
  polite tenant's goodput is *still* protected by fair queueing and
  longest-queue-drop displacement, demonstrating that fairness re-divides
  capacity rather than wasting it.

The two points are the ends of the isolation-vs-utilisation frontier the
``tenant_quota_rps`` knob exposes.
"""

from __future__ import annotations

from repro.analysis.experiments import run_tenant_fairness
from repro.analysis.tables import render_table
from repro.workloads import find_benchmark

POLITE = "polite"
AGGRESSIVE = "aggressive"


def _render(title, scenarios):
    rows = []
    for label, scenario in scenarios.items():
        for tenant, outcome in scenario.tenants.items():
            rows.append([
                label,
                tenant,
                f"{outcome.offered_rps:.1f}",
                f"{outcome.achieved_rps:.1f}",
                f"{outcome.goodput_fraction * 100:.0f}%",
                f"{outcome.p50_ms:.1f}" if outcome.p50_ms is not None else "-",
                f"{outcome.p99_ms:.1f}" if outcome.p99_ms is not None else "-",
                str(outcome.rejected),
                str(outcome.throttled),
            ])
    print()
    print(render_table(
        ["scenario", "tenant", "offered", "achieved", "goodput",
         "p50 (ms)", "p99 (ms)", "rejected", "throttled"],
        rows, title=title,
    ))


def test_tenant_fairness_strict_quota(benchmark, bench_once, bench_scale):
    spec = find_benchmark("get-time", "p")
    duration = bench_scale(10.0, 8.0)
    scenarios = bench_once(
        benchmark,
        lambda: run_tenant_fairness(spec, duration_seconds=duration),
    )
    _render("Tenant fairness — strict quota (isolation end)", scenarios)

    solo = scenarios["solo"].outcome(POLITE)
    fifo = scenarios["fifo"]
    wfq = scenarios["wfq+quota"]

    # Caller-blind FIFO: the aggressive burst keeps every bounded queue
    # full, so the polite tenant is shed alongside it — goodput collapses
    # well below the solo run and its tail latency explodes.
    fifo_polite = fifo.outcome(POLITE)
    assert fifo_polite.achieved_rps < 0.75 * solo.achieved_rps, (
        f"FIFO did not collapse the polite tenant "
        f"({fifo_polite.achieved_rps:.1f} vs solo {solo.achieved_rps:.1f} req/s)"
    )
    assert fifo_polite.p99_ms > 3 * solo.p99_ms
    assert fifo_polite.rejected > 0

    # WFQ + quota: the aggressive tenant is visibly capped...
    wfq_aggressive = wfq.outcome(AGGRESSIVE)
    assert wfq_aggressive.throttled > 0
    assert wfq_aggressive.achieved_rps < 0.6 * wfq_aggressive.offered_rps

    # ...while the polite tenant's goodput and p99 return to within 10%
    # of its uncontended solo run (the acceptance bar).
    wfq_polite = wfq.outcome(POLITE)
    assert wfq_polite.achieved_rps >= 0.9 * solo.achieved_rps, (
        f"polite goodput under WFQ+quota ({wfq_polite.achieved_rps:.1f} req/s) "
        f"fell more than 10% below solo ({solo.achieved_rps:.1f} req/s)"
    )
    assert wfq_polite.p99_ms <= 1.1 * solo.p99_ms, (
        f"polite p99 under WFQ+quota ({wfq_polite.p99_ms:.1f} ms) "
        f"inflated more than 10% over solo ({solo.p99_ms:.1f} ms)"
    )
    benchmark.extra_info["polite_p99_ratio_vs_solo"] = round(
        wfq_polite.p99_ms / solo.p99_ms, 3
    )
    benchmark.extra_info["fifo_polite_collapse"] = round(
        fifo_polite.achieved_rps / solo.achieved_rps, 3
    )


def test_tenant_fairness_work_conserving_quota(benchmark, bench_once, bench_scale):
    spec = find_benchmark("get-time", "p")
    duration = bench_scale(10.0, 8.0)
    scenarios = bench_once(
        benchmark,
        lambda: run_tenant_fairness(
            spec, duration_seconds=duration, quota_factor=1.8
        ),
    )
    _render("Tenant fairness — work-conserving quota (utilisation end)", scenarios)

    solo = scenarios["solo"].outcome(POLITE)
    fifo = scenarios["fifo"]
    wfq = scenarios["wfq+quota"]

    # The quota admits enough aggressive traffic to saturate the cluster:
    # aggregate throughput stays within ~5% of caller-blind FIFO.
    assert wfq.aggregate_rps >= 0.95 * fifo.aggregate_rps, (
        f"WFQ+quota aggregate ({wfq.aggregate_rps:.1f} req/s) fell more than "
        f"~5% below FIFO ({fifo.aggregate_rps:.1f} req/s)"
    )

    # The aggressive tenant is still capped (throttled + displaced)...
    assert wfq.outcome(AGGRESSIVE).throttled > 0

    # ...and even at full utilisation the polite tenant's goodput cannot
    # be collapsed: fair queue slots and longest-queue-drop displacement
    # keep its traffic flowing at its solo rate.
    wfq_polite = wfq.outcome(POLITE)
    assert wfq_polite.achieved_rps >= 0.9 * solo.achieved_rps
    assert wfq_polite.achieved_rps > 1.4 * fifo.outcome(POLITE).achieved_rps

    benchmark.extra_info["aggregate_vs_fifo"] = round(
        wfq.aggregate_rps / fifo.aggregate_rps, 3
    )

"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures at a
reduced-but-representative scale, prints the reproduced rows/series (run
pytest with ``-s`` to see them) and attaches the headline values to
``benchmark.extra_info`` so they appear in pytest-benchmark's JSON output.

The heavy lifting happens once per benchmark (``pedantic`` with one round);
the numbers of interest are simulated durations, not wall-clock timings, so
repeating the run would only repeat identical work.

Setting ``REPRO_BENCH_QUICK=1`` shrinks the heavy cluster benchmarks to
smoke-test scale (fewer rounds, shorter virtual durations) via the
``bench_scale`` fixture — the CI smoke job uses this so the perf drivers
stay exercised on every push without paying full benchmark wall-clock time.
"""

from __future__ import annotations

import os
from typing import Callable, TypeVar

import pytest

T = TypeVar("T")

#: True when the harness should run at reduced smoke scale.
BENCH_QUICK = os.environ.get("REPRO_BENCH_QUICK", "").strip().lower() in (
    "1", "true", "yes", "on",
)


def run_once(benchmark, func: Callable[[], object]):
    """Run ``func`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(func, rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def bench_once():
    """Fixture wrapping :func:`run_once` for terser benchmark bodies."""
    return run_once


@pytest.fixture
def bench_scale() -> Callable[[T, T], T]:
    """Pick between the full-scale and smoke-scale value of a knob.

    Usage: ``rounds = bench_scale(4, 2)`` — 4 normally, 2 under
    ``REPRO_BENCH_QUICK=1``.
    """

    def scale(full: T, quick: T) -> T:
        return quick if BENCH_QUICK else full

    return scale

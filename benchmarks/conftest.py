"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures at a
reduced-but-representative scale, prints the reproduced rows/series (run
pytest with ``-s`` to see them) and attaches the headline values to
``benchmark.extra_info`` so they appear in pytest-benchmark's JSON output.

The heavy lifting happens once per benchmark (``pedantic`` with one round);
the numbers of interest are simulated durations, not wall-clock timings, so
repeating the run would only repeat identical work.
"""

from __future__ import annotations

from typing import Callable

import pytest


def run_once(benchmark, func: Callable[[], object]):
    """Run ``func`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(func, rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def bench_once():
    """Fixture wrapping :func:`run_once` for terser benchmark bodies."""
    return run_once

"""SLO control — can the cluster run itself without hand-picked knobs?

PR 3's tenant-fairness benchmark needed an operator to *choose* the quota
(``quota_factor``); PR 2's capacity story relied on an opportunistic
scheduler trick (tail boot-steals at backlog 8).  This benchmark drives
:func:`run_slo_control`'s two closed loops:

* **Quota tuning** — two tenants (one bursty, one polite), *no quota
  configured anywhere*.  Under static knobs (caller-blind FIFO) the burst
  collapses the polite tenant's goodput and tail latency without bound.
  With a declared SLO and the control plane on, the AIMD tuner discovers
  the throttle point by feedback: the polite tenant's p99 lands within
  25% of its uncontended solo run.
* **Capacity planning** — the hash-affinity worst case (every action
  homes on invoker 0) with work stealing on.  The per-invoker reactive
  autoscaler only reacts locally, so relief waits for deep backlogs; the
  CapacityPlanner shifts pre-warmed capacity to idle peers ahead of the
  steals, beating the reactive baseline on warm-hit rate and tail
  latency while keeping aggregate goodput within 5%.
"""

from __future__ import annotations

from repro.analysis.experiments import run_slo_control
from repro.analysis.tables import render_table
from repro.workloads import find_benchmark

POLITE = "polite"
AGGRESSIVE = "aggressive"


def _render_quota(result):
    rows = []
    for label, scenario in result.quota.items():
        for tenant, outcome in scenario.tenants.items():
            rows.append([
                label,
                scenario.admission_policy + ("+control" if scenario.control else ""),
                tenant,
                f"{outcome.offered_rps:.1f}",
                f"{outcome.achieved_rps:.1f}",
                f"{outcome.goodput_fraction * 100:.0f}%",
                f"{outcome.p99_ms:.1f}" if outcome.p99_ms is not None else "-",
                str(outcome.rejected),
                str(outcome.throttled),
            ])
    print()
    print(render_table(
        ["scenario", "admission", "tenant", "offered", "achieved", "goodput",
         "p99 (ms)", "rejected", "throttled"],
        rows,
        title=(
            "SLO quota control — declared polite p99 target "
            f"{result.polite_slo_p99_ms:.1f} ms, no hand-set quotas"
        ),
    ))


def _render_capacity(result):
    rows = [
        [
            outcome.label,
            f"{outcome.offered_rps:.1f}",
            f"{outcome.achieved_rps:.1f}",
            f"{outcome.goodput_fraction * 100:.0f}%",
            f"{outcome.warm_hit_rate * 100:.2f}%",
            str(outcome.cold_starts),
            str(outcome.steals),
            str(outcome.prewarms),
            str(outcome.drains),
            f"{outcome.p95_ms:.1f}" if outcome.p95_ms is not None else "-",
        ]
        for outcome in result.capacity.values()
    ]
    print()
    print(render_table(
        ["regime", "offered", "achieved", "goodput", "warm hits",
         "cold starts", "steals", "prewarms", "drains", "p95 (ms)"],
        rows,
        title="Capacity planning — hash-affinity colliding homes, stealing on",
    ))


def test_slo_quota_tuning_protects_the_polite_tenant(benchmark, bench_once, bench_scale):
    spec = find_benchmark("get-time", "p")
    duration = bench_scale(12.0, 10.0)
    result = bench_once(
        benchmark,
        lambda: run_slo_control(
            spec, parts=("quota",),
            duration_seconds=duration, warmup_seconds=duration - 7.0,
        ),
    )
    _render_quota(result)

    solo = result.quota["solo"].outcome(POLITE)
    static = result.quota["static"]
    controlled = result.quota["controlled"]

    # Static knobs: the burst degrades the polite tenant without bound —
    # goodput collapses and the tail explodes.
    static_polite = static.outcome(POLITE)
    assert static_polite.achieved_rps < 0.75 * solo.achieved_rps, (
        f"static knobs did not collapse the polite tenant "
        f"({static_polite.achieved_rps:.1f} vs solo {solo.achieved_rps:.1f} req/s)"
    )
    assert static_polite.p99_ms > 2.0 * solo.p99_ms

    # Control plane: no quota was configured anywhere, yet the polite
    # tenant's p99 lands within 25% of its solo run (the acceptance bar)
    # at full goodput.
    controlled_polite = controlled.outcome(POLITE)
    assert controlled_polite.p99_ms <= 1.25 * solo.p99_ms, (
        f"controlled polite p99 ({controlled_polite.p99_ms:.1f} ms) is not "
        f"within 25% of solo ({solo.p99_ms:.1f} ms)"
    )
    assert controlled_polite.achieved_rps >= 0.9 * solo.achieved_rps

    # The win is the loop's doing: it cut the bursty tenant's admission
    # rate by feedback (visible as throttles) rather than configuration.
    assert controlled.control_stats["rate_cuts"] >= 1
    assert controlled.outcome(AGGRESSIVE).throttled > 0

    benchmark.extra_info["controlled_p99_ratio_vs_solo"] = round(
        controlled_polite.p99_ms / solo.p99_ms, 3
    )
    benchmark.extra_info["static_p99_ratio_vs_solo"] = round(
        static_polite.p99_ms / solo.p99_ms, 3
    )
    benchmark.extra_info["rate_cuts"] = controlled.control_stats["rate_cuts"]


def test_capacity_planner_beats_reactive_autoscaling(benchmark, bench_once, bench_scale):
    spec = find_benchmark("md2html", "p")
    duration = bench_scale(8.0, 6.0)
    result = bench_once(
        benchmark,
        lambda: run_slo_control(
            spec, parts=("capacity",),
            capacity_duration_seconds=duration,
            capacity_warmup_seconds=2.5,
        ),
    )
    _render_capacity(result)

    reactive = result.capacity["reactive"]
    planned = result.capacity["planned"]

    # The planner shifted real capacity: containers were seeded on peers
    # ahead of the steals that used them.
    assert planned.prewarms > 0
    assert len(planned.migrations) > 0

    # Seeded peers serve steals warm, so the planned run wins on warm-hit
    # rate under the honest accounting (a boot only counts against a
    # request that actually waited on it)...
    assert planned.warm_hit_rate > reactive.warm_hit_rate, (
        f"planned warm-hit rate ({planned.warm_hit_rate:.4f}) did not beat "
        f"reactive ({reactive.warm_hit_rate:.4f})"
    )

    # ...and on tail latency, without giving up aggregate goodput (the
    # acceptance bar: within 5%).
    assert planned.achieved_rps >= 0.95 * reactive.achieved_rps, (
        f"planned goodput ({planned.achieved_rps:.1f} req/s) fell more than "
        f"5% below reactive ({reactive.achieved_rps:.1f} req/s)"
    )
    assert planned.p95_ms < 0.7 * reactive.p95_ms, (
        f"planned p95 ({planned.p95_ms:.1f} ms) is not clearly below "
        f"reactive ({reactive.p95_ms:.1f} ms)"
    )

    benchmark.extra_info["warm_hit_gain"] = round(
        planned.warm_hit_rate - reactive.warm_hit_rate, 4
    )
    benchmark.extra_info["p95_ratio"] = round(planned.p95_ms / reactive.p95_ms, 3)
    benchmark.extra_info["migrations"] = len(planned.migrations)

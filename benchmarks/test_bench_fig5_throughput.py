"""Fig. 5 — relative throughput for all 58 benchmarks.

Regenerates the saturated-throughput comparison of GH-NOP, GH and FORK
against BASE on a 4-core / 4-container deployment, plus the headline
throughput-reduction distribution (paper: median 2.5 %, 95p 49.6 %).
"""

from __future__ import annotations

from repro.analysis.experiments import headline_summary, run_latency_suite, run_throughput_suite
from repro.analysis.report import throughput_table
from repro.analysis.stats import summarize_overheads
from repro.workloads import all_benchmarks

ROUNDS = 5
SMOKE_ROUNDS = 2


def test_fig5_relative_throughput_all_benchmarks(benchmark, bench_once, bench_scale):
    rounds = bench_scale(ROUNDS, SMOKE_ROUNDS)
    result = bench_once(
        benchmark,
        lambda: run_throughput_suite(all_benchmarks(), rounds=rounds),
    )
    print()
    print(throughput_table(result))

    ratios = result.relative_throughput("gh")
    reductions = [(1.0 - ratio) * 100.0 for ratio in ratios.values()]
    summary = summarize_overheads(reductions)
    print()
    print(summary.describe("GH throughput reduction"))

    benchmark.extra_info["gh_throughput_reduction_median_pct"] = round(summary.median_percent, 2)
    benchmark.extra_info["gh_throughput_reduction_p95_pct"] = round(summary.p95_percent, 2)

    # Shape: most benchmarks lose little throughput under GH; the heaviest
    # Node.js functions lose the most (the paper's 95th percentile is ~50 %).
    assert summary.median_percent < 15.0
    assert summary.maximum_percent < 95.0
    node_ratios = [ratio for name, ratio in ratios.items() if name.endswith("(n)")]
    other_ratios = [ratio for name, ratio in ratios.items() if not name.endswith("(n)")]
    assert min(node_ratios) < min(other_ratios) + 0.05

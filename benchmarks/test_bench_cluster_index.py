"""The cluster-scale routing baseline — indexed vs scan, bit-identical.

:func:`run_cluster_scale` replays the same warm-aware + work-stealing
diurnal trace once per routing implementation per sweep point.  The two
implementations make exactly the same decisions (same invoker per
invocation, same steals, same cold starts — the scan is the correctness
oracle for the :class:`~repro.faas.index.ClusterIndex`), so the
wall-clock gap is purely the cost of the per-request O(invokers ×
actions) scans the index replaces with O(log N) queries.

The committed full-scale numbers live under the ``cluster_scale`` key of
``BENCH_perf.json`` (regenerate with ``python -m repro.cli perf-trace
--shape cluster-scale``); CI replays the first sweep point at quick
scale on every push and fails if indexed throughput regresses by more
than 25 % or any bit-identity cross-check breaks (see
``scripts/check_perf_regression.py``).

By default this benchmark runs the first sweep point (16 invokers x 128
actions) at reduced arrivals; the full sweep — including the 32x256
acceptance point whose indexed speedup must clear 3x — belongs to the
CLI's tracked baseline.  Set ``REPRO_BENCH_FULL=1`` to run the 32x256
point here and assert the 3x claim directly.
"""

from __future__ import annotations

import os

from repro.analysis.experiments import run_cluster_scale
from repro.analysis.tables import render_table

#: Full-scale acceptance point on request only; see the module docstring.
BENCH_FULL = os.environ.get("REPRO_BENCH_FULL", "").strip().lower() in (
    "1", "true", "yes", "on",
)


def _render(report):
    rows = []
    for key, point in report["points"].items():
        for run in point["routing"].values():
            rows.append([
                key,
                run["routing"],
                f"{run['arrivals']:,}",
                f"{run['wall_seconds']:.1f}",
                f"{run['invocations_per_second']:,.0f}",
                str(run["steals"]),
                str(run["cold_starts"]),
                f"{run['goodput_fraction'] * 100:.1f}%",
            ])
    speedups = ", ".join(
        f"{key} {point['speedup_indexed_vs_scan']:.2f}x"
        for key, point in report["points"].items()
    )
    print()
    print(render_table(
        ["point", "routing", "arrivals", "wall (s)", "inv/s",
         "steals", "cold starts", "goodput"],
        rows,
        title=(
            f"Cluster-scale routing — "
            f"{report['invocations_requested']:,} requested invocations "
            f"per point, indexed speedup: {speedups}"
        ),
    ))


def test_indexed_routing_is_faster_and_bit_identical(
    benchmark, bench_once, bench_scale
):
    point = (32, 256) if BENCH_FULL else (16, 128)
    invocations = 30_000 if BENCH_FULL else bench_scale(10_000, 5_000)
    report = bench_once(
        benchmark,
        lambda: run_cluster_scale(invocations=invocations, points=[point]),
    )
    _render(report)

    key = f"{point[0]}x{point[1]}"
    result = report["points"][key]
    indexed = result["routing"]["indexed"]
    scan = result["routing"]["scan"]

    # Bit-identity first: both routings simulated the *same* cluster
    # doing the same work.  A fast router that routes differently is a
    # correctness bug, not a speedup.
    assert result["equal_goodput"], (scan["goodput_fraction"],
                                     indexed["goodput_fraction"])
    assert result["equal_cold_starts"], (scan["cold_starts"],
                                         indexed["cold_starts"])
    assert result["equal_steals"], (scan["steals"], indexed["steals"])
    assert result["equal_routing"]
    assert result["equal_p99"]
    assert indexed["arrivals"] == scan["arrivals"] >= invocations
    # The shape genuinely exercises the steal machinery.
    assert indexed["steals"] > 0

    # The perf claim.  The 32x256 acceptance point clears 3x; smaller
    # quick points have proportionally less scan work to remove, so
    # their floor is deliberately conservative.
    floor = 3.0 if BENCH_FULL else 1.2
    assert result["speedup_indexed_vs_scan"] >= floor, result[
        "speedup_indexed_vs_scan"
    ]

    benchmark.extra_info.update(
        point=key,
        speedup=result["speedup_indexed_vs_scan"],
        indexed_inv_per_s=indexed["invocations_per_second"],
        scan_inv_per_s=scan["invocations_per_second"],
        steals=indexed["steals"],
    )

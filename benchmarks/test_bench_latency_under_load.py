"""Latency under open-loop load — scheduling strategies × offered load.

An open-loop (Poisson) client issues arrivals independently of completions,
so a routing strategy that wastes core time on avoidable cold starts falls
behind *visibly*: achieved throughput flattens below the offered load and
queueing inflates the latency percentiles.  Cold starts are charged to
cores (a booting container occupies one for its whole initialisation), so
this benchmark is where the scheduling refactor pays off or doesn't.

Two scenarios:

* **Balanced homes** — 8 actions whose home invokers spread across the
  cluster.  Expected shape: ``warm-aware`` + work stealing dominates pure
  ``least-loaded`` (which scatters requests onto cold invokers and pays
  for the boot storm) at every offered load, and matches
  ``hash-affinity`` (whose home placement is optimal here).
* **Colliding homes** — 8 actions deliberately named so every home hashes
  to invoker 0, the hash-affinity worst case.  Expected shape: affinity
  funnels the whole load into one invoker and collapses, while
  ``warm-aware`` + stealing spreads the overflow and keeps goodput near
  1.0 — matching affinity's warmth economics *without* its skew collapse.
"""

from __future__ import annotations

from repro.analysis.experiments import (
    LOAD_STRATEGIES,
    colliding_action_names,
    estimate_cluster_capacity_rps,
    measure_latency_under_load,
    strategy_label,
)
from repro.analysis.tables import render_table
from repro.workloads import find_benchmark

INVOKERS = 4
CORES = 2
ACTIONS = 8


def _sweep(spec, factors, duration, action_names=None):
    capacity = estimate_cluster_capacity_rps(spec, invokers=INVOKERS, cores=CORES)
    points = {}
    for policy, stealing in LOAD_STRATEGIES:
        label = strategy_label(policy, stealing)
        points[label] = [
            measure_latency_under_load(
                spec, "gh",
                offered_rps=capacity * factor,
                policy=policy, work_stealing=stealing,
                invokers=INVOKERS, cores=CORES, actions=ACTIONS,
                duration_seconds=duration,
                action_names=action_names,
            )
            for factor in factors
        ]
    return points


def _render(title, points):
    rows = []
    for label, series in points.items():
        for point in series:
            rows.append([
                label,
                f"{point.offered_rps:.1f}",
                f"{point.achieved_rps:.1f}",
                f"{point.goodput_fraction * 100:.0f}%",
                f"{point.p95_ms:.0f}" if point.p95_ms is not None else "-",
                str(point.cold_starts),
                str(point.steals),
                f"{point.routing_skew:.2f}",
            ])
    print()
    print(render_table(
        ["strategy", "offered", "achieved", "goodput", "p95 (ms)",
         "cold starts", "steals", "skew"],
        rows, title=title,
    ))


def test_latency_under_load_balanced_homes(benchmark, bench_once, bench_scale):
    spec = find_benchmark("md2html", "p")
    factors = bench_scale((0.5, 1.0, 1.2), (1.0,))
    duration = bench_scale(4.0, 2.0)
    points = bench_once(benchmark, lambda: _sweep(spec, factors, duration))
    _render("Latency under open-loop load — balanced homes", points)

    # warm-aware + stealing dominates pure least-loaded: it pays for boots
    # only when a warm backlog outweighs one, while least-loaded's scatter
    # burns core time on cold starts the open-loop arrivals do not wait
    # for.  Below saturation both policies complete (nearly) every arrival,
    # so throughput there is boundary noise — the signal is the boot bill
    # and the tail latency; at and beyond capacity the wasted boot time
    # shows up as strictly lower sustained throughput.
    for factor, warm, blind in zip(
        factors, points["warm-aware+steal"], points["least-loaded"]
    ):
        assert warm.offered_rps == blind.offered_rps
        if factor >= 1.0:
            assert warm.achieved_rps > blind.achieved_rps, (
                f"warm-aware+steal ({warm.achieved_rps:.1f} req/s) did not beat "
                f"least-loaded ({blind.achieved_rps:.1f} req/s) at offered "
                f"{warm.offered_rps:.1f} req/s"
            )
        else:
            assert warm.achieved_rps > 0.9 * blind.achieved_rps
            assert warm.p95_ms is not None and blind.p95_ms is not None
            assert warm.p95_ms < 0.5 * blind.p95_ms, (
                f"warm-aware+steal p95 ({warm.p95_ms:.0f} ms) is not clearly "
                f"below least-loaded's ({blind.p95_ms:.0f} ms) at "
                f"sub-saturation load"
            )
        assert warm.cold_starts < blind.cold_starts

    # ... and matches hash-affinity, whose home placement is optimal here.
    for warm, affinity in zip(points["warm-aware+steal"], points["hash-affinity"]):
        assert warm.achieved_rps >= affinity.achieved_rps * 0.9

    top = points["warm-aware+steal"][-1]
    benchmark.extra_info["warm_aware_goodput_at_capacity"] = round(
        top.goodput_fraction, 2
    )


def test_latency_under_load_colliding_homes(benchmark, bench_once, bench_scale):
    spec = find_benchmark("md2html", "p")
    names = colliding_action_names(ACTIONS, invokers=INVOKERS)
    factors = bench_scale((0.6,), (0.6,))
    duration = bench_scale(4.0, 2.0)
    points = bench_once(
        benchmark, lambda: _sweep(spec, factors, duration, action_names=names)
    )
    _render("Latency under open-loop load — colliding homes (affinity worst case)", points)

    warm = points["warm-aware+steal"][-1]
    affinity = points["hash-affinity"][-1]
    blind = points["least-loaded"][-1]

    # Hash affinity funnels everything into the one home invoker: routing
    # skew is the full invoker count and achieved throughput collapses
    # well below the offered load.
    assert affinity.routing_skew == float(INVOKERS)
    assert affinity.goodput_fraction < 0.75

    # warm-aware + stealing spreads the overflow: near-unity goodput, much
    # lower skew, and strictly more throughput than either alternative.
    assert warm.goodput_fraction > 0.9
    assert warm.routing_skew < 2.5
    assert warm.achieved_rps > affinity.achieved_rps * 1.2
    assert warm.achieved_rps > blind.achieved_rps
    benchmark.extra_info["collapse_rescue_ratio"] = round(
        warm.achieved_rps / max(affinity.achieved_rps, 1e-9), 2
    )

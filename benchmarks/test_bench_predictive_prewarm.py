"""Forecast-driven pre-warming — can the planner beat the diurnal edge?

The reactive :class:`~repro.faas.controlplane.planner.CapacityPlanner`
seeds capacity only once backlog is *observed*, so under the diurnal
cycle of ``azure_diurnal_arrivals`` every rising edge pays a cold-start
storm before relief lands (the keep-alive reclaimed last peak's capacity
during the trough).  The :class:`~repro.faas.controlplane.forecast.
PredictivePlanner` instead pre-warms toward ``forecast(now + boot_time)``
— per-action arrival-rate forecasts (EWMA + Holt trend + seasonal
buckets fitted online across cycles) — so containers finish booting as
the predicted wave arrives.

This benchmark drives :func:`run_slo_control`'s ``forecast`` part: both
regimes replay the *identical* diurnal trace under the *same* global
container budget; only the planner kind differs.  The predictive planner
must cut the rising-edge cold-start count and the p99 without giving up
goodput.
"""

from __future__ import annotations

from repro.analysis.experiments import run_slo_control
from repro.analysis.tables import render_table
from repro.workloads import find_benchmark


def _render(result):
    rows = [
        [
            outcome.label,
            f"{outcome.offered_rps:.1f}",
            f"{outcome.achieved_rps:.1f}",
            f"{outcome.goodput_fraction * 100:.0f}%",
            str(outcome.cold_starts),
            str(outcome.rising_cold_starts),
            str(outcome.cold_dispatches),
            str(outcome.rising_cold_dispatches),
            str(outcome.prewarms),
            f"{outcome.p99_ms:.1f}" if outcome.p99_ms is not None else "-",
        ]
        for outcome in result.forecast.values()
    ]
    print()
    print(render_table(
        ["planner", "offered", "achieved", "goodput", "cold starts",
         "rising cs", "cold disp", "rising cd", "prewarms", "p99 (ms)"],
        rows,
        title=(
            "Forecast-driven pre-warming — diurnal arrivals, equal budget "
            f"({len(result.forecast['reactive'].rising_windows)} rising-edge "
            "windows measured)"
        ),
    ))


def test_predictive_prewarm_beats_reactive_at_the_rising_edge(
    benchmark, bench_once, bench_scale
):
    spec = find_benchmark("md2html", "p")
    duration = bench_scale(15.0, 9.0)
    result = bench_once(
        benchmark,
        lambda: run_slo_control(
            spec, parts=("forecast",),
            forecast_duration_seconds=duration,
        ),
    )
    _render(result)

    reactive = result.forecast["reactive"]
    predictive = result.forecast["predictive"]

    # The comparison is honest: same trace, same global container budget.
    assert predictive.budget == reactive.budget
    assert predictive.offered_rps == reactive.offered_rps

    # The predictive planner actually planned ahead: forecast-attributed
    # seeds happened, and far more capacity was pre-warmed proactively
    # than the backlog-driven baseline managed.
    assert predictive.control_stats["predictive_seeds"] > 0
    assert predictive.prewarms > reactive.prewarms

    # The headline: cold starts at the diurnal rising edge drop strictly —
    # the seeds were already booting when the wave arrived...
    assert predictive.rising_cold_starts < reactive.rising_cold_starts, (
        f"predictive rising-edge cold starts ({predictive.rising_cold_starts}) "
        f"did not drop below reactive ({reactive.rising_cold_starts})"
    )
    if bench_scale(True, False):
        # ...and so do the requests that actually waited on a boot there
        # (the counts are too small to compare strictly at smoke scale).
        assert (
            predictive.rising_cold_dispatches < reactive.rising_cold_dispatches
        ), (
            f"predictive rising-edge cold dispatches "
            f"({predictive.rising_cold_dispatches}) did not drop below "
            f"reactive ({reactive.rising_cold_dispatches})"
        )
    assert predictive.cold_dispatches <= reactive.cold_dispatches

    # ...which shows up where it matters: the tail. And the win is not
    # bought with goodput (acceptance bar: within 5%).
    assert predictive.p99_ms < reactive.p99_ms, (
        f"predictive p99 ({predictive.p99_ms:.1f} ms) is not below "
        f"reactive ({reactive.p99_ms:.1f} ms)"
    )
    assert predictive.achieved_rps >= 0.95 * reactive.achieved_rps

    benchmark.extra_info["p99_ratio"] = round(
        predictive.p99_ms / reactive.p99_ms, 3
    )
    benchmark.extra_info["rising_cold_starts"] = (
        f"{predictive.rising_cold_starts} vs {reactive.rising_cold_starts}"
    )
    benchmark.extra_info["predictive_seeds"] = (
        predictive.control_stats["predictive_seeds"]
    )

"""Fig. 1 — the Groundhog container life cycle.

Regenerates the phase durations of one container: environment
instantiation (100s of ms), runtime initialisation, data initialisation
(the dummy warm-up), the one-time snapshot, per-request function processing
and the between-requests Groundhog restoration (milliseconds).
"""

from __future__ import annotations

from repro.analysis.experiments import run_lifecycle
from repro.analysis.tables import render_table
from repro.workloads import find_benchmark


def test_fig1_container_lifecycle(benchmark, bench_once):
    phases = bench_once(benchmark, lambda: run_lifecycle(find_benchmark("md2html", "p").profile))

    rows = [[name, f"{seconds * 1000:.2f}"] for name, seconds in phases.items()]
    print()
    print(render_table(["phase", "duration (ms)"], rows, title="Fig. 1 — container life cycle"))

    benchmark.extra_info.update({k: round(v * 1000, 3) for k, v in phases.items()})
    # The shape the figure conveys: initialisation dwarfs restoration.
    assert phases["environment_instantiation_seconds"] > 0.1
    assert phases["gh_restoration_seconds"] < 0.05

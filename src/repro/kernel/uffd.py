"""userfaultfd-style write-protection tracking (the §4.3 ablation).

The paper prototyped an alternative write-set tracker based on Linux's
userfaultfd write-protect mode and found it significantly slower than
soft-dirty bits because every first write to a page context-switches to a
user-space fault handler.  It only broke even when almost nothing was
dirtied.  :class:`UffdTracker` reproduces that trade-off: it arms
write-protection on every resident page and collects the written pages in a
user-space list, with the (higher) per-fault cost charged to the function's
critical path by the address space.
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.mem.address_space import AddressSpace


class UffdTracker:
    """Track the write set of a process using write-protection faults."""

    def __init__(self, address_space: AddressSpace) -> None:
        self._space = address_space
        self._written: List[int] = []
        self._armed = False

    @property
    def armed(self) -> bool:
        """True while write-protection is registered."""
        return self._armed

    @property
    def written_pages(self) -> List[int]:
        """Pages written since the tracker was last armed (fault order)."""
        return list(self._written)

    def arm(self) -> int:
        """Write-protect every resident page; returns how many were protected.

        Unlike the soft-dirty approach there is a real per-page registration
        cost here, but it is small compared to the per-fault cost, so the
        model folds it into the arm step's return value only.
        """
        self._written.clear()
        protected = self._space.arm_write_protection(self._on_write_fault)
        self._armed = True
        return protected

    def disarm(self) -> None:
        """Remove write protection and stop collecting faults."""
        self._space.disarm_write_protection()
        self._armed = False

    def collect(self) -> Set[int]:
        """Return the set of pages written since :meth:`arm` was called.

        No scan is needed (the handler already collected the pages): this is
        the one advantage UFFD has over soft-dirty bits, and why the paper
        found it marginally faster only when the write set was nearly empty.
        """
        return set(self._written)

    def _on_write_fault(self, page_number: int) -> None:
        self._written.append(page_number)

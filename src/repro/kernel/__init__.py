"""Kernel facade: process table, fault accounting, userfaultfd tracking."""

from repro.kernel.kernel import SimKernel
from repro.kernel.faults import FaultKind, FaultRecord
from repro.kernel.uffd import UffdTracker

__all__ = ["SimKernel", "FaultKind", "FaultRecord", "UffdTracker"]

"""Fault taxonomy used in accounting and reports.

The address space charges faults directly to its
:class:`~repro.mem.address_space.MemoryMeter`; this module provides the
descriptive layer used when reporting *why* a configuration is slower on the
critical path (e.g. Table 3's ``#faults`` column and the Fig. 3 discussion
of soft-dirty vs copy-on-write fault costs).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.mem.address_space import MeterSnapshot
from repro.sim.costs import CostModel


class FaultKind(enum.Enum):
    """Kinds of page faults charged to the function's critical path."""

    MINOR = "minor"
    SOFT_DIRTY = "soft-dirty"
    COW = "copy-on-write"
    UFFD = "userfaultfd"
    FIRST_TOUCH = "fork-first-touch"


@dataclass(frozen=True)
class FaultRecord:
    """Aggregate fault counts attributable to one invocation."""

    minor: int = 0
    soft_dirty: int = 0
    cow: int = 0
    uffd: int = 0
    first_touch: int = 0

    @classmethod
    def from_meter(cls, delta: MeterSnapshot) -> "FaultRecord":
        """Build a record from a meter delta."""
        return cls(
            minor=delta.minor_faults,
            soft_dirty=delta.soft_dirty_faults,
            cow=delta.cow_faults,
            uffd=delta.uffd_faults,
            first_touch=delta.first_touch_faults,
        )

    @property
    def total(self) -> int:
        """All faults of any kind."""
        return self.minor + self.soft_dirty + self.cow + self.uffd + self.first_touch

    def cost_seconds(self, cost_model: CostModel) -> float:
        """Total critical-path cost these faults imply under ``cost_model``."""
        return (
            self.minor * cost_model.minor_fault_seconds
            + self.soft_dirty * cost_model.soft_dirty_fault_seconds
            + self.cow * cost_model.cow_fault_seconds
            + self.uffd * cost_model.uffd_fault_seconds
            + self.first_touch * cost_model.fork_first_touch_seconds
        )

    def breakdown(self) -> dict:
        """Return counts keyed by :class:`FaultKind` value."""
        return {
            FaultKind.MINOR.value: self.minor,
            FaultKind.SOFT_DIRTY.value: self.soft_dirty,
            FaultKind.COW.value: self.cow,
            FaultKind.UFFD.value: self.uffd,
            FaultKind.FIRST_TOUCH.value: self.first_touch,
        }

"""Simulated kernel facade: process table and global accounting.

The :class:`SimKernel` owns the processes of one invoker host.  It hands out
pids, tracks which processes exist (so ``/proc`` accesses to dead processes
fail the way they should), and exposes aggregate statistics that tests and
experiments use to sanity-check the simulation (e.g. that the BASE
configuration never pays a soft-dirty fault).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import NoSuchProcessError
from repro.kernel.faults import FaultRecord
from repro.proc.forkexec import ForkResult, fork_process
from repro.proc.process import SimProcess
from repro.proc.procfs import ProcFs
from repro.proc.ptrace import Ptrace
from repro.sim.costs import CostModel, DEFAULT_COST_MODEL


@dataclass
class KernelStats:
    """Aggregate counters across all processes ever hosted."""

    processes_created: int = 0
    processes_exited: int = 0
    forks: int = 0

    def snapshot(self) -> "KernelStats":
        """Return a copy of the current counters."""
        return KernelStats(
            processes_created=self.processes_created,
            processes_exited=self.processes_exited,
            forks=self.forks,
        )


class SimKernel:
    """The kernel of one simulated invoker host."""

    def __init__(self, cost_model: Optional[CostModel] = None) -> None:
        self.cost_model = cost_model if cost_model is not None else DEFAULT_COST_MODEL
        self._processes: Dict[int, SimProcess] = {}
        self.stats = KernelStats()

    # ------------------------------------------------------------------
    # Process management
    # ------------------------------------------------------------------

    def create_process(self, name: str, uid: int = 0) -> SimProcess:
        """Create a new process in the CREATED state."""
        process = SimProcess(name=name, cost_model=self.cost_model, uid=uid)
        self._processes[process.pid] = process
        self.stats.processes_created += 1
        return process

    def adopt(self, process: SimProcess) -> SimProcess:
        """Register an externally created process (e.g. a forked child)."""
        self._processes[process.pid] = process
        self.stats.processes_created += 1
        return process

    def fork(self, parent: SimProcess, *, require_single_threaded: bool = True) -> ForkResult:
        """Fork ``parent`` and register the child."""
        result = fork_process(parent, require_single_threaded=require_single_threaded)
        self._processes[result.child.pid] = result.child
        self.stats.forks += 1
        self.stats.processes_created += 1
        return result

    def reap(self, process: SimProcess, exit_code: int = 0) -> None:
        """Terminate and remove a process."""
        if process.pid not in self._processes:
            raise NoSuchProcessError(process.pid)
        if process.is_alive:
            process.exit(exit_code)
        del self._processes[process.pid]
        self.stats.processes_exited += 1

    def process(self, pid: int) -> SimProcess:
        """Look up a process by pid."""
        if pid not in self._processes:
            raise NoSuchProcessError(pid)
        return self._processes[pid]

    @property
    def processes(self) -> List[SimProcess]:
        """All registered processes."""
        return list(self._processes.values())

    @property
    def num_processes(self) -> int:
        """Number of registered processes."""
        return len(self._processes)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    def procfs(self, process: SimProcess) -> ProcFs:
        """Return a ``/proc`` view of ``process``."""
        if process.pid not in self._processes:
            raise NoSuchProcessError(process.pid)
        return ProcFs(process)

    def ptrace(self, process: SimProcess) -> Ptrace:
        """Return a ptrace session for ``process``."""
        if process.pid not in self._processes:
            raise NoSuchProcessError(process.pid)
        return Ptrace(process)

    def fault_record(self, process: SimProcess) -> FaultRecord:
        """Return the cumulative faults charged to ``process`` so far."""
        return FaultRecord.from_meter(process.address_space.meter.counters)

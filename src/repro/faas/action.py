"""Deployed actions.

An :class:`ActionSpec` is what a tenant deploys: the function (its profile),
the isolation configuration the platform should run it under, and the dummy
arguments Groundhog uses for its warm-up request (§4.1 — supplied once per
deployed function as part of its configuration).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import PlatformError
from repro.runtime.profiles import FunctionProfile


@dataclass(frozen=True)
class ActionSpec:
    """Deployment descriptor of one function."""

    #: Action name used in invocation requests (defaults to the profile name).
    name: str
    #: The function's workload profile.
    profile: FunctionProfile
    #: Isolation configuration: "base", "gh", "gh-nop", "fork", "faasm", ...
    mechanism: str = "gh"
    #: Extra keyword arguments passed to the mechanism constructor
    #: (e.g. ``{"tracker": "uffd"}`` or ``{"skip_rollback_for_same_caller": True}``).
    mechanism_options: Dict[str, object] = field(default_factory=dict)
    #: Dummy arguments used for the snapshot warm-up request.
    dummy_payload: bytes = b"__warmup__"

    def __post_init__(self) -> None:
        if not self.name:
            raise PlatformError("an action must have a name")

    @classmethod
    def for_profile(
        cls,
        profile: FunctionProfile,
        mechanism: str = "gh",
        *,
        name: Optional[str] = None,
        **mechanism_options: object,
    ) -> "ActionSpec":
        """Convenience constructor naming the action after the profile."""
        return cls(
            name=name or profile.name,
            profile=profile,
            mechanism=mechanism,
            mechanism_options=dict(mechanism_options),
        )

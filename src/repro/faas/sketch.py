"""Streaming latency summaries with bounded memory.

Million-invocation traces cannot afford the exact
:class:`~repro.faas.metrics.MetricsCollector` discipline of retaining
every :class:`~repro.faas.request.Invocation` and re-sorting windows on
each control tick.  This module provides the bounded-memory alternative:

* :class:`StreamingMoments` — one-pass Welford mean/variance plus
  min/max, mergeable with Chan's parallel formula.  Mean, std, min and
  max are *exact* regardless of stream length.
* :class:`QuantileSketch` — a DDSketch-style log-bucketed histogram.
  Each positive sample lands in bucket ``ceil(log_gamma(x))`` with
  ``gamma = (1 + alpha) / (1 - alpha)``, so any reported quantile is the
  geometric midpoint of a bucket that brackets the true same-rank sample
  within **relative value error ``alpha``** (default 0.5%).  Ranks are
  exact — the sketch stores exact counts — so the only approximation is
  the bucket width.  Merging two sketches adds bucket counts and is
  therefore *lossless*: ``merge(a, b)`` equals the sketch of the
  concatenated stream, which is what makes per-bucket time windows and
  multi-process fan-out reductions exact reductions rather than
  re-approximations.
* :class:`LatencySketch` — the pair of the above, reducing to the same
  :class:`~repro.faas.metrics.LatencyStats` surface the exact collector
  produces (exact count/mean/std/min/max, alpha-bounded percentiles).

Everything here is deterministic (pure integer/float arithmetic over
sorted bucket indices — no sampling, no randomised compression) and
picklable, so multi-seed fan-out workers can ship sketches back to the
parent process and merge them bit-identically to a serial run.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (metrics imports us)
    from repro.faas.metrics import LatencyStats

#: Default relative value-error bound for quantile estimates.  0.5%
#: halves the 1% contract the perf benchmark documents, leaving headroom
#: for the bucket-midpoint rounding at the extreme ranks.
DEFAULT_RELATIVE_ACCURACY = 0.005

#: Values at or below this threshold are counted in a dedicated zero
#: bucket rather than log-indexed (log of 0 is undefined; latencies this
#: small are indistinguishable from zero for any reporting purpose).
MIN_TRACKABLE = 1e-12

#: Default cap on the number of log buckets a sketch may hold.  With
#: alpha=0.005 the full range [1e-12, 1e12] spans ~5500 buckets; real
#: latency streams (microseconds to hours) use a few hundred.  On
#: overflow the lowest buckets collapse together, preserving counts and
#: the accuracy of every upper quantile.
DEFAULT_MAX_BINS = 4096


class StreamingMoments:
    """Exact one-pass count/mean/variance/min/max (Welford + Chan merge)."""

    __slots__ = ("count", "mean", "_m2", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def add(self, value: float) -> None:
        """Fold one sample into the running moments."""
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    def merge(self, other: "StreamingMoments") -> None:
        """Fold ``other``'s moments into this one (Chan's formula)."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self.mean = other.mean
            self._m2 = other._m2
            self.minimum = other.minimum
            self.maximum = other.maximum
            return
        total = self.count + other.count
        delta = other.mean - self.mean
        self._m2 += other._m2 + delta * delta * self.count * other.count / total
        self.mean += delta * other.count / total
        self.count = total
        if other.minimum < self.minimum:
            self.minimum = other.minimum
        if other.maximum > self.maximum:
            self.maximum = other.maximum

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StreamingMoments):
            return NotImplemented
        return (
            self.count == other.count
            and self.mean == other.mean
            and self._m2 == other._m2
            and self.minimum == other.minimum
            and self.maximum == other.maximum
        )

    @property
    def variance(self) -> float:
        """Population variance (matches ``LatencyStats``'s ``/ n``)."""
        return self._m2 / self.count if self.count else 0.0

    @property
    def std(self) -> float:
        """Population standard deviation."""
        return math.sqrt(max(0.0, self.variance))


class QuantileSketch:
    """DDSketch-style log-bucketed quantile estimator.

    Guarantee: for any rank ``r`` the reported value lies within relative
    error ``relative_accuracy`` of the sample at a rank adjacent to ``r``
    (ranks are exact; interpolation between neighbouring order statistics
    is replaced by nearest-rank selection).  Bucket counts are exact
    integers, so :meth:`merge` is lossless and deterministic.
    """

    __slots__ = ("relative_accuracy", "_gamma", "_log_gamma", "_zero", "_bins", "max_bins")

    def __init__(
        self,
        relative_accuracy: float = DEFAULT_RELATIVE_ACCURACY,
        max_bins: int = DEFAULT_MAX_BINS,
    ) -> None:
        if not 0.0 < relative_accuracy < 1.0:
            raise ValueError(
                f"relative accuracy must be in (0, 1) (got {relative_accuracy})"
            )
        if max_bins < 2:
            raise ValueError(f"max_bins must be at least 2 (got {max_bins})")
        self.relative_accuracy = relative_accuracy
        self._gamma = (1.0 + relative_accuracy) / (1.0 - relative_accuracy)
        self._log_gamma = math.log(self._gamma)
        self._zero = 0
        self._bins: Dict[int, int] = {}
        self.max_bins = max_bins

    @property
    def count(self) -> int:
        """Total number of samples folded in."""
        return self._zero + sum(self._bins.values())

    def add(self, value: float) -> None:
        """Fold one non-negative sample into the sketch."""
        if math.isnan(value):
            raise ValueError("cannot sketch a NaN sample")
        if value < 0:
            raise ValueError(f"cannot sketch a negative latency ({value})")
        if value <= MIN_TRACKABLE:
            self._zero += 1
            return
        index = math.ceil(math.log(value) / self._log_gamma)
        bins = self._bins
        bins[index] = bins.get(index, 0) + 1
        if len(bins) > self.max_bins:
            self._collapse_lowest()

    def _collapse_lowest(self) -> None:
        """Fold the lowest bucket into its neighbour to stay bounded.

        Collapsing from the bottom preserves the accuracy of every upper
        quantile (p50 and above are what the control plane consumes);
        only extreme low quantiles of pathological ranges degrade.
        """
        ordered = sorted(self._bins)
        lowest, second = ordered[0], ordered[1]
        self._bins[second] += self._bins.pop(lowest)

    def merge(self, other: "QuantileSketch") -> None:
        """Fold ``other``'s buckets into this sketch (lossless)."""
        if other.relative_accuracy != self.relative_accuracy:
            raise ValueError(
                "cannot merge sketches with different relative accuracies "
                f"({self.relative_accuracy} vs {other.relative_accuracy})"
            )
        self._zero += other._zero
        bins = self._bins
        for index, count in other._bins.items():
            bins[index] = bins.get(index, 0) + count
        while len(bins) > self.max_bins:
            self._collapse_lowest()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QuantileSketch):
            return NotImplemented
        return (
            self.relative_accuracy == other.relative_accuracy
            and self.max_bins == other.max_bins
            and self._zero == other._zero
            and self._bins == other._bins
        )

    def _bucket_value(self, index: int) -> float:
        """Representative value for a bucket: its geometric midpoint.

        Every sample in bucket ``i`` lies in ``(gamma^(i-1), gamma^i]``;
        ``2 * gamma^i / (gamma + 1)`` is within ``relative_accuracy`` of
        any point in that interval.
        """
        return 2.0 * self._gamma ** index / (self._gamma + 1.0)

    def quantile(self, pct: float) -> float:
        """Nearest-rank quantile estimate for percentile ``pct`` in [0, 100].

        Uses the same rank convention as
        :func:`repro.faas.metrics.percentile` (``rank = pct/100 * (n-1)``)
        rounded to the nearest order statistic.
        """
        total = self.count
        if total == 0:
            raise ValueError("cannot take a quantile of an empty sketch")
        if pct <= 0:
            rank = 0
        elif pct >= 100:
            rank = total - 1
        else:
            rank = min(total - 1, int((pct / 100.0) * (total - 1) + 0.5))
        if rank < self._zero:
            return 0.0
        cumulative = self._zero
        for index in sorted(self._bins):
            cumulative += self._bins[index]
            if cumulative > rank:
                return self._bucket_value(index)
        # Unreachable: cumulative == total > rank by the guard above.
        raise AssertionError("quantile rank walked past the sketch")  # pragma: no cover


class LatencySketch:
    """Bounded-memory replacement for a list of latency samples.

    Pairs exact streaming moments with an alpha-accurate quantile sketch
    and reduces to the same :class:`~repro.faas.metrics.LatencyStats`
    shape the exact path produces: ``count``/``mean``/``std``/``min``/
    ``max`` are exact, percentiles carry the sketch's documented relative
    value-error bound (and are clamped to the exact [min, max] envelope).
    """

    __slots__ = ("moments", "quantiles")

    def __init__(
        self,
        relative_accuracy: float = DEFAULT_RELATIVE_ACCURACY,
        max_bins: int = DEFAULT_MAX_BINS,
    ) -> None:
        self.moments = StreamingMoments()
        self.quantiles = QuantileSketch(relative_accuracy, max_bins)

    @property
    def count(self) -> int:
        """Number of samples folded in."""
        return self.moments.count

    @property
    def relative_accuracy(self) -> float:
        """The documented relative value-error bound for percentiles."""
        return self.quantiles.relative_accuracy

    def add(self, value: float) -> None:
        """Fold one latency sample (seconds) into the sketch."""
        self.quantiles.add(value)
        self.moments.add(value)

    def extend(self, values: Iterable[float]) -> None:
        """Fold many samples into the sketch."""
        for value in values:
            self.add(value)

    def merge(self, other: "LatencySketch") -> None:
        """Fold another sketch in; equivalent to sketching both streams."""
        self.quantiles.merge(other.quantiles)
        self.moments.merge(other.moments)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LatencySketch):
            return NotImplemented
        return self.moments == other.moments and self.quantiles == other.quantiles

    def _clamped_quantile(self, pct: float) -> float:
        value = self.quantiles.quantile(pct)
        return min(max(value, self.moments.minimum), self.moments.maximum)

    def stats(self) -> "LatencyStats":
        """Reduce to a :class:`~repro.faas.metrics.LatencyStats`."""
        from repro.faas.metrics import LatencyStats

        moments = self.moments
        if moments.count == 0:
            raise ValueError("cannot summarise an empty sample set")
        return LatencyStats(
            count=moments.count,
            mean=moments.mean,
            std=moments.std,
            minimum=moments.minimum,
            p10=self._clamped_quantile(10),
            p25=self._clamped_quantile(25),
            median=self._clamped_quantile(50),
            p75=self._clamped_quantile(75),
            p90=self._clamped_quantile(90),
            p95=self._clamped_quantile(95),
            p99=self._clamped_quantile(99),
            maximum=moments.maximum,
        )


def merged(sketches: Iterable[LatencySketch]) -> Optional[LatencySketch]:
    """Merge an iterable of sketches into a fresh one (``None`` if empty)."""
    result: Optional[LatencySketch] = None
    for sketch in sketches:
        if result is None:
            result = LatencySketch(sketch.relative_accuracy, sketch.quantiles.max_bins)
        result.merge(sketch)
    return result

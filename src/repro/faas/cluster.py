"""The cluster-scale FaaS deployment: N invokers behind one scheduler.

:class:`FaaSCluster` generalises the paper's single-box deployment to the
topology a production platform actually runs: clients talk to a controller,
the controller routes each invocation to one of **N invokers** under a
pluggable scheduling policy, and every invoker autoscales its container
pools (cold starts on demand, keep-alive eviction) within bounded per-action
queues that shed load instead of queueing without limit.

The single-invoker :class:`~repro.faas.platform.FaaSPlatform` the paper's
experiments use is the N=1 special case of this class.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional

from repro.config import SimulationConfig
from repro.errors import ActionNotFoundError, PlatformError
from repro.faas.action import ActionSpec
from repro.faas.admission import ReactiveAutoscaler, TenantQuotas
from repro.faas.controlplane import (
    ControlPlane,
    MigrationDecision,
    PredictivePlanner,
    TenantSLO,
)
from repro.faas.container import Container
from repro.faas.controller import Controller
from repro.faas.invoker import Invoker
from repro.faas.metrics import MetricsCollector
from repro.faas.obs import TraceRecorder
from repro.faas.request import Invocation
from repro.faas.restorecost import restore_seconds_for
from repro.faas.scheduler import (
    Scheduler,
    WarmAwarePolicy,
    create_policy,
    estimated_service_seconds,
)
from repro.sim.costs import CostModel, DEFAULT_COST_MODEL
from repro.sim.events import EventLoop
from repro.sim.rng import RngStreams


class FaaSCluster:
    """An OpenWhisk-like cluster: controller + scheduler + N invokers."""

    #: Effectively-unlimited default quota rate the control plane starts
    #: from: tenants are unthrottled until the tuner assigns them a rate,
    #: so "no hand-set quotas" stays literally true at t=0.
    UNTUNED_QUOTA_RPS = 1e9

    def __init__(
        self,
        config: Optional[SimulationConfig] = None,
        *,
        cost_model: Optional[CostModel] = None,
        verify_isolation: bool = False,
        tenant_slos: Optional[Mapping[str, TenantSLO]] = None,
    ) -> None:
        self.config = config if config is not None else SimulationConfig()
        if tenant_slos and not self.config.control_plane:
            raise PlatformError(
                "tenant_slos declare objectives for the control plane; "
                "enable SimulationConfig.control_plane to enforce them"
            )
        self.cost_model = cost_model if cost_model is not None else DEFAULT_COST_MODEL
        self.rng_streams = RngStreams(self.config.seed)
        self.loop = EventLoop()
        #: One shared quota ledger: a tenant's token bucket is cluster-wide,
        #: not a property of whichever invoker the scheduler routed to.
        #: With the control plane on, the ledger always exists (at the
        #: permissive untuned default) so the quota tuner has a knob to
        #: actuate without any hand-set rate.
        self.quotas: Optional[TenantQuotas] = None
        if self.config.tenant_quota_rps is not None:
            self.quotas = TenantQuotas(
                self.config.tenant_quota_rps,
                burst=self.config.tenant_quota_burst,
            )
        elif self.config.control_plane:
            self.quotas = TenantQuotas(self.UNTUNED_QUOTA_RPS)
        #: The flight recorder (None when ``config.tracing == "off"`` —
        #: the off path carries no recorder object at all, so every
        #: instrumentation site is a single ``is None`` check).
        self.tracer: Optional[TraceRecorder] = (
            TraceRecorder(
                self.config.tracing,
                seed=self.config.seed,
                sample_period=self.config.trace_sample_period,
                capacity=self.config.trace_buffer_size,
            )
            if self.config.tracing != "off"
            else None
        )
        self.invokers: List[Invoker] = [
            Invoker(
                self.loop,
                cores=self.config.cores,
                cost_model=self.cost_model,
                # Invoker 0 keeps the seed deployment's stream name so the
                # N=1 platform reproduces the original runs bit for bit.
                rng=self.rng_streams.stream("invoker" if index == 0 else f"invoker-{index}"),
                verify_isolation=verify_isolation,
                invoker_id=f"invoker-{index}",
                max_queue_per_action=self.config.max_queue_per_action,
                keep_alive_seconds=self.config.keep_alive_seconds,
                admission=self.config.admission_policy,
                quotas=self.quotas,
                restorable_snapshots=self.config.restorable_snapshots,
                snapshot_budget=self.config.snapshot_budget,
                isolation_mechanism=self.config.isolation_mechanism,
                tracer=self.tracer,
            )
            for index in range(self.config.invokers)
        ]
        self.autoscalers: List[ReactiveAutoscaler] = (
            [
                ReactiveAutoscaler(
                    queue_high=self.config.autoscale_queue_high,
                    cooldown_seconds=self.config.autoscale_cooldown_seconds,
                ).attach(invoker)
                for invoker in self.invokers
            ]
            if self.config.autoscale
            else []
        )
        self.scheduler = Scheduler(
            self.invokers,
            create_policy(self.config.scheduler_policy),
            work_stealing=self.config.work_stealing,
            cluster_index=self.config.cluster_index,
        )
        self.controller = Controller(
            self.loop,
            self.scheduler,
            platform_overhead_seconds=self.config.platform_overhead_seconds,
            platform_jitter_seconds=self.config.platform_jitter_seconds,
            rng=self.rng_streams.stream("controller"),
        )
        self.metrics = self._new_collector()
        self.per_action_metrics: Dict[str, MetricsCollector] = {}
        self._specs: Dict[str, ActionSpec] = {}
        #: The SLO-driven control loop (None unless ``config.control_plane``).
        self.control_plane: Optional[ControlPlane] = (
            ControlPlane(
                self,
                slos=tenant_slos,
                interval_seconds=self.config.control_interval_seconds,
                window_seconds=self.config.slo_window_seconds,
                budget=self.config.global_container_budget,
                planner_kind=self.config.planner,
                forecast_period_seconds=self.config.forecast_period_seconds,
                forecast_min_history_seconds=self.config.forecast_min_history_seconds,
                forecast_horizon_margin_seconds=(
                    self.config.forecast_horizon_margin_seconds
                ),
                tracer=self.tracer,
            )
            if self.config.control_plane
            else None
        )

    def _new_collector(self) -> MetricsCollector:
        """A metrics collector shaped by the config's metrics knobs."""
        return MetricsCollector(
            self.config.metrics_mode,
            bucket_seconds=self.config.metrics_bucket_seconds,
            max_buckets=self.config.metrics_max_buckets,
        )

    # ------------------------------------------------------------------
    # Deployment
    # ------------------------------------------------------------------

    def deploy(
        self,
        spec: ActionSpec,
        containers: Optional[int] = None,
        *,
        max_containers: Optional[int] = None,
    ) -> List[Container]:
        """Deploy ``spec`` cluster-wide and return its pre-warmed containers.

        The pre-warmed containers live on the action's home invoker; every
        other invoker registers the action and may cold-start containers on
        demand up to the per-invoker ``max_containers`` ceiling.
        """
        if spec.name in self._specs:
            raise PlatformError(f"action {spec.name!r} is already deployed")
        count = containers if containers is not None else self.config.containers_per_action
        ceiling = max_containers
        if ceiling is None:
            ceiling = self.config.max_containers_per_action
        if ceiling is None:
            ceiling = count
        if ceiling < count:
            raise PlatformError("max_containers must be >= the pre-warmed count")
        deployed = self.scheduler.deploy(spec, containers=count, max_containers=ceiling)
        self._specs[spec.name] = spec
        self.per_action_metrics[spec.name] = self._new_collector()
        # The home invoker just booted the pre-warmed containers, so the
        # measured init time is available; the service-time denominator
        # is the same estimate the load-sizing heuristics use.
        init = deployed[0].init_report if deployed else None
        if (
            init is not None
            and self.config.calibrate_warm_penalty
            and isinstance(self.scheduler.policy, WarmAwarePolicy)
        ):
            # With the spectrum on, also calibrate the snapshot tier: the
            # restore is priced by the same per-mechanism arithmetic the
            # invokers will charge when they actually restore.
            restore = (
                restore_seconds_for(
                    self.config.isolation_mechanism, init, self.cost_model
                )
                if self.config.restorable_snapshots
                else None
            )
            self.scheduler.policy.calibrate(
                spec.name,
                boot_seconds=init.total_seconds,
                service_seconds=estimated_service_seconds(spec.profile),
                restore_seconds=restore,
            )
        if (
            init is not None
            and self.control_plane is not None
            and isinstance(self.control_plane.planner, PredictivePlanner)
        ):
            # The predictive planner forecasts one boot-time ahead per
            # action: the measured init time is its lead, and the same
            # service estimate converts forecast rates into containers.
            self.control_plane.planner.calibrate(
                spec.name,
                boot_seconds=init.total_seconds,
                service_seconds=estimated_service_seconds(spec.profile),
            )
        return deployed

    def containers(self, action: str) -> List[Container]:
        """All containers of a deployed action, across every invoker."""
        self._require_spec(action)
        found: List[Container] = []
        for invoker in self.invokers:
            if invoker.hosts(action):
                found.extend(invoker.pool(action))
        return found

    def action_spec(self, action: str) -> ActionSpec:
        """The deployment descriptor of ``action``."""
        return self._require_spec(action)

    # ------------------------------------------------------------------
    # Invocation
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self.loop.now

    def invoke_async(
        self,
        action: str,
        payload: Optional[bytes] = None,
        *,
        caller: str = "anonymous",
        on_complete: Optional[Callable[[Invocation], None]] = None,
    ) -> Invocation:
        """Submit one request without waiting for it to finish."""
        spec = self._require_spec(action)
        if payload is None:
            payload = b"x" * spec.profile.input_bytes
        invocation = Invocation(
            action=action,
            payload=payload,
            caller=caller,
            submitted_at=self.loop.now,
        )
        if self.tracer is not None:
            invocation.trace = self.tracer.begin_invocation(invocation)

        def record(finished: Invocation) -> None:
            if finished.trace is not None:
                self.tracer.finish_invocation(finished)
            self.metrics.record(finished)
            self.per_action_metrics[action].record(finished)
            if on_complete is not None:
                on_complete(finished)

        if self.control_plane is not None:
            # Work is flowing: make sure the control timer is armed (it
            # stands down on its own once the cluster goes idle).
            self.control_plane.ensure_running()
        self.controller.submit(invocation, record)
        return invocation

    def invoke_sync(
        self,
        action: str,
        payload: Optional[bytes] = None,
        *,
        caller: str = "anonymous",
    ) -> Invocation:
        """Submit one request and run the simulation until it completes."""
        finished: List[Invocation] = []
        invocation = self.invoke_async(
            action, payload, caller=caller, on_complete=finished.append
        )
        guard = 0
        while not finished:
            if not self.loop.step():
                raise PlatformError(
                    f"simulation ran out of events before {invocation.invocation_id} finished"
                )
            guard += 1
            if guard > 1_000_000:
                raise PlatformError("invocation did not complete within the event budget")
        return invocation

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run the event loop (until drained, a time bound, or an event cap)."""
        return self.loop.run(until=until, max_events=max_events)

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------

    def action_metrics(self, action: str) -> MetricsCollector:
        """Per-action metrics collector."""
        if action not in self.per_action_metrics:
            raise PlatformError(f"action {action!r} was never deployed")
        return self.per_action_metrics[action]

    def cluster_stats(self) -> List[Dict[str, object]]:
        """Per-invoker routing/dispatch/warmth counters.

        Rows include the control-plane actuation counters (``prewarmed``
        deploy floors, planner ``prewarms``/``drains``) so capacity shifts
        are visible next to the routing numbers they affect.
        """
        return self.scheduler.stats()

    def set_tenant_weight(self, tenant: str, weight: float) -> int:
        """Set a tenant's WFQ weight on every fair queue, cluster-wide.

        Returns the number of queues updated (0 under FIFO admission).
        """
        return sum(
            invoker.set_tenant_weight(tenant, weight) for invoker in self.invokers
        )

    @property
    def migrations(self) -> List[MigrationDecision]:
        """Capacity movements the control plane's planner actuated."""
        if self.control_plane is None:
            return []
        return self.control_plane.migrations

    def control_plane_stats(self) -> Dict[str, object]:
        """Control-loop counters (empty dict when the plane is disabled)."""
        if self.control_plane is None:
            return {}
        return self.control_plane.stats()

    def trace(self) -> Optional[TraceRecorder]:
        """The flight recorder (None when ``config.tracing == "off"``).

        Mirrors :meth:`control_plane_stats`: an always-callable accessor
        whose emptiness encodes "the subsystem is disabled".  Feed the
        recorder to :func:`repro.faas.obs.export_chrome_trace` or
        :func:`repro.faas.obs.latency_decompose`.
        """
        return self.tracer

    @property
    def warm_hit_rate(self) -> float:
        """Cluster-wide fraction of dispatches served by a warm container."""
        dispatched = sum(inv.invocations_dispatched for inv in self.invokers)
        if dispatched == 0:
            return 0.0
        return sum(inv.warm_hits for inv in self.invokers) / dispatched

    @property
    def steals(self) -> int:
        """Invocations moved between invokers by work stealing."""
        return self.scheduler.steals

    @property
    def throttled(self) -> int:
        """Invocations refused by per-tenant quota enforcement."""
        return sum(inv.invocations_throttled for inv in self.invokers)

    def queued_by_tenant(self) -> Dict[str, int]:
        """Cluster-wide waiting invocations per tenant."""
        return self.scheduler.queued_by_tenant()

    def arrivals_per_action(self) -> Dict[str, int]:
        """Cluster-wide lifetime submissions per action (demand signal)."""
        totals: Dict[str, int] = {}
        for action in self._specs:
            count = sum(
                invoker.arrivals_total(action)
                for invoker in self.invokers
                if invoker.hosts(action)
            )
            if count:
                totals[action] = count
        return totals

    def recent_arrival_times(self, action: str, *, since: float = 0.0) -> List[float]:
        """Recent arrival timestamps of ``action``, merged across invokers.

        Bounded recent history (each invoker keeps a capped per-action
        buffer), chronologically sorted.  An observability/debugging
        surface finer-grained than the cumulative ``arrivals_total``
        counters the forecaster itself consumes.
        """
        self._require_spec(action)
        merged: List[float] = []
        for invoker in self.invokers:
            if invoker.hosts(action):
                merged.extend(invoker.recent_arrival_times(action, since=since))
        merged.sort()
        return merged

    @property
    def routing_skew(self) -> float:
        """Max/mean invocations routed per invoker (1.0 = perfectly even)."""
        return self.scheduler.routing_skew()

    def _require_spec(self, action: str) -> ActionSpec:
        if action not in self._specs:
            raise ActionNotFoundError(action)
        return self._specs[action]

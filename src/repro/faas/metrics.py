"""Latency and throughput metrics.

The paper reports two latencies per benchmark — the end-to-end latency seen
by the client and the invoker latency that excludes the rest of the platform
— plus the peak sustained throughput of a saturated 4-container deployment.
This module collects per-invocation samples and reduces them to the summary
statistics the tables and figures need.

Two collection modes share one surface:

* ``exact`` (the default) retains every finished
  :class:`~repro.faas.request.Invocation` in per-status lists sorted by
  completion time — memory O(run), every statistic exact.  This is the
  right mode for paper-fidelity experiments and tests.
* ``sketch`` folds each invocation into ring-buffered *time-bucket
  sketches* (per status, per tenant) built on
  :mod:`repro.faas.sketch` — memory O(buckets), counts/mean/std/min/max
  exact, percentiles within the sketch's documented relative value-error
  bound.  ``window()``/``by_caller()``/``e2e_stats()``/``throughput()``
  reduce over bucket sketches in O(buckets), so the control plane
  (:class:`~repro.faas.controlplane.slo.SLOMonitor` and everything above
  it) runs unchanged on million-invocation traces.

Sketch-mode windows are quantised to bucket boundaries: ``window(start,
end)`` covers every bucket intersecting the closed interval, which is
*identical* to the exact closed-interval semantics whenever ``start``
falls on a bucket edge and no sample has finished after ``end`` —
precisely the control-loop case (ticks align with ``bucket_seconds``,
and nothing has completed after ``now``).  Raw per-invocation accessors
(``completed``, ``e2e_latencies``, warm-up skipping) are unavailable in
sketch mode and raise :class:`~repro.errors.PlatformError`.
"""

from __future__ import annotations

import bisect
import heapq
import math
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence

from repro.config import METRICS_MODES
from repro.errors import PlatformError
from repro.faas.request import Invocation, InvocationStatus
from repro.faas.sketch import DEFAULT_RELATIVE_ACCURACY, LatencySketch

#: Default sketch-mode time-bucket width.  Matches the control plane's
#: default tick interval so monitor windows align with bucket edges.
DEFAULT_BUCKET_SECONDS = 0.25

#: Default cap on live time buckets before the oldest are folded into the
#: run-lifetime archive (4096 buckets × 0.25 s ≈ 17 simulated minutes of
#: full-resolution history — far more than any control window).
DEFAULT_MAX_BUCKETS = 4096


@dataclass(frozen=True)
class LatencyStats:
    """Summary statistics over a set of latency samples (seconds)."""

    count: int
    mean: float
    std: float
    minimum: float
    p10: float
    p25: float
    median: float
    p75: float
    p90: float
    p95: float
    p99: float
    maximum: float

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "LatencyStats":
        """Compute statistics over ``samples`` (must be non-empty)."""
        if not samples:
            raise ValueError("cannot summarise an empty sample set")
        ordered = sorted(samples)
        n = len(ordered)
        mean = sum(ordered) / n
        variance = sum((x - mean) ** 2 for x in ordered) / n
        return cls(
            count=n,
            mean=mean,
            std=math.sqrt(variance),
            minimum=ordered[0],
            p10=percentile(ordered, 10),
            p25=percentile(ordered, 25),
            median=percentile(ordered, 50),
            p75=percentile(ordered, 75),
            p90=percentile(ordered, 90),
            p95=percentile(ordered, 95),
            p99=percentile(ordered, 99),
            maximum=ordered[-1],
        )

    @property
    def cov(self) -> float:
        """Coefficient of variation (std / mean)."""
        return self.std / self.mean if self.mean else 0.0


def percentile(sorted_samples: Sequence[float], pct: float) -> float:
    """Linear-interpolation percentile over already sorted samples."""
    if not sorted_samples:
        raise ValueError("cannot take a percentile of no samples")
    if len(sorted_samples) == 1:
        return float(sorted_samples[0])
    if pct <= 0:
        return float(sorted_samples[0])
    if pct >= 100:
        return float(sorted_samples[-1])
    rank = (pct / 100.0) * (len(sorted_samples) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return float(sorted_samples[low])
    fraction = rank - low
    value = sorted_samples[low] * (1 - fraction) + sorted_samples[high] * fraction
    # Clamp against floating-point drift so interpolated percentiles never
    # fall outside the bracketing samples (which would break monotonicity).
    return float(min(max(value, sorted_samples[low]), sorted_samples[high]))


def summarize(samples: Iterable[float]) -> LatencyStats:
    """Shorthand for :meth:`LatencyStats.from_samples` over any iterable."""
    return LatencyStats.from_samples(list(samples))


class _SketchSlice:
    """Status counts plus latency sketches for one (bucket, tenant) cell."""

    __slots__ = ("completed", "failed", "rejected", "throttled", "e2e", "invoker")

    def __init__(self, relative_accuracy: float) -> None:
        self.completed = 0
        self.failed = 0
        self.rejected = 0
        self.throttled = 0
        self.e2e = LatencySketch(relative_accuracy)
        self.invoker = LatencySketch(relative_accuracy)

    def record(self, invocation: Invocation) -> None:
        status = invocation.status
        if status is InvocationStatus.COMPLETED:
            self.completed += 1
            self.e2e.add(invocation.e2e_seconds)
            self.invoker.add(invocation.invoker_seconds)
        elif status is InvocationStatus.REJECTED:
            self.rejected += 1
        elif status is InvocationStatus.THROTTLED:
            self.throttled += 1
        else:
            self.failed += 1

    def merge(self, other: "_SketchSlice") -> None:
        self.completed += other.completed
        self.failed += other.failed
        self.rejected += other.rejected
        self.throttled += other.throttled
        self.e2e.merge(other.e2e)
        self.invoker.merge(other.invoker)


class _TimeBucket:
    """One sketch-mode time bucket: a total slice plus per-tenant slices."""

    __slots__ = ("total", "tenants")

    def __init__(self, relative_accuracy: float) -> None:
        self.total = _SketchSlice(relative_accuracy)
        self.tenants: Dict[str, _SketchSlice] = {}

    def record(self, invocation: Invocation, relative_accuracy: float) -> None:
        self.total.record(invocation)
        tenant = self.tenants.get(invocation.caller)
        if tenant is None:
            tenant = self.tenants[invocation.caller] = _SketchSlice(relative_accuracy)
        tenant.record(invocation)

    def merge(self, other: "_TimeBucket", relative_accuracy: float) -> None:
        self.total.merge(other.total)
        for caller, slice_ in other.tenants.items():
            mine = self.tenants.get(caller)
            if mine is None:
                mine = self.tenants[caller] = _SketchSlice(relative_accuracy)
            mine.merge(slice_)


class MetricsCollector:
    """Collects finished invocations and derives latency/throughput.

    ``mode`` selects the storage discipline (see the module docstring);
    ``bucket_seconds``/``max_buckets``/``relative_accuracy`` shape the
    sketch-mode ring buffer and are ignored in exact mode.
    """

    def __init__(
        self,
        mode: str = "exact",
        *,
        bucket_seconds: float = DEFAULT_BUCKET_SECONDS,
        max_buckets: int = DEFAULT_MAX_BUCKETS,
        relative_accuracy: float = DEFAULT_RELATIVE_ACCURACY,
    ) -> None:
        if mode not in METRICS_MODES:
            raise PlatformError(
                f"unknown metrics mode {mode!r}; choose one of {METRICS_MODES}"
            )
        if bucket_seconds <= 0:
            raise PlatformError(
                f"metrics bucket width must be positive (got {bucket_seconds})"
            )
        if max_buckets < 1:
            raise PlatformError(
                f"metrics bucket cap must be at least 1 (got {max_buckets})"
            )
        self.mode = mode
        self.bucket_seconds = bucket_seconds
        self.max_buckets = max_buckets
        self.relative_accuracy = relative_accuracy
        # Exact-mode storage: per-status lists sorted by completed_at.
        self._completed: List[Invocation] = []
        self._failed: List[Invocation] = []
        self._rejected: List[Invocation] = []
        self._throttled: List[Invocation] = []
        # Sketch-mode storage: live time buckets keyed by
        # floor(completed_at / bucket_seconds), an eviction heap of those
        # keys, and an archive bucket absorbing everything evicted.
        self._buckets: Dict[int, _TimeBucket] = {}
        self._bucket_heap: List[int] = []
        self._archive = _TimeBucket(relative_accuracy)
        self._archived_through: Optional[int] = None
        # Scalar totals keep num_* O(1) in sketch mode.
        self._n_completed = 0
        self._n_failed = 0
        self._n_rejected = 0
        self._n_throttled = 0

    def _sibling(self) -> "MetricsCollector":
        """A fresh empty collector with this one's mode and shape."""
        return MetricsCollector(
            self.mode,
            bucket_seconds=self.bucket_seconds,
            max_buckets=self.max_buckets,
            relative_accuracy=self.relative_accuracy,
        )

    def record(self, invocation: Invocation) -> None:
        """Record a finished invocation."""
        if self.mode == "sketch":
            self._record_sketch(invocation)
            return
        if invocation.status is InvocationStatus.COMPLETED:
            bucket = self._completed
        elif invocation.status is InvocationStatus.REJECTED:
            bucket = self._rejected
        elif invocation.status is InvocationStatus.THROTTLED:
            bucket = self._throttled
        else:
            bucket = self._failed
        if bucket and bucket[-1].completed_at > invocation.completed_at:
            # Out-of-order recording (a caller replaying history, or an
            # invocation finished across a bucket edge): insert in sorted
            # position so :meth:`window`'s binary search stays correct.
            # The event-loop path always records at the finish instant, so
            # this branch never runs there and appends stay O(1).
            bisect.insort(bucket, invocation, key=lambda inv: inv.completed_at)
        else:
            bucket.append(invocation)

    # ------------------------------------------------------------------
    # Sketch-mode internals
    # ------------------------------------------------------------------

    def _record_sketch(self, invocation: Invocation) -> None:
        index = math.floor(invocation.completed_at / self.bucket_seconds)
        if self._archived_through is not None and index <= self._archived_through:
            # The sample's bucket was already folded away: archive it
            # directly so run-lifetime aggregates stay exact.
            bucket = self._archive
        else:
            bucket = self._buckets.get(index)
            if bucket is None:
                bucket = self._buckets[index] = _TimeBucket(self.relative_accuracy)
                heapq.heappush(self._bucket_heap, index)
                while len(self._buckets) > self.max_buckets:
                    oldest = heapq.heappop(self._bucket_heap)
                    self._archive.merge(
                        self._buckets.pop(oldest), self.relative_accuracy
                    )
                    if self._archived_through is None or oldest > self._archived_through:
                        self._archived_through = oldest
        bucket.record(invocation, self.relative_accuracy)
        status = invocation.status
        if status is InvocationStatus.COMPLETED:
            self._n_completed += 1
        elif status is InvocationStatus.REJECTED:
            self._n_rejected += 1
        elif status is InvocationStatus.THROTTLED:
            self._n_throttled += 1
        else:
            self._n_failed += 1

    def _iter_buckets(self) -> Iterator[_TimeBucket]:
        """Archive first, then live buckets in time order (sketch mode)."""
        yield self._archive
        for index in sorted(self._buckets):
            yield self._buckets[index]

    def _iter_buckets_in(
        self, start: float, end: Optional[float]
    ) -> Iterator[_TimeBucket]:
        """Live buckets intersecting the closed window ``[start, end]``.

        The archive is excluded: it aggregates history older than every
        live bucket, and windowed queries are the control plane asking
        about *recent* behaviour.  Windows reaching past the retention
        horizon therefore see only what is still live (documented in
        :meth:`window`).
        """
        lo = None if math.isinf(start) else math.floor(start / self.bucket_seconds)
        hi = None if end is None else math.floor(end / self.bucket_seconds)
        if lo is not None and hi is not None and hi - lo < len(self._buckets):
            # Control-loop fast path: a short window probes its own few
            # bucket indices directly instead of scanning every live key.
            for index in range(lo, hi + 1):
                bucket = self._buckets.get(index)
                if bucket is not None:
                    yield bucket
            return
        for index in sorted(self._buckets):
            if lo is not None and index < lo:
                continue
            if hi is not None and index > hi:
                break
            yield self._buckets[index]

    def _absorb_bucket(self, bucket: _TimeBucket) -> None:
        """Fold a bucket into this collector's archive, updating totals."""
        self._archive.merge(bucket, self.relative_accuracy)
        total = bucket.total
        self._n_completed += total.completed
        self._n_failed += total.failed
        self._n_rejected += total.rejected
        self._n_throttled += total.throttled

    def _absorb_tenant_slice(self, caller: str, slice_: _SketchSlice) -> None:
        """Fold one tenant's slice into this collector (as that tenant).

        The collector's ``total`` is **not** updated here: callers absorb
        many slices in a loop and close by merging the accumulated tenant
        slices into ``total`` once (see :meth:`by_caller`) — O(tenants)
        closing merges instead of one per absorbed slice.
        """
        mine = self._archive.tenants.get(caller)
        if mine is None:
            mine = self._archive.tenants[caller] = _SketchSlice(self.relative_accuracy)
        mine.merge(slice_)
        self._n_completed += slice_.completed
        self._n_failed += slice_.failed
        self._n_rejected += slice_.rejected
        self._n_throttled += slice_.throttled

    def _merged_sketch(self, which: str) -> LatencySketch:
        merged = LatencySketch(self.relative_accuracy)
        for bucket in self._iter_buckets():
            merged.merge(getattr(bucket.total, which))
        return merged

    def _require_exact(self, surface: str) -> None:
        if self.mode != "exact":
            raise PlatformError(
                f"{surface} requires per-invocation samples, which sketch-mode "
                "collectors do not retain; use the aggregate surfaces "
                "(num_*, e2e_stats, window, by_caller) or exact mode"
            )

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    @property
    def completed(self) -> List[Invocation]:
        """All completed invocations in completion order (exact mode)."""
        self._require_exact("MetricsCollector.completed")
        return list(self._completed)

    @property
    def failed(self) -> List[Invocation]:
        """All failed invocations (exact mode)."""
        self._require_exact("MetricsCollector.failed")
        return list(self._failed)

    @property
    def rejected(self) -> List[Invocation]:
        """All invocations shed by backpressure (exact mode)."""
        self._require_exact("MetricsCollector.rejected")
        return list(self._rejected)

    @property
    def throttled(self) -> List[Invocation]:
        """All invocations refused by quota enforcement (exact mode)."""
        self._require_exact("MetricsCollector.throttled")
        return list(self._throttled)

    @property
    def num_completed(self) -> int:
        """Number of completed invocations."""
        if self.mode == "sketch":
            return self._n_completed
        return len(self._completed)

    @property
    def num_failed(self) -> int:
        """Number of failed invocations."""
        if self.mode == "sketch":
            return self._n_failed
        return len(self._failed)

    @property
    def num_rejected(self) -> int:
        """Number of invocations shed by backpressure."""
        if self.mode == "sketch":
            return self._n_rejected
        return len(self._rejected)

    @property
    def num_throttled(self) -> int:
        """Number of invocations refused by per-tenant quotas."""
        if self.mode == "sketch":
            return self._n_throttled
        return len(self._throttled)

    @property
    def num_recorded(self) -> int:
        """Total invocations recorded (completed/failed/rejected/throttled)."""
        return (
            self.num_completed
            + self.num_failed
            + self.num_rejected
            + self.num_throttled
        )

    @property
    def rejection_rate(self) -> float:
        """Fraction of recorded invocations that were shed."""
        total = self.num_recorded
        return self.num_rejected / total if total else 0.0

    @property
    def throttle_rate(self) -> float:
        """Fraction of recorded invocations refused by quotas."""
        total = self.num_recorded
        return self.num_throttled / total if total else 0.0

    def window(
        self, start: float, end: Optional[float] = None
    ) -> "MetricsCollector":
        """A collector restricted to invocations that *finished* in a window.

        ``start``/``end`` bound the invocation's ``completed_at`` timestamp
        (the instant a completion, rejection, or throttle was recorded);
        ``end=None`` leaves the window open on the right.  This is the
        surface a control loop consumes: recent behaviour, not run-lifetime
        aggregates — a tenant that misbehaved a minute ago but is currently
        within its SLO must not look violating forever.

        The window is the **closed** interval ``[start, end]``: a sample
        finishing exactly at either boundary is a member.  A control loop
        assessing at ``now`` over ``window(now - w, now)`` must see the
        completions recorded earlier in this very instant — the half-open
        alternative would blind every tick to its own timestamp.  The
        corollary (deliberate, and pinned by tests): two *adjacent* calls
        sharing a boundary both count a sample that finished exactly on
        it, so adjacent windows are not a partition.  Callers that need
        disjoint coverage must subtract the boundary themselves.  An
        inverted window (``end < start``) is empty, not an error.

        Exact mode: buckets are kept sorted by ``completed_at``
        (:meth:`record` appends in the common in-order case and
        bisect-inserts otherwise), so the window boundaries are found by
        binary search and the slices adopted wholesale — O(log run +
        window) per call rather than O(run), with no per-sample
        re-recording.

        Sketch mode: the result merges every live time bucket
        intersecting ``[start, end]`` — O(buckets in window) regardless
        of sample count, quantised to ``bucket_seconds`` (identical to
        the exact semantics when ``start`` sits on a bucket edge and no
        sample finished after ``end``).  History already folded into the
        retention archive is out of reach of windows; control loops only
        ask about the recent past, which is always live.
        """
        clipped = self._sibling()
        if end is not None and end < start:
            return clipped

        if self.mode == "sketch":
            for bucket in self._iter_buckets_in(start, end):
                clipped._absorb_bucket(bucket)
            return clipped

        def finished_at(invocation: Invocation) -> float:
            return invocation.completed_at

        for name in ("_completed", "_failed", "_rejected", "_throttled"):
            bucket = getattr(self, name)
            low = bisect.bisect_left(bucket, start, key=finished_at)
            high = (
                # bisect_right: entries with completed_at == end fall
                # *below* the cut, making the right boundary inclusive.
                bisect.bisect_right(bucket, end, key=finished_at)
                if end is not None
                else len(bucket)
            )
            # The slice is already sorted; adopt it wholesale instead of
            # re-running record()'s out-of-order check per sample.
            setattr(clipped, name, bucket[low:high])
        return clipped

    def by_caller(
        self,
        *,
        since: Optional[float] = None,
        until: Optional[float] = None,
    ) -> Dict[str, "MetricsCollector"]:
        """Split the recorded invocations into per-tenant collectors.

        ``since``/``until`` restrict the split to invocations that finished
        inside the window (see :meth:`window`), so windowed per-tenant
        percentiles come from recent samples rather than the whole run.

        Exact mode appends each (already sorted) windowed sample to its
        tenant's lists directly — order is preserved, so no per-sample
        out-of-order checks are paid.  Sketch mode merges the per-tenant
        slices of the covered time buckets: O(buckets × tenants), never
        O(samples).
        """
        windowed = since is not None or until is not None
        per_tenant: Dict[str, MetricsCollector] = {}

        if self.mode == "sketch":
            if windowed:
                # Single pass over the covered buckets, merging tenant
                # slices straight into the result — no intermediate
                # whole-window collector (whose total-slice merges the
                # per-tenant split would just throw away).
                if until is not None and until < (
                    since if since is not None else float("-inf")
                ):
                    return per_tenant
                buckets: Iterable[_TimeBucket] = self._iter_buckets_in(
                    since if since is not None else float("-inf"), until
                )
            else:
                buckets = self._iter_buckets()
            for bucket in buckets:
                for caller, slice_ in bucket.tenants.items():
                    collector = per_tenant.get(caller)
                    if collector is None:
                        collector = per_tenant[caller] = self._sibling()
                    collector._absorb_tenant_slice(caller, slice_)
            # Each collector's total is built once from its merged tenant
            # slices — O(tenants) closing merges instead of one extra
            # merge per covered bucket.
            for collector in per_tenant.values():
                for slice_ in collector._archive.tenants.values():
                    collector._archive.total.merge(slice_)
            return per_tenant

        source = (
            self.window(since if since is not None else float("-inf"), until)
            if windowed
            else self
        )

        for name in ("_completed", "_failed", "_rejected", "_throttled"):
            for invocation in getattr(source, name):
                collector = per_tenant.get(invocation.caller)
                if collector is None:
                    collector = per_tenant[invocation.caller] = self._sibling()
                # Source buckets are sorted by completed_at, so straight
                # appends keep each tenant's buckets sorted too.
                getattr(collector, name).append(invocation)
        return per_tenant

    def merge_from(self, other: "MetricsCollector") -> None:
        """Fold another collector's samples into this one.

        Both collectors must share a mode (and, in sketch mode, a bucket
        shape).  Exact mode merge-sorts the per-status lists; sketch mode
        merges bucket-wise — the lossless reduction multi-seed fan-out
        uses to combine per-process results.
        """
        if other.mode != self.mode:
            raise PlatformError(
                f"cannot merge a {other.mode!r}-mode collector into a "
                f"{self.mode!r}-mode one"
            )
        if self.mode == "sketch":
            if other.bucket_seconds != self.bucket_seconds:
                raise PlatformError(
                    "cannot merge sketch collectors with different bucket "
                    f"widths ({self.bucket_seconds} vs {other.bucket_seconds})"
                )
            self._archive.merge(other._archive, self.relative_accuracy)
            for index, bucket in other._buckets.items():
                mine = self._buckets.get(index)
                if mine is None:
                    mine = self._buckets[index] = _TimeBucket(self.relative_accuracy)
                    heapq.heappush(self._bucket_heap, index)
                mine.merge(bucket, self.relative_accuracy)
            while len(self._buckets) > self.max_buckets:
                oldest = heapq.heappop(self._bucket_heap)
                self._archive.merge(self._buckets.pop(oldest), self.relative_accuracy)
                if self._archived_through is None or oldest > self._archived_through:
                    self._archived_through = oldest
            if other._archived_through is not None and (
                self._archived_through is None
                or other._archived_through > self._archived_through
            ):
                self._archived_through = other._archived_through
            self._n_completed += other._n_completed
            self._n_failed += other._n_failed
            self._n_rejected += other._n_rejected
            self._n_throttled += other._n_throttled
            return
        for name in ("_completed", "_failed", "_rejected", "_throttled"):
            mine = getattr(self, name)
            theirs = getattr(other, name)
            if not theirs:
                continue
            merged = list(
                heapq.merge(mine, theirs, key=lambda inv: inv.completed_at)
            )
            setattr(self, name, merged)

    def e2e_latencies(self, skip_warmup: int = 0) -> List[float]:
        """End-to-end latencies, optionally skipping the first samples."""
        self._require_exact("MetricsCollector.e2e_latencies")
        return [inv.e2e_seconds for inv in self._completed[skip_warmup:]]

    def invoker_latencies(self, skip_warmup: int = 0) -> List[float]:
        """Invoker latencies, optionally skipping the first samples."""
        self._require_exact("MetricsCollector.invoker_latencies")
        return [inv.invoker_seconds for inv in self._completed[skip_warmup:]]

    def e2e_stats(self, skip_warmup: int = 0) -> LatencyStats:
        """Summary of end-to-end latencies.

        In sketch mode, count/mean/std/min/max are exact and percentiles
        carry the sketch's relative value-error bound; ``skip_warmup`` is
        unavailable (individual samples are not retained).
        """
        if self.mode == "sketch":
            if skip_warmup:
                self._require_exact("e2e_stats(skip_warmup != 0)")
            return self._merged_sketch("e2e").stats()
        return LatencyStats.from_samples(self.e2e_latencies(skip_warmup))

    def invoker_stats(self, skip_warmup: int = 0) -> LatencyStats:
        """Summary of invoker latencies (see :meth:`e2e_stats`)."""
        if self.mode == "sketch":
            if skip_warmup:
                self._require_exact("invoker_stats(skip_warmup != 0)")
            return self._merged_sketch("invoker").stats()
        return LatencyStats.from_samples(self.invoker_latencies(skip_warmup))

    def throughput(self, window_start: float, window_end: float) -> float:
        """Sustained throughput (completions/second) over a time window.

        The completed bucket is sorted by ``completed_at``, so the window
        is bounded by binary search (O(log run)) rather than a scan of
        the whole run; sketch mode sums bucket counts in O(buckets).
        """
        if window_end <= window_start:
            raise ValueError("throughput window must have positive length")
        duration = window_end - window_start
        if self.mode == "sketch":
            count = sum(
                bucket.total.completed
                for bucket in self._iter_buckets_in(window_start, window_end)
            )
            return count / duration
        low = bisect.bisect_left(
            self._completed, window_start, key=lambda inv: inv.completed_at
        )
        high = bisect.bisect_right(
            self._completed, window_end, key=lambda inv: inv.completed_at
        )
        return (high - low) / duration

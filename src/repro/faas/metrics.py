"""Latency and throughput metrics.

The paper reports two latencies per benchmark — the end-to-end latency seen
by the client and the invoker latency that excludes the rest of the platform
— plus the peak sustained throughput of a saturated 4-container deployment.
This module collects per-invocation samples and reduces them to the summary
statistics the tables and figures need.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.faas.request import Invocation, InvocationStatus


@dataclass(frozen=True)
class LatencyStats:
    """Summary statistics over a set of latency samples (seconds)."""

    count: int
    mean: float
    std: float
    minimum: float
    p10: float
    p25: float
    median: float
    p75: float
    p90: float
    p95: float
    p99: float
    maximum: float

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "LatencyStats":
        """Compute statistics over ``samples`` (must be non-empty)."""
        if not samples:
            raise ValueError("cannot summarise an empty sample set")
        ordered = sorted(samples)
        n = len(ordered)
        mean = sum(ordered) / n
        variance = sum((x - mean) ** 2 for x in ordered) / n
        return cls(
            count=n,
            mean=mean,
            std=math.sqrt(variance),
            minimum=ordered[0],
            p10=percentile(ordered, 10),
            p25=percentile(ordered, 25),
            median=percentile(ordered, 50),
            p75=percentile(ordered, 75),
            p90=percentile(ordered, 90),
            p95=percentile(ordered, 95),
            p99=percentile(ordered, 99),
            maximum=ordered[-1],
        )

    @property
    def cov(self) -> float:
        """Coefficient of variation (std / mean)."""
        return self.std / self.mean if self.mean else 0.0


def percentile(sorted_samples: Sequence[float], pct: float) -> float:
    """Linear-interpolation percentile over already sorted samples."""
    if not sorted_samples:
        raise ValueError("cannot take a percentile of no samples")
    if len(sorted_samples) == 1:
        return float(sorted_samples[0])
    if pct <= 0:
        return float(sorted_samples[0])
    if pct >= 100:
        return float(sorted_samples[-1])
    rank = (pct / 100.0) * (len(sorted_samples) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return float(sorted_samples[low])
    fraction = rank - low
    value = sorted_samples[low] * (1 - fraction) + sorted_samples[high] * fraction
    # Clamp against floating-point drift so interpolated percentiles never
    # fall outside the bracketing samples (which would break monotonicity).
    return float(min(max(value, sorted_samples[low]), sorted_samples[high]))


def summarize(samples: Iterable[float]) -> LatencyStats:
    """Shorthand for :meth:`LatencyStats.from_samples` over any iterable."""
    return LatencyStats.from_samples(list(samples))


class MetricsCollector:
    """Collects completed invocations and derives latency/throughput."""

    def __init__(self) -> None:
        self._completed: List[Invocation] = []
        self._failed: List[Invocation] = []
        self._rejected: List[Invocation] = []
        self._throttled: List[Invocation] = []

    def record(self, invocation: Invocation) -> None:
        """Record a finished invocation."""
        if invocation.status is InvocationStatus.COMPLETED:
            bucket = self._completed
        elif invocation.status is InvocationStatus.REJECTED:
            bucket = self._rejected
        elif invocation.status is InvocationStatus.THROTTLED:
            bucket = self._throttled
        else:
            bucket = self._failed
        if bucket and bucket[-1].completed_at > invocation.completed_at:
            # Out-of-order recording (a caller replaying history, or an
            # invocation finished across a bucket edge): insert in sorted
            # position so :meth:`window`'s binary search stays correct.
            # The event-loop path always records at the finish instant, so
            # this branch never runs there and appends stay O(1).
            bisect.insort(bucket, invocation, key=lambda inv: inv.completed_at)
        else:
            bucket.append(invocation)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    @property
    def completed(self) -> List[Invocation]:
        """All completed invocations in completion order."""
        return list(self._completed)

    @property
    def failed(self) -> List[Invocation]:
        """All failed invocations."""
        return list(self._failed)

    @property
    def rejected(self) -> List[Invocation]:
        """All invocations shed by backpressure (bounded-queue overflow)."""
        return list(self._rejected)

    @property
    def num_completed(self) -> int:
        """Number of completed invocations."""
        return len(self._completed)

    @property
    def throttled(self) -> List[Invocation]:
        """All invocations refused by per-tenant quota enforcement."""
        return list(self._throttled)

    @property
    def num_rejected(self) -> int:
        """Number of invocations shed by backpressure."""
        return len(self._rejected)

    @property
    def num_throttled(self) -> int:
        """Number of invocations refused by per-tenant quotas."""
        return len(self._throttled)

    @property
    def num_recorded(self) -> int:
        """Total invocations recorded (completed/failed/rejected/throttled)."""
        return (
            len(self._completed)
            + len(self._failed)
            + len(self._rejected)
            + len(self._throttled)
        )

    @property
    def rejection_rate(self) -> float:
        """Fraction of recorded invocations that were shed."""
        total = self.num_recorded
        return len(self._rejected) / total if total else 0.0

    @property
    def throttle_rate(self) -> float:
        """Fraction of recorded invocations refused by quotas."""
        total = self.num_recorded
        return len(self._throttled) / total if total else 0.0

    def window(
        self, start: float, end: Optional[float] = None
    ) -> "MetricsCollector":
        """A collector restricted to invocations that *finished* in a window.

        ``start``/``end`` bound the invocation's ``completed_at`` timestamp
        (the instant a completion, rejection, or throttle was recorded);
        ``end=None`` leaves the window open on the right.  This is the
        surface a control loop consumes: recent behaviour, not run-lifetime
        aggregates — a tenant that misbehaved a minute ago but is currently
        within its SLO must not look violating forever.

        The window is the **closed** interval ``[start, end]``: a sample
        finishing exactly at either boundary is a member.  A control loop
        assessing at ``now`` over ``window(now - w, now)`` must see the
        completions recorded earlier in this very instant — the half-open
        alternative would blind every tick to its own timestamp.  The
        corollary (deliberate, and pinned by tests): two *adjacent* calls
        sharing a boundary both count a sample that finished exactly on
        it, so adjacent windows are not a partition.  Callers that need
        disjoint coverage must subtract the boundary themselves.  An
        inverted window (``end < start``) is empty, not an error.

        Buckets are kept sorted by ``completed_at`` (:meth:`record`
        appends in the common in-order case and bisect-inserts otherwise),
        so the window boundaries are found by binary search, costing
        O(log run + window) per call rather than O(run).  A control loop
        ticking every quarter of a virtual second therefore stays linear
        in the run.
        """
        clipped = MetricsCollector()
        if end is not None and end < start:
            return clipped

        def finished_at(invocation: Invocation) -> float:
            return invocation.completed_at

        for bucket in (self._completed, self._failed, self._rejected, self._throttled):
            low = bisect.bisect_left(bucket, start, key=finished_at)
            high = (
                # bisect_right: entries with completed_at == end fall
                # *below* the cut, making the right boundary inclusive.
                bisect.bisect_right(bucket, end, key=finished_at)
                if end is not None
                else len(bucket)
            )
            for invocation in bucket[low:high]:
                clipped.record(invocation)
        return clipped

    def by_caller(
        self,
        *,
        since: Optional[float] = None,
        until: Optional[float] = None,
    ) -> Dict[str, "MetricsCollector"]:
        """Split the recorded invocations into per-tenant collectors.

        ``since``/``until`` restrict the split to invocations that finished
        inside the window (see :meth:`window`), so windowed per-tenant
        percentiles come from recent samples rather than the whole run.
        """
        windowed = since is not None or until is not None
        source = (
            self.window(since if since is not None else float("-inf"), until)
            if windowed
            else self
        )
        per_tenant: Dict[str, MetricsCollector] = {}
        for bucket in (
            source._completed,
            source._failed,
            source._rejected,
            source._throttled,
        ):
            for invocation in bucket:
                collector = per_tenant.setdefault(invocation.caller, MetricsCollector())
                collector.record(invocation)
        return per_tenant

    def e2e_latencies(self, skip_warmup: int = 0) -> List[float]:
        """End-to-end latencies, optionally skipping the first samples."""
        return [inv.e2e_seconds for inv in self._completed[skip_warmup:]]

    def invoker_latencies(self, skip_warmup: int = 0) -> List[float]:
        """Invoker latencies, optionally skipping the first samples."""
        return [inv.invoker_seconds for inv in self._completed[skip_warmup:]]

    def e2e_stats(self, skip_warmup: int = 0) -> LatencyStats:
        """Summary of end-to-end latencies."""
        return LatencyStats.from_samples(self.e2e_latencies(skip_warmup))

    def invoker_stats(self, skip_warmup: int = 0) -> LatencyStats:
        """Summary of invoker latencies."""
        return LatencyStats.from_samples(self.invoker_latencies(skip_warmup))

    def throughput(self, window_start: float, window_end: float) -> float:
        """Sustained throughput (requests/second) over a time window."""
        if window_end <= window_start:
            raise ValueError("throughput window must have positive length")
        in_window = [
            inv
            for inv in self._completed
            if window_start <= inv.completed_at <= window_end
        ]
        return len(in_window) / (window_end - window_start)

"""Invocations: the requests flowing through the platform.

An :class:`Invocation` carries the caller identity that motivates sequential
request isolation in the first place (§2 "Access control"): different
invocations of the same function may run on behalf of differently privileged
end-clients, and nothing from one caller's invocation may be visible to the
next caller's.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, Optional

_invocation_counter = itertools.count(1)  # detlint: ignore[D005] unique-id mint; ids are labels, never ordering inputs


class InvocationStatus(enum.Enum):
    """Lifecycle of one invocation."""

    PENDING = "pending"
    QUEUED = "queued"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"
    #: Shed by backpressure: the action's bounded queue was full, so the
    #: platform refused the invocation instead of queueing it.
    REJECTED = "rejected"
    #: Refused by per-tenant quota enforcement: the caller exhausted its
    #: token-bucket admission rate.  Deliberately distinct from
    #: ``REJECTED`` — a quota refusal is policy ("you exceeded your
    #: rate"), not capacity ("the platform is overloaded").
    THROTTLED = "throttled"


@dataclass
class Invocation:
    """One request to one action."""

    action: str
    payload: bytes = b""
    caller: str = "anonymous"
    invocation_id: str = ""
    submitted_at: float = 0.0
    dispatched_at: float = 0.0
    completed_at: float = 0.0
    status: InvocationStatus = InvocationStatus.PENDING
    response: Optional[Dict[str, object]] = None
    #: Time spent inside the invoker (function execution + mechanism critical
    #: path), the paper's "invoker latency".
    invoker_seconds: float = 0.0
    #: Time spent waiting for a free, clean container.
    queue_seconds: float = 0.0
    error: str = ""
    #: Flight-recorder context (an ``repro.faas.obs.InvocationTrace``)
    #: when this invocation was sampled in; ``None`` otherwise — every
    #: instrumentation site guards on that, so the untraced path does no
    #: work.  Excluded from comparison/repr: tracing is observability,
    #: not identity.
    trace: Optional[object] = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not self.invocation_id:
            self.invocation_id = f"inv-{next(_invocation_counter):08d}"

    @property
    def e2e_seconds(self) -> float:
        """End-to-end latency as the client saw it."""
        if self.status is not InvocationStatus.COMPLETED:
            return float("nan")
        return self.completed_at - self.submitted_at

    def mark_completed(self, now: float, response: Dict[str, object]) -> None:
        """Record completion."""
        self.completed_at = now
        self.response = response
        self.status = InvocationStatus.COMPLETED

    def mark_failed(self, now: float, error: str) -> None:
        """Record failure."""
        self.completed_at = now
        self.error = error
        self.status = InvocationStatus.FAILED

    def mark_rejected(self, now: float, reason: str = "queue full") -> None:
        """Record that backpressure shed this invocation."""
        self.completed_at = now
        self.error = reason
        self.status = InvocationStatus.REJECTED

    def mark_throttled(self, now: float, reason: str = "tenant over quota") -> None:
        """Record that per-tenant quota enforcement refused this invocation."""
        self.completed_at = now
        self.error = reason
        self.status = InvocationStatus.THROTTLED

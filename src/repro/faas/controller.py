"""The controller / load balancer in front of the invoker.

In the paper's distributed OpenWhisk deployment, one VM runs the controller
and the other core components while the invoker runs on a separate VM; the
controller contributes a fixed platform latency to every request (HTTP
handling, authentication, scheduling, the message bus between controller and
invoker).  That overhead is present identically in the baseline and in every
Groundhog configuration, which is why end-to-end overheads look smaller than
invoker-level overheads (§5.3.1).
"""

from __future__ import annotations

import random
from typing import Callable, Optional, Protocol

from repro.faas.request import Invocation
from repro.sim.events import EventLoop
from repro.sim.rng import fallback_stream

CompletionCallback = Callable[[Invocation], None]


class InvocationBackend(Protocol):
    """Anything the controller can hand invocations to.

    Both a single :class:`~repro.faas.invoker.Invoker` and a cluster
    :class:`~repro.faas.scheduler.Scheduler` satisfy this, so the same
    controller fronts the paper's one-box deployment and an N-invoker
    cluster.
    """

    def submit(self, invocation: Invocation, callback: CompletionCallback) -> None:
        ...


class Controller:
    """Routes client requests to the invoker(s), adding platform latency."""

    def __init__(
        self,
        loop: EventLoop,
        invoker: InvocationBackend,
        *,
        platform_overhead_seconds: float = 0.026,
        platform_jitter_seconds: float = 0.004,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.loop = loop
        self.invoker = invoker
        self.platform_overhead_seconds = platform_overhead_seconds
        self.platform_jitter_seconds = platform_jitter_seconds
        self.rng = rng if rng is not None else fallback_stream("faas.controller")
        self.requests_routed = 0

    def _overhead_sample(self) -> float:
        """One sample of platform overhead (half charged on each direction)."""
        if self.platform_jitter_seconds <= 0:
            return self.platform_overhead_seconds
        return max(
            0.0,
            self.rng.gauss(self.platform_overhead_seconds, self.platform_jitter_seconds),
        )

    def submit(self, invocation: Invocation, callback: CompletionCallback) -> None:
        """Accept a client request and route it through the platform."""
        self.requests_routed += 1
        overhead = self._overhead_sample()
        inbound = overhead / 2.0
        outbound = overhead - inbound

        def to_invoker() -> None:
            self.invoker.submit(invocation, respond)

        def respond(finished: Invocation) -> None:
            def deliver() -> None:
                # End-to-end latency is measured when the response reaches
                # the client, i.e. after the outbound platform hop.
                finished.completed_at = self.loop.now
                callback(finished)

            self.loop.schedule(outbound, deliver, label=f"respond:{finished.invocation_id}")

        self.loop.schedule(inbound, to_invoker, label=f"route:{invocation.invocation_id}")

"""The invoker: the component that hosts containers and runs functions.

Mirrors the OpenWhisk invoker used in the paper's deployment (§5.1): it owns
the warm container pool of each deployed action, dispatches at most one
request at a time to each container, and keeps a container out of the pool
while its isolation mechanism performs post-request work (restoration).
Each container is pinned to one core; the invoker never runs more containers
concurrently than it has cores.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.errors import ActionNotFoundError, ContainerError, PlatformError
from repro.faas.action import ActionSpec
from repro.faas.container import Container, ContainerExecution, ContainerState
from repro.faas.request import Invocation, InvocationStatus
from repro.kernel.kernel import SimKernel
from repro.sim.events import EventLoop
from repro.sim.costs import CostModel, DEFAULT_COST_MODEL

CompletionCallback = Callable[[Invocation], None]


@dataclass
class _ActionPool:
    """Warm containers and the waiting queue of one action."""

    spec: ActionSpec
    containers: List[Container] = field(default_factory=list)
    idle: Deque[Container] = field(default_factory=deque)
    queue: Deque[Tuple[Invocation, CompletionCallback, float]] = field(default_factory=deque)


class Invoker:
    """Hosts containers and executes invocations on a fixed number of cores."""

    def __init__(
        self,
        loop: EventLoop,
        *,
        cores: int = 1,
        kernel: Optional[SimKernel] = None,
        cost_model: Optional[CostModel] = None,
        rng: Optional[random.Random] = None,
        verify_isolation: bool = False,
    ) -> None:
        if cores < 1:
            raise PlatformError("an invoker needs at least one core")
        self.loop = loop
        self.cores = cores
        self.cost_model = cost_model if cost_model is not None else DEFAULT_COST_MODEL
        self.kernel = kernel if kernel is not None else SimKernel(self.cost_model)
        self.rng = rng if rng is not None else random.Random(23)
        self.verify_isolation = verify_isolation
        self._pools: Dict[str, _ActionPool] = {}
        self._cores_in_use = 0
        self.invocations_dispatched = 0
        self.invocations_completed = 0

    # ------------------------------------------------------------------
    # Deployment
    # ------------------------------------------------------------------

    def deploy(self, spec: ActionSpec, containers: int = 1) -> List[Container]:
        """Deploy an action with ``containers`` pre-warmed container instances.

        Containers are initialised eagerly, mirroring the paper's setup that
        deliberately excludes cold starts from the measurements.
        """
        if containers < 1:
            raise PlatformError("an action needs at least one container")
        if spec.name in self._pools:
            raise PlatformError(f"action {spec.name!r} is already deployed")
        pool = _ActionPool(spec=spec)
        for index in range(containers):
            container = Container(
                spec,
                kernel=self.kernel,
                cost_model=self.cost_model,
                rng=random.Random(self.rng.getrandbits(32)),
            )
            container.initialize()
            pool.containers.append(container)
            pool.idle.append(container)
        self._pools[spec.name] = pool
        return list(pool.containers)

    def pool(self, action: str) -> List[Container]:
        """The containers deployed for ``action``."""
        return list(self._require_pool(action).containers)

    def action_spec(self, action: str) -> ActionSpec:
        """The deployment descriptor of ``action``."""
        return self._require_pool(action).spec

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def submit(self, invocation: Invocation, callback: CompletionCallback) -> None:
        """Queue or dispatch one invocation."""
        pool = self._require_pool(invocation.action)
        invocation.status = InvocationStatus.QUEUED
        arrival = self.loop.now
        if pool.idle and self._cores_in_use < self.cores:
            self._dispatch(pool, invocation, callback, arrival)
        else:
            pool.queue.append((invocation, callback, arrival))

    def _dispatch(
        self,
        pool: _ActionPool,
        invocation: Invocation,
        callback: CompletionCallback,
        arrival: float,
    ) -> None:
        container = pool.idle.popleft()
        self._cores_in_use += 1
        now = self.loop.now
        invocation.dispatched_at = now
        invocation.queue_seconds = now - arrival
        invocation.status = InvocationStatus.RUNNING
        self.invocations_dispatched += 1

        execution = container.execute(invocation, verify=self.verify_isolation)
        invocation.invoker_seconds = execution.invoker_seconds
        completion_time = now + execution.invoker_seconds
        available_time = completion_time + execution.unavailable_seconds

        def complete() -> None:
            invocation.mark_completed(self.loop.now, execution.report.result.response)
            self.invocations_completed += 1
            callback(invocation)

        def release() -> None:
            self._cores_in_use -= 1
            pool.idle.append(container)
            self._drain_queues()

        self.loop.schedule_at(completion_time, complete, label=f"complete:{invocation.invocation_id}")
        self.loop.schedule_at(available_time, release, label=f"release:{container.container_id}")

    def _drain_queues(self) -> None:
        """Dispatch queued invocations while cores and containers are free."""
        progressed = True
        while progressed and self._cores_in_use < self.cores:
            progressed = False
            for pool in self._pools.values():
                if pool.queue and pool.idle and self._cores_in_use < self.cores:
                    invocation, callback, arrival = pool.queue.popleft()
                    self._dispatch(pool, invocation, callback, arrival)
                    progressed = True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def cores_in_use(self) -> int:
        """Cores currently occupied by executing or restoring containers."""
        return self._cores_in_use

    def queued_invocations(self, action: Optional[str] = None) -> int:
        """Number of invocations waiting for a container."""
        if action is not None:
            return len(self._require_pool(action).queue)
        return sum(len(pool.queue) for pool in self._pools.values())

    def _require_pool(self, action: str) -> _ActionPool:
        if action not in self._pools:
            raise ActionNotFoundError(action)
        return self._pools[action]

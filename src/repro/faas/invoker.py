"""The invoker: the component that hosts containers and runs functions.

Mirrors the OpenWhisk invoker used in the paper's deployment (§5.1): it owns
the warm container pool of each deployed action, dispatches at most one
request at a time to each container, and keeps a container out of the pool
while its isolation mechanism performs post-request work (restoration).
Each container is pinned to one core; the invoker never runs more containers
concurrently than it has cores.

Beyond the paper's fixed pre-warmed pools, the invoker supports the cluster
substrate built on top of it:

* **Registered actions** — an action can be *registered* without pre-warmed
  containers (``register``); a cluster deploys warm containers only on an
  action's home invoker and registers it everywhere else.
* **Dynamic pools** — when a request arrives and the pool may still grow
  (``max_containers``), the invoker cold-starts a container on demand,
  paying the full initialisation cost (environment, runtime boot, warm-up,
  snapshot) before the container joins the idle pool.  Dynamic containers
  idle longer than the keep-alive are evicted by a cancellable timer;
  pre-warmed containers are never evicted.
* **Core-charged cold starts** — a container boot is CPU work: it occupies
  one invoker core for the whole initialisation, serialised against
  executing containers and against other boots.  Boots the invoker cannot
  start immediately wait in a FIFO backlog until a core frees (dispatching
  queued requests to warm containers takes priority over starting boots).
  This charges cold-start storms honestly: a load-blind policy that
  scatters requests onto cold invokers pays for every boot in core time.
* **Warmth spectrum** — with ``restorable_snapshots`` on, container state
  is live-warm > restorable-snapshot > cold: keep-alive eviction and
  drains *demote* dynamic containers to held snapshots (bounded by an
  invoker-wide ``snapshot_budget``, oldest demotion discarded first),
  and demand that misses live-warm revives the newest snapshot with an
  on-core *restore* priced by the configured isolation mechanism's
  restore model (:mod:`repro.faas.restorecost`) — orders of magnitude
  cheaper than a boot, but still core time, serialised through the same
  backlog as boots.  The spectrum off reproduces binary warm-vs-cold
  bit for bit.
* **Admission layer** — enqueueing, dequeue order, and shed choice live in
  a pluggable :class:`~repro.faas.admission.AdmissionQueue` per action
  (``fifo`` reproduces the historical arrival-order behaviour bit for bit;
  ``wfq`` is tenant-fair deficit round robin), with optional per-tenant
  token-bucket quotas (:class:`~repro.faas.admission.TenantQuotas`) that
  refuse over-rate callers with the distinct
  :attr:`~repro.faas.request.InvocationStatus.THROTTLED` status.
* **Backpressure** — each action's queue can be bounded
  (``max_queue_per_action``); on overflow the admission queue decides who
  is shed with :attr:`~repro.faas.request.InvocationStatus.REJECTED`: the
  incoming invocation under FIFO, the dominant tenant's newest entry under
  WFQ (so one tenant's burst cannot shed another tenant's traffic).
* **Reactive autoscaling** — an attached
  :class:`~repro.faas.admission.ReactiveAutoscaler` raises each action's
  ``max_containers`` ceiling under queue/rejection pressure and lowers it
  when keep-alive eviction reclaims idle containers.
* **Warmth surface** — :meth:`Invoker.snapshot` exports a structured view
  (idle-warm containers per action, queue depth — total and per tenant —
  boots in flight, cores in use) that scheduling policies consume instead
  of a single scalar load, and :meth:`Invoker.release_queued` /
  :meth:`Invoker.adopt` let a cluster scheduler move queued invocations
  between invokers (work stealing) *through the admission queue*, so
  steals dequeue in the same fair order as local dispatch.
"""

from __future__ import annotations

import random
from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Mapping, Optional, Tuple, Union

from repro.config import ADMISSION_POLICIES, DEFAULT_KEEP_ALIVE_SECONDS
from repro.errors import ActionNotFoundError, PlatformError
from repro.faas.action import ActionSpec
from repro.faas.admission import (
    AdmissionQueue,
    ReactiveAutoscaler,
    TenantQuotas,
    WeightedFairQueue,
    create_admission_queue,
)
from repro.faas.container import Container
from repro.faas.request import Invocation, InvocationStatus
from repro.faas.restorecost import restore_seconds_for
from repro.kernel.kernel import SimKernel
from repro.sim.events import EventLoop, RecurringTimer
from repro.sim.costs import CostModel, DEFAULT_COST_MODEL
from repro.sim.rng import fallback_stream

CompletionCallback = Callable[[Invocation], None]

#: Cap on retained per-invoker cold-start/cold-dispatch timestamps.  The
#: stamps feed windowed attribution (e.g. "cold starts on the rising
#: diurnal edge"), which only ever looks at the recent past; keeping the
#: newest 64 Ki bounds invoker memory on million-invocation traces while
#: leaving every experiment in this repo (≪ the cap) byte-identical.
COLD_EVENT_SAMPLE_CAP = 65536

#: How an invoker builds per-action admission queues: a registry name
#: (``"fifo"``/``"wfq"``) or a zero-argument factory for custom policies
#: (e.g. a :class:`~repro.faas.admission.WeightedFairQueue` with weights).
AdmissionFactory = Union[str, Callable[[], AdmissionQueue]]


@dataclass
class _ActionPool:
    """Warm containers and the waiting queue of one action."""

    spec: ActionSpec
    #: The pluggable waiting queue (admission order + shed choice).
    queue: AdmissionQueue
    #: Ceiling on containers this invoker may host for the action.
    max_containers: int = 1
    #: How many containers were pre-warmed at deploy time (the eviction floor).
    prewarmed: int = 0
    containers: List[Container] = field(default_factory=list)
    idle: Deque[Container] = field(default_factory=deque)
    #: Cold starts in flight (booting on a core or waiting in the backlog,
    #: not yet in the pool).
    cold_starting: int = 0
    #: Held restorable snapshots (demoted containers) of this action, in
    #: demotion order — :meth:`Invoker._begin_restore` revives the newest
    #: first (the most recently live image).  Snapshots are not live
    #: containers: they serve nothing and count toward no warm pool until
    #: an on-core restore (priced by the configured isolation mechanism)
    #: returns them to ``idle``.
    snapshots: Deque[Container] = field(default_factory=deque)
    #: Snapshot restores in flight (on a core or waiting in the backlog,
    #: not yet back in the pool) — the restore-side twin of
    #: ``cold_starting``.
    restoring: int = 0
    #: Invocations shed from this action's queue over the pool's lifetime
    #: (the autoscaler's rejection-pressure signal).
    rejected: int = 0
    #: Invocations submitted to this pool over its lifetime (counted at
    #: arrival, before quota/backpressure decide their fate — the offered
    #: demand signal a forecaster consumes).  Adopted steals are not
    #: re-counted: the victim already recorded that arrival.
    arrivals: int = 0
    #: Recent arrival timestamps (bounded; oldest dropped first) — an
    #: observability surface finer-grained than the cumulative counter
    #: the forecaster consumes.
    arrival_times: Deque[float] = field(default_factory=lambda: deque(maxlen=4096))
    #: This pool's current contribution to the invoker's incrementally
    #: maintained uncovered-queue total: ``max(0, len(queue) -
    #: cold_starting - restoring)`` as of the last state transition.
    uncovered: int = 0
    #: Creation sequence number (== the pool's position in the invoker's
    #: insertion-ordered pool dict).  Index-driven steal scans sort
    #: candidate actions by this to reproduce the pool-order iteration of
    #: the full scan bit for bit.
    seq: int = 0


@dataclass(frozen=True)
class InvokerSnapshot:
    """A structured view of one invoker's instantaneous state.

    This is the signal surface scheduling policies consume: instead of a
    single scalar load they see *where* the warm containers are, how much
    work is already waiting, and how many boots are in flight — the
    ingredients a warmth-aware routing decision needs.
    """

    invoker_id: str
    #: Total cores and cores currently occupied (execution, restoration,
    #: or a container boot — boots are charged to cores).
    cores: int
    cores_in_use: int
    #: Boots occupying a core right now / waiting in the backlog for one.
    booting: int
    pending_boots: int
    #: Invocations waiting in per-action queues, total.
    queued: int
    #: Waiting invocations not already covered by a cold start in flight.
    #: A queued invocation whose boot is underway represents the *same*
    #: unit of demand as that boot, so the load metric counts it once.
    queued_uncovered: int
    #: Waiting invocations per tenant across all actions (the fairness
    #: signal surface: who is occupying this invoker's queue slots).
    queued_by_tenant: Mapping[str, int]
    #: Idle warm containers per action (only actions with at least one).
    idle_warm: Mapping[str, int]
    #: All containers per action, busy or idle (only non-empty pools).
    warm_total: Mapping[str, int]
    #: Boots *and snapshot restores* in flight per action (only actions
    #: with at least one) — both occupy (or wait for) a core and both end
    #: with a container joining the pool, so warmth-aware consumers see
    #: them as capacity already underway.
    boots_in_flight: Mapping[str, int]
    #: Further containers the invoker may still boot, per action.
    growth_headroom: Mapping[str, int]
    #: Waiting invocations per action (only actions with at least one) —
    #: the cluster-level demand signal a capacity planner aggregates.
    queued_per_action: Mapping[str, int] = field(default_factory=dict)
    #: Deploy-time pre-warmed containers per action (the eviction floor;
    #: only actions with at least one).  Together with ``warm_total`` this
    #: makes planner-seeded capacity observable: ``warm_total - prewarmed``
    #: is the dynamic (migratable) part of each pool.
    prewarmed: Mapping[str, int] = field(default_factory=dict)
    #: Lifetime invocations submitted per action (only actions with at
    #: least one) — the arrival-demand signal a forecasting control plane
    #: differences tick over tick to estimate per-action arrival rates.
    arrivals_total: Mapping[str, int] = field(default_factory=dict)
    #: Held restorable snapshots per action (only actions with at least
    #: one): capacity the invoker can revive with a cheap on-core restore
    #: instead of a full boot — the middle tier of the warmth spectrum.
    snapshots_held: Mapping[str, int] = field(default_factory=dict)

    @property
    def load(self) -> int:
        """The least-loaded metric: busy cores + backlogged boots + queue.

        Queued invocations already covered by a boot in flight are not
        added again — the boot (on a core or in ``pending_boots``) already
        represents that demand.
        """
        return self.cores_in_use + self.pending_boots + self.queued_uncovered

    @property
    def free_cores(self) -> int:
        """Cores with nothing to run right now."""
        return self.cores - self.cores_in_use

    def warmth(self, action: str) -> int:
        """Containers (existing, booting, or restoring) for ``action``."""
        return self.warm_total.get(action, 0) + self.boots_in_flight.get(action, 0)

    def restorable(self, action: str) -> int:
        """Held snapshots of ``action`` (the restorable warmth tier)."""
        return self.snapshots_held.get(action, 0)


class Invoker:
    """Hosts containers and executes invocations on a fixed number of cores."""

    def __init__(
        self,
        loop: EventLoop,
        *,
        cores: int = 1,
        kernel: Optional[SimKernel] = None,
        cost_model: Optional[CostModel] = None,
        rng: Optional[random.Random] = None,
        verify_isolation: bool = False,
        invoker_id: str = "invoker-0",
        max_queue_per_action: Optional[int] = None,
        keep_alive_seconds: float = DEFAULT_KEEP_ALIVE_SECONDS,
        admission: AdmissionFactory = "fifo",
        quotas: Optional[TenantQuotas] = None,
        restorable_snapshots: bool = False,
        snapshot_budget: Optional[int] = None,
        isolation_mechanism: str = "gh",
        restore_pricer: Optional[Callable[[Container], float]] = None,
        tracer=None,
    ) -> None:
        if cores < 1:
            raise PlatformError("an invoker needs at least one core")
        if keep_alive_seconds <= 0:
            raise PlatformError("keep_alive_seconds must be positive")
        if max_queue_per_action is not None and max_queue_per_action < 1:
            raise PlatformError("max_queue_per_action must be >= 1 or None")
        if snapshot_budget is not None:
            if not restorable_snapshots:
                raise PlatformError("snapshot_budget requires restorable_snapshots")
            if snapshot_budget < 0:
                raise PlatformError("snapshot_budget must be >= 0 or None")
        if isinstance(admission, str) and admission not in ADMISSION_POLICIES:
            raise PlatformError(
                f"unknown admission policy {admission!r}; "
                f"choose one of {ADMISSION_POLICIES}"
            )
        self.loop = loop
        self.cores = cores
        self.cost_model = cost_model if cost_model is not None else DEFAULT_COST_MODEL
        self.kernel = kernel if kernel is not None else SimKernel(self.cost_model)
        self.rng = rng if rng is not None else fallback_stream("faas.invoker")
        self.verify_isolation = verify_isolation
        self.invoker_id = invoker_id
        self.max_queue_per_action = max_queue_per_action
        self.keep_alive_seconds = keep_alive_seconds
        self._admission = admission
        #: Shared (usually cluster-wide) per-tenant admission quotas.
        self.quotas = quotas
        #: The warmth spectrum: when True, keep-alive eviction and drains
        #: *demote* dynamic containers to held restorable snapshots, and
        #: demand revives them with an on-core restore priced by
        #: ``isolation_mechanism`` instead of a full boot.  Off (the
        #: default), evictions destroy containers — the binary
        #: warm-vs-cold behaviour, bit for bit.
        self.restorable_snapshots = restorable_snapshots
        #: Cap on held snapshots across all pools (None = unbounded);
        #: exceeding demotes discard the least-recently-demoted snapshot.
        self.snapshot_budget = snapshot_budget
        #: Which mechanism's restore model prices snapshot restores.
        self.isolation_mechanism = isolation_mechanism
        #: Test/experiment override: a ``Container -> seconds`` pricer
        #: used instead of the mechanism model when provided.
        self.restore_pricer = restore_pricer
        #: Flight recorder (a ``repro.faas.obs.TraceRecorder``) shared
        #: cluster-wide, or ``None`` with tracing off — every
        #: instrumentation site below guards on that, so the untraced
        #: path allocates nothing and changes no scheduling.
        self.tracer = tracer
        #: Held snapshots across all pools in demotion order — the
        #: invoker-wide LRU the snapshot budget discards from.
        self._snapshot_lru: Deque[Tuple[_ActionPool, Container]] = deque()
        #: Attached by :meth:`ReactiveAutoscaler.attach`; None = static
        #: per-action container ceilings.
        self.autoscaler: Optional[ReactiveAutoscaler] = None
        self._pools: Dict[str, _ActionPool] = {}
        self._cores_in_use = 0
        #: Boots currently occupying a core.
        self._booting = 0
        #: Boots and snapshot restores waiting for a free core, in request
        #: order.  The third element prices the work: ``None`` for a full
        #: boot (cost comes from ``initialize()``), or the restore's
        #: pre-computed core-seconds for a snapshot revival.
        self._boot_backlog: Deque[
            Tuple[_ActionPool, Container, Optional[float]]
        ] = deque()
        #: Incrementally maintained sum of ``max(0, queue - cold_starting)``
        #: over all pools — the queue term of :attr:`load`, kept O(1) by
        #: per-pool deltas at every state transition (see ``_touch_pool``).
        self._queued_uncovered = 0
        #: Monotone counter bumped at every cluster-visible state change;
        #: :meth:`snapshot` reuses its cached result while it is unchanged.
        self._state_version = 0
        self._snapshot_cache: Optional[InvokerSnapshot] = None
        self._snapshot_version = -1
        #: Cluster index attachment (see :class:`~repro.faas.index.
        #: ClusterIndex`): a listener fed O(1) load/queue-depth/warmth
        #: deltas at state-transition points, and this invoker's position
        #: in the cluster's invoker list.  ``None``/-1 when unattached.
        self.index_listener = None
        self.index_position = -1
        self._eviction_timer: Optional[RecurringTimer] = None
        #: Hook a cluster scheduler installs to learn when this invoker has
        #: a free core it cannot use (nothing dispatchable, no boot to
        #: start) — the moment work stealing becomes worthwhile.
        self.spare_capacity_callback: Optional[Callable[["Invoker"], None]] = None
        self.invocations_submitted = 0
        self.invocations_dispatched = 0
        self.invocations_completed = 0
        self.invocations_rejected = 0
        #: Invocations refused because their tenant exhausted its quota.
        self.invocations_throttled = 0
        #: Dispatches served by an already-warm container (every dispatch
        #: except the first request of a dynamically booted container whose
        #: boot completed after the request was submitted — i.e. the boot
        #: was on that request's critical path).
        self.warm_hits = 0
        #: Containers cold-started *on demand* over the invoker's lifetime
        #: (counted when the boot is requested; see ``boots_cancelled``).
        #: Control-plane seeds boot off the demand path and are counted in
        #: ``prewarms`` instead, so this counter keeps meaning "boots that
        #: queued work was waiting for".
        self.cold_starts = 0
        #: When each on-demand boot was requested (parallel to
        #: ``cold_starts``) — lets experiments attribute cold-start storms
        #: to windows of the run (e.g. the rising edge of a diurnal cycle).
        #: Bounded: only the most recent ``COLD_EVENT_SAMPLE_CAP`` stamps
        #: are retained so million-invocation traces stay O(1) per
        #: invoker; the scalar ``cold_starts`` counter is never truncated.
        self.cold_start_times: Deque[float] = deque(maxlen=COLD_EVENT_SAMPLE_CAP)
        #: When each *cold dispatch* happened: a request served by a
        #: container whose boot sat on its critical path (the complement
        #: of ``warm_hits``, time-resolved).  Bounded like
        #: ``cold_start_times``.
        self.cold_dispatch_times: Deque[float] = deque(maxlen=COLD_EVENT_SAMPLE_CAP)
        #: Backlogged boots cancelled before they reached a core (their
        #: demand disappeared, e.g. the queued work was stolen away).
        self.boots_cancelled = 0
        #: Core-seconds spent booting containers (the cold-start CPU bill).
        self.boot_core_seconds = 0.0
        #: Dynamic containers reclaimed by keep-alive eviction (or drained
        #: early by the control plane; see ``drains``).
        self.evictions = 0
        #: Containers booted proactively by a control plane (:meth:`prewarm`)
        #: rather than in response to queued demand.
        self.prewarms = 0
        #: Idle dynamic containers reclaimed early by :meth:`drain` (a
        #: subset of ``evictions``).
        self.drains = 0
        #: Invocations this invoker pulled from peers (work stealing).
        self.steals = 0
        #: Invocations peers pulled out of this invoker's queues.
        self.stolen_away = 0
        #: Dynamic containers demoted to held snapshots (instead of being
        #: destroyed) by keep-alive eviction or a drain.
        self.demotes = 0
        #: Held snapshots discarded to stay within ``snapshot_budget``.
        self.snapshot_discards = 0
        #: Snapshot restores begun (including zero-cost promotions).
        self.restores = 0
        #: When each restore was begun — the restore-side twin of
        #: ``cold_start_times``, same bound.
        self.restore_times: Deque[float] = deque(maxlen=COLD_EVENT_SAMPLE_CAP)
        #: Dispatches whose container was revived from a snapshot with the
        #: restore on the request's critical path — the middle dispatch
        #: class between ``warm_hits`` and cold dispatches.
        self.restore_dispatches = 0
        #: When each restore dispatch happened (bounded like
        #: ``cold_dispatch_times``).
        self.restore_dispatch_times: Deque[float] = deque(
            maxlen=COLD_EVENT_SAMPLE_CAP
        )
        #: Core-seconds spent restoring snapshots (the restore CPU bill,
        #: next to ``boot_core_seconds``).
        self.restore_core_seconds = 0.0

    # ------------------------------------------------------------------
    # Incremental state tracking (snapshot cache + cluster index feed)
    # ------------------------------------------------------------------

    def attach_index(self, listener, position: int) -> None:
        """Attach a cluster-index listener and backfill the current state.

        ``listener`` receives O(1) deltas at every state-transition point:
        ``load_changed(position, load)``, ``depth_changed(position, action,
        depth)``, ``warmth_changed(position, action, warm)`` and
        ``snapshot_changed(position, action, has_snapshot)``.  The
        listener is expected to deduplicate (notifications re-stating the
        current value are legal and common).
        """
        self.index_listener = listener
        self.index_position = position
        for pool in self._pools.values():
            listener.depth_changed(position, pool.spec.name, len(pool.queue))
            listener.warmth_changed(
                position,
                pool.spec.name,
                len(pool.containers) + pool.cold_starting + pool.restoring > 0,
            )
            listener.snapshot_changed(
                position, pool.spec.name, len(pool.snapshots) > 0
            )
        listener.load_changed(position, self.load)

    def _touch(self) -> None:
        """Mark cluster-visible state dirty; push the new load to the index."""
        self._state_version += 1
        listener = self.index_listener
        if listener is not None:
            listener.load_changed(
                self.index_position,
                self._cores_in_use + len(self._boot_backlog) + self._queued_uncovered,
            )

    def _touch_pool(self, pool: _ActionPool) -> None:
        """Re-derive one pool's demand contribution and notify the index.

        Called after any mutation that may have changed the pool's queue
        depth, cold-starts in flight, container set, or counters.  Keeps
        ``_queued_uncovered`` exact by applying the pool's delta, then
        feeds the per-action queue depth and warmth to the attached index
        and bumps the snapshot version via :meth:`_touch`.
        """
        uncovered = len(pool.queue) - pool.cold_starting - pool.restoring
        if uncovered < 0:
            uncovered = 0
        if uncovered != pool.uncovered:
            self._queued_uncovered += uncovered - pool.uncovered
            pool.uncovered = uncovered
        listener = self.index_listener
        if listener is not None:
            listener.depth_changed(
                self.index_position, pool.spec.name, len(pool.queue)
            )
            listener.warmth_changed(
                self.index_position,
                pool.spec.name,
                len(pool.containers) + pool.cold_starting + pool.restoring > 0,
            )
            listener.snapshot_changed(
                self.index_position, pool.spec.name, len(pool.snapshots) > 0
            )
        self._touch()

    # ------------------------------------------------------------------
    # Deployment
    # ------------------------------------------------------------------

    def deploy(
        self,
        spec: ActionSpec,
        containers: int = 1,
        *,
        max_containers: Optional[int] = None,
    ) -> List[Container]:
        """Deploy an action with ``containers`` pre-warmed container instances.

        Containers are initialised eagerly, mirroring the paper's setup that
        deliberately excludes cold starts from the measurements.  When
        ``max_containers`` exceeds ``containers``, the pool may additionally
        grow on demand (cold starts) up to that ceiling.
        """
        if containers < 1:
            raise PlatformError("an action needs at least one container")
        if max_containers is not None and max_containers < containers:
            raise PlatformError("max_containers must be >= the pre-warmed count")
        pool = self._new_pool(
            spec, containers if max_containers is None else max_containers
        )
        pool.prewarmed = containers
        for _ in range(containers):
            container = self._build_container(spec, dynamic=False)
            container.initialize()
            pool.containers.append(container)
            pool.idle.append(container)
        self._touch_pool(pool)
        return list(pool.containers)

    def register(self, spec: ActionSpec, *, max_containers: int = 1) -> None:
        """Make an action known without pre-warming any containers.

        The invoker will cold-start containers on demand (up to
        ``max_containers``) when invocations for the action arrive.  This is
        how a cluster installs an action on the invokers that are not its
        home: they can absorb overflow or rerouted traffic, but pay the
        cold-start cost when they do.
        """
        if max_containers < 1:
            raise PlatformError("a registered action needs max_containers >= 1")
        pool = self._new_pool(spec, max_containers)
        self._touch_pool(pool)

    def _new_pool(self, spec: ActionSpec, max_containers: int) -> _ActionPool:
        if spec.name in self._pools:
            raise PlatformError(f"action {spec.name!r} is already deployed")
        pool = _ActionPool(
            spec=spec,
            queue=self._new_queue(),
            max_containers=max_containers,
            seq=len(self._pools),
        )
        self._pools[spec.name] = pool
        return pool

    def _new_queue(self) -> AdmissionQueue:
        if callable(self._admission):
            return self._admission()
        return create_admission_queue(self._admission)

    def _build_container(self, spec: ActionSpec, *, dynamic: bool) -> Container:
        return Container(
            spec,
            kernel=self.kernel,
            cost_model=self.cost_model,
            rng=random.Random(self.rng.getrandbits(32)),
            dynamic=dynamic,
        )

    def pool(self, action: str) -> List[Container]:
        """The containers deployed for ``action``."""
        return list(self._require_pool(action).containers)

    def action_spec(self, action: str) -> ActionSpec:
        """The deployment descriptor of ``action``."""
        return self._require_pool(action).spec

    def hosts(self, action: str) -> bool:
        """True if the action is deployed or registered on this invoker."""
        return action in self._pools

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def submit(self, invocation: Invocation, callback: CompletionCallback) -> None:
        """Throttle, dispatch, queue, grow the pool for, or shed one invocation."""
        pool = self._require_pool(invocation.action)
        arrival = self.loop.now
        self.invocations_submitted += 1
        pool.arrivals += 1
        pool.arrival_times.append(arrival)
        trace = invocation.trace
        if trace is not None:
            trace.arrive(arrival, self.invoker_id)
        # Quota enforcement comes first: a tenant over its admission rate
        # is refused outright — even when capacity is free — with the
        # distinct THROTTLED status (policy, not backpressure).
        if self.quotas is not None and not self.quotas.admit(
            invocation.caller, arrival
        ):
            self.invocations_throttled += 1
            invocation.mark_throttled(
                arrival,
                f"{self.invoker_id}: tenant {invocation.caller!r} exceeded its "
                f"admission quota",
            )
            if trace is not None:
                trace.throttle(arrival)
            self._touch_pool(pool)
            callback(invocation)
            return
        invocation.status = InvocationStatus.QUEUED
        if self.restorable_snapshots:
            # A held snapshot whose restore is free is warm capacity in
            # all but name: promote it before the idle check so dispatch
            # sees it exactly as live-warm (the zero-cost spectrum is
            # observationally identical to never having demoted).
            self._promote_free_snapshot(pool)
        if pool.idle and self._cores_in_use < self.cores:
            self._dispatch(pool, invocation, callback, arrival)
            return
        # Shed before considering growth: an invocation the bounded queue
        # refuses is not demand, and must not trigger a container boot.
        # The admission queue picks the victim: FIFO always sheds the
        # newcomer; WFQ displaces the dominant tenant's newest entry so a
        # polite tenant's request still gets its slot.
        if (
            self.max_queue_per_action is not None
            and len(pool.queue) >= self.max_queue_per_action
        ):
            displaced = pool.queue.displace(invocation.caller)
            if displaced is None:
                self._shed(pool, invocation, callback)
                self._signal_autoscaler(pool)
                self._touch_pool(pool)
                return
            victim, victim_callback, _victim_arrival = displaced
            self._shed(pool, victim, victim_callback)
        self._maybe_cold_start(pool, waiting=len(pool.queue) + 1)
        if trace is not None:
            trace.enqueue(arrival)
        pool.queue.push((invocation, callback, arrival))
        self._signal_autoscaler(pool)
        self._touch_pool(pool)

    def _maybe_cold_start(self, pool: _ActionPool, *, waiting: int) -> None:
        """Grow the pool if ``waiting`` invocations outstrip the boots in flight.

        The demand-matched growth rule: boot another container only when
        the action is container-bound — no idle container exists and the
        boots already underway don't cover the waiting demand (``waiting``
        counts the queue plus any invocation about to join it).  When
        containers sit idle the bottleneck is cores, and another container
        would not help.

        Under the warmth spectrum, a held snapshot outranks a boot: the
        same demand that would have triggered a cold start instead begins
        an on-core *restore* (orders of magnitude cheaper), falling back
        to a boot only when no snapshot is held.
        """
        if pool.idle:
            return
        if pool.cold_starting + pool.restoring >= waiting:
            return
        if self.restorable_snapshots and pool.snapshots:
            self._begin_restore(pool)
            return
        if self._can_cold_start(pool):
            self._cold_start(pool)

    def _shed(
        self, pool: _ActionPool, invocation: Invocation, callback: CompletionCallback
    ) -> None:
        """Reject one invocation the bounded queue has no room for."""
        self.invocations_rejected += 1
        pool.rejected += 1
        invocation.mark_rejected(
            self.loop.now,
            f"{self.invoker_id}: queue for {invocation.action!r} is full "
            f"({self.max_queue_per_action} waiting)",
        )
        if invocation.trace is not None:
            invocation.trace.reject(self.loop.now, invocation.error)
        callback(invocation)

    def _signal_autoscaler(self, pool: _ActionPool) -> None:
        if self.autoscaler is not None:
            self.autoscaler.observe(pool.spec.name, len(pool.queue), pool.rejected)

    def _dispatch(
        self,
        pool: _ActionPool,
        invocation: Invocation,
        callback: CompletionCallback,
        arrival: float,
    ) -> None:
        container = pool.idle.popleft()
        self._cores_in_use += 1
        now = self.loop.now
        invocation.dispatched_at = now
        invocation.queue_seconds = now - arrival
        invocation.status = InvocationStatus.RUNNING
        self.invocations_dispatched += 1
        # Three dispatch classes, checked most-specific first.  A *restore*
        # dispatch is the first request of a container revived from a held
        # snapshot whose restore finished after the request was submitted
        # — the restore sat on its critical path (far shorter than a
        # boot, but not free).  A dispatch is a *cold* start only when it
        # is the first request of a dynamically booted container whose
        # boot finished after the request was submitted.  Everything else
        # — including the first request of a container pre-warmed or
        # restored *ahead* of it — is a warm hit: that is precisely the
        # service pre-warming (and snapshot-holding) buys.
        if (
            container.restored_from_snapshot
            and container.requests_served == container.requests_served_at_restore
            and container.ready_at > invocation.submitted_at
        ):
            self.restore_dispatches += 1
            self.restore_dispatch_times.append(now)
            dispatch_class = "restore"
        elif not (
            container.dynamic
            and container.requests_served == 0
            and container.ready_at > invocation.submitted_at
        ):
            self.warm_hits += 1
            dispatch_class = "warm"
        else:
            self.cold_dispatch_times.append(now)
            dispatch_class = "cold"
        trace = invocation.trace
        if trace is not None:
            trace.dispatch(
                now, dispatch_class, container.container_id, container.ready_at
            )

        execution = container.execute(invocation, verify=self.verify_isolation)
        invocation.invoker_seconds = execution.invoker_seconds
        if trace is not None:
            trace.execute_seconds = execution.invoker_seconds
        completion_time = now + execution.invoker_seconds
        available_time = completion_time + execution.unavailable_seconds

        def complete() -> None:
            invocation.mark_completed(self.loop.now, execution.report.result.response)
            self.invocations_completed += 1
            callback(invocation)

        def release() -> None:
            self._cores_in_use -= 1
            container.idle_since = self.loop.now
            pool.idle.append(container)
            self._touch_pool(pool)
            self._drain_queues()

        self.loop.schedule_at(completion_time, complete, label=f"complete:{invocation.invocation_id}")
        self.loop.schedule_at(available_time, release, label=f"release:{container.container_id}")
        self._touch_pool(pool)

    def _drain_queues(self) -> None:
        """Use freed cores: dispatch queued work, then start pending boots.

        Dispatching to warm containers takes priority over starting boots —
        a warm container serves a request in milliseconds while a boot
        occupies its core for the whole initialisation.  If cores remain
        free after both, the spare-capacity hook fires so a cluster
        scheduler can steal work from saturated peers.
        """
        progressed = True
        while progressed and self._cores_in_use < self.cores:
            progressed = False
            for pool in self._pools.values():
                if self.restorable_snapshots and pool.queue and not pool.idle:
                    self._promote_free_snapshot(pool)
                if pool.queue and pool.idle and self._cores_in_use < self.cores:
                    invocation, callback, arrival = pool.queue.pop_next()
                    self._dispatch(pool, invocation, callback, arrival)
                    progressed = True
        self._start_boots()
        if self._cores_in_use < self.cores and self.spare_capacity_callback is not None:
            self.spare_capacity_callback(self)

    # ------------------------------------------------------------------
    # Work stealing (driven by the cluster scheduler)
    # ------------------------------------------------------------------

    def release_queued(
        self, action: str, *, newest: bool = False
    ) -> Tuple[Invocation, CompletionCallback, float]:
        """Give up one queued invocation of ``action`` to a stealing peer.

        By default the invocation the admission queue would dispatch next
        is released (the queue head under FIFO, the fair-order head under
        WFQ), so the steal preserves the queue's discipline: the stolen
        invocation is the one that would have run next anyway, and a
        tenant-fair queue stays tenant-fair across the move.
        ``newest=True`` releases the most recently enqueued entry instead —
        used when the thief must boot a container first, so the request
        that would have waited longest seeds the new warm container while
        the older ones keep their positions here.

        Returns the ``(invocation, callback, arrival)`` entry; the arrival
        timestamp travels with the invocation so its queue time stays
        honest across the move.
        """
        pool = self._require_pool(action)
        if not pool.queue:
            raise PlatformError(
                f"{self.invoker_id}: no queued invocation of {action!r} to steal"
            )
        entry = pool.queue.pop_newest() if newest else pool.queue.pop_next()
        self.stolen_away += 1
        self._cancel_surplus_boot(pool)
        self._touch_pool(pool)
        return entry

    def adopt(
        self,
        invocation: Invocation,
        callback: CompletionCallback,
        arrival: float,
    ) -> None:
        """Take over an invocation stolen from a peer.

        Dispatches immediately when a warm container and a core are free;
        otherwise queues it here, booting a container on demand with the
        same demand-matching rule as :meth:`submit`.  The original arrival
        time is preserved.  Unlike :meth:`submit`, an adopted invocation is
        neither quota-checked nor shed: the victim already admitted it
        (spending its tenant's token), so throttling or rejecting it here
        would double-charge admission — the scheduler keeps bounded thief
        queues from overfilling by checking :meth:`queue_capacity` before
        stealing.
        """
        pool = self._require_pool(invocation.action)
        self.steals += 1
        trace = invocation.trace
        if trace is not None:
            trace.steal(self.loop.now, self.invoker_id)
        if self.tracer is not None:
            self.tracer.audit(
                self.loop.now,
                "steal",
                f"adopted {invocation.invocation_id} ({invocation.action})",
                actor=self.invoker_id,
            )
        if self.restorable_snapshots:
            self._promote_free_snapshot(pool)
        if pool.idle and self._cores_in_use < self.cores:
            self._dispatch(pool, invocation, callback, arrival)
            return
        self._maybe_cold_start(pool, waiting=len(pool.queue) + 1)
        if trace is not None:
            trace.enqueue(self.loop.now)
        pool.queue.push((invocation, callback, arrival))
        self._signal_autoscaler(pool)
        self._touch_pool(pool)

    # ------------------------------------------------------------------
    # Dynamic pools: cold start on demand, keep-alive eviction
    # ------------------------------------------------------------------

    def _growth_ceiling(self, pool: _ActionPool) -> int:
        # A container occupies its core through execution *and* post-request
        # restoration, so containers beyond the core count can never run
        # concurrently — growth is useful only up to min(ceiling, cores).
        return min(pool.max_containers, self.cores)

    def _can_cold_start(self, pool: _ActionPool) -> bool:
        return len(pool.containers) + pool.cold_starting < self._growth_ceiling(pool)

    def growth_headroom(self, action: str) -> int:
        """How many more containers this invoker may boot for ``action``."""
        pool = self._require_pool(action)
        return max(
            0, self._growth_ceiling(pool) - len(pool.containers) - pool.cold_starting
        )

    def max_containers(self, action: str) -> int:
        """The action's current container ceiling on this invoker."""
        return self._require_pool(action).max_containers

    def set_max_containers(self, action: str, value: int) -> None:
        """Set the action's container ceiling (>= the pre-warmed floor).

        Lowering the ceiling below the current container count only blocks
        further growth; existing containers drain through normal keep-alive
        eviction rather than being killed mid-flight.
        """
        pool = self._require_pool(action)
        if value < max(1, pool.prewarmed):
            raise PlatformError(
                f"{self.invoker_id}: max_containers for {action!r} cannot drop "
                f"below the pre-warmed floor ({max(1, pool.prewarmed)})"
            )
        pool.max_containers = value
        self._touch_pool(pool)

    def scale_action(self, action: str, delta: int) -> Optional[int]:
        """Nudge the action's container ceiling by ``delta``, clamped.

        The ceiling stays within ``[pre-warmed floor, cores]`` — growth
        beyond the core count can never run, and the floor is the deployed
        capacity the tenant paid for.  Returns the new ceiling, or ``None``
        when the clamp left it unchanged.  Scaling up immediately considers
        a demand-matched cold start so the new headroom is used.
        """
        pool = self._require_pool(action)
        floor = max(1, pool.prewarmed)
        target = max(floor, min(self.cores, pool.max_containers + delta))
        if target == pool.max_containers:
            return None
        pool.max_containers = target
        if delta > 0:
            self._maybe_cold_start(pool, waiting=len(pool.queue))
        self._touch_pool(pool)
        return target

    def queue_capacity(self, action: str) -> bool:
        """True if ``action``'s queue can take one more entry without
        breaching the backpressure bound (always true when unbounded)."""
        if self.max_queue_per_action is None:
            return True
        return self.queued_invocations(action) < self.max_queue_per_action

    # ------------------------------------------------------------------
    # Control-plane actuation: pre-warm, drain, runtime weights
    # ------------------------------------------------------------------

    def can_prewarm(self, action: str, *, raise_ceiling: bool = False) -> bool:
        """Whether a :meth:`prewarm` would actually boot a container now.

        ``raise_ceiling=True`` answers for the planner's actuation pattern
        — a one-step :meth:`scale_action` ceiling raise followed by the
        prewarm — so a planner can verify a seed will land *before* paying
        for it (e.g. before draining a container elsewhere to fund it).
        The core count stays a hard bound either way: containers beyond
        the cores can never run.  A held snapshot always answers yes —
        the pre-warm revives it with a cheap restore instead of a boot,
        and a revived container was within the ceiling when it was built.
        """
        pool = self._require_pool(action)
        if self.restorable_snapshots and pool.snapshots:
            return True
        ceiling = min(
            pool.max_containers + (1 if raise_ceiling else 0), self.cores
        )
        return len(pool.containers) + pool.cold_starting < ceiling

    def prewarm(self, action: str) -> bool:
        """Boot one container for ``action`` proactively (capacity seeding).

        Unlike the demand-matched growth of :meth:`submit`, a pre-warm is
        a *planning* decision: a cluster control plane seeds warm capacity
        on an invoker **before** traffic (or a work steal) lands there, so
        the boot happens off the critical path of any request.  The
        container is dynamic — if the planned demand never materialises,
        keep-alive eviction reclaims it like any other on-demand boot.

        Returns ``False`` (and boots nothing) when the action has no
        growth headroom left on this invoker.

        Under the warmth spectrum a held snapshot is seeded by *restore*
        instead: the pre-warm revives the newest snapshot at its priced
        restore cost — a far cheaper way for a planner to fund capacity
        than a full boot (and the reason demoting beats draining).
        """
        pool = self._require_pool(action)
        if self.restorable_snapshots and pool.snapshots:
            self.prewarms += 1
            self._begin_restore(pool)
            self._touch_pool(pool)
            return True
        if not self._can_cold_start(pool):
            return False
        self.prewarms += 1
        self._cold_start(pool, on_demand=False)
        self._touch_pool(pool)
        return True

    def drain(
        self, action: str, count: int = 1, *, min_idle_seconds: float = 0.0
    ) -> int:
        """Reclaim up to ``count`` idle *dynamic* containers immediately.

        The control plane's counterpart to keep-alive eviction: when
        capacity is needed elsewhere (a global container budget, a peer
        with real backlog), idle dynamic containers are released now
        instead of after the keep-alive expires.  Only containers that are
        in the idle pool are eligible — a container serving a request, or
        unavailable while its mechanism restores, is never touched — and
        pre-warmed containers (the deployed floor) are never drained.
        Nothing is drained while the action has queued work: those idle
        containers are about to be used.  ``min_idle_seconds`` further
        restricts eligibility to containers idle at least that long, so a
        planner reclaims genuinely cold capacity rather than churning a
        container that served a request milliseconds ago.

        With the warmth spectrum on, a drain *demotes* its victims to
        held snapshots (via the shared :meth:`_retire_idle` transition)
        instead of destroying them: the budget the planner frees is the
        same — a snapshot counts toward no warm pool — but the capacity
        stays revivable at restore cost rather than boot cost.

        Returns how many containers were reclaimed.
        """
        if count < 1:
            raise PlatformError("drain count must be >= 1")
        if min_idle_seconds < 0:
            raise PlatformError("min_idle_seconds must be >= 0")
        pool = self._require_pool(action)
        if pool.queue:
            return 0
        now = self.loop.now
        drained = 0
        while drained < count:
            victim = next(
                (
                    c
                    for c in pool.idle
                    if c.dynamic and now - c.idle_since >= min_idle_seconds
                ),
                None,
            )
            if victim is None:
                break
            self._retire_idle(pool, victim)
            self.evictions += 1
            self.drains += 1
            drained += 1
        if drained:
            self._touch_pool(pool)
        return drained

    def set_tenant_weight(self, tenant: str, weight: float) -> int:
        """Set ``tenant``'s WFQ weight on every fair queue of this invoker.

        Returns the number of queues updated (0 when the admission policy
        has no per-tenant weights, e.g. FIFO — the actuation is a no-op
        there rather than an error, so a control plane can drive mixed
        deployments).
        """
        updated = 0
        for pool in self._pools.values():
            if isinstance(pool.queue, WeightedFairQueue):
                pool.queue.set_weight(tenant, weight)
                updated += 1
        return updated

    def idle_pool(self, action: str) -> List[Container]:
        """The action's currently idle containers (dispatch order)."""
        return list(self._require_pool(action).idle)

    # ------------------------------------------------------------------
    # Warmth spectrum: demote on evict, restore on demand
    # ------------------------------------------------------------------

    def _restore_seconds(self, container: Container) -> float:
        """Core-seconds reviving this container's snapshot would take."""
        if self.restore_pricer is not None:
            return self.restore_pricer(container)
        init = container.init_report
        if init is None:
            return 0.0
        return restore_seconds_for(
            self.isolation_mechanism, init, self.cost_model
        )

    def _promote_free_snapshot(self, pool: _ActionPool) -> None:
        """Revive the newest held snapshot inline when its restore is free.

        A zero-cost restore needs no core and no time, so the snapshot is
        functionally an idle warm container; promoting it *before* the
        dispatch/idle checks keeps a zero-cost spectrum observationally
        identical to never having demoted (no timestamps move, no restore
        event is scheduled).  Priced restores never take this path — they
        go through the core-charged :meth:`_begin_restore`.
        """
        if pool.idle or not pool.snapshots:
            return
        container = pool.snapshots[-1]
        if self._restore_seconds(container) > 0.0:
            return
        pool.snapshots.pop()
        self._lru_remove(container)
        container.promote()
        self.restores += 1
        pool.containers.append(container)
        pool.idle.append(container)
        self._touch_pool(pool)

    def _lru_remove(self, container: Container) -> None:
        """Drop one container's entry from the demotion-order LRU."""
        for index, entry in enumerate(self._snapshot_lru):
            if entry[1] is container:
                del self._snapshot_lru[index]
                return

    def _begin_restore(self, pool: _ActionPool) -> None:
        """Start reviving the newest held snapshot on a core.

        The restore is CPU work exactly like a boot: it occupies one core
        for the priced duration, serialised against executions and other
        boots/restores, waiting in the same FIFO backlog when no core is
        free.  The newest snapshot is revived first — the most recently
        live image.
        """
        container = pool.snapshots.pop()
        self._lru_remove(container)
        price = self._restore_seconds(container)
        self.restores += 1
        self.restore_times.append(self.loop.now)
        if price <= 0.0:
            # Degenerate pricing (test override): an instant promotion.
            container.promote()
            pool.containers.append(container)
            pool.idle.append(container)
            self._touch_pool(pool)
            return
        container.begin_restore()
        pool.restoring += 1
        self._boot_backlog.append((pool, container, price))
        self._start_boots()

    def _retire_idle(self, pool: _ActionPool, container: Container) -> None:
        """The one eviction/drain transition: demote or destroy one idle
        dynamic container.

        Shared by keep-alive eviction and :meth:`drain` so the two paths
        cannot diverge: with the spectrum off the container is destroyed
        (the binary warm-vs-cold behaviour); with it on, the container is
        demoted to a held snapshot, and the least-recently-demoted
        snapshot is discarded if that breaches ``snapshot_budget``.
        Never dispatches, restores, or otherwise resurrects work — callers
        own the eviction counters and index touch.
        """
        pool.idle.remove(container)
        pool.containers.remove(container)
        if not self.restorable_snapshots:
            container.shutdown()
            if self.tracer is not None:
                self.tracer.audit(
                    self.loop.now,
                    "keep-alive",
                    f"evict {container.container_id} ({pool.spec.name})",
                    actor=self.invoker_id,
                )
            return
        container.demote()
        pool.snapshots.append(container)
        self._snapshot_lru.append((pool, container))
        self.demotes += 1
        if self.tracer is not None:
            self.tracer.audit(
                self.loop.now,
                "keep-alive",
                f"demote {container.container_id} ({pool.spec.name}) "
                f"to held snapshot",
                actor=self.invoker_id,
            )
        if self.snapshot_budget is not None:
            while len(self._snapshot_lru) > self.snapshot_budget:
                old_pool, old_container = self._snapshot_lru.popleft()
                old_pool.snapshots.remove(old_container)
                old_container.shutdown()
                self.snapshot_discards += 1
                if self.tracer is not None:
                    self.tracer.audit(
                        self.loop.now,
                        "snapshot-budget",
                        f"discard LRU snapshot {old_container.container_id} "
                        f"({old_pool.spec.name})",
                        actor=self.invoker_id,
                    )
                if old_pool is not pool:
                    self._touch_pool(old_pool)

    def snapshots_held(self, action: Optional[str] = None) -> int:
        """Held restorable snapshots (for one action or all of them).

        O(1) for the all-actions total (the budget LRU's length); used by
        warmth-aware consumers to score the middle spectrum tier without
        building snapshots.  Returns 0 for actions not hosted here.
        """
        if action is None:
            return len(self._snapshot_lru)
        pool = self._pools.get(action)
        if pool is None:
            return 0
        return len(pool.snapshots)

    def _cold_start(self, pool: _ActionPool, *, on_demand: bool = True) -> None:
        """Request one more container; the boot runs on a core when one frees.

        A boot is CPU work: building the environment, booting the runtime,
        warming the function and taking the snapshot all execute on an
        invoker core for ``init.total_seconds``, serialised against running
        containers and against other boots.  Requests therefore cannot hide
        cold starts — a storm of boots visibly eats the invoker's capacity.
        ``on_demand=False`` marks a control-plane seed: the boot is
        identical, but it is accounted under ``prewarms`` rather than
        ``cold_starts`` (no queued work is waiting for it).
        """
        container = self._build_container(pool.spec, dynamic=True)
        pool.cold_starting += 1
        if on_demand:
            self.cold_starts += 1
            self.cold_start_times.append(self.loop.now)
        self._boot_backlog.append((pool, container, None))
        self._start_boots()

    def _start_boots(self) -> None:
        """Move backlogged boots/restores onto free cores (FIFO, one each)."""
        started = False
        while self._boot_backlog and self._cores_in_use < self.cores:
            started = True
            pool, container, restore_price = self._boot_backlog.popleft()
            self._cores_in_use += 1
            if restore_price is not None:
                self.restore_core_seconds += restore_price
                if self.tracer is not None:
                    # Both span boundaries are known at begin time — the
                    # priced duration is deterministic — so the recorder
                    # never holds open spans.
                    self.tracer.record_container_span(
                        kind="restore",
                        invoker=self.invoker_id,
                        container_id=container.container_id,
                        action=pool.spec.name,
                        start=self.loop.now,
                        end=self.loop.now + restore_price,
                    )

                def restored(
                    pool: _ActionPool = pool, container: Container = container
                ) -> None:
                    self._cores_in_use -= 1
                    pool.restoring -= 1
                    container.complete_restore(self.loop.now)
                    pool.containers.append(container)
                    pool.idle.append(container)
                    self._touch_pool(pool)
                    self._ensure_eviction_timer()
                    self._drain_queues()

                self.loop.schedule(
                    restore_price,
                    restored,
                    label=f"restore:{container.container_id}",
                )
                continue
            self._booting += 1
            init = container.initialize()
            self.boot_core_seconds += init.total_seconds
            if self.tracer is not None:
                self.tracer.record_container_span(
                    kind="boot",
                    invoker=self.invoker_id,
                    container_id=container.container_id,
                    action=pool.spec.name,
                    start=self.loop.now,
                    end=self.loop.now + init.total_seconds,
                )

            def ready(pool: _ActionPool = pool, container: Container = container) -> None:
                self._cores_in_use -= 1
                self._booting -= 1
                pool.cold_starting -= 1
                container.idle_since = self.loop.now
                container.ready_at = self.loop.now
                pool.containers.append(container)
                pool.idle.append(container)
                self._touch_pool(pool)
                self._ensure_eviction_timer()
                self._drain_queues()

            self.loop.schedule(
                init.total_seconds, ready, label=f"coldstart:{container.container_id}"
            )
        if started:
            # Backlog shrank and cores filled (net-zero load, but the
            # booting/pending split the snapshot exports changed).
            self._touch()

    def _cancel_surplus_boot(self, pool: _ActionPool) -> None:
        """Drop one backlogged boot whose demand disappeared (if any).

        Only boots still waiting for a core can be cancelled; a boot
        already executing on a core runs to completion (its core time is
        spent either way, and the container will be warm for the next
        request).  Restores in flight count toward covering the remaining
        demand but are never cancelled themselves — a restore is cheap
        enough to finish, and the revived container is warm capacity.
        """
        if pool.cold_starting + pool.restoring <= len(pool.queue):
            return
        for index, (backlog_pool, _container, price) in enumerate(
            self._boot_backlog
        ):
            if backlog_pool is pool and price is None:
                del self._boot_backlog[index]
                pool.cold_starting -= 1
                self.boots_cancelled += 1
                return

    def _ensure_eviction_timer(self) -> None:
        if self._eviction_timer is None or not self._eviction_timer.active:
            self._eviction_timer = self.loop.schedule_recurring(
                self.keep_alive_seconds,
                self._evict_expired,
                label=f"keep-alive:{self.invoker_id}",
            )

    def _evict_expired(self) -> None:
        """Reclaim dynamic containers idle longer than the keep-alive.

        Each victim goes through the shared :meth:`_retire_idle`
        transition: destroyed with the spectrum off, demoted to a held
        restorable snapshot with it on.
        """
        now = self.loop.now
        for pool in self._pools.values():
            if pool.queue:
                # Work is waiting; idle containers are about to be used.
                continue
            expired = [
                c
                for c in pool.idle
                if c.dynamic and now - c.idle_since >= self.keep_alive_seconds
            ]
            for container in expired:
                self._retire_idle(pool, container)
                self.evictions += 1
                if self.autoscaler is not None:
                    # Demand faded enough for keep-alive to fire: lower the
                    # growth ceiling back toward the pre-warmed floor.
                    self.autoscaler.on_reclaim(pool.spec.name)
            if expired:
                self._touch_pool(pool)
        if not self._any_dynamic_containers() and self._eviction_timer is not None:
            # Without dynamic containers there is nothing left to evict;
            # cancelling lets drain-style event-loop runs terminate.
            self._eviction_timer.cancel()
            self._eviction_timer = None

    def _any_dynamic_containers(self) -> bool:
        return any(
            pool.cold_starting > 0 or any(c.dynamic for c in pool.containers)
            for pool in self._pools.values()
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def cores_in_use(self) -> int:
        """Cores occupied by executing, restoring, or *booting* containers."""
        return self._cores_in_use

    @property
    def booting(self) -> int:
        """Boots currently occupying a core."""
        return self._booting

    @property
    def pending_boots(self) -> int:
        """Boots requested but still waiting for a free core."""
        return len(self._boot_backlog)

    @property
    def load(self) -> int:
        """Busy cores + backlogged boots + uncovered waiting invocations.

        Counts every cold start in flight: boots on a core are inside
        ``cores_in_use`` and backlogged boots are added explicitly, so
        load-based policies are never blind to boots already underway.
        Queued invocations already covered by one of those boots are *not*
        added again — each unit of demand is counted exactly once, not
        once as the boot it triggered and once as the queue entry waiting
        for that boot.

        O(1): the queue term is the incrementally maintained
        ``_queued_uncovered`` counter, not a re-sum over all pools.
        """
        return (
            self._cores_in_use + len(self._boot_backlog) + self._queued_uncovered
        )

    def queued_uncovered(self) -> int:
        """Waiting invocations not already represented by a boot in flight.

        O(1): returns the counter ``_touch_pool`` keeps exact at every
        queue/boot transition (``sum(max(0, queue - cold_starting))``
        over all pools).
        """
        return self._queued_uncovered

    def warmth(self, action: str) -> int:
        """Containers (existing, booting, or restoring) for ``action``.

        O(1), allocation-free — the live-invoker counterpart of
        :meth:`InvokerSnapshot.warmth` for scan policies that want to skip
        building snapshots.  Returns 0 for actions not hosted here.
        """
        pool = self._pools.get(action)
        if pool is None:
            return 0
        return len(pool.containers) + pool.cold_starting + pool.restoring

    def has_idle(self, action: str) -> bool:
        """True when ``action`` has at least one idle warm container here."""
        pool = self._pools.get(action)
        return pool is not None and bool(pool.idle)

    def pool_order(self, action: str) -> int:
        """The action's pool creation sequence number (insertion order).

        Index-driven steal scans sort candidate actions by this so their
        first-match iteration reproduces the full scan's pool-order walk.
        """
        return self._require_pool(action).seq

    @property
    def warm_hit_rate(self) -> float:
        """Fraction of dispatched invocations served by a warm container."""
        if self.invocations_dispatched == 0:
            return 0.0
        return self.warm_hits / self.invocations_dispatched

    def queued_invocations(self, action: Optional[str] = None) -> int:
        """Number of invocations waiting for a container."""
        if action is not None:
            return len(self._require_pool(action).queue)
        return sum(len(pool.queue) for pool in self._pools.values())

    def queued_order(self, action: str) -> List[Invocation]:
        """The waiting invocations of one action in arrival order."""
        return self._require_pool(action).queue.invocations()

    def queued_by_tenant(self, action: Optional[str] = None) -> Dict[str, int]:
        """Waiting invocations per tenant (for one action or all of them)."""
        if action is not None:
            return self._require_pool(action).queue.tenants()
        totals: Counter = Counter()
        for pool in self._pools.values():
            totals.update(pool.queue.tenants())
        return dict(totals)

    def arrivals_total(self, action: Optional[str] = None) -> int:
        """Lifetime invocations submitted (for one action or all of them)."""
        if action is not None:
            return self._require_pool(action).arrivals
        return sum(pool.arrivals for pool in self._pools.values())

    def recent_arrival_times(self, action: str, *, since: float = 0.0) -> List[float]:
        """Recent arrival timestamps of ``action`` at or after ``since``.

        The per-pool buffer is bounded (oldest entries drop first), so
        this is a *recent-history* surface for forecasting, not a full
        arrival log.
        """
        pool = self._require_pool(action)
        return [at for at in pool.arrival_times if at >= since]

    def idle_warm_actions(self) -> List[str]:
        """Actions with at least one idle warm container, in pool order."""
        return [name for name, pool in self._pools.items() if pool.idle]

    def snapshot(self) -> InvokerSnapshot:
        """Export the structured warmth/load view policies consume.

        Dirty-flag cached: every state mutation bumps ``_state_version``,
        and while it is unchanged the previously built snapshot is
        returned as-is — control-plane ticks over a mostly-quiet cluster
        reuse unchanged snapshots instead of rebuilding the per-action
        dicts.  Snapshots are frozen and treated as read-only by all
        consumers; callers must not mutate the mapping fields.
        """
        if (
            self._snapshot_cache is not None
            and self._snapshot_version == self._state_version
        ):
            return self._snapshot_cache
        idle_warm: Dict[str, int] = {}
        warm_total: Dict[str, int] = {}
        boots: Dict[str, int] = {}
        headroom: Dict[str, int] = {}
        queued_per_action: Dict[str, int] = {}
        prewarmed: Dict[str, int] = {}
        arrivals_total: Dict[str, int] = {}
        snapshots_held: Dict[str, int] = {}
        for name, pool in self._pools.items():
            if pool.idle:
                idle_warm[name] = len(pool.idle)
            if pool.containers:
                warm_total[name] = len(pool.containers)
            if pool.cold_starting or pool.restoring:
                boots[name] = pool.cold_starting + pool.restoring
            if pool.snapshots:
                snapshots_held[name] = len(pool.snapshots)
            if pool.queue:
                queued_per_action[name] = len(pool.queue)
            if pool.prewarmed:
                prewarmed[name] = pool.prewarmed
            if pool.arrivals:
                arrivals_total[name] = pool.arrivals
            room = (
                self._growth_ceiling(pool) - len(pool.containers) - pool.cold_starting
            )
            if room > 0:
                headroom[name] = room
        snap = InvokerSnapshot(
            invoker_id=self.invoker_id,
            cores=self.cores,
            cores_in_use=self._cores_in_use,
            booting=self._booting,
            pending_boots=len(self._boot_backlog),
            queued=self.queued_invocations(),
            queued_uncovered=self.queued_uncovered(),
            queued_by_tenant=self.queued_by_tenant(),
            idle_warm=idle_warm,
            warm_total=warm_total,
            boots_in_flight=boots,
            growth_headroom=headroom,
            queued_per_action=queued_per_action,
            prewarmed=prewarmed,
            arrivals_total=arrivals_total,
            snapshots_held=snapshots_held,
        )
        self._snapshot_cache = snap
        self._snapshot_version = self._state_version
        return snap

    def stats(self) -> Dict[str, object]:
        """A snapshot of the invoker's counters (for tables and debugging)."""
        return {
            "invoker": self.invoker_id,
            "submitted": self.invocations_submitted,
            "dispatched": self.invocations_dispatched,
            "completed": self.invocations_completed,
            "rejected": self.invocations_rejected,
            "throttled": self.invocations_throttled,
            "warm_hits": self.warm_hits,
            "cold_starts": self.cold_starts,
            "boot_core_seconds": round(self.boot_core_seconds, 6),
            "evictions": self.evictions,
            "scale_ups": self.autoscaler.scale_ups if self.autoscaler else 0,
            "scale_downs": self.autoscaler.scale_downs if self.autoscaler else 0,
            "steals": self.steals,
            "stolen_away": self.stolen_away,
            "containers": sum(len(p.containers) for p in self._pools.values()),
            "prewarmed": sum(p.prewarmed for p in self._pools.values()),
            "prewarms": self.prewarms,
            "drains": self.drains,
            "demotes": self.demotes,
            "restores": self.restores,
            "restore_dispatches": self.restore_dispatches,
            "snapshots_held": len(self._snapshot_lru),
            "snapshot_discards": self.snapshot_discards,
            "restore_core_seconds": round(self.restore_core_seconds, 6),
        }

    def _require_pool(self, action: str) -> _ActionPool:
        if action not in self._pools:
            raise ActionNotFoundError(action)
        return self._pools[action]

"""The admission layer: who gets a queue slot, and in what order.

The paper's request-isolation model is *per caller* — an
:class:`~repro.faas.request.Invocation` carries the tenant identity whose
data must not leak into the next request.  This module gives the same
identity a voice in *admission*: which invocations enter an action's
bounded queue, which one is dispatched next, and which one is shed when
the queue overflows.  Before this layer existed the queueing path was
caller-blind: one tenant's burst filled the FIFO and shed everyone else's
traffic.

Three cooperating pieces:

* :class:`AdmissionQueue` — the pluggable per-action waiting queue the
  invoker enqueues into and dispatches from.  :class:`FifoQueue` preserves
  the historical behaviour bit for bit; :class:`WeightedFairQueue`
  implements deficit-round-robin (DRR) fair queueing across tenants within
  the action, and on overflow displaces the *dominant* tenant's newest
  entry instead of shedding the incoming request of a polite tenant.
* :class:`TenantQuotas` — token-bucket rate limiting per tenant, enforced
  at submit time.  Over-quota invocations are refused with the distinct
  :attr:`~repro.faas.request.InvocationStatus.THROTTLED` status, accounted
  separately from queue-overflow ``REJECTED`` sheds.
* :class:`ReactiveAutoscaler` — raises and lowers an invoker's per-action
  container ceiling (``max_containers``) from the observed admission
  signals (queue depth, rejections) instead of a static configuration
  value: sustained pressure grows the pool toward the core count,
  keep-alive evictions shrink the ceiling back toward the pre-warmed
  floor.

Everything here is deterministic: queues use insertion-ordered structures,
token buckets refill from virtual time, and the autoscaler reacts to
events in the simulation's fixed order — two identical runs admit, shed,
and scale identically.
"""

from __future__ import annotations

from collections import deque
from types import MappingProxyType
from typing import (
    Callable,
    Deque,
    Dict,
    List,
    Mapping,
    Optional,
    Tuple,
    Type,
    TYPE_CHECKING,
)

from repro.config import ADMISSION_POLICIES
from repro.errors import PlatformError
from repro.faas.request import Invocation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (invoker imports us)
    from repro.faas.invoker import Invoker

#: One waiting invocation: ``(invocation, completion callback, arrival time)``.
#: The arrival timestamp travels with the entry so queue time stays honest
#: across requeues and cross-invoker steals.
QueueEntry = Tuple[Invocation, Callable[[Invocation], None], float]


class AdmissionQueue:
    """The waiting queue of one action: pluggable order and shed policy.

    The invoker owns *capacity* (its ``max_queue_per_action`` bound); the
    queue owns *order* (which waiting invocation dispatches next, which one
    a stealing peer receives) and *shed choice* (whose entry is displaced
    when an arrival hits a full queue).
    """

    name = "abstract"

    def push(self, entry: QueueEntry) -> None:
        """Enqueue one invocation."""
        raise NotImplementedError

    def pop_next(self) -> QueueEntry:
        """Remove and return the invocation that should be served next."""
        raise NotImplementedError

    def pop_newest(self) -> QueueEntry:
        """Remove and return the most recently enqueued invocation.

        Used by tail (boot) steals: the request that would have waited
        longest seeds a new warm container on the stealing invoker.
        """
        raise NotImplementedError

    def displace(self, incoming_tenant: str) -> Optional[QueueEntry]:
        """Make room for ``incoming_tenant`` by evicting someone else's entry.

        Called when the queue is at its capacity bound.  Returns the entry
        the caller should shed instead of the incoming invocation, or
        ``None`` when the incoming invocation itself should be shed (the
        FIFO policy always sheds the newcomer; the fair policy sheds the
        newcomer only when its tenant already dominates the queue).
        """
        raise NotImplementedError

    def invocations(self) -> List[Invocation]:
        """The waiting invocations in arrival order (introspection only)."""
        raise NotImplementedError

    def tenants(self) -> Dict[str, int]:
        """Waiting invocations per tenant (the fairness signal surface)."""
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def __bool__(self) -> bool:
        return len(self) > 0


class FifoQueue(AdmissionQueue):
    """Arrival-order queueing, blind to tenants — the historical behaviour.

    ``push``/``pop_next``/``pop_newest`` map one-to-one onto the
    ``append``/``popleft``/``pop`` calls the invoker used to issue against
    a raw deque, and ``displace`` never evicts, so a deployment configured
    with FIFO admission reproduces the pre-refactor runs bit for bit.
    """

    name = "fifo"

    def __init__(self) -> None:
        self._entries: Deque[QueueEntry] = deque()
        #: Incrementally maintained per-tenant depths: :meth:`tenants` sits
        #: on the snapshot (routing) hot path and must not walk the queue.
        self._depths: Dict[str, int] = {}

    def push(self, entry: QueueEntry) -> None:
        self._entries.append(entry)
        tenant = entry[0].caller
        self._depths[tenant] = self._depths.get(tenant, 0) + 1

    def pop_next(self) -> QueueEntry:
        if not self._entries:
            raise PlatformError("cannot pop from an empty admission queue")
        return self._drop_depth(self._entries.popleft())

    def pop_newest(self) -> QueueEntry:
        if not self._entries:
            raise PlatformError("cannot pop from an empty admission queue")
        return self._drop_depth(self._entries.pop())

    def _drop_depth(self, entry: QueueEntry) -> QueueEntry:
        tenant = entry[0].caller
        remaining = self._depths[tenant] - 1
        if remaining:
            self._depths[tenant] = remaining
        else:
            del self._depths[tenant]
        return entry

    def displace(self, incoming_tenant: str) -> Optional[QueueEntry]:
        return None  # FIFO sheds the newcomer, whoever they are

    def invocations(self) -> List[Invocation]:
        return [entry[0] for entry in self._entries]

    def tenants(self) -> Dict[str, int]:
        return dict(self._depths)

    def __len__(self) -> int:
        return len(self._entries)


class WeightedFairQueue(AdmissionQueue):
    """Deficit-round-robin fair queueing across tenants within one action.

    Each tenant (the invocation's ``caller``) gets its own FIFO sub-queue;
    dispatch cycles the backlogged tenants in deterministic round-robin
    order, granting each visit ``quantum × weight`` deficit credit and
    serving one invocation per unit of credit.  With equal weights every
    backlogged tenant is served once per round, so no tenant can be starved
    by another's burst; with one tenant the round is trivial and the queue
    degenerates to exact FIFO.

    On overflow, :meth:`displace` evicts the newest entry of the tenant
    with the *deepest* sub-queue — a longest-queue-drop policy — so a
    burst only ever sheds its own traffic once it dominates the queue.
    A tenant's deficit is forfeited when its backlog drains (standard DRR:
    credit cannot be hoarded while idle).
    """

    name = "wfq"

    def __init__(
        self,
        weights: Optional[Mapping[str, float]] = None,
        *,
        quantum: float = 1.0,
    ) -> None:
        if quantum <= 0:
            raise PlatformError("WFQ quantum must be positive")
        self._weights: Dict[str, float] = {}
        for tenant, weight in (weights or {}).items():
            if weight <= 0:
                raise PlatformError(
                    f"WFQ weight for tenant {tenant!r} must be positive"
                )
            self._weights[tenant] = float(weight)
        self._quantum = quantum
        #: Per-tenant FIFO sub-queues of ``(push sequence, entry)``.
        self._subqueues: Dict[str, Deque[Tuple[int, QueueEntry]]] = {}
        #: Backlogged tenants in round-robin order (head is served next).
        self._round: Deque[str] = deque()
        self._deficit: Dict[str, float] = {}
        self._pushes = 0
        self._length = 0

    def weight(self, tenant: str) -> float:
        """The tenant's configured weight (1.0 when unconfigured)."""
        return self._weights.get(tenant, 1.0)

    def set_weight(self, tenant: str, weight: float) -> None:
        """Adjust one tenant's weight at runtime (control-plane actuation).

        Takes effect from the tenant's next service visit: deficit already
        banked is kept (it is bounded by one service unit), so a weight
        change never lets a tenant replay credit accrued under the old
        weight.
        """
        if weight <= 0:
            raise PlatformError(
                f"WFQ weight for tenant {tenant!r} must be positive"
            )
        self._weights[tenant] = float(weight)

    def push(self, entry: QueueEntry) -> None:
        tenant = entry[0].caller
        if tenant not in self._subqueues:
            self._subqueues[tenant] = deque()
            self._deficit[tenant] = 0.0
            self._round.append(tenant)
        self._subqueues[tenant].append((self._pushes, entry))
        self._pushes += 1
        self._length += 1

    def pop_next(self) -> QueueEntry:
        if not self._length:
            raise PlatformError("cannot pop from an empty admission queue")
        while True:
            tenant = self._round[0]
            if self._deficit[tenant] < 1.0:
                self._deficit[tenant] += self._quantum * self.weight(tenant)
            if self._deficit[tenant] < 1.0:
                # A fractional-weight tenant accumulates credit over
                # multiple rounds before being served.
                self._round.rotate(-1)
                continue
            self._deficit[tenant] -= 1.0
            _seq, entry = self._subqueues[tenant].popleft()
            self._length -= 1
            if not self._subqueues[tenant]:
                self._forget(tenant)
            elif self._deficit[tenant] < 1.0:
                self._round.rotate(-1)  # credit spent: next tenant's turn
            return entry

    def pop_newest(self) -> QueueEntry:
        if not self._length:
            raise PlatformError("cannot pop from an empty admission queue")
        victim = max(self._subqueues, key=lambda t: self._subqueues[t][-1][0])
        _seq, entry = self._subqueues[victim].pop()
        self._length -= 1
        if not self._subqueues[victim]:
            self._forget(victim)
        return entry

    def displace(self, incoming_tenant: str) -> Optional[QueueEntry]:
        if not self._length:
            return None
        incoming_depth = len(self._subqueues.get(incoming_tenant, ()))
        victim: Optional[str] = None
        victim_depth = incoming_depth
        for tenant, subqueue in self._subqueues.items():
            # Strictly deeper than the incoming tenant's backlog: when the
            # newcomer already dominates (or ties), it is shed itself.
            if len(subqueue) > victim_depth:
                victim = tenant
                victim_depth = len(subqueue)
        if victim is None:
            return None
        _seq, entry = self._subqueues[victim].pop()
        self._length -= 1
        if not self._subqueues[victim]:
            self._forget(victim)
        return entry

    def _forget(self, tenant: str) -> None:
        del self._subqueues[tenant]
        del self._deficit[tenant]
        self._round.remove(tenant)

    def invocations(self) -> List[Invocation]:
        ordered: List[Tuple[int, QueueEntry]] = []
        for subqueue in self._subqueues.values():
            ordered.extend(subqueue)
        ordered.sort(key=lambda item: item[0])
        return [entry[0] for _seq, entry in ordered]

    def tenants(self) -> Dict[str, int]:
        return {tenant: len(q) for tenant, q in self._subqueues.items()}

    def __len__(self) -> int:
        return self._length


_QUEUE_CLASSES: Mapping[str, Type[AdmissionQueue]] = MappingProxyType({
    FifoQueue.name: FifoQueue,
    WeightedFairQueue.name: WeightedFairQueue,
})

# Unconditional (not an assert): must hold even under `python -O`, so a
# policy added to config.ADMISSION_POLICIES without a class fails at import
# rather than deep inside invoker construction.
if set(_QUEUE_CLASSES) != set(ADMISSION_POLICIES):
    raise RuntimeError(
        "admission queue registry is out of sync with config.ADMISSION_POLICIES"
    )


def create_admission_queue(name: str, **options: object) -> AdmissionQueue:
    """Instantiate an admission queue policy by its registry name."""
    try:
        queue_class = _QUEUE_CLASSES[name]
    except KeyError:
        raise PlatformError(
            f"unknown admission policy {name!r}; "
            f"choose one of {sorted(_QUEUE_CLASSES)}"
        ) from None
    return queue_class(**options)


class TenantQuotas:
    """Token-bucket admission quotas, one bucket per tenant.

    Each tenant accrues ``rate_rps`` tokens per second of virtual time up
    to ``burst`` banked tokens; admitting an invocation spends one token.
    A tenant over its rate is *throttled* — a deliberate policy refusal,
    distinct from the capacity shed of a full queue — so callers can tell
    "you asked for more than you bought" apart from "the platform is
    overloaded".

    One instance is shared by every invoker of a cluster, making the quota
    a property of the tenant rather than of whichever invoker the
    scheduler happened to route to.  Refill arithmetic uses the caller's
    virtual ``now``, so runs remain deterministic.
    """

    def __init__(
        self,
        rate_rps: float,
        *,
        burst: Optional[float] = None,
        per_tenant_rates: Optional[Mapping[str, float]] = None,
    ) -> None:
        if rate_rps <= 0:
            raise PlatformError("tenant quota rate must be positive")
        if burst is not None and burst < 1:
            raise PlatformError("tenant quota burst must allow at least one token")
        self.rate_rps = float(rate_rps)
        #: Bucket capacity: how many invocations a tenant may issue back to
        #: back after an idle spell.  Defaults to half a second's worth.
        self.burst = float(burst) if burst is not None else max(1.0, rate_rps / 2)
        self._rates: Dict[str, float] = {}
        #: Per-tenant burst overrides (set alongside a rate override, so a
        #: control loop tightening one tenant's rate also shrinks the bank
        #: that tenant may draw down — a cut that left the default burst in
        #: place would take seconds to bite).
        self._bursts: Dict[str, float] = {}
        for tenant, rate in (per_tenant_rates or {}).items():
            self.set_rate(tenant, rate)
        #: Per-tenant bucket state: (tokens, last refill time).
        self._buckets: Dict[str, Tuple[float, float]] = {}
        self.admitted = 0
        self.throttled = 0

    def set_rate(
        self, tenant: str, rate_rps: float, *, burst: Optional[float] = None
    ) -> None:
        """Override the refill rate (and optionally burst) for one tenant.

        Takes effect from the tenant's next admission check; a bank larger
        than the new burst is clamped at the next refill, so lowering a
        rate at runtime (control-plane actuation) bites within one request.
        """
        if rate_rps <= 0:
            raise PlatformError("tenant quota rate must be positive")
        if burst is not None and burst < 1:
            raise PlatformError("tenant quota burst must allow at least one token")
        self._rates[tenant] = float(rate_rps)
        if burst is not None:
            self._bursts[tenant] = float(burst)

    def clear_rate(self, tenant: str) -> None:
        """Drop the tenant's rate/burst overrides (back to the defaults).

        The control plane's "fully recovered" actuation: a tenant whose
        cut has been walked all the way back must end up genuinely
        unlimited again (under the permissive control-plane default),
        not permanently capped at the demand it happened to show when
        first cut.
        """
        self._rates.pop(tenant, None)
        self._bursts.pop(tenant, None)

    def rate(self, tenant: str) -> float:
        """The tenant's refill rate (the default unless overridden)."""
        return self._rates.get(tenant, self.rate_rps)

    def burst_for(self, tenant: str) -> float:
        """The tenant's bucket capacity (the default unless overridden)."""
        return self._bursts.get(tenant, self.burst)

    def admit(self, tenant: str, now: float) -> bool:
        """Spend one token for ``tenant`` if its bucket has one."""
        burst = self.burst_for(tenant)
        tokens, last = self._buckets.get(tenant, (burst, now))
        tokens = min(burst, tokens + (now - last) * self.rate(tenant))
        if tokens >= 1.0:
            self._buckets[tenant] = (tokens - 1.0, now)
            self.admitted += 1
            return True
        self._buckets[tenant] = (tokens, now)
        self.throttled += 1
        return False

    def tokens(self, tenant: str, now: float) -> float:
        """The tenant's current bank (after refill), without spending."""
        burst = self.burst_for(tenant)
        tokens, last = self._buckets.get(tenant, (burst, now))
        return min(burst, tokens + (now - last) * self.rate(tenant))


class ReactiveAutoscaler:
    """Scales an invoker's per-action container ceilings from live signals.

    Instead of a static ``max_containers_per_action``, the autoscaler
    watches the admission layer's structured signals on every submission:
    a queue at or above ``queue_high``, or any rejection since the last
    look, means the action is container-bound and the ceiling rises by one
    (capped at the invoker's core count — more containers than cores can
    never run).  Demand fading is signalled by keep-alive eviction: each
    idle container the invoker reclaims lowers the ceiling by one, down to
    the pre-warmed floor.  ``cooldown_seconds`` of virtual time must pass
    between scaling steps of one action, so a single burst does not slam
    the ceiling to the maximum in one event.

    The autoscaler is driven by the invoker's own deterministic event flow
    (no timers of its own), so it never keeps a drained event loop alive
    and two identical runs scale identically.
    """

    def __init__(
        self,
        *,
        queue_high: int = 4,
        cooldown_seconds: float = 0.25,
    ) -> None:
        if queue_high < 1:
            raise PlatformError("autoscaler queue_high must be >= 1")
        if cooldown_seconds <= 0:
            raise PlatformError("autoscaler cooldown must be positive")
        self.queue_high = queue_high
        self.cooldown_seconds = cooldown_seconds
        self._invoker: Optional["Invoker"] = None
        #: Per-action (last scale time, rejections already seen).
        self._state: Dict[str, Tuple[float, int]] = {}
        self.scale_ups = 0
        self.scale_downs = 0

    def attach(self, invoker: "Invoker") -> "ReactiveAutoscaler":
        """Bind to ``invoker`` (one autoscaler per invoker) and return self."""
        if self._invoker is not None:
            raise PlatformError("a ReactiveAutoscaler serves exactly one invoker")
        self._invoker = invoker
        invoker.autoscaler = self
        return self

    def observe(self, action: str, queue_depth: int, rejected_total: int) -> None:
        """React to one admission event (called by the invoker on submit)."""
        invoker = self._require_invoker()
        now = invoker.loop.now
        last_scale, rejected_seen = self._state.get(action, (-self.cooldown_seconds, 0))
        pressure = queue_depth >= self.queue_high or rejected_total > rejected_seen
        if (
            pressure
            and now - last_scale >= self.cooldown_seconds
            and invoker.scale_action(action, +1) is not None
        ):
            last_scale = now
            self.scale_ups += 1
        self._state[action] = (last_scale, rejected_total)

    def on_reclaim(self, action: str) -> None:
        """React to a keep-alive eviction: demand faded, lower the ceiling."""
        invoker = self._require_invoker()
        now = invoker.loop.now
        last_scale, rejected_seen = self._state.get(action, (-self.cooldown_seconds, 0))
        if (
            now - last_scale >= self.cooldown_seconds
            and invoker.scale_action(action, -1) is not None
        ):
            self._state[action] = (now, rejected_seen)
            self.scale_downs += 1

    def _require_invoker(self) -> "Invoker":
        if self._invoker is None:
            raise PlatformError("autoscaler is not attached to an invoker")
        return self._invoker

"""The actionloop proxy.

OpenWhisk's container runtimes put a small HTTP proxy in front of the actual
function runtime: the invoker talks HTTP to the proxy, the proxy forwards
requests over stdin and reads responses from stdout (§5.1 "OpenWhisk
Integration").  Groundhog interposes between this proxy and the runtime.

In the simulation the proxy contributes a fixed per-request invoker-side
overhead (HTTP handling, JSON framing, scheduling), which is what bounds the
throughput of very short functions in every configuration.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.costs import CostModel, DEFAULT_COST_MODEL


@dataclass
class ActionLoopProxy:
    """Per-container proxy between the invoker and the function runtime."""

    cost_model: CostModel = DEFAULT_COST_MODEL
    requests_proxied: int = 0

    def request_overhead_seconds(self, payload_bytes: int, response_bytes: int) -> float:
        """Invoker-side overhead of proxying one request and its response."""
        self.requests_proxied += 1
        cm = self.cost_model
        return (
            cm.invoker_request_overhead_seconds
            + (payload_bytes + response_bytes) * cm.pipe_copy_per_byte_seconds * 0.25
        )

"""Containers: one warm function instance behind an isolation mechanism.

A :class:`Container` corresponds to one OpenWhisk container instance: it
hosts exactly one function, serves at most one request at a time (the
one-at-a-time property Groundhog relies on, §3.1) and, between requests,
performs whatever post-request work its isolation mechanism requires
(restoration for GH, nothing for BASE, a full rebuild for cold-start).
"""

from __future__ import annotations

import enum
import itertools
import random
from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import ContainerError
from repro.baselines.registry import create_mechanism
from repro.core.policy import InitReport, InvokeReport, IsolationMechanism
from repro.faas.action import ActionSpec
from repro.faas.proxy import ActionLoopProxy
from repro.faas.request import Invocation
from repro.kernel.kernel import SimKernel
from repro.sim.costs import CostModel, DEFAULT_COST_MODEL
from repro.sim.rng import fallback_stream

_container_counter = itertools.count(1)  # detlint: ignore[D005] unique-id mint; ids are labels, never ordering inputs


class ContainerState(enum.Enum):
    """Scheduling state of a container as seen by the invoker."""

    CREATED = "created"
    INITIALIZING = "initializing"
    IDLE = "idle"
    BUSY = "busy"
    RESTORING = "restoring"
    #: Demoted to a held restorable snapshot: the live instance is gone
    #: (it occupies no warm slot and serves nothing) but its image is
    #: retained, so an on-core restore — far cheaper than a boot —
    #: brings it back to IDLE.  See the invoker's warmth spectrum.
    SNAPSHOTTED = "snapshotted"
    DEAD = "dead"


@dataclass(frozen=True)
class ContainerExecution:
    """What executing one invocation in a container produced."""

    report: InvokeReport
    #: Critical-path time including the invoker-side proxy overhead: this is
    #: the paper's invoker latency for the request.
    invoker_seconds: float
    #: Post-request work that keeps the container unavailable afterwards.
    unavailable_seconds: float


class Container:
    """One warm container instance for one action."""

    def __init__(
        self,
        spec: ActionSpec,
        *,
        kernel: Optional[SimKernel] = None,
        cost_model: Optional[CostModel] = None,
        rng: Optional[random.Random] = None,
        dynamic: bool = False,
    ) -> None:
        self.spec = spec
        #: True for containers cold-started on demand (autoscaled pools).
        #: Only dynamic containers are subject to keep-alive eviction;
        #: pre-warmed containers form the permanent floor of the pool.
        self.dynamic = dynamic
        #: Virtual time at which the container last became idle; maintained
        #: by the invoker and used by its keep-alive eviction timer.
        self.idle_since = 0.0
        #: Virtual time at which the container finished initialising and
        #: joined its pool; maintained by the invoker.  A request submitted
        #: *before* this instant waited on the boot (a cold start on its
        #: path); one submitted after finds the container already warm.
        self.ready_at = 0.0
        self.container_id = f"{spec.name}-c{next(_container_counter):04d}"
        self.cost_model = cost_model if cost_model is not None else DEFAULT_COST_MODEL
        self.kernel = kernel if kernel is not None else SimKernel(self.cost_model)
        self.rng = rng if rng is not None else fallback_stream("faas.container")
        self.proxy = ActionLoopProxy(self.cost_model)
        self.mechanism: IsolationMechanism = create_mechanism(
            spec.mechanism,
            spec.profile,
            kernel=self.kernel,
            cost_model=self.cost_model,
            rng=self.rng,
            dummy_payload=spec.dummy_payload,
            **spec.mechanism_options,
        )
        self.state = ContainerState.CREATED
        self.init_report: Optional[InitReport] = None
        self.requests_served = 0
        self.executions: List[ContainerExecution] = []
        #: Total time spent doing post-request work (restorations etc.).
        self.post_work_seconds = 0.0
        #: How many times this container was restored from a held snapshot.
        self.restored_from_snapshot = 0
        #: ``requests_served`` as of the last snapshot restore.  Together
        #: with ``ready_at`` this classifies the first post-restore
        #: dispatch as a ``restore`` (not warm, not cold) under the same
        #: honesty rule pre-warms use.
        self.requests_served_at_restore = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def initialize(self) -> InitReport:
        """Build the container: process, runtime, warm-up, mechanism prep."""
        if self.state is not ContainerState.CREATED:
            raise ContainerError(f"{self.container_id}: already initialised")
        self.state = ContainerState.INITIALIZING
        self.init_report = self.mechanism.initialize()
        self.state = ContainerState.IDLE
        return self.init_report

    def shutdown(self) -> None:
        """Mark the container dead (the platform reclaims it)."""
        self.state = ContainerState.DEAD

    def demote(self) -> None:
        """Demote an idle container to a held restorable snapshot."""
        if self.state is not ContainerState.IDLE:
            raise ContainerError(
                f"{self.container_id}: cannot demote while {self.state.value}"
            )
        self.state = ContainerState.SNAPSHOTTED

    def promote(self) -> None:
        """Un-demote a snapshot whose restore is free (zero-cost model).

        A pure inverse of :meth:`demote`: no timestamps move and no
        restore is recorded, so a zero-cost spectrum is observationally
        identical to never having demoted at all.
        """
        if self.state is not ContainerState.SNAPSHOTTED:
            raise ContainerError(
                f"{self.container_id}: cannot promote while {self.state.value}"
            )
        self.state = ContainerState.IDLE

    def begin_restore(self) -> None:
        """Start restoring a held snapshot back to a live instance."""
        if self.state is not ContainerState.SNAPSHOTTED:
            raise ContainerError(
                f"{self.container_id}: cannot restore while {self.state.value}"
            )
        self.state = ContainerState.RESTORING

    def complete_restore(self, now: float) -> None:
        """Finish a restore: the container is live and idle again."""
        if self.state is not ContainerState.RESTORING:
            raise ContainerError(
                f"{self.container_id}: restore did not begin"
            )
        self.state = ContainerState.IDLE
        self.ready_at = now
        self.idle_since = now
        self.restored_from_snapshot += 1
        self.requests_served_at_restore = self.requests_served

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def execute(
        self,
        invocation: Invocation,
        *,
        verify: bool = False,
        record: bool = True,
    ) -> ContainerExecution:
        """Serve one invocation synchronously.

        The invoker drives the actual timing: ``invoker_seconds`` is how long
        the container is busy on the request's critical path, and
        ``unavailable_seconds`` is how long it remains unavailable afterwards
        while the mechanism does its post-request work.
        """
        if self.state is not ContainerState.IDLE:
            raise ContainerError(
                f"{self.container_id}: cannot execute while {self.state.value}"
            )
        self.state = ContainerState.BUSY
        try:
            report = self.mechanism.invoke(
                invocation.payload,
                invocation.invocation_id,
                caller=invocation.caller,
                verify=verify,
            )
        finally:
            self.state = ContainerState.IDLE
        proxy_overhead = self.proxy.request_overhead_seconds(
            len(invocation.payload), report.result.response_bytes
        )
        execution = ContainerExecution(
            report=report,
            invoker_seconds=report.critical_seconds + proxy_overhead,
            unavailable_seconds=report.post_seconds,
        )
        self.requests_served += 1
        self.post_work_seconds += report.post_seconds
        if record:
            self.executions.append(execution)
        return execution

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def is_available(self) -> bool:
        """True when the invoker may dispatch a request to this container."""
        return self.state is ContainerState.IDLE

    def read_request_buffer(self) -> bytes:
        """Probe the function's leak channel (used by tests and examples)."""
        return self.mechanism.read_request_buffer()

"""Forecast-driven pre-warming: predictive capacity planning.

PR 4's :class:`~repro.faas.controlplane.planner.CapacityPlanner` reacts to
*observed* backlog: a container is seeded on a peer only once queued work
has already piled up somewhere.  Under a diurnal arrival cycle that is
exactly one boot time too late — every rising edge pays a cold-start storm
before the reactive seeds land.  This module closes that gap the way
production keep-alive policies do (Azure Functions' histogram-based
policies provision *ahead* of the predicted next invocation):

* :class:`DemandForecaster` maintains a per-action arrival-rate estimate
  from the arrival counters the invokers export each control tick.  The
  model is deliberately small and fully deterministic: a Holt
  (level + trend) double-exponential smoother over the deseasonalised
  rate — so ramps are *extrapolated*, not just tracked — optionally
  multiplied by a seasonal component fitted online from bucketed history
  when the operator declares the cycle period (the diurnal signature of
  the Azure traces).
* :class:`PredictivePlanner` extends the reactive planner: each tick it
  feeds the forecaster, then pre-warms each action toward
  ``forecast(now + lead_time)`` — where ``lead_time`` is the action's
  calibrated boot time — so the seeded containers finish booting right
  when the predicted wave lands.  Everything else (placement, funding
  drains, the global container budget, per-tick caps) is inherited from
  the reactive planner, and so are its safety properties.  When an
  action's history is too short to forecast, the planner degrades
  gracefully: it simply plans like the reactive one.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import PlatformError
from repro.faas.controlplane.planner import CapacityPlanner, MigrationDecision
from repro.faas.invoker import Invoker, InvokerSnapshot

#: Floor used wherever a fitted quantity divides another, so a quiet
#: action can never produce a 0/0 or an infinite seasonal factor.
_EPSILON = 1e-9

#: Seasonal factors are clamped to this band: a bucket observed only
#: during an extreme burst must not multiply every later forecast by an
#: unbounded amount (and a dead bucket must not zero the forecast out).
_SEASONAL_FLOOR = 0.05
_SEASONAL_CEIL = 20.0

#: Forecast rates are clamped to this ceiling so the planner's
#: ``desired = rate * service_seconds`` arithmetic stays finite even if a
#: pathological trend extrapolation runs away.
_RATE_CEIL = 1e12


@dataclass
class _ActionForecast:
    """The fitted state of one action's arrival process."""

    level: float
    trend: float = 0.0
    #: Multiplicative seasonal factor per phase bucket (empty when the
    #: forecaster runs without a declared season period).
    seasonal: List[float] = field(default_factory=list)
    first_at: float = 0.0
    last_at: float = 0.0
    observations: int = 0


class DemandForecaster:
    """Online per-action arrival-rate forecasts (Holt + seasonal buckets).

    Observations arrive as *(count, interval)* pairs — how many requests
    for the action were submitted cluster-wide over the last control tick
    — and are folded into three online components:

    * **level** — an EWMA of the deseasonalised arrival rate (``alpha``),
    * **trend** — a Holt-style smoothed slope (``beta``), so a ramp is
      extrapolated into the future instead of chased from behind,
    * **seasonal** — when ``season_period_seconds`` is declared, the
      timeline is folded into ``season_buckets`` phase buckets and each
      bucket keeps a multiplicative factor (rate over level, smoothed by
      ``gamma``) fitted online from the bucketed history.

    Everything is plain float arithmetic over the observation stream: no
    randomness, no wall clock — two identical observation histories
    produce bit-identical forecasts.
    """

    def __init__(
        self,
        *,
        alpha: float = 0.1,
        beta: float = 0.05,
        gamma: float = 0.4,
        trend_damping: float = 0.8,
        season_period_seconds: Optional[float] = None,
        season_buckets: int = 16,
        min_history_seconds: float = 2.0,
        min_observations: int = 4,
    ) -> None:
        for name, value in (("alpha", alpha), ("beta", beta), ("gamma", gamma)):
            if not 0.0 < value <= 1.0:
                raise PlatformError(f"forecaster {name} must be in (0, 1]")
        if not 0.0 < trend_damping <= 1.0:
            raise PlatformError("forecaster trend_damping must be in (0, 1]")
        if season_period_seconds is not None and season_period_seconds <= 0:
            raise PlatformError("season_period_seconds must be positive (or None)")
        if season_buckets < 2:
            raise PlatformError("season_buckets must be >= 2")
        if min_history_seconds < 0:
            raise PlatformError("min_history_seconds must be >= 0")
        if min_observations < 1:
            raise PlatformError("min_observations must be >= 1")
        self.alpha = alpha
        self.beta = beta
        self.gamma = gamma
        self.trend_damping = trend_damping
        self.season_period_seconds = season_period_seconds
        self.season_buckets = season_buckets
        self.min_history_seconds = min_history_seconds
        self.min_observations = min_observations
        self._actions: Dict[str, _ActionForecast] = {}

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------

    def _bucket(self, at: float) -> int:
        period = self.season_period_seconds
        phase = (at % period) / period
        return min(self.season_buckets - 1, int(phase * self.season_buckets))

    def observe(self, action: str, count: float, now: float, interval_seconds: float) -> None:
        """Fold one tick's arrival count for ``action`` into the model."""
        if interval_seconds <= 0 or not math.isfinite(interval_seconds):
            raise PlatformError("observation interval must be positive and finite")
        if count < 0 or not math.isfinite(count):
            raise PlatformError("arrival count must be >= 0 and finite")
        rate = count / interval_seconds
        state = self._actions.get(action)
        if state is None:
            state = _ActionForecast(
                level=rate,
                seasonal=(
                    [1.0] * self.season_buckets
                    if self.season_period_seconds is not None
                    else []
                ),
                first_at=now,
                last_at=now,
                observations=1,
            )
            self._actions[action] = state
            return
        if self.season_period_seconds is not None:
            bucket = self._bucket(now)
            factor = state.seasonal[bucket]
            deseason = rate / max(factor, _EPSILON)
        else:
            deseason = rate
        previous_level = state.level
        state.level = self.alpha * deseason + (1.0 - self.alpha) * (
            state.level + self.trend_damping * state.trend * interval_seconds
        )
        state.level = min(max(state.level, 0.0), _RATE_CEIL)
        slope = (state.level - previous_level) / interval_seconds
        state.trend = self.beta * slope + (1.0 - self.beta) * state.trend
        if self.season_period_seconds is not None:
            observed_factor = rate / max(state.level, _EPSILON)
            updated = self.gamma * observed_factor + (1.0 - self.gamma) * factor
            state.seasonal[bucket] = min(max(updated, _SEASONAL_FLOOR), _SEASONAL_CEIL)
            # Renormalise the factors to mean 1: without this the level
            # and the seasonal component trade off against each other (a
            # drifting level inflates every factor, which deflates the
            # next level estimate, and the fit diverges — the classic
            # multiplicative Holt-Winters instability).
            mean_factor = sum(state.seasonal) / len(state.seasonal)
            if mean_factor > _EPSILON:
                state.seasonal = [f / mean_factor for f in state.seasonal]
        state.last_at = now
        state.observations += 1

    # ------------------------------------------------------------------
    # Forecasting
    # ------------------------------------------------------------------

    def forecast(self, action: str, at: float) -> float:
        """Predicted arrival rate (requests/second) for ``action`` at ``at``.

        Unknown actions forecast 0.0.  The returned rate is always finite
        and non-negative, whatever history was observed.
        """
        state = self._actions.get(action)
        if state is None:
            return 0.0
        horizon = max(0.0, at - state.last_at)
        rate = state.level + self.trend_damping * state.trend * horizon
        if self.season_period_seconds is not None:
            rate *= state.seasonal[self._bucket(at)]
        if not math.isfinite(rate):
            return 0.0
        return min(max(rate, 0.0), _RATE_CEIL)

    def ready(self, action: str) -> bool:
        """True once ``action`` has enough history to forecast from.

        Until then a predictive planner must fall back to reacting to the
        measured backlog — extrapolating a trend from two points would
        pre-warm toward noise.
        """
        state = self._actions.get(action)
        if state is None:
            return False
        return (
            state.observations >= self.min_observations
            and state.last_at - state.first_at >= self.min_history_seconds
        )

    def tracked_actions(self) -> List[str]:
        """Actions with any observed history, sorted."""
        return sorted(self._actions)

    def snapshot(self, action: str) -> Dict[str, object]:
        """The fitted components of one action (observability/tests)."""
        state = self._actions.get(action)
        if state is None:
            return {}
        return {
            "level": state.level,
            "trend": state.trend,
            "observations": state.observations,
            "history_seconds": state.last_at - state.first_at,
            "ready": self.ready(action),
            "seasonal": list(state.seasonal),
        }


class PredictivePlanner(CapacityPlanner):
    """A capacity planner that pre-warms toward the *forecast* demand.

    Each tick it aggregates the invokers' per-action arrival counters into
    the :class:`DemandForecaster`, then plans exactly like the reactive
    :class:`~repro.faas.controlplane.planner.CapacityPlanner` — with one
    extra pressure source: every action whose forecast at
    ``now + lead_time`` implies more concurrent containers than the
    cluster currently holds (warm plus boots in flight, by Little's law
    ``rate × service_seconds``) is seeded toward that target *before* any
    queue has formed.  ``lead_time`` defaults to the action's calibrated
    boot time, so a seed started now becomes ready exactly when the
    predicted wave lands.

    Reactive pressures always rank first for the same action (real
    backlog beats anticipated backlog), the per-tick seed cap and the
    global container budget are inherited unchanged, and an action whose
    history is too short simply contributes no predictive pressure — the
    planner degrades to the reactive behaviour it extends.
    """

    def __init__(
        self,
        budget: int,
        *,
        forecaster: Optional[DemandForecaster] = None,
        horizon_margin_seconds: float = 0.0,
        default_boot_seconds: float = 0.5,
        default_service_seconds: float = 0.05,
        target_utilization: float = 0.7,
        **kwargs: object,
    ) -> None:
        super().__init__(budget, **kwargs)
        if horizon_margin_seconds < 0:
            raise PlatformError("horizon_margin_seconds must be >= 0")
        if default_boot_seconds < 0:
            raise PlatformError("default_boot_seconds must be >= 0")
        if default_service_seconds <= 0:
            raise PlatformError("default_service_seconds must be positive")
        if not 0.0 < target_utilization <= 1.0:
            raise PlatformError("target_utilization must be in (0, 1]")
        self.forecaster = forecaster if forecaster is not None else DemandForecaster()
        self.horizon_margin_seconds = horizon_margin_seconds
        self.default_boot_seconds = default_boot_seconds
        self.default_service_seconds = default_service_seconds
        #: Containers are sized so the predicted load would run them at
        #: this utilisation, not at 100%: ``desired = rate × service / ρ``.
        #: Bare Little's-law concurrency leaves no headroom — any jitter
        #: above the mean immediately queues (and, at a rising edge, the
        #: mean itself is already above the forecast by the time the
        #: seeds land).
        self.target_utilization = target_utilization
        self._boot_seconds: Dict[str, float] = {}
        self._service_seconds: Dict[str, float] = {}
        self._last_counts: Dict[str, int] = {}
        self._last_at: Optional[float] = None
        self._now: float = 0.0
        #: Actions whose pressure this tick came from the forecast alone.
        self._tick_predictive_actions: Set[str] = set()
        #: Prewarm decisions attributable to forecast pressure (no
        #: reactive backlog asked for them).
        self.predictive_seeds = 0
        #: Ticks in which arrivals were observed but *no* action had
        #: enough history to forecast — the planner ran purely reactive.
        self.fallback_ticks = 0

    # ------------------------------------------------------------------
    # Calibration
    # ------------------------------------------------------------------

    def calibrate(
        self, action: str, *, boot_seconds: float, service_seconds: float
    ) -> None:
        """Register the action's measured boot time and service estimate.

        The boot time becomes the forecast lead (seed a boot-time ahead so
        the container is ready when the wave lands); the service time is
        the Little's-law factor converting a predicted arrival rate into a
        concurrent-container target.
        """
        if boot_seconds < 0:
            raise PlatformError("boot_seconds must be >= 0")
        if service_seconds <= 0:
            raise PlatformError("service_seconds must be positive")
        self._boot_seconds[action] = boot_seconds
        self._service_seconds[action] = service_seconds

    def lead_seconds(self, action: str) -> float:
        """How far ahead the planner forecasts for ``action``."""
        return (
            self._boot_seconds.get(action, self.default_boot_seconds)
            + self.horizon_margin_seconds
        )

    def service_seconds(self, action: str) -> float:
        """Estimated per-request container occupancy of ``action``."""
        return self._service_seconds.get(action, self.default_service_seconds)

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------

    def plan(self, invokers: Sequence[Invoker], now: float) -> List[MigrationDecision]:
        self._now = now
        self._tick_predictive_actions = set()
        made = super().plan(invokers, now)
        self.predictive_seeds += sum(
            1
            for decision in made
            if decision.kind == "prewarm"
            and decision.action in self._tick_predictive_actions
        )
        return made

    def _ingest(self, snapshots: Sequence[InvokerSnapshot], now: float) -> None:
        """Feed the tick-over-tick arrival deltas into the forecaster."""
        totals: Dict[str, int] = {}
        for snap in snapshots:
            for action, count in snap.arrivals_total.items():
                totals[action] = totals.get(action, 0) + count
        if self._last_at is not None:
            interval = now - self._last_at
            if interval > 0:
                for action in sorted(set(totals) | set(self._last_counts)):
                    delta = totals.get(action, 0) - self._last_counts.get(action, 0)
                    self.forecaster.observe(action, max(0, delta), now, interval)
        self._last_counts = totals
        self._last_at = now

    def _pressures(
        self, snapshots: Sequence[InvokerSnapshot]
    ) -> List[Tuple[int, int, str]]:
        # The base plan() hands this hook the snapshots it just took, so
        # ingesting here (rather than re-snapshotting in plan()) observes
        # the very state this tick plans against, once per tick.
        self._ingest(snapshots, self._now)
        reactive = super()._pressures(snapshots)
        reactive_actions = {action for _, _, action in reactive}
        predicted = self._predicted_pressures(snapshots, skip=reactive_actions)
        if not predicted:
            return reactive
        merged = reactive + predicted
        merged.sort(key=lambda item: (-item[0], item[1], item[2]))
        return merged

    def _predicted_pressures(
        self, snapshots: Sequence[InvokerSnapshot], *, skip: Set[str]
    ) -> List[Tuple[int, int, str]]:
        """Forecast-implied seeding pressure per action, reactive-shaped.

        Entries reuse the reactive tuple form ``(magnitude, src, action)``
        where ``src`` is the invoker holding the most of the action's warm
        capacity (its effective home — the invoker the wave will
        concentrate on, and the one a seed on a peer relieves).  An action
        already under reactive pressure is skipped: the measured backlog
        is the stronger, non-speculative version of the same signal.
        """
        actions = sorted(
            {action for snap in snapshots for action in snap.arrivals_total}
        )
        entries: List[Tuple[int, int, str]] = []
        saw_unready = False
        saw_ready = False
        for action in actions:
            if not self.forecaster.ready(action):
                saw_unready = True
                continue
            saw_ready = True
            if action in skip:
                continue
            rate = self.forecaster.forecast(
                action, self._now + self.lead_seconds(action)
            )
            desired = math.ceil(
                rate * self.service_seconds(action) / self.target_utilization
                - 1e-9
            )
            supply = sum(
                snap.warm_total.get(action, 0) + snap.boots_in_flight.get(action, 0)
                for snap in snapshots
            )
            deficit = desired - supply
            if deficit <= 0:
                continue
            src = min(
                range(len(snapshots)),
                key=lambda index: (-snapshots[index].warm_total.get(action, 0), index),
            )
            self._tick_predictive_actions.add(action)
            for _ in range(min(deficit, self.max_migrations_per_tick)):
                entries.append((deficit, src, action))
        if actions and saw_unready and not saw_ready:
            self.fallback_ticks += 1
        return entries

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def forecast_stats(self) -> Dict[str, object]:
        """Forecast counters for ``control_plane_stats()`` tables."""
        tracked = self.forecaster.tracked_actions()
        return {
            "predictive_seeds": self.predictive_seeds,
            "forecast_fallback_ticks": self.fallback_ticks,
            "forecast_tracked_actions": len(tracked),
            "forecast_ready_actions": sum(
                1 for action in tracked if self.forecaster.ready(action)
            ),
        }

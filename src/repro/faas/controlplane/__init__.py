"""The cluster control plane: SLO-driven auto-tuning and capacity shifting.

Three cooperating controllers close the loop the lower layers left open:

* :class:`~repro.faas.controlplane.slo.SLOMonitor` — scores each tenant's
  windowed latency/goodput against its declared
  :class:`~repro.faas.controlplane.slo.TenantSLO`.
* :class:`~repro.faas.controlplane.tuner.QuotaTuner` — AIMD on per-tenant
  quota rates and fair-queue weights, replacing hand-set
  ``tenant_quota_rps``.
* :class:`~repro.faas.controlplane.planner.CapacityPlanner` — shifts
  pre-warmed containers between invokers (seed underloaded peers, drain
  idle pools) under a global container budget.
* :class:`~repro.faas.controlplane.forecast.DemandForecaster` /
  :class:`~repro.faas.controlplane.forecast.PredictivePlanner` — the
  forecast-driven variant: per-action arrival-rate forecasts (EWMA +
  Holt trend + optional seasonal buckets) pre-warm capacity one
  boot-time *ahead* of the predicted wave instead of behind the
  measured backlog.

:class:`~repro.faas.controlplane.loop.ControlPlane` runs them on a
recurring simulation timer, wired up by
:class:`~repro.faas.cluster.FaaSCluster` when
``SimulationConfig.control_plane`` is enabled.
"""

from repro.faas.controlplane.forecast import DemandForecaster, PredictivePlanner
from repro.faas.controlplane.loop import ControlPlane, IDLE_TICKS_TO_STOP
from repro.faas.controlplane.planner import CapacityPlanner, MigrationDecision
from repro.faas.controlplane.slo import SLOMonitor, TenantSLO, TenantSLOStatus
from repro.faas.controlplane.tuner import QuotaTuner

__all__ = [
    "ControlPlane",
    "IDLE_TICKS_TO_STOP",
    "CapacityPlanner",
    "DemandForecaster",
    "MigrationDecision",
    "PredictivePlanner",
    "SLOMonitor",
    "TenantSLO",
    "TenantSLOStatus",
    "QuotaTuner",
]

"""The control loop: monitor → tune/plan → actuate, every tick.

:class:`ControlPlane` is the periodic brain of a
:class:`~repro.faas.cluster.FaaSCluster`: a recurring simulation timer
that, each tick,

1. asks the :class:`~repro.faas.controlplane.slo.SLOMonitor` to score
   every tenant's recent (windowed) behaviour against its declared
   :class:`~repro.faas.controlplane.slo.TenantSLO`,
2. lets the :class:`~repro.faas.controlplane.tuner.QuotaTuner` move the
   admission knobs (per-tenant quota rates, WFQ weights) by AIMD, and
3. lets the :class:`~repro.faas.controlplane.planner.CapacityPlanner`
   shift pre-warmed capacity between invokers under the global container
   budget.

The timer arms itself when the cluster submits work
(:meth:`ensure_running`) and cancels itself after the cluster has been
completely idle for a few consecutive ticks, so drain-style event-loop
runs still terminate — the same discipline the invoker's keep-alive
eviction timer follows.  Everything runs inside the deterministic event
loop; two identical runs tick, tune, and plan identically.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, TYPE_CHECKING

from repro.config import PLANNER_KINDS
from repro.errors import PlatformError
from repro.faas.controlplane.forecast import DemandForecaster, PredictivePlanner
from repro.faas.controlplane.planner import CapacityPlanner, MigrationDecision
from repro.faas.controlplane.slo import SLOMonitor, TenantSLO
from repro.faas.controlplane.tuner import QuotaTuner
from repro.sim.events import RecurringTimer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (cluster imports us)
    from repro.faas.cluster import FaaSCluster

#: Consecutive all-idle ticks after which the control timer stands down.
IDLE_TICKS_TO_STOP = 2


class ControlPlane:
    """SLO-driven auto-tuning and capacity planning for one cluster."""

    def __init__(
        self,
        cluster: "FaaSCluster",
        *,
        slos: Optional[Mapping[str, TenantSLO]] = None,
        interval_seconds: float = 0.25,
        window_seconds: float = 2.0,
        budget: Optional[int] = None,
        monitor: Optional[SLOMonitor] = None,
        tuner: Optional[QuotaTuner] = None,
        planner: Optional[CapacityPlanner] = None,
        planner_kind: str = "reactive",
        forecast_period_seconds: Optional[float] = None,
        forecast_min_history_seconds: float = 2.0,
        forecast_horizon_margin_seconds: float = 0.0,
        tracer=None,
    ) -> None:
        if interval_seconds <= 0:
            raise PlatformError("control interval must be positive")
        if planner_kind not in PLANNER_KINDS:
            raise PlatformError(
                f"unknown planner kind {planner_kind!r}; "
                f"choose one of {PLANNER_KINDS}"
            )
        self.cluster = cluster
        self.interval_seconds = interval_seconds
        if budget is None:
            # Default budget: twice the cluster's core count.  Cores bound
            # how many containers can *run*; the factor leaves room for
            # warm-but-idle capacity on peers without unbounded growth.
            budget = 2 * sum(invoker.cores for invoker in cluster.invokers)
        self.monitor = (
            monitor
            if monitor is not None
            else SLOMonitor(slos, window_seconds=window_seconds)
        )
        if tuner is None:
            # Hold cuts for one full monitor window (the time a spike takes
            # to age out of the assessment) and raises for half of one, in
            # ticks of this loop's interval.
            window = self.monitor.window_seconds
            tuner = QuotaTuner(
                cut_hold_ticks=max(1, round(window / interval_seconds)),
                raise_hold_ticks=max(1, round(window / (2 * interval_seconds))),
            )
        self.tuner = tuner
        if planner is None:
            if planner_kind == "predictive":
                planner = PredictivePlanner(
                    budget,
                    forecaster=DemandForecaster(
                        season_period_seconds=forecast_period_seconds,
                        min_history_seconds=forecast_min_history_seconds,
                    ),
                    horizon_margin_seconds=forecast_horizon_margin_seconds,
                )
            else:
                planner = CapacityPlanner(budget)
        self.planner = planner
        self._timer: Optional[RecurringTimer] = None
        self._idle_ticks = 0
        self.ticks = 0
        #: Human-readable tuner actions, most recent tick last.
        self.tuner_log: List[str] = []
        #: Flight recorder (``repro.faas.obs.TraceRecorder``) the audit
        #: events land in; ``None`` with tracing off.
        self.tracer = tracer

    # ------------------------------------------------------------------
    # Timer lifecycle
    # ------------------------------------------------------------------

    @property
    def running(self) -> bool:
        """True while the control timer is armed."""
        return self._timer is not None and self._timer.active

    def ensure_running(self) -> None:
        """Arm the control timer (idempotent; called on every submission)."""
        if not self.running:
            self._idle_ticks = 0
            self._timer = self.cluster.loop.schedule_recurring(
                self.interval_seconds, self._tick, label="control-plane"
            )

    def stop(self) -> None:
        """Cancel the control timer (it re-arms on the next submission)."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _cluster_idle(self) -> bool:
        return all(
            invoker.cores_in_use == 0
            and invoker.pending_boots == 0
            and invoker.queued_invocations() == 0
            for invoker in self.cluster.invokers
        )

    # ------------------------------------------------------------------
    # One tick
    # ------------------------------------------------------------------

    def _tick(self) -> None:
        self.ticks += 1
        if self._cluster_idle():
            # Nothing in flight anywhere: after a couple of confirming
            # ticks, stand down so a drain-style run() can terminate.
            self._idle_ticks += 1
            if self._idle_ticks >= IDLE_TICKS_TO_STOP:
                self.stop()
            return
        self._idle_ticks = 0
        now = self.cluster.loop.now
        statuses = self.monitor.assess(
            self.cluster.metrics,
            now,
            queued_by_tenant=self.cluster.queued_by_tenant(),
        )
        actions = self.tuner.apply(
            statuses,
            quotas=self.cluster.quotas,
            weights=self.cluster.set_tenant_weight,
        )
        self.tuner_log.extend(actions)
        decisions = self.planner.plan(self.cluster.invokers, now)
        if self.tracer is not None and (actions or decisions):
            self._audit(now, statuses, actions, decisions)

    def _audit(self, now, statuses, actions, decisions) -> None:
        """Land this tick's tuner actions and planner decisions on the
        flight recorder's timeline, each tuner action annotated with the
        triggering tenant's SLO window when one is violating."""
        windows = {}
        for tenant, status in statuses.items():
            if status.latency_violated or status.goodput_violated:
                p99 = (
                    f"{status.p99_ms:.1f}ms"
                    if status.p99_ms is not None
                    else "n/a"
                )
                windows[tenant] = (
                    f"window p99={p99} goodput={status.goodput:.2f} "
                    f"demand={status.demand_rps:.1f}rps"
                )
        for action in actions:
            parts = action.split(":")
            tenant = parts[1] if len(parts) > 1 else ""
            detail = action
            if tenant in windows:
                detail = f"{action} [{windows[tenant]}]"
            self.tracer.audit(now, "tuner", detail, actor="control-plane")
        for decision in decisions:
            self.tracer.audit(
                decision.at, "planner", decision.describe(),
                actor="control-plane",
            )

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    @property
    def migrations(self) -> List[MigrationDecision]:
        """Every capacity movement the planner actuated, in tick order."""
        return list(self.planner.decisions)

    def stats(self) -> Dict[str, object]:
        """Counter snapshot for driver/CLI tables."""
        stats: Dict[str, object] = {
            "ticks": self.ticks,
            "assessments": self.monitor.assessments,
            "violations_seen": self.monitor.violations_seen,
            "rate_cuts": self.tuner.rate_cuts,
            "rate_raises": self.tuner.rate_raises,
            "weight_boosts": self.tuner.weight_boosts,
            "prewarms": self.planner.prewarms,
            "drains": self.planner.drains,
            "migrations": len(self.planner.decisions),
            "budget": self.planner.budget,
            "planner": (
                "predictive"
                if isinstance(self.planner, PredictivePlanner)
                else "reactive"
            ),
        }
        if isinstance(self.planner, PredictivePlanner):
            stats.update(self.planner.forecast_stats())
        return stats

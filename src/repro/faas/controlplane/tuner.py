"""AIMD quota and weight tuning: SLO attainment without hand-set knobs.

Before the control plane, ``tenant_quota_rps`` and WFQ weights were static
numbers an operator had to guess.  The :class:`QuotaTuner` replaces the
guess with a feedback loop in the classic additive-increase /
multiplicative-decrease shape:

* While some tenant's SLO is **violated**, the tenants *causing* the
  pressure — the highest-demand tenants that are not themselves violating
  an objective — have their admission rate cut multiplicatively
  (``rate *= decrease_factor``), and the violating tenants' fair-queue
  weights are boosted so the capacity that remains is scheduled toward
  them first.
* While every declared SLO is **met**, previously cut tenants recover
  additively (``rate += step``) toward their uncapped demand, and boosted
  weights decay back to 1 — a compliant tenant is not punished forever
  for a past burst.

The multiplicative cut reacts within one control tick; the additive
recovery probes gently for the highest admission rate the SLOs tolerate.
The resulting sawtooth *is* the discovered operating point — the quota an
operator would otherwise have had to find by bisection.

All state is per-tenant and updated in sorted tenant order from the
deterministic simulation clock, so two identical runs tune identically.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional

from repro.errors import PlatformError
from repro.faas.admission import TenantQuotas
from repro.faas.controlplane.slo import TenantSLOStatus

#: Actuator signature for fair-queue weights: ``(tenant, weight) -> ignored``.
WeightActuator = Callable[[str, float], object]


class QuotaTuner:
    """Drives :class:`~repro.faas.admission.TenantQuotas` rates and WFQ
    weights from windowed SLO verdicts via AIMD."""

    def __init__(
        self,
        *,
        decrease_factor: float = 0.5,
        increase_fraction: float = 0.05,
        min_rps: float = 1.0,
        max_cuts_per_tick: int = 1,
        weight_boost: float = 2.0,
        max_weight: float = 8.0,
        cut_hold_ticks: int = 8,
        raise_hold_ticks: int = 4,
    ) -> None:
        if not 0.0 < decrease_factor < 1.0:
            raise PlatformError("decrease_factor must be in (0, 1)")
        if increase_fraction <= 0:
            raise PlatformError("increase_fraction must be positive")
        if min_rps <= 0:
            raise PlatformError("min_rps must be positive")
        if max_cuts_per_tick < 1:
            raise PlatformError("max_cuts_per_tick must be >= 1")
        if weight_boost <= 1.0:
            raise PlatformError("weight_boost must be > 1")
        if max_weight < weight_boost:
            raise PlatformError("max_weight must be >= weight_boost")
        if cut_hold_ticks < 1 or raise_hold_ticks < 1:
            raise PlatformError("hold tick counts must be >= 1")
        self.decrease_factor = decrease_factor
        self.increase_fraction = increase_fraction
        self.min_rps = min_rps
        self.max_cuts_per_tick = max_cuts_per_tick
        self.weight_boost = weight_boost
        self.max_weight = max_weight
        #: Minimum ticks between two multiplicative cuts.  The monitor's
        #: window keeps remembering a spike for a while after a cut bit,
        #: so reacting to every violated tick would cascade one episode's
        #: worth of violation into cut-to-the-floor overcorrection; one
        #: cut per response window lets the last cut show its effect.
        self.cut_hold_ticks = cut_hold_ticks
        #: Consecutive clean ticks required before an additive raise (and
        #: a weight decay) — a single clean window right after a cut is
        #: not yet evidence the pressure is gone.
        self.raise_hold_ticks = raise_hold_ticks
        self._tick = 0
        self._last_cut_tick = -cut_hold_ticks
        self._clean_streak = 0
        #: Per-tenant tuned admission rates (absent = untouched/unlimited).
        self._rates: Dict[str, float] = {}
        #: The demand each tenant showed at its first cut — the anchor the
        #: additive recovery step is sized from (a fixed absolute step
        #: would be glacial for a 1000 rps tenant and violent for a 5 rps
        #: one).
        self._anchors: Dict[str, float] = {}
        #: Per-tenant boosted weights currently in force (absent = 1.0).
        self._weights: Dict[str, float] = {}
        self.rate_cuts = 0
        self.rate_raises = 0
        self.weight_boosts = 0

    def rate_for(self, tenant: str) -> Optional[float]:
        """The tuned admission rate for ``tenant`` (None = never limited)."""
        return self._rates.get(tenant)

    def weight_for(self, tenant: str) -> float:
        """The fair-queue weight currently in force for ``tenant``."""
        return self._weights.get(tenant, 1.0)

    def apply(
        self,
        statuses: Mapping[str, TenantSLOStatus],
        *,
        quotas: Optional[TenantQuotas] = None,
        weights: Optional[WeightActuator] = None,
    ) -> List[str]:
        """React to one assessment; returns human-readable actions taken."""
        self._tick += 1
        actions: List[str] = []
        violated = [s for s in statuses.values() if s.violated]
        if violated:
            self._clean_streak = 0
            if self._tick - self._last_cut_tick >= self.cut_hold_ticks:
                cut_actions = self._decrease(statuses, violated, quotas)
                if cut_actions:
                    self._last_cut_tick = self._tick
                actions.extend(cut_actions)
            actions.extend(self._boost_weights(violated, weights))
        else:
            self._clean_streak += 1
            if self._clean_streak >= self.raise_hold_ticks:
                self._clean_streak = 0
                actions.extend(self._increase(quotas))
                actions.extend(self._decay_weights(weights))
        return actions

    # ------------------------------------------------------------------
    # Multiplicative decrease (violation present)
    # ------------------------------------------------------------------

    def _offenders(
        self,
        statuses: Mapping[str, TenantSLOStatus],
        violated: List[TenantSLOStatus],
    ) -> List[TenantSLOStatus]:
        """Highest-demand tenants that are not themselves violating.

        A tenant missing its own objective is a *victim* of the pressure,
        not its source — cutting it deeper would be throttling the patient.
        Ties break on the tenant name so the choice is deterministic.
        """
        protected = {s.tenant for s in violated}
        candidates = [
            s
            for s in statuses.values()
            if s.tenant not in protected and s.demand_rps > 0
        ]
        candidates.sort(key=lambda s: (-s.demand_rps, s.tenant))
        return candidates

    def _decrease(
        self,
        statuses: Mapping[str, TenantSLOStatus],
        violated: List[TenantSLOStatus],
        quotas: Optional[TenantQuotas],
    ) -> List[str]:
        actions: List[str] = []
        for status in self._offenders(statuses, violated)[: self.max_cuts_per_tick]:
            tenant = status.tenant
            # First cut anchors at the observed demand: the tenant was
            # effectively admitted at that rate, so the next enforceable
            # rate below it is demand * decrease_factor.
            current = self._rates.get(tenant, status.demand_rps)
            new_rate = max(self.min_rps, current * self.decrease_factor)
            if new_rate >= current:
                continue  # already at the floor
            self._anchors.setdefault(tenant, max(status.demand_rps, self.min_rps))
            self._rates[tenant] = new_rate
            self.rate_cuts += 1
            if quotas is not None:
                quotas.set_rate(tenant, new_rate, burst=max(1.0, new_rate / 2))
            actions.append(f"cut:{tenant}:{new_rate:.1f}rps")
        return actions

    def _boost_weights(
        self, violated: List[TenantSLOStatus], weights: Optional[WeightActuator]
    ) -> List[str]:
        actions: List[str] = []
        for status in sorted(violated, key=lambda s: s.tenant):
            tenant = status.tenant
            boosted = min(self.max_weight, self.weight_for(tenant) * self.weight_boost)
            if boosted == self.weight_for(tenant):
                continue
            self._weights[tenant] = boosted
            self.weight_boosts += 1
            if weights is not None:
                weights(tenant, boosted)
            actions.append(f"boost:{tenant}:x{boosted:g}")
        return actions

    # ------------------------------------------------------------------
    # Additive increase (all SLOs met)
    # ------------------------------------------------------------------

    def _increase(self, quotas: Optional[TenantQuotas]) -> List[str]:
        actions: List[str] = []
        for tenant in sorted(self._rates):
            anchor = self._anchors.get(tenant, self._rates[tenant])
            step = max(self.min_rps, anchor * self.increase_fraction)
            new_rate = self._rates[tenant] + step
            if new_rate >= anchor:
                # Fully recovered: the tenant is back to the demand it
                # showed when first cut — stop tracking *and clear the
                # quota override*, so it is again genuinely unlimited
                # (until the next violation), not permanently capped at
                # the anchor.
                del self._rates[tenant]
                del self._anchors[tenant]
                if quotas is not None:
                    quotas.clear_rate(tenant)
                actions.append(f"restore:{tenant}")
                continue
            self._rates[tenant] = new_rate
            self.rate_raises += 1
            if quotas is not None:
                quotas.set_rate(tenant, new_rate, burst=max(1.0, new_rate / 2))
            actions.append(f"raise:{tenant}:{new_rate:.1f}rps")
        return actions

    def _decay_weights(self, weights: Optional[WeightActuator]) -> List[str]:
        actions: List[str] = []
        for tenant in sorted(self._weights):
            decayed = max(1.0, self._weights[tenant] / self.weight_boost)
            if decayed == 1.0:
                del self._weights[tenant]
            else:
                self._weights[tenant] = decayed
            if weights is not None:
                weights(tenant, decayed)
            actions.append(f"decay:{tenant}:x{decayed:g}")
        return actions

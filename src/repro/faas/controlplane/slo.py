"""Tenant service-level objectives and the monitor that scores them.

A :class:`TenantSLO` declares what a tenant *bought*: a tail-latency target
(p99 over a sliding window) and a minimum goodput fraction (the share of
the tenant's arrivals the platform must serve rather than shed or
throttle).  The :class:`SLOMonitor` turns the platform's raw metrics into
per-tenant :class:`TenantSLOStatus` verdicts over a recent window — the
signal surface the quota tuner and capacity planner act on.

The monitor deliberately consumes *windowed* metrics
(:meth:`~repro.faas.metrics.MetricsCollector.window`): a control loop that
reacted to run-lifetime averages would keep punishing a tenant for a burst
that ended minutes ago, and would not notice a violation until it had
dragged the lifetime percentile over the target.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from repro.errors import PlatformError
from repro.faas.metrics import MetricsCollector


@dataclass(frozen=True)
class TenantSLO:
    """One tenant's declared objectives.

    ``p99_ms`` is the end-to-end tail-latency target over the monitor's
    window (``None`` = no latency objective); ``min_goodput`` is the
    minimum fraction of the tenant's recorded arrivals that must complete
    (0.0 = no goodput objective).
    """

    p99_ms: Optional[float] = None
    min_goodput: float = 0.0

    def __post_init__(self) -> None:
        if self.p99_ms is not None and self.p99_ms <= 0:
            raise PlatformError("SLO p99 target must be positive (or None)")
        if not 0.0 <= self.min_goodput <= 1.0:
            raise PlatformError("SLO min_goodput must be within [0, 1]")
        if self.p99_ms is None and self.min_goodput == 0.0:
            raise PlatformError("an SLO must declare at least one objective")


@dataclass(frozen=True)
class TenantSLOStatus:
    """One tenant's windowed behaviour scored against its SLO (if any)."""

    tenant: str
    slo: Optional[TenantSLO]
    #: Length of the window the sample counts below cover.
    window_seconds: float
    completed: int
    rejected: int
    throttled: int
    #: Windowed end-to-end p99 in milliseconds (``None`` = no completions).
    p99_ms: Optional[float]
    #: Completions / recorded arrivals in the window (1.0 when idle — an
    #: idle tenant is not being denied service).
    goodput: float
    #: Recorded arrivals per second of window — the demand signal the
    #: tuner uses to identify who is pressuring the cluster.
    demand_rps: float
    latency_violated: bool
    goodput_violated: bool

    @property
    def violated(self) -> bool:
        """True when any declared objective is currently missed."""
        return self.latency_violated or self.goodput_violated


class SLOMonitor:
    """Scores each tenant's recent behaviour against its declared SLO.

    Tenants without a declared SLO are still reported (with ``slo=None``
    and both violation flags false): their windowed demand is exactly the
    signal the tuner needs to find the *source* of another tenant's
    violation.
    """

    def __init__(
        self,
        slos: Optional[Mapping[str, TenantSLO]] = None,
        *,
        window_seconds: float = 2.0,
    ) -> None:
        if window_seconds <= 0:
            raise PlatformError("SLO window must be positive")
        self.slos: Dict[str, TenantSLO] = dict(slos or {})
        self.window_seconds = window_seconds
        #: The most recent assessment (for observability/driver output).
        self.last: Dict[str, TenantSLOStatus] = {}
        self.assessments = 0
        self.violations_seen = 0

    def assess(
        self,
        metrics: MetricsCollector,
        now: float,
        *,
        queued_by_tenant: Optional[Mapping[str, int]] = None,
    ) -> Dict[str, TenantSLOStatus]:
        """Score every observed (or declared) tenant over the last window.

        ``queued_by_tenant`` (currently waiting invocations per tenant)
        closes the starvation blind spot: a tenant whose requests are all
        stuck in queues finishes *nothing* inside the window — no
        completions, no rejections — which would otherwise score as
        perfectly compliant (goodput 1.0, no latency samples) exactly
        when service is worst.  A declared-SLO tenant with queued work
        and an empty window is therefore marked violating.
        """
        start = max(0.0, now - self.window_seconds)
        window = now - start
        per_tenant = metrics.by_caller(since=start, until=now)
        statuses: Dict[str, TenantSLOStatus] = {}
        for tenant in sorted(set(per_tenant) | set(self.slos)):
            slo = self.slos.get(tenant)
            collector = per_tenant.get(tenant)
            completed = collector.num_completed if collector else 0
            rejected = collector.num_rejected if collector else 0
            throttled = collector.num_throttled if collector else 0
            recorded = collector.num_recorded if collector else 0
            p99_ms = (
                collector.e2e_stats().p99 * 1000.0
                if collector and completed
                else None
            )
            goodput = completed / recorded if recorded else 1.0
            starved = bool(
                slo is not None
                and recorded == 0
                and queued_by_tenant is not None
                and queued_by_tenant.get(tenant, 0) > 0
            )
            latency_violated = bool(
                slo is not None
                and slo.p99_ms is not None
                and (
                    (p99_ms is not None and p99_ms > slo.p99_ms)
                    or starved
                )
            )
            goodput_violated = bool(
                slo is not None
                and (
                    (recorded > 0 and goodput < slo.min_goodput)
                    or (starved and slo.min_goodput > 0)
                )
            )
            statuses[tenant] = TenantSLOStatus(
                tenant=tenant,
                slo=slo,
                window_seconds=window,
                completed=completed,
                rejected=rejected,
                throttled=throttled,
                p99_ms=p99_ms,
                goodput=goodput,
                demand_rps=recorded / window if window > 0 else 0.0,
                latency_violated=latency_violated,
                goodput_violated=goodput_violated,
            )
        self.assessments += 1
        self.violations_seen += sum(1 for s in statuses.values() if s.violated)
        self.last = statuses
        return statuses

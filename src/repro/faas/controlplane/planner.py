"""Cross-invoker pre-warm capacity shifting under a global budget.

PR 2's tail boot-steal was an opportunistic scheduler trick: an idle
invoker only booted a container for a peer's action once that peer's
backlog was already eight deep.  The :class:`CapacityPlanner` generalises
it into a deliberate planning step with a cluster view: every control
tick it aggregates per-action demand from the invokers' structured
snapshots (queued work not covered by boots in flight), and *moves*
pre-warmed capacity toward it —

* **Seeding**: an action backlogged on one invoker gets a container
  booted on an underloaded peer *before* any steal needs it, so the
  scheduler's instant (warm-container) steals serve the backlog
  cold-start-free.
* **Draining**: idle dynamic containers are reclaimed early (not after
  the keep-alive) when the cluster is over its global container budget —
  including to *fund* a seed elsewhere, which is what makes this a
  capacity **shift** rather than unbounded growth.

The planner never exceeds the global container budget (counting every
container and boot in flight cluster-wide) and never touches a busy
container: draining is restricted to each pool's idle dynamic containers
by construction.  All scans run in sorted order over deterministic
snapshots, so two identical runs plan identically.

With the warmth spectrum on (``SimulationConfig.restorable_snapshots``)
both actuators get cheaper without any planner change: a funding *drain*
demotes its victim to a held snapshot instead of destroying it (the
container leaves the budget — demoted snapshots serve nothing and count
toward neither ``warm_total`` nor ``boots_in_flight`` — but its image is
retained), and a *seed* on an invoker that holds a restorable snapshot of
the action restores it on-core at a fraction of a boot's cost rather than
cold-starting.  The planner plans the same shifts; the invokers execute
them along the cheapest lifecycle path available.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.errors import PlatformError
from repro.faas.invoker import Invoker, InvokerSnapshot


@dataclass(frozen=True)
class MigrationDecision:
    """One capacity movement the planner actuated."""

    at: float
    action: str
    #: ``"prewarm"`` (a container was seeded on ``target`` to relieve
    #: ``source``) or ``"drain"`` (an idle container on ``source`` was
    #: reclaimed).
    kind: str
    source: Optional[str]
    target: Optional[str]

    def describe(self) -> str:
        """One-line human-readable rendering for driver/CLI output."""
        if self.kind == "prewarm":
            return (
                f"t={self.at:.2f}s prewarm {self.action} on {self.target} "
                f"(relieving {self.source})"
            )
        return f"t={self.at:.2f}s drain {self.action} on {self.source}"


class CapacityPlanner:
    """Plans and actuates cross-invoker pre-warm shifts each control tick."""

    def __init__(
        self,
        budget: int,
        *,
        queue_high: int = 4,
        max_migrations_per_tick: int = 2,
        min_idle_seconds: float = 1.0,
    ) -> None:
        if budget < 1:
            raise PlatformError("the global container budget must be >= 1")
        if queue_high < 1:
            raise PlatformError("planner queue_high must be >= 1")
        if max_migrations_per_tick < 1:
            raise PlatformError("max_migrations_per_tick must be >= 1")
        if min_idle_seconds < 0:
            raise PlatformError("min_idle_seconds must be >= 0")
        self.budget = budget
        self.queue_high = queue_high
        self.max_migrations_per_tick = max_migrations_per_tick
        #: A container must have sat idle this long before the planner may
        #: drain it: reclaiming a container that served a request
        #: milliseconds ago just forces a cold start when the next one
        #: arrives — churn, not capacity management.
        self.min_idle_seconds = min_idle_seconds
        self.decisions: List[MigrationDecision] = []
        self.prewarms = 0
        self.drains = 0

    # ------------------------------------------------------------------
    # The planning step
    # ------------------------------------------------------------------

    @staticmethod
    def total_containers(snapshots: Sequence[InvokerSnapshot]) -> int:
        """Cluster-wide containers plus boots in flight (the budget metric)."""
        return sum(
            sum(snap.warm_total.values()) + sum(snap.boots_in_flight.values())
            for snap in snapshots
        )

    def plan(self, invokers: Sequence[Invoker], now: float) -> List[MigrationDecision]:
        """One tick: seed pre-warms toward backlog, reclaim over-budget idle.

        Returns the decisions made this tick (also appended to
        :attr:`decisions`).
        """
        snapshots = [invoker.snapshot() for invoker in invokers]
        total = self.total_containers(snapshots)
        made: List[MigrationDecision] = []
        seeds = 0
        for uncovered, src_index, action in self._pressures(snapshots):
            # Only seeds count against the per-tick cap: a funding drain is
            # half of one logical shift, not a migration of its own — at
            # the budget boundary the planner must not halve its relief
            # rate exactly when the cluster is saturated.
            if seeds >= self.max_migrations_per_tick:
                break
            target_index = self._pick_target(snapshots, src_index, action)
            if target_index is None:
                continue
            target = invokers[target_index]
            if not target.can_prewarm(action, raise_ceiling=True):
                # The seed could not land (pool at the core bound): skip
                # *before* funding it.  Draining first and discovering the
                # failure afterwards would reclaim a container for nothing
                # — an over-drain the budget bookkeeping never refunds.
                continue
            if total >= self.budget:
                funded = self._drain_one(
                    invokers, now, exclude_action=action, made=made
                )
                if funded is None:
                    break  # nothing drainable: the budget is genuinely spent
                total -= 1
            if target.growth_headroom(action) == 0:
                target.scale_action(action, +1)
            if not target.prewarm(action):
                continue
            total += 1
            decision = MigrationDecision(
                at=now,
                action=action,
                kind="prewarm",
                source=invokers[src_index].invoker_id,
                target=target.invoker_id,
            )
            made.append(decision)
            self.prewarms += 1
            seeds += 1
            # Refresh the target's snapshot so a second seed this tick sees
            # the boot already in flight (and does not double-place).
            snapshots[target_index] = target.snapshot()
        while total > self.budget:
            drained = self._drain_one(invokers, now, exclude_action=None, made=made)
            if drained is None:
                break
            total -= 1
        self.decisions.extend(made)
        return made

    # ------------------------------------------------------------------
    # Demand and placement
    # ------------------------------------------------------------------

    def _pressures(
        self, snapshots: Sequence[InvokerSnapshot]
    ) -> List[Tuple[int, int, str]]:
        """(uncovered backlog, invoker index, action), deepest first.

        Only backlog not already covered by a boot in flight counts —
        demand a reactive autoscaler (or an earlier plan) is already
        paying for needs no second container.
        """
        pressures: List[Tuple[int, int, str]] = []
        for index, snap in enumerate(snapshots):
            for action in sorted(snap.queued_per_action):
                uncovered = snap.queued_per_action[action] - snap.boots_in_flight.get(
                    action, 0
                )
                if uncovered >= self.queue_high:
                    pressures.append((uncovered, index, action))
        pressures.sort(key=lambda item: (-item[0], item[1], item[2]))
        return pressures

    def _pick_target(
        self,
        snapshots: Sequence[InvokerSnapshot],
        src_index: int,
        action: str,
    ) -> Optional[int]:
        """The least-loaded peer worth seeding ``action`` on, if any.

        A peer that already has an idle warm container (the scheduler can
        instant-steal onto it right now) or a boot in flight for the
        action (a seed is already paying off) is skipped; so is a peer
        with no free core (the seed's boot could not even start), and a
        peer with its own queued work for the action — that peer has
        demand of its own (the on-demand growth path covers it), and
        raising its ceiling from here would trigger an on-demand boot the
        planner's budget bookkeeping cannot see.  Among the rest, lowest
        load wins, ties to the fewest containers (spread the warm
        capacity), then the lowest index.
        """
        best: Optional[int] = None
        best_key: Tuple[int, int, int] = (0, 0, 0)
        for index, snap in enumerate(snapshots):
            if index == src_index:
                continue
            if snap.free_cores <= 0:
                continue
            if snap.idle_warm.get(action, 0) > 0 or snap.boots_in_flight.get(action, 0) > 0:
                continue
            if snap.queued_per_action.get(action, 0) > 0:
                continue
            key = (snap.load, sum(snap.warm_total.values()), index)
            if best is None or key < best_key:
                best = index
                best_key = key
        return best

    def _drain_one(
        self,
        invokers: Sequence[Invoker],
        now: float,
        *,
        exclude_action: Optional[str],
        made: List[MigrationDecision],
    ) -> Optional[MigrationDecision]:
        """Reclaim one idle dynamic container somewhere, deepest pool first.

        ``exclude_action`` protects the action a seed is being funded for —
        draining the very capacity the plan is about to re-create would be
        pure churn.  Only pools with no queued work are considered, and
        :meth:`~repro.faas.invoker.Invoker.drain` itself only ever touches
        idle dynamic containers, so a busy container can never be
        reclaimed.  Under the warmth spectrum the reclaim is a *demotion*:
        the freed budget is identical, but the victim survives as a
        restorable snapshot a later seed can revive for far less than a
        boot.
        """
        best: Optional[Tuple[int, int, str]] = None  # (-idle_dynamic, index, action)
        for index, invoker in enumerate(invokers):
            snap = invoker.snapshot()
            for action in sorted(snap.idle_warm):
                if action == exclude_action:
                    continue
                if snap.queued_per_action.get(action, 0) > 0:
                    continue
                idle_dynamic = sum(
                    1
                    for c in invoker.idle_pool(action)
                    if c.dynamic
                    and now - c.idle_since >= self.min_idle_seconds
                )
                if idle_dynamic == 0:
                    continue
                key = (-idle_dynamic, index, action)
                if best is None or key < best:
                    best = key
        if best is None:
            return None
        _, index, action = best
        invoker = invokers[index]
        if invoker.drain(action, 1, min_idle_seconds=self.min_idle_seconds) != 1:
            return None
        decision = MigrationDecision(
            at=now, action=action, kind="drain", source=invoker.invoker_id, target=None
        )
        made.append(decision)
        self.drains += 1
        return decision

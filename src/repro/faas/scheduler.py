"""Cluster scheduling: routing invocations across multiple invokers.

The paper's deployment has exactly one invoker, so its controller has no
routing decision to make.  Growing the substrate into a cluster introduces
the classic FaaS scheduling problem: which invoker should serve an
invocation, given that warm containers — the thing Groundhog's economics
depend on — live on specific invokers?

Three policies are provided:

* ``round-robin`` — spread invocations evenly, ignoring warmth and load.
* ``least-loaded`` — send each invocation to the invoker with the fewest
  busy cores plus waiting invocations.
* ``hash-affinity`` — the OpenWhisk approach: every action hashes to a
  *home* invoker and its invocations go there, maximising warm-container
  hits at the price of per-action load skew.

Deployment follows the same geometry regardless of policy: an action's
pre-warmed containers live on its home invoker, and every other invoker
merely *registers* the action so it can cold-start containers on demand if
the routing policy sends traffic its way.  This keeps the topology identical
across policies, so measured differences are purely due to routing.
"""

from __future__ import annotations

import zlib
from typing import Dict, List, Sequence

from repro.config import SCHEDULER_POLICIES
from repro.errors import PlatformError
from repro.faas.action import ActionSpec
from repro.faas.container import Container
from repro.faas.invoker import CompletionCallback, Invoker
from repro.faas.request import Invocation


def home_index(action: str, num_invokers: int) -> int:
    """The stable home invoker of an action (hash of its name).

    Uses CRC-32 rather than :func:`hash` so the assignment is stable across
    interpreter runs (``PYTHONHASHSEED`` does not perturb it).
    """
    if num_invokers < 1:
        raise PlatformError("a cluster needs at least one invoker")
    return zlib.crc32(action.encode("utf-8")) % num_invokers


class SchedulingPolicy:
    """Base class: picks the invoker index that should serve an invocation."""

    name = "abstract"

    def select(self, invokers: Sequence[Invoker], invocation: Invocation) -> int:
        raise NotImplementedError


class RoundRobinPolicy(SchedulingPolicy):
    """Cycle through the invokers, one invocation each."""

    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def select(self, invokers: Sequence[Invoker], invocation: Invocation) -> int:
        index = self._next % len(invokers)
        self._next += 1
        return index


class LeastLoadedPolicy(SchedulingPolicy):
    """Pick the invoker with the smallest load (ties go to the lowest index)."""

    name = "least-loaded"

    def select(self, invokers: Sequence[Invoker], invocation: Invocation) -> int:
        return min(range(len(invokers)), key=lambda i: (invokers[i].load, i))


class HashAffinityPolicy(SchedulingPolicy):
    """Route every invocation of an action to the action's home invoker."""

    name = "hash-affinity"

    def select(self, invokers: Sequence[Invoker], invocation: Invocation) -> int:
        return home_index(invocation.action, len(invokers))


_POLICY_CLASSES = {
    RoundRobinPolicy.name: RoundRobinPolicy,
    LeastLoadedPolicy.name: LeastLoadedPolicy,
    HashAffinityPolicy.name: HashAffinityPolicy,
}

# Unconditional (not an assert): must hold even under `python -O`, so a
# policy added to config.SCHEDULER_POLICIES without a class fails at import
# rather than deep inside cluster construction.
if set(_POLICY_CLASSES) != set(SCHEDULER_POLICIES):
    raise RuntimeError(
        "scheduler policy registry is out of sync with config.SCHEDULER_POLICIES"
    )


def create_policy(name: str) -> SchedulingPolicy:
    """Instantiate a scheduling policy by its registry name."""
    try:
        return _POLICY_CLASSES[name]()
    except KeyError:
        raise PlatformError(
            f"unknown scheduling policy {name!r}; choose one of {sorted(_POLICY_CLASSES)}"
        ) from None


class Scheduler:
    """Routes invocations across a set of invokers under one policy.

    Exposes the same ``submit(invocation, callback)`` surface as a single
    :class:`~repro.faas.invoker.Invoker`, so the controller can sit in front
    of either without knowing which it has.
    """

    def __init__(self, invokers: Sequence[Invoker], policy: SchedulingPolicy) -> None:
        if not invokers:
            raise PlatformError("a scheduler needs at least one invoker")
        self.invokers = list(invokers)
        self.policy = policy
        self.routed_per_invoker: List[int] = [0] * len(self.invokers)

    # ------------------------------------------------------------------
    # Deployment
    # ------------------------------------------------------------------

    def deploy(
        self,
        spec: ActionSpec,
        *,
        containers: int,
        max_containers: int,
    ) -> List[Container]:
        """Install an action cluster-wide; pre-warm only the home invoker.

        Returns the home invoker's pre-warmed containers (the cluster
        analogue of the single-invoker deploy result).
        """
        home = home_index(spec.name, len(self.invokers))
        deployed: List[Container] = []
        for index, invoker in enumerate(self.invokers):
            if index == home:
                deployed = invoker.deploy(
                    spec, containers=containers, max_containers=max_containers
                )
            else:
                invoker.register(spec, max_containers=max_containers)
        return deployed

    def home_invoker(self, action: str) -> Invoker:
        """The invoker that hosts an action's pre-warmed containers."""
        return self.invokers[home_index(action, len(self.invokers))]

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def submit(self, invocation: Invocation, callback: CompletionCallback) -> None:
        """Route one invocation to the invoker chosen by the policy."""
        index = self.policy.select(self.invokers, invocation)
        if not 0 <= index < len(self.invokers):
            raise PlatformError(
                f"policy {self.policy.name!r} selected invalid invoker {index}"
            )
        self.routed_per_invoker[index] += 1
        self.invokers[index].submit(invocation, callback)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self) -> List[Dict[str, object]]:
        """Per-invoker counter snapshots plus routing counts."""
        rows = []
        for routed, invoker in zip(self.routed_per_invoker, self.invokers):
            row = invoker.stats()
            row["routed"] = routed
            rows.append(row)
        return rows

"""Cluster scheduling: routing invocations across multiple invokers.

The paper's deployment has exactly one invoker, so its controller has no
routing decision to make.  Growing the substrate into a cluster introduces
the classic FaaS scheduling problem: which invoker should serve an
invocation, given that warm containers — the thing Groundhog's economics
depend on — live on specific invokers?

Policies decide from each invoker's structured
:class:`~repro.faas.invoker.InvokerSnapshot` (idle-warm containers per
action, queue depth, boots in flight, cores in use) rather than a single
scalar load.  Four are provided:

* ``round-robin`` — spread invocations evenly, ignoring warmth and load.
* ``least-loaded`` — send each invocation to the invoker with the fewest
  busy cores plus backlogged boots plus waiting invocations.
* ``hash-affinity`` — the OpenWhisk approach: every action hashes to a
  *home* invoker and its invocations go there, maximising warm-container
  hits at the price of per-action load skew.
* ``warm-aware`` — least-loaded with the cold start priced in: an invoker
  that would have to boot a container for the action carries a load
  penalty, so traffic prefers warm invokers until their backlog outweighs
  a boot.  With the warmth spectrum on, invokers holding a restorable
  snapshot of the action form a middle tier priced by the (much smaller)
  restore penalty.

Deployment follows the same geometry regardless of policy: an action's
pre-warmed containers live on its home invoker, and every other invoker
merely *registers* the action so it can cold-start containers on demand if
the routing policy sends traffic its way.  This keeps the topology identical
across policies, so measured differences are purely due to routing.

**Work stealing** (``work_stealing=True``) complements any routing policy:
whenever an invoker reports spare capacity, the scheduler moves queued
invocations from saturated peers onto it.  Two kinds of steal exist:

* *Instant* steals — the thief has an idle warm container and a free core,
  so it takes the *oldest* queued invocation (the queue head) and
  dispatches it immediately.  This preserves the per-action FIFO
  discipline: the stolen invocation is exactly the one that would have
  been dispatched next.
* *Boot* steals — the victim's backlog for an action is deep
  (``boot_steal_min_queue``), the victim has no growth headroom left, and
  the thief has some, so it takes the *newest* queued invocation (the
  queue tail) and boots a container for it.  The request that would have
  waited longest seeds a new warm container on the idle invoker; the
  older requests keep their FIFO positions on the victim and typically
  finish during the boot.  This deliberately trades the stolen request's
  queue position for cluster capacity: arrivals that keep landing on the
  victim afterwards may overtake the one parked request.  Strict
  per-action FIFO dispatch order is therefore a guarantee of the
  instant-steal regime (set ``boot_steal_min_queue=None`` for it).

All steals happen inside event callbacks in a fixed scan order, so runs
remain deterministic.
"""

from __future__ import annotations

import zlib
from collections import Counter
from types import MappingProxyType
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Type

from repro.config import SCHEDULER_POLICIES
from repro.errors import PlatformError
from repro.faas.action import ActionSpec
from repro.faas.container import Container
from repro.faas.index import ClusterIndex
from repro.faas.invoker import CompletionCallback, Invoker, InvokerSnapshot
from repro.faas.request import Invocation
from repro.runtime.profiles import FunctionProfile


def estimated_service_seconds(profile: FunctionProfile) -> float:
    """Rough per-request container occupancy of one function profile.

    Execution plus an estimate of restoration (pagemap scan of the
    footprint + copy-back of the write set) plus fixed platform handling —
    the sizing heuristic the experiment drivers use for measurement
    windows, and the denominator of the calibrated warm-aware cold-start
    penalty (a boot costs ``boot_seconds / service_seconds`` requests'
    worth of core time).
    """
    restore_estimate = (
        profile.total_pages * 0.2e-6 + profile.dirtied_pages * 2.4e-6 + 0.002
    )
    return profile.exec_seconds * 1.4 + restore_estimate + 0.005


def home_index(action: str, num_invokers: int) -> int:
    """The stable home invoker of an action (hash of its name).

    Uses CRC-32 rather than :func:`hash` so the assignment is stable across
    interpreter runs (``PYTHONHASHSEED`` does not perturb it).
    """
    if num_invokers < 1:
        raise PlatformError("a cluster needs at least one invoker")
    return zlib.crc32(action.encode("utf-8")) % num_invokers


class SchedulingPolicy:
    """Base class: picks the invoker index that should serve an invocation.

    Concrete policies implement :meth:`choose` over the invokers'
    structured snapshots; :meth:`select` adapts the live invokers to that
    surface so callers can keep handing in :class:`Invoker` objects.
    """

    name = "abstract"
    #: True for policies whose :meth:`select` consults a bound
    #: :class:`~repro.faas.index.ClusterIndex` (the scheduler only builds
    #: one when a consumer exists).
    uses_index = False

    def __init__(self) -> None:
        #: Bound by the scheduler when an incrementally-maintained index
        #: exists; ``None`` keeps the scan implementations.
        self._index: Optional[ClusterIndex] = None

    def bind_index(self, index: ClusterIndex) -> None:
        """Give the policy a live cluster index to route from.

        The indexed paths are bit-identical to the scans (same choice,
        same tie-breaks) — binding an index changes cost, not behaviour.
        """
        self._index = index

    def select(self, invokers: Sequence[Invoker], invocation: Invocation) -> int:
        if len(invokers) == 1:
            return 0  # no decision to make — skip the snapshot cost
        return self.choose([invoker.snapshot() for invoker in invokers], invocation)

    def choose(
        self, snapshots: Sequence[InvokerSnapshot], invocation: Invocation
    ) -> int:
        raise NotImplementedError


class RoundRobinPolicy(SchedulingPolicy):
    """Cycle through the invokers, one invocation each."""

    name = "round-robin"

    def __init__(self) -> None:
        super().__init__()
        self._next = 0

    def select(self, invokers: Sequence[Invoker], invocation: Invocation) -> int:
        # Needs only the invoker count — skip building snapshots.
        return self._cycle(len(invokers))

    def choose(
        self, snapshots: Sequence[InvokerSnapshot], invocation: Invocation
    ) -> int:
        return self._cycle(len(snapshots))

    def _cycle(self, count: int) -> int:
        index = self._next % count
        self._next += 1
        return index


class LeastLoadedPolicy(SchedulingPolicy):
    """Pick the invoker with the smallest load (ties go to the lowest index)."""

    name = "least-loaded"
    uses_index = True

    def select(self, invokers: Sequence[Invoker], invocation: Invocation) -> int:
        if self._index is not None and len(invokers) > 1:
            # O(log N) amortised from the load-ordered index; identical
            # argmin and (load, index) tie-break as the scan below.
            return self._index.least_loaded()
        # Needs only the scalar load — skip building full snapshots.
        return min(range(len(invokers)), key=lambda i: (invokers[i].load, i))

    def choose(
        self, snapshots: Sequence[InvokerSnapshot], invocation: Invocation
    ) -> int:
        return min(range(len(snapshots)), key=lambda i: (snapshots[i].load, i))


class HashAffinityPolicy(SchedulingPolicy):
    """Route every invocation of an action to the action's home invoker."""

    name = "hash-affinity"

    def select(self, invokers: Sequence[Invoker], invocation: Invocation) -> int:
        # Needs only the action name and invoker count — skip snapshots.
        return home_index(invocation.action, len(invokers))

    def choose(
        self, snapshots: Sequence[InvokerSnapshot], invocation: Invocation
    ) -> int:
        return home_index(invocation.action, len(snapshots))


class WarmAwarePolicy(SchedulingPolicy):
    """Least-loaded with the cold start priced in.

    An invoker that already has containers (or boots in flight) for the
    action competes on its load alone; an invoker that would have to boot
    a fresh container carries a cold-start penalty in extra load units —
    the requests' worth of core time a boot costs.  Traffic therefore
    sticks to warm invokers while they are competitive and spills to a
    cold invoker only once the warm backlog outweighs a boot, which is
    exactly when paying for the boot is worth it.

    The penalty is the fixed ``cold_start_penalty`` constant (32 load
    units — a container initialisation runs hundreds of milliseconds
    against typical millisecond-scale functions, hence the large default)
    unless the action was :meth:`calibrate`\\ d, in which case the
    workload-derived boot/service-time ratio is used: a deployment can
    register each action's measured boot time against its estimated
    per-request service time, so heavyweight functions (few requests'
    worth per boot) spill earlier than lightweight ones (many requests'
    worth per boot).  The constant remains the fallback for actions
    without a calibration.

    With the warmth spectrum on, a third tier sits between warm and
    cold: an invoker that holds only a demoted *restorable snapshot* of
    the action carries the (much smaller) ``snapshot_restore_penalty`` —
    or, when calibrated with ``restore_seconds``, the restore/service
    ratio — so traffic prefers live-warm invokers, then snapshot
    holders, then cold boots, each priced by what serving there would
    actually cost.  With the spectrum off no snapshots exist, the middle
    tier never fires, and the scoring is byte-identical to before.
    """

    name = "warm-aware"
    uses_index = True

    def __init__(
        self,
        cold_start_penalty: float = 32.0,
        snapshot_restore_penalty: float = 2.0,
    ) -> None:
        super().__init__()
        if cold_start_penalty < 0:
            raise PlatformError("cold_start_penalty must be >= 0")
        if snapshot_restore_penalty < 0:
            raise PlatformError("snapshot_restore_penalty must be >= 0")
        self.cold_start_penalty = cold_start_penalty
        self.snapshot_restore_penalty = snapshot_restore_penalty
        #: Per-action calibrated penalties (boot/service-time ratios).
        self._calibrated: Dict[str, float] = {}
        #: Per-action calibrated restore penalties (restore/service ratios).
        self._calibrated_restore: Dict[str, float] = {}

    def calibrate(
        self,
        action: str,
        *,
        boot_seconds: float,
        service_seconds: float,
        restore_seconds: Optional[float] = None,
    ) -> float:
        """Derive and register the action's penalty from workload estimates.

        Returns the cold penalty: how many requests' worth of core time
        one container boot costs for this action.  ``restore_seconds``
        additionally calibrates the snapshot-restore tier (the
        restore/service ratio) for spectrum-enabled clusters.
        """
        if boot_seconds < 0:
            raise PlatformError("boot_seconds must be >= 0")
        if service_seconds <= 0:
            raise PlatformError("service_seconds must be positive")
        penalty = boot_seconds / service_seconds
        self._calibrated[action] = penalty
        if restore_seconds is not None:
            if restore_seconds < 0:
                raise PlatformError("restore_seconds must be >= 0")
            self._calibrated_restore[action] = restore_seconds / service_seconds
        return penalty

    def penalty_for(self, action: str) -> float:
        """The action's cold-start penalty (calibrated, else the constant)."""
        return self._calibrated.get(action, self.cold_start_penalty)

    def restore_penalty_for(self, action: str) -> float:
        """The action's snapshot-restore penalty (calibrated, else constant)."""
        return self._calibrated_restore.get(action, self.snapshot_restore_penalty)

    def select(self, invokers: Sequence[Invoker], invocation: Invocation) -> int:
        if len(invokers) == 1:
            return 0
        action = invocation.action
        if self._index is not None:
            # Indexed path: warm/snapshot sets + load heap, no snapshots,
            # no per-invoker tuple allocation — same key, same tie-breaks.
            return self._index.warm_aware_choose(
                action, self.penalty_for(action), self.restore_penalty_for(action)
            )
        # Scan fallback: the same (load + penalty, load, index) argmin as
        # :meth:`choose`, but over the live invokers' O(1) load/warmth/
        # snapshot accessors, without materialising snapshots or key
        # tuples — strict ``<`` comparisons keep ties on the lowest index.
        cold_penalty = self.penalty_for(action)
        restore_penalty = self.restore_penalty_for(action)

        def _penalty(invoker: Invoker) -> float:
            if invoker.warmth(action) > 0:
                return 0.0
            if invoker.snapshots_held(action) > 0:
                return restore_penalty
            return cold_penalty

        best = 0
        best_load = invokers[0].load
        best_total = best_load + _penalty(invokers[0])
        for index in range(1, len(invokers)):
            invoker = invokers[index]
            load = invoker.load
            total = load + _penalty(invoker)
            if total < best_total or (total == best_total and load < best_load):
                best = index
                best_load = load
                best_total = total
        return best

    def choose(
        self, snapshots: Sequence[InvokerSnapshot], invocation: Invocation
    ) -> int:
        action = invocation.action
        cold_penalty = self.penalty_for(action)
        restore_penalty = self.restore_penalty_for(action)

        def score(index: int) -> Tuple[float, int, int]:
            snap = snapshots[index]
            if snap.warmth(action) > 0:
                penalty = 0.0
            elif snap.restorable(action) > 0:
                penalty = restore_penalty
            else:
                penalty = cold_penalty
            return (snap.load + penalty, snap.load, index)

        return min(range(len(snapshots)), key=score)


_POLICY_CLASSES: Mapping[str, Type[SchedulingPolicy]] = MappingProxyType({
    RoundRobinPolicy.name: RoundRobinPolicy,
    LeastLoadedPolicy.name: LeastLoadedPolicy,
    HashAffinityPolicy.name: HashAffinityPolicy,
    WarmAwarePolicy.name: WarmAwarePolicy,
})

# Unconditional (not an assert): must hold even under `python -O`, so a
# policy added to config.SCHEDULER_POLICIES without a class fails at import
# rather than deep inside cluster construction.
if set(_POLICY_CLASSES) != set(SCHEDULER_POLICIES):
    raise RuntimeError(
        "scheduler policy registry is out of sync with config.SCHEDULER_POLICIES"
    )


def create_policy(name: str) -> SchedulingPolicy:
    """Instantiate a scheduling policy by its registry name."""
    try:
        return _POLICY_CLASSES[name]()
    except KeyError:
        raise PlatformError(
            f"unknown scheduling policy {name!r}; choose one of {sorted(_POLICY_CLASSES)}"
        ) from None


class Scheduler:
    """Routes invocations across a set of invokers under one policy.

    Exposes the same ``submit(invocation, callback)`` surface as a single
    :class:`~repro.faas.invoker.Invoker`, so the controller can sit in front
    of either without knowing which it has.

    With ``work_stealing=True`` the scheduler additionally rebalances after
    every routing decision and whenever an invoker signals spare capacity,
    moving queued invocations from saturated invokers onto idle ones (see
    the module docstring for the two steal kinds and their FIFO
    guarantees).  ``boot_steal_min_queue`` is the backlog depth at which an
    idle invoker is allowed to boot a container for a peer's action;
    ``None`` restricts stealing to instant (warm-container) steals only.
    """

    def __init__(
        self,
        invokers: Sequence[Invoker],
        policy: SchedulingPolicy,
        *,
        work_stealing: bool = False,
        boot_steal_min_queue: Optional[int] = 8,
        cluster_index: bool = True,
    ) -> None:
        if not invokers:
            raise PlatformError("a scheduler needs at least one invoker")
        if boot_steal_min_queue is not None and boot_steal_min_queue < 1:
            raise PlatformError("boot_steal_min_queue must be >= 1 or None")
        self.invokers = list(invokers)
        self.policy = policy
        self.work_stealing = work_stealing
        self.boot_steal_min_queue = boot_steal_min_queue
        self.routed_per_invoker: List[int] = [0] * len(self.invokers)
        #: Invocations moved between invokers by work stealing.
        self.steals = 0
        self._rebalancing = False
        #: The incrementally-maintained cluster index (``None`` when
        #: disabled, the cluster has one invoker, or nothing consumes it).
        #: Routing and steal decisions are bit-identical with and without
        #: it — the flag trades per-request scans for O(log N) deltas.
        self.index: Optional[ClusterIndex] = None
        if cluster_index and len(self.invokers) > 1 and (
            work_stealing or policy.uses_index
        ):
            self.index = ClusterIndex(self.invokers)
            policy.bind_index(self.index)
        if self.work_stealing and len(self.invokers) > 1:
            for invoker in self.invokers:
                invoker.spare_capacity_callback = self._on_spare_capacity

    # ------------------------------------------------------------------
    # Deployment
    # ------------------------------------------------------------------

    def deploy(
        self,
        spec: ActionSpec,
        *,
        containers: int,
        max_containers: int,
    ) -> List[Container]:
        """Install an action cluster-wide; pre-warm only the home invoker.

        Returns the home invoker's pre-warmed containers (the cluster
        analogue of the single-invoker deploy result).
        """
        home = home_index(spec.name, len(self.invokers))
        deployed: List[Container] = []
        for index, invoker in enumerate(self.invokers):
            if index == home:
                deployed = invoker.deploy(
                    spec, containers=containers, max_containers=max_containers
                )
            else:
                invoker.register(spec, max_containers=max_containers)
        return deployed

    def home_invoker(self, action: str) -> Invoker:
        """The invoker that hosts an action's pre-warmed containers."""
        return self.invokers[home_index(action, len(self.invokers))]

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def submit(self, invocation: Invocation, callback: CompletionCallback) -> None:
        """Route one invocation to the invoker chosen by the policy."""
        index = self.policy.select(self.invokers, invocation)
        if not 0 <= index < len(self.invokers):
            raise PlatformError(
                f"policy {self.policy.name!r} selected invalid invoker {index}"
            )
        self.routed_per_invoker[index] += 1
        if invocation.trace is not None:
            # Fields only — the scheduler holds no clock; the matching
            # timestamp is the invoker-side arrival stamped next.
            invocation.trace.route(self.policy.name, index)
        self.invokers[index].submit(invocation, callback)
        self._rebalance()

    # ------------------------------------------------------------------
    # Work stealing
    # ------------------------------------------------------------------

    def _on_spare_capacity(self, invoker: Invoker) -> None:
        self._rebalance()

    def _rebalance(self) -> None:
        """Steal queued work onto invokers with spare capacity.

        Runs until no further steal is possible.  The scan order (thieves
        by index, the thief's actions in pool order, victims by deepest
        queue with ties to the lowest index) is fixed, so two identical
        runs steal identically — determinism is preserved.
        """
        if not self.work_stealing or len(self.invokers) < 2 or self._rebalancing:
            return
        index = self.index
        if index is not None and not index.any_queued():
            # Event-driven fast path: no queued work anywhere means no
            # steal victim can exist, so the scan below would find
            # nothing.  This is the common case after most submits — the
            # O(invokers² × actions) sweep only runs on real pressure.
            return
        find_steal = self._find_steal if index is None else self._find_steal_indexed
        self._rebalancing = True
        try:
            progressed = True
            while progressed:
                progressed = False
                for thief in self.invokers:
                    steal = find_steal(thief)
                    if steal is None:
                        continue
                    victim, action, newest = steal
                    entry = victim.release_queued(action, newest=newest)
                    thief.adopt(*entry)
                    self.steals += 1
                    progressed = True
        finally:
            self._rebalancing = False

    def _find_steal(
        self, thief: Invoker
    ) -> Optional[Tuple[Invoker, str, bool]]:
        """The best (victim, action, steal-from-tail) for ``thief``, if any."""
        if thief.cores_in_use >= thief.cores:
            return None
        # Instant steals first: an idle warm container plus a free core
        # serves the victim's queue head right now, cold-start free.
        for action in thief.idle_warm_actions():
            victim = self._steal_victim(action, thief, min_queue=1)
            if victim is not None:
                return victim, action, False
        # Boot steals: only for deep backlogs on victims that cannot add
        # capacity themselves, and only tail entries — the stolen request
        # pays the boot it would have effectively waited for anyway, and
        # the new container makes the thief warm.
        if self.boot_steal_min_queue is None:
            return None
        for action in self._growable_actions(thief):
            if not thief.queue_capacity(action):
                # A boot steal parks the stolen invocation in the thief's
                # queue; never overfill a bounded queue to do so (adopted
                # work is exempt from shedding, so the bound is enforced
                # here, at the steal decision).
                continue
            victim = self._steal_victim(
                action, thief,
                min_queue=self.boot_steal_min_queue,
                require_exhausted=True,
            )
            if victim is not None:
                return victim, action, True
        return None

    def _growable_actions(self, thief: Invoker) -> List[str]:
        """Actions the thief could boot a container for, in pool order.

        Actions with an idle warm container are excluded — those were
        already candidates for an instant steal, and booting another
        container while one sits idle would be pure waste.
        """
        snapshot = thief.snapshot()
        return [
            action
            for action, room in snapshot.growth_headroom.items()
            if room > 0 and action not in snapshot.idle_warm
        ]

    def _steal_victim(
        self,
        action: str,
        thief: Invoker,
        *,
        min_queue: int,
        require_exhausted: bool = False,
    ) -> Optional[Invoker]:
        """The peer with the deepest queue for ``action`` (ties: lowest index).

        ``require_exhausted`` additionally demands the victim has no growth
        headroom left for the action: as long as it can still boot its own
        container, a transient burst is its problem to absorb — spending a
        peer's core on a boot is only justified once the victim is capped.
        """
        best: Optional[Invoker] = None
        best_depth = 0
        for invoker in self.invokers:
            if invoker is thief:
                continue
            depth = invoker.queued_invocations(action)
            if depth < min_queue or depth <= best_depth:
                continue
            if require_exhausted and invoker.growth_headroom(action) > 0:
                continue
            best = invoker
            best_depth = depth
        return best

    def _find_steal_indexed(
        self, thief: Invoker
    ) -> Optional[Tuple[Invoker, str, bool]]:
        """Index-driven :meth:`_find_steal`: same decision, no full scans.

        Candidate actions come from the index's queued-action set (an
        action with no queued work anywhere can never yield a victim)
        intersected with the thief's warmth state, and are visited in
        the thief's pool creation order — exactly the order the scan
        walks ``idle_warm_actions()`` / ``_growable_actions()`` — so the
        first hit is the same steal the scan would have made.
        """
        if thief.cores_in_use >= thief.cores:
            return None
        index = self.index
        assert index is not None
        instant: List[Tuple[int, str]] = []
        for action in index.queued_actions():
            if thief.has_idle(action):
                instant.append((thief.pool_order(action), action))
        instant.sort()
        for _seq, action in instant:
            victim = self._steal_victim_indexed(action, thief, min_queue=1)
            if victim is not None:
                return victim, action, False
        if self.boot_steal_min_queue is None:
            return None
        growable: List[Tuple[int, str]] = []
        for action in index.queued_actions():
            if not thief.has_idle(action) and thief.growth_headroom(action) > 0:
                growable.append((thief.pool_order(action), action))
        growable.sort()
        for _seq, action in growable:
            if not thief.queue_capacity(action):
                continue
            victim = self._steal_victim_indexed(
                action, thief,
                min_queue=self.boot_steal_min_queue,
                require_exhausted=True,
            )
            if victim is not None:
                return victim, action, True
        return None

    def _steal_victim_indexed(
        self,
        action: str,
        thief: Invoker,
        *,
        min_queue: int,
        require_exhausted: bool = False,
    ) -> Optional[Invoker]:
        """Index-driven :meth:`_steal_victim`: same victim, same tie-breaks.

        Visits only invokers with a non-empty queue for the action, in
        ascending position order (the scan's iteration order over all
        invokers, minus the zero-depth ones it would skip anyway), with
        the exact same condition sequence — deepest queue wins, ties go
        to the lowest position, growth-exhaustion checked after depth.
        """
        assert self.index is not None
        depths = self.index.depths_for(action)
        if not depths:
            return None
        best: Optional[Invoker] = None
        best_depth = 0
        thief_position = thief.index_position
        for position in sorted(depths):
            if position == thief_position:
                continue
            depth = depths[position]
            if depth < min_queue or depth <= best_depth:
                continue
            invoker = self.invokers[position]
            if require_exhausted and invoker.growth_headroom(action) > 0:
                continue
            best = invoker
            best_depth = depth
        return best

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def snapshots(self) -> List[InvokerSnapshot]:
        """The structured state of every invoker, in index order."""
        return [invoker.snapshot() for invoker in self.invokers]

    def queued_by_tenant(self) -> Dict[str, int]:
        """Cluster-wide waiting invocations per tenant, across all invokers."""
        totals: Counter = Counter()
        for invoker in self.invokers:
            totals.update(invoker.queued_by_tenant())
        return dict(totals)

    def routing_skew(self) -> float:
        """Max/mean invocations routed per invoker (1.0 = perfectly even).

        The hash-affinity collapse made visible: a policy that funnels hot
        actions onto few invokers shows a skew well above 1.  Returns 0.0
        before any invocation was routed.
        """
        total = sum(self.routed_per_invoker)
        if total == 0:
            return 0.0
        mean = total / len(self.routed_per_invoker)
        return max(self.routed_per_invoker) / mean

    def stats(self) -> List[Dict[str, object]]:
        """Per-invoker counter snapshots plus routing counts."""
        rows = []
        for routed, invoker in zip(self.routed_per_invoker, self.invokers):
            row = invoker.stats()
            row["routed"] = routed
            rows.append(row)
        return rows

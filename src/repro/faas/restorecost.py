"""Per-mechanism pricing of a cluster-level snapshot restore.

The warmth spectrum (live-warm > restorable-snapshot > cold) needs one
number per demoted container: how long an on-core *restore* takes before
the container can serve again.  This module derives that number from the
same per-operation cost model that prices the paper-level mechanisms
(:mod:`repro.sim.costs`), the container's own :class:`~repro.core.policy.
InitReport` (its footprint: mapped pages, snapshot pages), and the fault
cost model in :mod:`repro.kernel.faults` — so a cluster restore is priced
by the *same arithmetic* as the single-box mechanism it models, not by a
free-floating constant.

Mechanism mapping (``SimulationConfig.isolation_mechanism``):

``gh`` / ``gh-nop``
    Groundhog's in-place rollback: ptrace interrupt/detach around a
    soft-dirty pagemap scan of the mapped footprint plus a copy-back of
    the snapshot-diff pages, and a post-restore soft-dirty re-tracking
    fault per restored page (priced via :class:`~repro.kernel.faults.
    FaultRecord`).  Orders of magnitude cheaper than a boot.
``criu``
    Image deserialisation from disk: large base cost plus a per-kpage
    restore cost over the whole mapped footprint.
``fork``
    Fork-from-zygote: cheap fork plus copy-on-write first-touch faults
    over the snapshot working set.
``faasm``
    WASM memory reset: base cost plus a per-kpage zeroing cost over the
    snapshot pages.
``base`` / ``cold``
    No restorable image exists under these mechanisms — a "restore"
    degenerates to a full re-initialisation, i.e. the boot cost.
"""

from __future__ import annotations

from repro.core.policy import InitReport
from repro.kernel.faults import FaultRecord
from repro.sim.costs import DEFAULT_COST_MODEL, CostModel

__all__ = ["restore_seconds_for"]


def restore_seconds_for(
    mechanism: str,
    init: InitReport,
    cost_model: CostModel = DEFAULT_COST_MODEL,
) -> float:
    """Seconds a core is occupied restoring a demoted container.

    Deterministic and pure: the same ``(mechanism, init, cost_model)``
    always prices the same, so twin-cluster identity properties hold.
    """
    if mechanism in ("gh", "gh-nop"):
        # Interrupt the paused runtime, scan its pagemap for dirtied
        # pages, copy the snapshot diff back, detach — then pay one
        # soft-dirty re-tracking fault per restored page when the
        # runtime resumes (the Fig. 3 post-restore fault storm).
        faults = FaultRecord(soft_dirty=init.snapshot_pages)
        return (
            cost_model.ptrace_interrupt_seconds
            + cost_model.ptrace_detach_seconds
            + init.mapped_pages * cost_model.pagemap_scan_seconds
            + init.snapshot_pages * cost_model.page_copy_seconds
            + faults.cost_seconds(cost_model)
        )
    if mechanism == "criu":
        return (
            cost_model.criu_restore_base_seconds
            + cost_model.criu_restore_per_kpage_seconds
            * (init.mapped_pages / 1024.0)
        )
    if mechanism == "fork":
        # A fresh fork of the held zygote, then first-touch COW faults
        # over the snapshot working set as the child warms up.
        faults = FaultRecord(first_touch=init.snapshot_pages)
        return cost_model.fork_base_seconds + faults.cost_seconds(cost_model)
    if mechanism == "faasm":
        return (
            cost_model.faasm_reset_base_seconds
            + cost_model.faasm_reset_per_kpage_seconds
            * (init.snapshot_pages / 1024.0)
        )
    if mechanism in ("base", "cold"):
        # Nothing restorable is held: re-initialise from scratch.
        return init.total_seconds
    raise ValueError(f"unknown isolation mechanism {mechanism!r}")

"""Incrementally-maintained cluster-state indices for O(log N) routing.

The scan implementations of :class:`~repro.faas.scheduler.LeastLoadedPolicy`,
:class:`~repro.faas.scheduler.WarmAwarePolicy` and the work-stealing
rebalance recompute per-invoker state from scratch on every submitted
invocation, so per-request routing cost grows with invokers × deployed
actions.  :class:`ClusterIndex` inverts that: each
:class:`~repro.faas.invoker.Invoker` pushes O(1) deltas at its
state-transition points (container busy/idle, boot start/finish,
enqueue/dequeue, eviction — see ``Invoker._touch_pool``), and the index
maintains three structures the policies and the scheduler query instead
of scanning:

* **A load-ordered lazy min-heap** over ``(load, position)`` pairs.  A
  load change pushes a fresh entry in O(log N) and leaves the old one
  behind as a *stale* entry (recognised by comparing its load against
  the authoritative ``_loads`` array and discarded when it surfaces).
  The heap is compacted — rebuilt from ``_loads`` — once stale entries
  outnumber live ones several times over, so amortised cost stays
  O(log N) per update and per query.
* **Per-action warm sets**: the positions whose invokers have at least
  one container (existing, booting, or restoring) for the action —
  exactly the ``snapshot.warmth(action) > 0`` predicate the warm-aware
  policy scores, without materialising a snapshot.
* **Per-action snapshot sets**: the positions holding at least one
  demoted restorable snapshot of the action — the middle tier of the
  warmth spectrum, scored between live-warm and cold by the warm-aware
  policy's restore penalty.  Maintained by the same O(1) ``_touch_pool``
  deltas as the warm sets; empty whenever the spectrum is off.
* **Per-action queue-depth maps** (sparse: only positions with a
  non-empty queue appear): the victim index for work stealing, and —
  via plain emptiness — the O(1) "is any steal possible at all?" guard
  that makes the post-submit rebalance event-driven.

Every query reproduces the corresponding scan's result **bit for bit**,
including tie-break order (load ties go to the lowest invoker index;
the warm-aware comparison key is the exact ``(load + penalty, load,
index)`` tuple of the scan).  The equivalence is pinned by the unit and
Hypothesis suites in ``tests/unit/test_cluster_index.py`` and
``tests/property/test_prop_index.py``.

The index is a pure observer: it never mutates invokers, consumes RNG,
or schedules events, so attaching it cannot perturb simulated behaviour.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Sequence, Set, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (invoker ← index)
    from repro.faas.invoker import Invoker

#: The heap is compacted once it holds more than this many entries per
#: invoker — beyond it, stale corpses dominate and pop-side cleanup
#: would degrade toward O(history) instead of O(live).
_HEAP_SLACK_FACTOR = 4


class ClusterIndex:
    """Live load/warmth/queue-depth indices over a fixed set of invokers.

    Construction attaches the index to every invoker (see
    :meth:`Invoker.attach_index`), which backfills the current state, so
    an index may be created before or after actions are deployed.
    """

    def __init__(self, invokers: Sequence["Invoker"]) -> None:
        self.invokers = list(invokers)
        n = len(self.invokers)
        #: Authoritative per-position load (heap entries not matching
        #: this array are stale).
        self._loads: List[int] = [0] * n
        self._heap: List[Tuple[int, int]] = [(0, pos) for pos in range(n)]
        # Already heap-ordered: loads equal, positions ascending.
        self._warm: Dict[str, Set[int]] = {}
        self._snapshots: Dict[str, Set[int]] = {}
        self._depths: Dict[str, Dict[int, int]] = {}
        #: Lazy-heap bookkeeping (observability / test hooks).
        self.compactions = 0
        for position, invoker in enumerate(self.invokers):
            invoker.attach_index(self, position)

    # ------------------------------------------------------------------
    # Listener surface (fed by Invoker._touch / Invoker._touch_pool)
    # ------------------------------------------------------------------

    def load_changed(self, position: int, load: int) -> None:
        """Record ``position``'s new load; O(log N) amortised, dedup'd."""
        if load == self._loads[position]:
            return
        self._loads[position] = load
        heapq.heappush(self._heap, (load, position))
        if len(self._heap) > _HEAP_SLACK_FACTOR * len(self._loads) + 8:
            self._compact()

    def depth_changed(self, position: int, action: str, depth: int) -> None:
        """Record ``action``'s queue depth at ``position`` (sparse, dedup'd)."""
        per_action = self._depths.get(action)
        if depth > 0:
            if per_action is None:
                per_action = {}
                self._depths[action] = per_action
            per_action[position] = depth
        elif per_action is not None:
            per_action.pop(position, None)
            if not per_action:
                del self._depths[action]

    def warmth_changed(self, position: int, action: str, warm: bool) -> None:
        """Record whether ``position`` has any container/boot for ``action``."""
        positions = self._warm.get(action)
        if warm:
            if positions is None:
                positions = set()
                self._warm[action] = positions
            positions.add(position)
        elif positions is not None:
            positions.discard(position)
            if not positions:
                del self._warm[action]

    def snapshot_changed(self, position: int, action: str, held: bool) -> None:
        """Record whether ``position`` holds any restorable snapshot of
        ``action`` (sparse, dedup'd — the warmth-spectrum middle tier)."""
        positions = self._snapshots.get(action)
        if held:
            if positions is None:
                positions = set()
                self._snapshots[action] = positions
            positions.add(position)
        elif positions is not None:
            positions.discard(position)
            if not positions:
                del self._snapshots[action]

    def _compact(self) -> None:
        """Rebuild the heap from the authoritative loads (drops all corpses)."""
        self._heap = [(load, pos) for pos, load in enumerate(self._loads)]
        heapq.heapify(self._heap)
        self.compactions += 1

    # ------------------------------------------------------------------
    # Policy queries
    # ------------------------------------------------------------------

    def least_loaded(self) -> int:
        """The position minimising ``(load, position)`` — the scan's argmin.

        Pops stale heap entries until a live one surfaces; the heap
        always holds at least one live entry per position, so this
        terminates and the surfaced minimum is exact (ties break to the
        lowest position because entries order by ``(load, position)``).
        """
        heap, loads = self._heap, self._loads
        while True:
            load, position = heap[0]
            if load == loads[position]:
                return position
            heapq.heappop(heap)

    def warm_aware_choose(
        self, action: str, cold_penalty: float, restore_penalty: float = 0.0
    ) -> int:
        """The scan-identical warm-aware argmin, without building snapshots.

        Reproduces ``min(range(n), key=lambda i: (load_i + penalty_i,
        load_i, i))`` where ``penalty_i`` is 0.0 for invokers warm for
        ``action``, ``restore_penalty`` for invokers holding only a
        restorable snapshot of it, and ``cold_penalty`` otherwise: the
        best candidate of each tier comes from its (small) set — warm
        set, snapshot set minus warm, and the load heap skipping both —
        and the final comparison uses the exact scan key tuples so float
        semantics and tie-breaks match bit for bit.
        """
        loads = self._loads
        warm = self._warm.get(action)
        snaps = self._snapshots.get(action)
        if not warm and not snaps:
            # Everyone pays the same penalty: plain least-loaded argmin.
            return self.least_loaded()

        def _tier_min(positions: Iterable[int], skip) -> Tuple[int, int]:
            best_pos = -1
            best_load = 0
            for position in positions:
                if skip is not None and position in skip:
                    continue
                load = loads[position]
                if (
                    best_pos < 0
                    or load < best_load
                    or (load == best_load and position < best_pos)
                ):
                    best_pos = position
                    best_load = load
            return best_pos, best_load

        keys: List[Tuple[float, int, int]] = []
        if warm:
            warm_pos, warm_load = _tier_min(warm, None)
            keys.append((warm_load + 0.0, warm_load, warm_pos))
        if snaps:
            snap_pos, snap_load = _tier_min(snaps, warm)
            if snap_pos >= 0:
                keys.append((snap_load + restore_penalty, snap_load, snap_pos))
        if warm and snaps:
            covered = len(warm | snaps)
        else:
            covered = len(warm or snaps or ())
        if covered < len(loads):
            # Walk the heap for the least-loaded *cold* position: stale
            # entries are discarded, live-but-covered entries are parked
            # and restored afterwards (they stay live for future queries).
            heap = self._heap
            parked: List[Tuple[int, int]] = []
            while True:
                load, position = heap[0]
                if load != loads[position]:
                    heapq.heappop(heap)
                    continue
                if (warm and position in warm) or (
                    snaps and position in snaps
                ):
                    parked.append(heapq.heappop(heap))
                    continue
                cold_pos, cold_load = position, load
                break
            for entry in parked:
                heapq.heappush(heap, entry)
            keys.append((cold_load + cold_penalty, cold_load, cold_pos))
        return min(keys)[2]

    # ------------------------------------------------------------------
    # Work-stealing queries
    # ------------------------------------------------------------------

    def any_queued(self) -> bool:
        """O(1): does any action have queued work anywhere in the cluster?

        False means no steal victim can exist (every steal needs queue
        depth >= 1 on some invoker), so the post-submit rebalance may
        return immediately instead of scanning.
        """
        return bool(self._depths)

    def queued_actions(self) -> Iterable[str]:
        """Actions with queued work somewhere (superset of steal candidates)."""
        return self._depths.keys()

    def depths_for(self, action: str) -> Dict[int, int]:
        """Sparse ``{position: depth}`` of the action's non-empty queues."""
        return self._depths.get(action, {})

    # ------------------------------------------------------------------
    # Introspection / verification hooks
    # ------------------------------------------------------------------

    def load_of(self, position: int) -> int:
        """The indexed load of one position (test/verification surface)."""
        return self._loads[position]

    def verify(self) -> None:
        """Assert every index structure against a from-scratch recompute.

        Test hook: raises ``AssertionError`` on the first divergence
        between the incrementally maintained state and the ground truth
        recomputed from the invokers.
        """
        for position, invoker in enumerate(self.invokers):
            assert self._loads[position] == invoker.load, (
                f"load index stale at {position}: "
                f"{self._loads[position]} != {invoker.load}"
            )
        live = {(self._loads[pos], pos) for pos in range(len(self._loads))}
        assert live <= set(self._heap), "heap lost a live (load, position) entry"
        warm: Dict[str, Set[int]] = {}
        snapshots: Dict[str, Set[int]] = {}
        depths: Dict[str, Dict[int, int]] = {}
        for position, invoker in enumerate(self.invokers):
            for pool in invoker._pools.values():
                action = pool.spec.name
                if len(pool.containers) + pool.cold_starting + pool.restoring > 0:
                    warm.setdefault(action, set()).add(position)
                if pool.snapshots:
                    snapshots.setdefault(action, set()).add(position)
                if len(pool.queue) > 0:
                    depths.setdefault(action, {})[position] = len(pool.queue)
        assert warm == self._warm, f"warm sets diverged: {warm} != {self._warm}"
        assert snapshots == self._snapshots, (
            f"snapshot sets diverged: {snapshots} != {self._snapshots}"
        )
        assert depths == self._depths, (
            f"depth maps diverged: {depths} != {self._depths}"
        )

"""FaaS platform substrate: an OpenWhisk-like deployment over the simulator."""

from repro.faas.request import Invocation, InvocationStatus
from repro.faas.action import ActionSpec
from repro.faas.proxy import ActionLoopProxy
from repro.faas.container import Container, ContainerState
from repro.faas.invoker import Invoker
from repro.faas.controller import Controller
from repro.faas.platform import FaaSPlatform
from repro.faas.loadgen import ClosedLoopClient, SaturatingClient
from repro.faas.metrics import LatencyStats, MetricsCollector, summarize

__all__ = [
    "Invocation",
    "InvocationStatus",
    "ActionSpec",
    "ActionLoopProxy",
    "Container",
    "ContainerState",
    "Invoker",
    "Controller",
    "FaaSPlatform",
    "ClosedLoopClient",
    "SaturatingClient",
    "LatencyStats",
    "MetricsCollector",
    "summarize",
]

"""FaaS platform substrate: an OpenWhisk-like deployment over the simulator."""

from repro.faas.request import Invocation, InvocationStatus
from repro.faas.action import ActionSpec
from repro.faas.admission import (
    AdmissionQueue,
    FifoQueue,
    ReactiveAutoscaler,
    TenantQuotas,
    WeightedFairQueue,
    create_admission_queue,
)
from repro.faas.proxy import ActionLoopProxy
from repro.faas.container import Container, ContainerState
from repro.faas.invoker import Invoker, InvokerSnapshot
from repro.faas.controller import Controller
from repro.faas.scheduler import (
    HashAffinityPolicy,
    LeastLoadedPolicy,
    RoundRobinPolicy,
    Scheduler,
    SchedulingPolicy,
    WarmAwarePolicy,
    create_policy,
    estimated_service_seconds,
    home_index,
)
from repro.faas.cluster import FaaSCluster
from repro.faas.controlplane import (
    CapacityPlanner,
    ControlPlane,
    MigrationDecision,
    QuotaTuner,
    SLOMonitor,
    TenantSLO,
    TenantSLOStatus,
)
from repro.faas.platform import FaaSPlatform
from repro.faas.loadgen import (
    ClosedLoopClient,
    MultiActionSaturatingClient,
    OpenLoopClient,
    OpenLoopResult,
    SaturatingClient,
    TenantMix,
    azure_diurnal_arrivals,
    azure_functions_arrivals,
    load_azure_trace_csv,
)
from repro.faas.metrics import LatencyStats, MetricsCollector, summarize
from repro.faas.obs import (
    AuditEvent,
    InvocationTrace,
    Span,
    TraceRecorder,
    chrome_trace_events,
    export_chrome_trace,
    latency_decompose,
    render_decomposition,
    write_chrome_trace,
)

__all__ = [
    "Invocation",
    "InvocationStatus",
    "ActionSpec",
    "AdmissionQueue",
    "FifoQueue",
    "WeightedFairQueue",
    "TenantQuotas",
    "ReactiveAutoscaler",
    "create_admission_queue",
    "ActionLoopProxy",
    "Container",
    "ContainerState",
    "Invoker",
    "InvokerSnapshot",
    "Controller",
    "Scheduler",
    "SchedulingPolicy",
    "RoundRobinPolicy",
    "LeastLoadedPolicy",
    "HashAffinityPolicy",
    "WarmAwarePolicy",
    "create_policy",
    "estimated_service_seconds",
    "home_index",
    "FaaSCluster",
    "FaaSPlatform",
    "ControlPlane",
    "CapacityPlanner",
    "MigrationDecision",
    "QuotaTuner",
    "SLOMonitor",
    "TenantSLO",
    "TenantSLOStatus",
    "ClosedLoopClient",
    "OpenLoopClient",
    "OpenLoopResult",
    "SaturatingClient",
    "MultiActionSaturatingClient",
    "TenantMix",
    "azure_diurnal_arrivals",
    "azure_functions_arrivals",
    "load_azure_trace_csv",
    "LatencyStats",
    "MetricsCollector",
    "summarize",
    "AuditEvent",
    "InvocationTrace",
    "Span",
    "TraceRecorder",
    "chrome_trace_events",
    "export_chrome_trace",
    "latency_decompose",
    "render_decomposition",
    "write_chrome_trace",
]

"""FaaS platform substrate: an OpenWhisk-like deployment over the simulator."""

from repro.faas.request import Invocation, InvocationStatus
from repro.faas.action import ActionSpec
from repro.faas.proxy import ActionLoopProxy
from repro.faas.container import Container, ContainerState
from repro.faas.invoker import Invoker
from repro.faas.controller import Controller
from repro.faas.scheduler import (
    HashAffinityPolicy,
    LeastLoadedPolicy,
    RoundRobinPolicy,
    Scheduler,
    SchedulingPolicy,
    create_policy,
    home_index,
)
from repro.faas.cluster import FaaSCluster
from repro.faas.platform import FaaSPlatform
from repro.faas.loadgen import (
    ClosedLoopClient,
    MultiActionSaturatingClient,
    SaturatingClient,
)
from repro.faas.metrics import LatencyStats, MetricsCollector, summarize

__all__ = [
    "Invocation",
    "InvocationStatus",
    "ActionSpec",
    "ActionLoopProxy",
    "Container",
    "ContainerState",
    "Invoker",
    "Controller",
    "Scheduler",
    "SchedulingPolicy",
    "RoundRobinPolicy",
    "LeastLoadedPolicy",
    "HashAffinityPolicy",
    "create_policy",
    "home_index",
    "FaaSCluster",
    "FaaSPlatform",
    "ClosedLoopClient",
    "SaturatingClient",
    "MultiActionSaturatingClient",
    "LatencyStats",
    "MetricsCollector",
    "summarize",
]

"""FaaS platform substrate: an OpenWhisk-like deployment over the simulator."""

from repro.faas.request import Invocation, InvocationStatus
from repro.faas.action import ActionSpec
from repro.faas.proxy import ActionLoopProxy
from repro.faas.container import Container, ContainerState
from repro.faas.invoker import Invoker, InvokerSnapshot
from repro.faas.controller import Controller
from repro.faas.scheduler import (
    HashAffinityPolicy,
    LeastLoadedPolicy,
    RoundRobinPolicy,
    Scheduler,
    SchedulingPolicy,
    WarmAwarePolicy,
    create_policy,
    home_index,
)
from repro.faas.cluster import FaaSCluster
from repro.faas.platform import FaaSPlatform
from repro.faas.loadgen import (
    ClosedLoopClient,
    MultiActionSaturatingClient,
    OpenLoopClient,
    OpenLoopResult,
    SaturatingClient,
)
from repro.faas.metrics import LatencyStats, MetricsCollector, summarize

__all__ = [
    "Invocation",
    "InvocationStatus",
    "ActionSpec",
    "ActionLoopProxy",
    "Container",
    "ContainerState",
    "Invoker",
    "InvokerSnapshot",
    "Controller",
    "Scheduler",
    "SchedulingPolicy",
    "RoundRobinPolicy",
    "LeastLoadedPolicy",
    "HashAffinityPolicy",
    "WarmAwarePolicy",
    "create_policy",
    "home_index",
    "FaaSCluster",
    "FaaSPlatform",
    "ClosedLoopClient",
    "OpenLoopClient",
    "OpenLoopResult",
    "SaturatingClient",
    "MultiActionSaturatingClient",
    "LatencyStats",
    "MetricsCollector",
    "summarize",
]

"""Flight-recorder core: lifecycle spans, audit events, trace recorder.

This module is the **single source of truth for the trace record schema**.
Every exporter (:mod:`repro.faas.obs.export`) and analyzer
(:mod:`repro.faas.obs.decompose`) consumes exactly the records described
here; nothing else defines trace fields.

Trace record schema
===================

``InvocationTrace`` — one sampled invocation's lifecycle timeline
-----------------------------------------------------------------

Identity (stamped at submit by :meth:`TraceRecorder.begin_invocation`):

``invocation_id``
    The platform-wide invocation id (``Invocation.invocation_id``).
    **Not** stable across serial-vs-parallel replication (the id counter
    is process-global); determinism keys use the recorder's run-local
    ordinal instead.
``action`` / ``tenant``
    Deployed action name and calling tenant (``Invocation.caller``).
``submitted_at``
    Simulated time the controller accepted the request (client edge).

Routing (stamped by ``Scheduler.submit`` — the scheduler holds no clock,
so these are fields only; the matching timestamp is the invoker arrival):

``policy``
    Name of the :class:`~repro.faas.scheduler.SchedulingPolicy` that
    chose the invoker.
``invoker_index``
    Index of the winning invoker in the scheduler's list (−1 until
    routed; stays −1 on the single-invoker fast path with no scheduler).

Invoker-side lifecycle (stamped by ``Invoker``):

``invoker_id`` / ``invoker_arrival_at``
    Identity of the first invoker the request reached and the simulated
    arrival time there (end of the controller's inbound hop).  A steal
    keeps the original arrival; the adopting invoker is recorded as a
    ``steal`` event.
``dispatched_at``
    Time a core + container pair started executing the request.
``dispatch_class``
    ``"warm"`` (paused container re-used), ``"restore"`` (first request
    into a container restored from a snapshot), or ``"cold"`` (first
    request into a freshly booted container).  Empty until dispatch.
``container_id`` / ``container_ready_at``
    The serving container and the time it became ready; for cold and
    restore dispatches ``ready_at − invoker_arrival_at`` bounds the
    boot/restore-blocked share of the wait.
``execute_seconds``
    Invoker-side service time (``Invocation.invoker_seconds``).

Completion (stamped by the cluster's record hook, after the controller's
outbound hop has delivered the response):

``completed_at`` / ``status``
    Final delivery time and terminal status (``"completed"``,
    ``"rejected"``, or ``"throttled"``).

``events``
    Clock-ordered ``(at, name, detail)`` point marks for transitions that
    are not already implied by the fields above: ``submit``, ``arrive``,
    ``enqueue``, ``steal`` (detail = adopting invoker), ``throttle``,
    ``reject`` (detail = shed reason).

Phase decomposition (:meth:`InvocationTrace.phases`)
----------------------------------------------------

For a completed trace the end-to-end latency decomposes *exactly* into
six contiguous phases::

    inbound   = invoker_arrival_at − submitted_at        (controller hop in)
    boot      = blocked wait, cold dispatches only
    restore   = blocked wait, restore dispatches only
    queue     = remaining wait for a core/container
    execute   = execute_seconds
    outbound  = completed_at − (dispatched_at + execute_seconds)

where the blocked wait is ``min(wait, max(0, container_ready_at −
invoker_arrival_at))`` and ``wait = dispatched_at − invoker_arrival_at``.
``queue`` is computed as the remainder, so ``boot + restore + queue ==
wait`` exactly and the six phases telescope to ``completed_at −
submitted_at`` up to float associativity.

``AuditEvent`` — one control-plane decision
-------------------------------------------

``at``
    Simulated time of the decision.
``category``
    ``"tuner"`` (AIMD raise/cut/boost, detail carries the triggering SLO
    window when one exists), ``"planner"`` (a
    :class:`~repro.faas.controlplane.planner.MigrationDecision`,
    detail = ``decision.describe()``), ``"keep-alive"`` (idle-expiry
    demote-to-snapshot or evict), ``"snapshot-budget"`` (LRU snapshot
    discard), or ``"steal"`` (a queued invocation adopted by a peer).
``actor``
    ``"control-plane"`` or the acting invoker's id.
``detail``
    Human-readable description of the decision.

``Span`` — one container provisioning interval
----------------------------------------------

``name`` (``"boot"`` or ``"restore"``), ``start``/``end`` simulated
times, ``track`` (owning invoker id), ``detail`` (container id and
action).  Emitted at *begin* time — both boundaries are known when the
work is scheduled, so the recorder never holds open spans.

Sampling determinism
====================

In ``"sampled"`` mode an invocation is recorded iff::

    zlib.crc32(f"{seed}:{ordinal}".encode()) % sample_period == 0

where ``ordinal`` is a run-local counter (0, 1, …) incremented once per
submitted invocation.  Keying on the run-local ordinal rather than the
process-global ``invocation_id`` makes the sampled set a pure function
of ``(seed, arrival order)``: ``run_replicated`` fan-out reproduces the
identical trace whether replicas run serially in one process or in
spawned workers.  CRC-32 is used (as for hash-affinity routing) because
it is stable across processes regardless of ``PYTHONHASHSEED``.
"""

from __future__ import annotations

import zlib
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

__all__ = [
    "PHASES",
    "TRACING_MODES",
    "Span",
    "AuditEvent",
    "InvocationTrace",
    "TraceRecorder",
]

#: Phase names in decomposition (and display) order.
PHASES: Tuple[str, ...] = (
    "inbound", "queue", "boot", "restore", "execute", "outbound",
)

#: Recorder modes (mirrors ``repro.config.TRACING_MODES``).
TRACING_MODES: Tuple[str, ...] = ("off", "sampled", "full")


@dataclass(frozen=True)
class Span:
    """A closed interval on a named track (see module docstring)."""

    name: str
    start: float
    end: float
    track: str = ""
    detail: str = ""

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class AuditEvent:
    """One control-plane decision on the shared timeline."""

    at: float
    category: str
    actor: str
    detail: str


class InvocationTrace:
    """Mutable per-invocation lifecycle record (schema in module docstring)."""

    __slots__ = (
        "invocation_id", "action", "tenant", "submitted_at",
        "policy", "invoker_index", "invoker_id", "invoker_arrival_at",
        "dispatched_at", "dispatch_class", "container_id",
        "container_ready_at", "execute_seconds",
        "completed_at", "status", "events",
    )

    def __init__(
        self, invocation_id: int, action: str, tenant: str, submitted_at: float
    ) -> None:
        self.invocation_id = invocation_id
        self.action = action
        self.tenant = tenant
        self.submitted_at = submitted_at
        self.policy = ""
        self.invoker_index = -1
        self.invoker_id = ""
        self.invoker_arrival_at: Optional[float] = None
        self.dispatched_at: Optional[float] = None
        self.dispatch_class = ""
        self.container_id = ""
        self.container_ready_at: Optional[float] = None
        self.execute_seconds = 0.0
        self.completed_at: Optional[float] = None
        self.status = ""
        self.events: List[Tuple[float, str, str]] = [
            (submitted_at, "submit", action)
        ]

    # -- transition stamps (each called from exactly one instrumentation
    # site; all sites are guarded by ``trace is not None``) --------------

    def mark(self, at: float, name: str, detail: str = "") -> None:
        self.events.append((at, name, detail))

    def route(self, policy: str, invoker_index: int) -> None:
        """Scheduler's pick — fields only; the scheduler holds no clock."""
        self.policy = policy
        self.invoker_index = invoker_index

    def arrive(self, at: float, invoker_id: str) -> None:
        if self.invoker_arrival_at is None:
            self.invoker_arrival_at = at
            self.invoker_id = invoker_id
            self.events.append((at, "arrive", invoker_id))

    def enqueue(self, at: float) -> None:
        self.events.append((at, "enqueue", ""))

    def steal(self, at: float, thief: str) -> None:
        self.events.append((at, "steal", thief))

    def throttle(self, at: float) -> None:
        self.events.append((at, "throttle", ""))

    def reject(self, at: float, detail: str = "") -> None:
        self.events.append((at, "reject", detail))

    def dispatch(
        self,
        at: float,
        dispatch_class: str,
        container_id: str,
        container_ready_at: float,
    ) -> None:
        self.dispatched_at = at
        self.dispatch_class = dispatch_class
        self.container_id = container_id
        self.container_ready_at = container_ready_at

    def finish(self, status: str, completed_at: Optional[float]) -> None:
        self.status = status
        self.completed_at = completed_at

    # -- derived views ----------------------------------------------------

    @property
    def e2e_seconds(self) -> Optional[float]:
        if self.completed_at is None:
            return None
        return self.completed_at - self.submitted_at

    def phases(self) -> Optional[Dict[str, float]]:
        """Exact-sum six-phase decomposition (see module docstring).

        ``None`` for traces that never dispatched (throttled/rejected) or
        never completed.
        """
        if (
            self.completed_at is None
            or self.dispatched_at is None
            or self.invoker_arrival_at is None
        ):
            return None
        inbound = self.invoker_arrival_at - self.submitted_at
        wait = self.dispatched_at - self.invoker_arrival_at
        boot = restore = 0.0
        if self.dispatch_class in ("cold", "restore") and (
            self.container_ready_at is not None
        ):
            blocked = min(
                wait,
                max(0.0, self.container_ready_at - self.invoker_arrival_at),
            )
            if self.dispatch_class == "cold":
                boot = blocked
            else:
                restore = blocked
        queue = wait - boot - restore
        outbound = self.completed_at - (
            self.dispatched_at + self.execute_seconds
        )
        return {
            "inbound": inbound,
            "queue": queue,
            "boot": boot,
            "restore": restore,
            "execute": self.execute_seconds,
            "outbound": outbound,
        }


def _sampled(seed: int, ordinal: int, period: int) -> bool:
    key = f"{seed}:{ordinal}".encode("ascii")
    return zlib.crc32(key) % period == 0


class TraceRecorder:
    """Bounded, seed-deterministic flight recorder.

    Holds three clock-stamped ring buffers (``collections.deque`` with
    ``maxlen=capacity``, so the recorder is bounded regardless of run
    length): finished :class:`InvocationTrace` records, container
    boot/restore :class:`Span` records, and control-plane
    :class:`AuditEvent` records.  Constructed by
    :class:`~repro.faas.cluster.FaaSCluster` only when
    ``SimulationConfig.tracing != "off"`` — the off path carries no
    recorder at all, so instrumentation sites reduce to a single
    ``is not None`` check.
    """

    def __init__(
        self,
        mode: str = "sampled",
        *,
        seed: int = 0,
        sample_period: int = 16,
        capacity: int = 65536,
    ) -> None:
        if mode not in TRACING_MODES:
            raise ValueError(
                f"tracing mode must be one of {TRACING_MODES}, got {mode!r}"
            )
        if sample_period < 1:
            raise ValueError("sample_period must be >= 1")
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.mode = mode
        self.seed = seed
        self.sample_period = sample_period
        self.capacity = capacity
        self._ordinal = 0
        self.seen = 0       # invocations observed (ordinals issued)
        self.started = 0    # traces begun (sampled in)
        self.finished = 0   # traces that reached finish_invocation
        self.invocations: Deque[InvocationTrace] = deque(maxlen=capacity)
        self.container_spans: Deque[Span] = deque(maxlen=capacity)
        self.audit_log: Deque[AuditEvent] = deque(maxlen=capacity)

    # -- invocation lifecycle ---------------------------------------------

    def begin_invocation(self, invocation) -> Optional[InvocationTrace]:
        """Issue an ordinal and, if sampled in, a fresh trace context.

        Returns ``None`` (no trace, no allocation beyond the counter
        bumps) when the invocation is sampled out.
        """
        ordinal = self._ordinal
        self._ordinal += 1
        self.seen += 1
        if self.mode == "off":
            return None
        if self.mode == "sampled" and not _sampled(
            self.seed, ordinal, self.sample_period
        ):
            return None
        self.started += 1
        return InvocationTrace(
            invocation.invocation_id,
            invocation.action,
            invocation.caller,
            invocation.submitted_at,
        )

    def finish_invocation(self, invocation) -> None:
        """Seal a trace once the controller has delivered the response."""
        trace = invocation.trace
        if trace is None:
            return
        status = getattr(invocation.status, "value", str(invocation.status))
        trace.finish(status, invocation.completed_at)
        self.finished += 1
        self.invocations.append(trace)

    # -- container spans and audit timeline -------------------------------

    def record_container_span(
        self,
        *,
        kind: str,
        invoker: str,
        container_id: str,
        action: str,
        start: float,
        end: float,
    ) -> None:
        self.container_spans.append(
            Span(
                name=kind,
                start=start,
                end=end,
                track=invoker,
                detail=f"{container_id} {action}",
            )
        )

    def audit(
        self, at: float, category: str, detail: str, *, actor: str = ""
    ) -> None:
        self.audit_log.append(
            AuditEvent(at=at, category=category, actor=actor, detail=detail)
        )

    # -- summaries ---------------------------------------------------------

    @property
    def dropped(self) -> int:
        """Finished traces evicted from the bounded ring."""
        return self.finished - len(self.invocations)

    def counts(self) -> Dict[str, int]:
        return {
            "seen": self.seen,
            "started": self.started,
            "finished": self.finished,
            "retained": len(self.invocations),
            "dropped": self.dropped,
            "container_spans": len(self.container_spans),
            "audit_events": len(self.audit_log),
        }

    def trace_digest(self) -> str:
        """Process-stable CRC-32 digest of the retained sampled traces.

        Deliberately excludes ``invocation_id`` (the id counter is
        process-global, so serial vs spawned ``run_replicated`` replicas
        disagree on it); everything else — who, when, how dispatched —
        must be identical for identical ``(seed, workload)``.
        """
        parts = sorted(
            (
                trace.action,
                trace.tenant,
                trace.status,
                trace.dispatch_class,
                round(trace.submitted_at, 9),
                round(-1.0 if trace.completed_at is None
                      else trace.completed_at, 9),
            )
            for trace in self.invocations
        )
        payload = repr(parts).encode("utf-8")
        return f"{zlib.crc32(payload):08x}"

"""Phase-level latency decomposer over recorded invocation traces.

Answers *why* p99 moved: for every (tenant, dispatch class) group the
six lifecycle phases (schema: :mod:`repro.faas.obs.trace`) are averaged
over the whole group and over its latency tail, so "rising-edge p99 is
mostly boot-backlog wait" becomes a number rather than a guess.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from repro.faas.obs.trace import PHASES, InvocationTrace, TraceRecorder

__all__ = ["latency_decompose", "render_decomposition"]


def _nearest_rank(sorted_values: List[float], quantile: float) -> float:
    rank = max(1, math.ceil(quantile * len(sorted_values)))
    return sorted_values[min(rank, len(sorted_values)) - 1]


def _group_report(
    rows: List[Tuple[float, Dict[str, float]]], tail_fraction: float
) -> Dict[str, object]:
    rows = sorted(rows, key=lambda row: row[0])
    e2e = [row[0] for row in rows]
    count = len(rows)
    mean = sum(e2e) / count
    tail_count = max(1, math.ceil(tail_fraction * count))
    tail_rows = rows[-tail_count:]
    tail_mean = sum(row[0] for row in tail_rows) / tail_count

    def phase_ms(selection: List[Tuple[float, Dict[str, float]]]) -> Dict[str, float]:
        return {
            phase: 1000.0 * sum(row[1][phase] for row in selection) / len(selection)
            for phase in PHASES
        }

    def shares(phase_means: Dict[str, float], total_ms: float) -> Dict[str, float]:
        if total_ms <= 0.0:
            return {phase: 0.0 for phase in PHASES}
        return {phase: phase_means[phase] / total_ms for phase in PHASES}

    mean_phases = phase_ms(rows)
    tail_phases = phase_ms(tail_rows)
    return {
        "count": count,
        "mean_ms": mean * 1000.0,
        "p50_ms": _nearest_rank(e2e, 0.50) * 1000.0,
        "p99_ms": _nearest_rank(e2e, 0.99) * 1000.0,
        "phase_mean_ms": mean_phases,
        "phase_share_of_mean": shares(mean_phases, mean * 1000.0),
        "tail_count": tail_count,
        "tail_mean_ms": tail_mean * 1000.0,
        "tail_phase_mean_ms": tail_phases,
        "tail_phase_share": shares(tail_phases, tail_mean * 1000.0),
    }


def latency_decompose(
    recorder: TraceRecorder, *, tail_fraction: float = 0.01
) -> Dict[str, object]:
    """Attribute each phase's share of mean and tail latency.

    Groups completed traces by ``(tenant, dispatch_class)`` and also
    aggregates per dispatch class across tenants (tenant ``"*"``) and
    over everything (``"*"``/``"*"``).  ``tail_fraction`` selects the
    slowest share of each group (default: the top 1%, i.e. the p99
    neighbourhood) for the tail attribution.

    Returns ``{"invocations", "phases", "groups": {"tenant/class":
    {...}}}`` — see :func:`_group_report` for the per-group fields.
    """
    if not 0.0 < tail_fraction <= 1.0:
        raise ValueError("tail_fraction must be in (0, 1]")
    grouped: Dict[Tuple[str, str], List[Tuple[float, Dict[str, float]]]] = {}

    def add(key: Tuple[str, str], trace: InvocationTrace, phases) -> None:
        grouped.setdefault(key, []).append((trace.e2e_seconds, phases))

    total = 0
    for trace in recorder.invocations:
        if trace.status != "completed":
            continue
        phases = trace.phases()
        if phases is None:
            continue
        total += 1
        dispatch_class = trace.dispatch_class or "unknown"
        add((trace.tenant, dispatch_class), trace, phases)
        add(("*", dispatch_class), trace, phases)
        add(("*", "*"), trace, phases)

    groups = {
        f"{tenant}/{dispatch_class}": _group_report(rows, tail_fraction)
        for (tenant, dispatch_class), rows in sorted(grouped.items())
    }
    return {
        "invocations": total,
        "phases": list(PHASES),
        "tail_fraction": tail_fraction,
        "groups": groups,
    }


def render_decomposition(report: Dict[str, object]) -> str:
    """Fixed-width table of the decomposition for terminal display."""
    phases = report["phases"]
    header = (
        f"{'group':<24} {'n':>7} {'mean ms':>9} {'p99 ms':>9}  "
        + "  ".join(f"{phase:>9}" for phase in phases)
    )
    lines = [header, "-" * len(header)]
    for name, group in report["groups"].items():
        share = group["phase_share_of_mean"]
        cells = "  ".join(f"{share[phase]:>8.1%}" for phase in phases)
        lines.append(
            f"{name:<24} {group['count']:>7} {group['mean_ms']:>9.2f} "
            f"{group['p99_ms']:>9.2f}  {cells}"
        )
    lines.append(
        "(phase columns: share of the group's mean end-to-end latency)"
    )
    return "\n".join(lines)

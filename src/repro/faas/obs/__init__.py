"""Flight recorder: lifecycle spans, decision audit log, exporters.

The trace record schema lives in :mod:`repro.faas.obs.trace` (the single
source of truth); :mod:`repro.faas.obs.export` serialises a recorder to
Chrome trace-event JSON and :mod:`repro.faas.obs.decompose` attributes
per-phase latency shares.
"""

from repro.faas.obs.decompose import latency_decompose, render_decomposition
from repro.faas.obs.export import (
    chrome_trace_events,
    export_chrome_trace,
    write_chrome_trace,
)
from repro.faas.obs.trace import (
    PHASES,
    TRACING_MODES,
    AuditEvent,
    InvocationTrace,
    Span,
    TraceRecorder,
)

__all__ = [
    "PHASES",
    "TRACING_MODES",
    "AuditEvent",
    "InvocationTrace",
    "Span",
    "TraceRecorder",
    "chrome_trace_events",
    "export_chrome_trace",
    "write_chrome_trace",
    "latency_decompose",
    "render_decomposition",
]

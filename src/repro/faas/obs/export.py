"""Chrome trace-event JSON exporter (Perfetto / chrome://tracing loadable).

Maps the flight-recorder records (schema:
:mod:`repro.faas.obs.trace`) onto the Trace Event Format:

* each sampled invocation gets its **own thread track** (tid 1000+),
  carrying its six lifecycle phases as strictly sequential ``B``/``E``
  pairs — one tid per invocation guarantees exact pairing, proper
  nesting, and per-track timestamp monotonicity by construction;
* container boot/restore spans land on a **per-invoker track** (tid
  10+) as ``X`` complete events — boots on one invoker may overlap, and
  ``X`` events carry their own duration so no pairing discipline is
  needed;
* control-plane audit events are ``i`` instants on the acting track
  (``"control-plane"`` → tid 1, or the acting invoker's track);
* ``M`` metadata events name the process and every track.

Timestamps are microseconds of simulated time.
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.faas.obs.trace import TraceRecorder

__all__ = ["chrome_trace_events", "export_chrome_trace", "write_chrome_trace"]

#: Phase layout order on an invocation's track: the boot/restore-blocked
#: share of the wait precedes the residual queue wait (the container
#: becomes ready, then the request may still wait for a core).
_LAYOUT = ("inbound", "boot", "restore", "queue", "execute", "outbound")

_CONTROL_PLANE_TRACK = "control-plane"
_PID = 1


def _us(seconds: float) -> float:
    return round(seconds * 1e6, 3)


class _Tracks:
    """First-seen-order tid allocation plus ``M`` metadata events."""

    def __init__(self, events: List[dict]) -> None:
        self._events = events
        self._tids: Dict[str, int] = {}
        self._next_invoker_tid = 10
        self._next_invocation_tid = 1000
        self._events.append({
            "name": "process_name", "ph": "M", "pid": _PID, "tid": 0,
            "args": {"name": "repro-faas-sim"},
        })

    def tid(self, track: str) -> int:
        if track not in self._tids:
            if track == _CONTROL_PLANE_TRACK:
                tid = 1
            elif track.startswith("inv:"):
                tid = self._next_invocation_tid
                self._next_invocation_tid += 1
            else:
                tid = self._next_invoker_tid
                self._next_invoker_tid += 1
            self._tids[track] = tid
            self._events.append({
                "name": "thread_name", "ph": "M", "pid": _PID, "tid": tid,
                "args": {"name": track},
            })
        return self._tids[track]


def chrome_trace_events(recorder: TraceRecorder) -> List[dict]:
    """Flatten a recorder into a sorted Trace Event Format event list."""
    events: List[dict] = []
    tracks = _Tracks(events)
    body: List[dict] = []

    for span in recorder.container_spans:
        tid = tracks.tid(span.track or "invoker")
        body.append({
            "name": span.name, "cat": "container", "ph": "X",
            "pid": _PID, "tid": tid,
            "ts": _us(span.start), "dur": _us(span.duration),
            "args": {"detail": span.detail},
        })

    for audit in recorder.audit_log:
        tid = tracks.tid(audit.actor or _CONTROL_PLANE_TRACK)
        body.append({
            "name": audit.category, "cat": "audit", "ph": "i", "s": "t",
            "pid": _PID, "tid": tid,
            "ts": _us(audit.at),
            "args": {"detail": audit.detail},
        })

    for trace in recorder.invocations:
        track = f"inv:{trace.invocation_id} {trace.tenant}/{trace.action}"
        tid = tracks.tid(track)
        common = {
            "cat": "invocation", "pid": _PID, "tid": tid,
            "args": {
                "tenant": trace.tenant,
                "action": trace.action,
                "dispatch_class": trace.dispatch_class,
                "policy": trace.policy,
                "invoker": trace.invoker_id,
                "status": trace.status,
            },
        }
        phases = trace.phases()
        if phases is not None:
            cursor = trace.submitted_at
            for name in _LAYOUT:
                duration = phases[name]
                if duration <= 0.0:
                    continue
                body.append({
                    "name": name, "ph": "B", "ts": _us(cursor), **common,
                })
                cursor += duration
                body.append({
                    "name": name, "ph": "E", "ts": _us(cursor), **common,
                })
        elif trace.completed_at is not None:
            # Throttled/rejected: one span covering the whole round trip.
            body.append({
                "name": trace.status or "aborted", "ph": "B",
                "ts": _us(trace.submitted_at), **common,
            })
            body.append({
                "name": trace.status or "aborted", "ph": "E",
                "ts": _us(trace.completed_at), **common,
            })
        for at, name, detail in trace.events:
            if name in ("steal", "throttle", "reject"):
                body.append({
                    "name": name, "cat": "invocation", "ph": "i", "s": "t",
                    "pid": _PID, "tid": tid,
                    "ts": _us(at), "args": {"detail": detail},
                })

    # Stable sort by timestamp; at equal timestamps an "E" must precede
    # the next phase's "B" on the same track or the viewer's span stack
    # would close the wrong span.
    body.sort(key=lambda event: (event["ts"], event["ph"] != "E"))
    events.extend(body)
    return events


def export_chrome_trace(recorder: TraceRecorder) -> dict:
    """The full JSON-object form of the Trace Event Format."""
    return {
        "displayTimeUnit": "ms",
        "otherData": {
            "recorder_mode": recorder.mode,
            "seed": recorder.seed,
            "sample_period": recorder.sample_period,
            **recorder.counts(),
        },
        "traceEvents": chrome_trace_events(recorder),
    }


def write_chrome_trace(recorder: TraceRecorder, path: str) -> int:
    """Write the exported trace to ``path``; returns the event count.

    Raises ``OSError`` if the path is unwritable — callers (the CLI)
    surface that as an error exit rather than swallowing it.
    """
    exported = export_chrome_trace(recorder)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(exported, handle, indent=None, separators=(",", ":"))
        handle.write("\n")
    return len(exported["traceEvents"])

"""Load generators for the two workload regimes the paper evaluates.

* :class:`ClosedLoopClient` — the latency setup (§5.3 "Latency"): a single
  closed-loop client submits requests one at a time, with enough think time
  for Groundhog to finish restoration before the next request arrives.  The
  measured latencies therefore only include in-function overheads.
* :class:`SaturatingClient` — the throughput setup (§5.3 "Measuring
  Throughput"): a client keeps a large number of requests in flight so the
  platform is always saturated; restoration time now delays subsequent
  requests and shows up in throughput.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.errors import PlatformError
from repro.faas.platform import FaaSPlatform
from repro.faas.request import Invocation


def _default_callers(count: int = 8) -> Callable[[int], str]:
    """Cycle through ``count`` distinct callers (different security domains)."""

    def caller_for(index: int) -> str:
        return f"user-{index % count:02d}"

    return caller_for


class ClosedLoopClient:
    """One client issuing requests back to back, optionally with think time."""

    def __init__(
        self,
        platform: FaaSPlatform,
        action: str,
        *,
        num_requests: int,
        think_time_seconds: float = 0.050,
        payload: Optional[bytes] = None,
        caller_for: Optional[Callable[[int], str]] = None,
    ) -> None:
        if num_requests < 1:
            raise PlatformError("a closed-loop run needs at least one request")
        self.platform = platform
        self.action = action
        self.num_requests = num_requests
        self.think_time_seconds = think_time_seconds
        self.payload = payload
        self.caller_for = caller_for if caller_for is not None else _default_callers()
        self.completed: List[Invocation] = []

    def run(self) -> List[Invocation]:
        """Issue all requests sequentially and return them in order."""
        issued = 0

        def issue_next() -> None:
            nonlocal issued
            if issued >= self.num_requests:
                return
            index = issued
            issued += 1
            self.platform.invoke_async(
                self.action,
                self.payload,
                caller=self.caller_for(index),
                on_complete=on_complete,
            )

        def on_complete(invocation: Invocation) -> None:
            self.completed.append(invocation)
            if issued < self.num_requests:
                self.platform.loop.schedule(self.think_time_seconds, issue_next,
                                            label="closed-loop next request")

        issue_next()
        self.platform.run()
        if len(self.completed) != self.num_requests:
            raise PlatformError(
                f"closed-loop run finished {len(self.completed)} of "
                f"{self.num_requests} requests"
            )
        return list(self.completed)


class SaturatingClient:
    """Keeps a fixed number of requests in flight to saturate the platform."""

    def __init__(
        self,
        platform: FaaSPlatform,
        action: str,
        *,
        in_flight: int,
        duration_seconds: float,
        warmup_seconds: float = 0.0,
        payload: Optional[bytes] = None,
        caller_for: Optional[Callable[[int], str]] = None,
    ) -> None:
        if in_flight < 1:
            raise PlatformError("saturating client needs at least one in-flight request")
        if duration_seconds <= 0:
            raise PlatformError("duration must be positive")
        self.platform = platform
        self.action = action
        self.in_flight = in_flight
        self.duration_seconds = duration_seconds
        self.warmup_seconds = warmup_seconds
        self.payload = payload
        self.caller_for = caller_for if caller_for is not None else _default_callers()
        self.completed: List[Invocation] = []
        self._issued = 0
        self._start_time = 0.0

    def run(self) -> float:
        """Run the saturation experiment; returns sustained throughput (req/s).

        Throughput is measured over the window after ``warmup_seconds`` and
        up to the configured duration, counting completions in that window.
        """
        self._start_time = self.platform.now
        deadline = self._start_time + self.duration_seconds

        def issue_one() -> None:
            index = self._issued
            self._issued += 1
            self.platform.invoke_async(
                self.action,
                self.payload,
                caller=self.caller_for(index),
                on_complete=on_complete,
            )

        def on_complete(invocation: Invocation) -> None:
            self.completed.append(invocation)
            if self.platform.now < deadline:
                issue_one()

        for _ in range(self.in_flight):
            issue_one()
        self.platform.run(until=deadline)

        window_start = self._start_time + self.warmup_seconds
        window_end = deadline
        in_window = [
            inv for inv in self.completed
            if window_start <= inv.completed_at <= window_end
        ]
        window = window_end - window_start
        if window <= 0:
            raise PlatformError("warmup consumed the whole measurement window")
        return len(in_window) / window

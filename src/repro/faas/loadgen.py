"""Load generators for the workload regimes the evaluation exercises.

* :class:`ClosedLoopClient` — the latency setup (§5.3 "Latency"): a single
  closed-loop client submits requests one at a time, with enough think time
  for Groundhog to finish restoration before the next request arrives.  The
  measured latencies therefore only include in-function overheads.
* :class:`SaturatingClient` — the throughput setup (§5.3 "Measuring
  Throughput"): a client keeps a large number of requests in flight so the
  platform is always saturated; restoration time now delays subsequent
  requests and shows up in throughput.
* :class:`MultiActionSaturatingClient` — the cluster variant: one saturating
  stream per deployed action, so a scheduler has many actions to spread
  across invokers.  Rejected (shed) invocations are re-issued to keep the
  offered load constant, and are excluded from measured throughput.
* :class:`OpenLoopClient` — open-loop (Poisson or trace-driven) arrivals:
  requests are issued at externally determined instants, *independent of
  completions*, so a platform that falls behind accumulates backlog instead
  of silently slowing the client down.  This is the regime that produces
  honest latency-under-load curves and exposes cold-start storms.

All clients drive any deployment that exposes the platform surface
(``invoke_async`` / ``now`` / ``run`` / ``loop``) — both the single-invoker
:class:`~repro.faas.platform.FaaSPlatform` and the multi-invoker
:class:`~repro.faas.cluster.FaaSCluster`.
"""

from __future__ import annotations

import bisect
import csv
import math
import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.errors import PlatformError
from repro.faas.cluster import FaaSCluster
from repro.faas.metrics import LatencyStats
from repro.faas.request import Invocation, InvocationStatus
from repro.faas.sketch import LatencySketch


def _default_callers(count: int = 8) -> Callable[[int], str]:
    """Cycle through ``count`` distinct callers (different security domains)."""

    def caller_for(index: int) -> str:
        return f"user-{index % count:02d}"

    return caller_for


class TenantMix:
    """Deterministic weighted assignment of arrivals to tenants.

    A multi-tenant arrival stream: each issued request is tagged with a
    caller identity drawn from a weighted mix of tenants (e.g. an
    aggressive tenant at 4x a polite tenant's rate).  Assignment uses the
    smooth weighted-round-robin schedule (each step the tenant with the
    highest accumulated credit is chosen and pays back the total weight),
    so the interleaving is maximally even, exactly proportional over any
    long window, and a pure function of the request index — thinning a
    Poisson arrival process through it yields per-tenant streams at the
    weighted rates without consuming any randomness.

    Instances are callables compatible with every client's ``caller_for``
    parameter.
    """

    def __init__(self, weights: Mapping[str, float]) -> None:
        if not weights:
            raise PlatformError("a tenant mix needs at least one tenant")
        for tenant, weight in weights.items():
            if weight <= 0:
                raise PlatformError(
                    f"tenant {tenant!r} needs a positive weight (got {weight})"
                )
        self.weights: Dict[str, float] = {t: float(w) for t, w in weights.items()}
        self._total = sum(self.weights.values())
        self._credit: Dict[str, float] = {tenant: 0.0 for tenant in self.weights}
        self._schedule: List[str] = []

    @property
    def tenants(self) -> List[str]:
        """The tenants of the mix, in declaration order."""
        return list(self.weights)

    def share(self, tenant: str) -> float:
        """The fraction of arrivals assigned to ``tenant``."""
        return self.weights[tenant] / self._total

    def __call__(self, index: int) -> str:
        if index < 0:
            raise PlatformError("arrival index must be >= 0")
        while len(self._schedule) <= index:
            for tenant in self._credit:
                self._credit[tenant] += self.weights[tenant]
            # max() returns the first maximum in iteration (declaration)
            # order, so ties break deterministically.
            chosen = max(self._credit, key=self._credit.get)
            self._credit[chosen] -= self._total
            self._schedule.append(chosen)
        return self._schedule[index]


def azure_functions_arrivals(
    actions: Sequence[str],
    *,
    duration_seconds: float,
    mean_rps: float,
    rng: random.Random,
    skew: float = 1.5,
) -> Tuple[List[float], List[str]]:
    """Generate an Azure-Functions-shaped arrival trace over ``actions``.

    The production characteristic of the Azure Functions traces is a
    heavy-tailed per-function invocation mix: a handful of functions
    receive the overwhelming majority of invocations while the long tail
    is invoked rarely.  This generator reproduces that shape with a
    Zipf-like rate assignment — action ``i`` (in the given order) gets a
    rate proportional to ``1 / (i + 1) ** skew`` — and an independent
    Poisson arrival process per action at its assigned rate, merged into
    one chronologically sorted trace.

    Returns ``(offsets, action_sequence)``: arrival time offsets (sorted,
    starting at >= 0) and the action each arrival targets, ready for
    :class:`OpenLoopClient`'s trace mode (``trace=offsets,
    action_sequence=action_sequence``).  Generation draws only from
    ``rng``, so identical inputs reproduce identical traces.
    """
    if not actions:
        raise PlatformError("an arrival trace needs at least one action")
    if duration_seconds <= 0:
        raise PlatformError("duration must be positive")
    if mean_rps <= 0:
        raise PlatformError("mean_rps must be positive")
    if skew < 0:
        raise PlatformError("skew must be >= 0")
    weights = []
    for index in range(len(actions)):
        try:
            weights.append(1.0 / (index + 1) ** skew)
        except OverflowError:
            # A deep tail under a steep skew overflows the denominator —
            # that action's share is an exact 0.0 (handled below).
            weights.append(0.0)
    total_weight = sum(weights)
    arrivals: List[Tuple[float, str]] = []
    for action, weight in zip(actions, weights):
        rate = mean_rps * weight / total_weight
        if rate <= 0.0 or not math.isfinite(rate):
            # A rate that underflowed to zero (deep tail under a steep
            # skew) contributes no arrivals; drawing from expovariate(0)
            # would divide by zero instead.
            continue
        offset = rng.expovariate(rate)
        while offset <= duration_seconds:
            arrivals.append((offset, action))
            offset += rng.expovariate(rate)
    if not arrivals:
        raise PlatformError(
            "the requested rate and duration produced no arrivals "
            "(every per-action rate was zero or too low); "
            "raise mean_rps or duration_seconds"
        )
    arrivals.sort(key=lambda pair: pair[0])
    return [offset for offset, _ in arrivals], [action for _, action in arrivals]


def azure_diurnal_arrivals(
    actions: Sequence[str],
    *,
    duration_seconds: float,
    mean_rps: float,
    rng: random.Random,
    skew: float = 1.5,
    period_seconds: Optional[float] = None,
    amplitude: float = 0.6,
    burst_multiplier: float = 4.0,
    burst_fraction: float = 0.1,
    burst_dwell_seconds: Optional[float] = None,
) -> Tuple[List[float], List[str]]:
    """Azure-shaped arrivals with the *temporal* production components.

    :func:`azure_functions_arrivals` reproduces the published traces'
    heavy-tailed per-function rate mix but drives it with a stationary
    Poisson process.  The traces' other two signatures are temporal:

    * a **diurnal cycle** — load swings smoothly around the mean over the
      day (here one sinusoidal cycle per ``period_seconds``, default one
      cycle over the run, peak-to-trough set by ``amplitude``), and
    * **bursts** — short windows in which the whole workload's rate jumps
      (here a renewal on/off process: exponential quiet gaps, exponential
      burst dwells of mean ``burst_dwell_seconds``, rate multiplied by
      ``burst_multiplier`` while a burst is on, with bursts covering
      ``burst_fraction`` of the timeline in expectation).  Bursts are
      *correlated across actions* — a traffic spike hits the platform,
      not one function — which is exactly what makes them hard: every
      queue deepens at once.

    The base rate is normalised so the run's expected mean stays
    ``mean_rps``; sampling is non-homogeneous Poisson via thinning, drawn
    only from ``rng`` (identical inputs reproduce identical traces).
    Returns ``(offsets, action_sequence)`` for
    :class:`OpenLoopClient`'s trace mode, like the stationary generator.
    """
    if not actions:
        raise PlatformError("an arrival trace needs at least one action")
    if duration_seconds <= 0:
        raise PlatformError("duration must be positive")
    if mean_rps <= 0:
        raise PlatformError("mean_rps must be positive")
    if skew < 0:
        raise PlatformError("skew must be >= 0")
    if not 0.0 <= amplitude < 1.0:
        raise PlatformError("diurnal amplitude must be in [0, 1)")
    if burst_multiplier < 1.0:
        raise PlatformError("burst_multiplier must be >= 1")
    if not 0.0 <= burst_fraction < 1.0:
        raise PlatformError("burst_fraction must be in [0, 1)")
    period = period_seconds if period_seconds is not None else duration_seconds
    if period <= 0:
        raise PlatformError("diurnal period must be positive")
    dwell = (
        burst_dwell_seconds
        if burst_dwell_seconds is not None
        else duration_seconds / 20
    )
    if dwell <= 0:
        raise PlatformError("burst dwell must be positive")

    # One burst schedule for the whole workload (correlated bursts): the
    # timeline alternates exponential off gaps (mean sized so bursts cover
    # burst_fraction of time) and exponential on dwells.
    burst_edges: List[float] = []  # even index = burst start, odd = burst end
    if burst_fraction > 0 and burst_multiplier > 1.0:
        off_mean = dwell * (1.0 - burst_fraction) / burst_fraction
        t = rng.expovariate(1.0 / off_mean)
        while t < duration_seconds:
            end = t + rng.expovariate(1.0 / dwell)
            burst_edges.append(t)
            burst_edges.append(min(end, duration_seconds))
            t = end + rng.expovariate(1.0 / off_mean)

    def in_burst(t: float) -> bool:
        # Odd insertion index = inside a [start, end) burst window.
        return bisect.bisect_right(burst_edges, t) % 2 == 1

    expected_multiplier = 1.0 + (burst_multiplier - 1.0) * burst_fraction
    base_mean = mean_rps / expected_multiplier

    def rate_factor(t: float) -> float:
        diurnal = 1.0 + amplitude * math.sin(2.0 * math.pi * t / period)
        return diurnal * (burst_multiplier if in_burst(t) else 1.0)

    # The thinning envelope only needs to dominate rates that can actually
    # occur: without any realised burst window the factor never exceeds
    # 1 + amplitude, and paying the burst multiplier there would reject
    # (multiplier - 1)/multiplier of all candidate draws for nothing.
    peak_factor = (1.0 + amplitude) * (burst_multiplier if burst_edges else 1.0)
    weights = []
    for index in range(len(actions)):
        try:
            weights.append(1.0 / (index + 1) ** skew)
        except OverflowError:
            # A deep tail under a steep skew overflows the denominator —
            # that action's share is an exact 0.0 (handled below).
            weights.append(0.0)
    total_weight = sum(weights)
    arrivals: List[Tuple[float, str]] = []
    for action, weight in zip(actions, weights):
        base_rate = base_mean * weight / total_weight
        peak_rate = base_rate * peak_factor
        if peak_rate <= 0.0 or not math.isfinite(peak_rate):
            # A zero (or underflowed) thinning envelope means the action's
            # instantaneous rate is zero everywhere: it legitimately
            # produces no arrivals.  Sampling would instead divide by zero
            # in expovariate — or, for subnormal rates, emit a single
            # arrival at an astronomically distant offset.
            continue
        offset = rng.expovariate(peak_rate)
        while offset <= duration_seconds:
            # Thinning: a candidate drawn at the peak rate survives with
            # probability rate(t)/peak, yielding the non-homogeneous
            # process exactly.
            if rng.random() < rate_factor(offset) / peak_factor:
                arrivals.append((offset, action))
            offset += rng.expovariate(peak_rate)
    if not arrivals:
        raise PlatformError(
            "the requested rate and duration produced no arrivals "
            "(every per-action rate was zero or too low); "
            "raise mean_rps or duration_seconds"
        )
    arrivals.sort(key=lambda pair: pair[0])
    return [offset for offset, _ in arrivals], [action for _, action in arrivals]


def load_azure_trace_csv(
    path: str,
    actions: Sequence[str],
    *,
    duration_seconds: float,
    rng: random.Random,
    mean_rps: Optional[float] = None,
) -> Tuple[List[float], List[str]]:
    """Load a published Azure Functions invocation-count trace into arrivals.

    Understands the format of the released dataset's
    ``invocations_per_function_md.anon.dXX.csv`` files: identity columns
    (``HashOwner``, ``HashApp``, ``HashFunction``, ``Trigger`` — any
    column whose header is not an integer) followed by one column per
    minute of the day (headers ``"1"``..``"1440"``) holding that
    function's invocation count in that minute.

    The loader keeps the top ``len(actions)`` functions by total
    invocations (the deployed actions stand in for them, heaviest first —
    the same heavy-tailed shape the synthetic generator mimics), compresses
    the trace's timeline onto ``duration_seconds`` of virtual time, and
    scatters each minute's invocations uniformly within that minute's
    compressed window using ``rng``.  ``mean_rps`` rescales the totals to
    a target aggregate rate (fractional expectations are resolved by a
    Bernoulli draw, so the expected rate is exact); ``None`` replays the
    selected functions' absolute counts.

    Returns ``(offsets, action_sequence)`` for :class:`OpenLoopClient`'s
    trace mode.  Identical file, arguments, and ``rng`` state reproduce
    identical traces.
    """
    if not actions:
        raise PlatformError("an arrival trace needs at least one action")
    if duration_seconds <= 0:
        raise PlatformError("duration must be positive")
    if mean_rps is not None and mean_rps <= 0:
        raise PlatformError("mean_rps must be positive (or None to replay counts)")
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise PlatformError(f"Azure trace {path!r} is empty") from None
        minute_columns = [
            index for index, name in enumerate(header) if name.strip().isdigit()
        ]
        if not minute_columns:
            raise PlatformError(
                f"Azure trace {path!r} has no per-minute count columns "
                "(expected integer column headers like '1'..'1440')"
            )
        id_column = None
        for index, name in enumerate(header):
            if name.strip() == "HashFunction":
                id_column = index
                break
        rows: List[Tuple[str, List[int]]] = []
        for row_index, row in enumerate(reader):
            if not row or all(not cell.strip() for cell in row):
                # Blank lines (and rows of empty cells, a common CSV
                # export artefact) are skipped, not an error.
                continue
            try:
                counts = [int(float(row[index])) for index in minute_columns]
            except (ValueError, IndexError, OverflowError):
                # OverflowError covers int(float("inf")): a count column
                # holding "inf" is malformed data, not a huge workload.
                raise PlatformError(
                    f"Azure trace {path!r} row {row_index + 2}: "
                    "per-minute counts must be finite numbers"
                ) from None
            if any(count < 0 for count in counts):
                raise PlatformError(
                    f"Azure trace {path!r} row {row_index + 2}: "
                    "per-minute counts must be >= 0"
                )
            identity = (
                row[id_column]
                if id_column is not None and id_column < len(row)
                else f"row-{row_index}"
            )
            rows.append((identity, counts))
    if not rows:
        raise PlatformError(f"Azure trace {path!r} has no function rows")
    # Heaviest functions first; ties break on first appearance so the
    # mapping onto actions is stable.
    order = sorted(
        range(len(rows)), key=lambda i: (-sum(rows[i][1]), i)
    )[: len(actions)]
    selected = [rows[i] for i in order]
    grand_total = sum(sum(counts) for _, counts in selected)
    if grand_total == 0:
        raise PlatformError(
            f"Azure trace {path!r}: the selected functions have no invocations"
        )
    scale = (
        mean_rps * duration_seconds / grand_total if mean_rps is not None else 1.0
    )
    minutes = len(minute_columns)
    window = duration_seconds / minutes
    arrivals: List[Tuple[float, str]] = []
    for action, (_identity, counts) in zip(actions, selected):
        for minute, count in enumerate(counts):
            if count == 0:
                continue
            expected = count * scale
            emit = int(expected)
            if rng.random() < expected - emit:
                emit += 1
            start = minute * window
            for _ in range(emit):
                arrivals.append((start + rng.random() * window, action))
    if not arrivals:
        raise PlatformError(
            f"Azure trace {path!r}: rescaling produced no arrivals; "
            "raise mean_rps or duration_seconds"
        )
    arrivals.sort(key=lambda pair: pair[0])
    return [offset for offset, _ in arrivals], [action for _, action in arrivals]


class ClosedLoopClient:
    """One client issuing requests back to back, optionally with think time."""

    def __init__(
        self,
        platform: FaaSCluster,
        action: str,
        *,
        num_requests: int,
        think_time_seconds: float = 0.050,
        payload: Optional[bytes] = None,
        caller_for: Optional[Callable[[int], str]] = None,
    ) -> None:
        if num_requests < 1:
            raise PlatformError("a closed-loop run needs at least one request")
        self.platform = platform
        self.action = action
        self.num_requests = num_requests
        self.think_time_seconds = think_time_seconds
        self.payload = payload
        self.caller_for = caller_for if caller_for is not None else _default_callers()
        self.completed: List[Invocation] = []

    def run(self) -> List[Invocation]:
        """Issue all requests sequentially and return them in order."""
        issued = 0

        def issue_next() -> None:
            nonlocal issued
            if issued >= self.num_requests:
                return
            index = issued
            issued += 1
            self.platform.invoke_async(
                self.action,
                self.payload,
                caller=self.caller_for(index),
                on_complete=on_complete,
            )

        def on_complete(invocation: Invocation) -> None:
            self.completed.append(invocation)
            if issued < self.num_requests:
                self.platform.loop.schedule(self.think_time_seconds, issue_next,
                                            label="closed-loop next request")

        issue_next()
        self.platform.run()
        if len(self.completed) != self.num_requests:
            raise PlatformError(
                f"closed-loop run finished {len(self.completed)} of "
                f"{self.num_requests} requests"
            )
        return list(self.completed)


class MultiActionSaturatingClient:
    """Saturates several actions at once (the cluster throughput workload).

    Keeps ``in_flight_per_action`` requests outstanding against every action
    in ``actions`` for ``duration_seconds`` of virtual time and reports the
    *aggregate* sustained throughput.  With many actions, a cluster
    scheduler has real routing decisions to make — hash affinity keeps each
    action on its home invoker while round-robin scatters it — so this is
    the workload the scaling experiments drive.
    """

    def __init__(
        self,
        platform: FaaSCluster,
        actions: Sequence[str],
        *,
        in_flight_per_action: int,
        duration_seconds: float,
        warmup_seconds: float = 0.0,
        retry_backoff_seconds: float = 0.001,
        payload: Optional[bytes] = None,
        caller_for: Optional[Callable[[int], str]] = None,
    ) -> None:
        if not actions:
            raise PlatformError("multi-action client needs at least one action")
        if in_flight_per_action < 1:
            raise PlatformError("saturating client needs at least one in-flight request")
        if duration_seconds <= 0:
            raise PlatformError("duration must be positive")
        if retry_backoff_seconds <= 0:
            raise PlatformError("retry backoff must be positive")
        self.platform = platform
        self.actions = list(actions)
        self.in_flight_per_action = in_flight_per_action
        self.duration_seconds = duration_seconds
        self.warmup_seconds = warmup_seconds
        self.retry_backoff_seconds = retry_backoff_seconds
        self.payload = payload
        self.caller_for = caller_for if caller_for is not None else _default_callers()
        self.completed: List[Invocation] = []
        self.rejected: List[Invocation] = []
        self.throttled: List[Invocation] = []
        self._issued = 0
        self._start_time = 0.0
        self._ran = False

    def run(self) -> float:
        """Run the experiment; returns aggregate sustained throughput (req/s)."""
        self._ran = True
        self._start_time = self.platform.now
        deadline = self._start_time + self.duration_seconds

        def issue_one(action: str) -> None:
            index = self._issued
            self._issued += 1
            self.platform.invoke_async(
                action,
                self.payload,
                caller=self.caller_for(index),
                on_complete=on_complete,
            )

        def on_complete(invocation: Invocation) -> None:
            if invocation.status in (
                InvocationStatus.REJECTED,
                InvocationStatus.THROTTLED,
            ):
                (
                    self.rejected
                    if invocation.status is InvocationStatus.REJECTED
                    else self.throttled
                ).append(invocation)
                if self.platform.now < deadline:
                    # Back off before retrying a shed (or quota-refused)
                    # request: with a zero-overhead platform a
                    # same-timestamp re-issue would be refused again without
                    # advancing virtual time, looping the event loop forever
                    # at one instant.
                    self.platform.loop.schedule(
                        self.retry_backoff_seconds,
                        lambda: issue_one(invocation.action),
                        label="shed-retry",
                    )
            else:
                self.completed.append(invocation)
                if self.platform.now < deadline:
                    issue_one(invocation.action)

        for action in self.actions:
            for _ in range(self.in_flight_per_action):
                issue_one(action)
        self.platform.run(until=deadline)
        return len(self._in_window()) / self._window_seconds()

    def _window_seconds(self) -> float:
        window = self.duration_seconds - self.warmup_seconds
        if window <= 0:
            raise PlatformError("warmup consumed the whole measurement window")
        return window

    def _in_window(self) -> List[Invocation]:
        """Completions inside the post-warmup measurement window."""
        window_start = self._start_time + self.warmup_seconds
        deadline = self._start_time + self.duration_seconds
        return [
            inv for inv in self.completed
            if inv.status is InvocationStatus.COMPLETED
            and window_start <= inv.completed_at <= deadline
        ]

    def per_action_throughput(self) -> Dict[str, float]:
        """Sustained throughput of each action over the measurement window."""
        if not self._ran:
            raise PlatformError("per_action_throughput requires run() first")
        window = self._window_seconds()
        counts: Dict[str, int] = {action: 0 for action in self.actions}
        for inv in self._in_window():
            counts[inv.action] += 1
        return {action: count / window for action, count in counts.items()}


class SaturatingClient(MultiActionSaturatingClient):
    """Keeps a fixed number of requests in flight against one action.

    The single-action special case of :class:`MultiActionSaturatingClient`
    — the paper's §5.3 throughput setup, where one saturating client drives
    one deployed benchmark.
    """

    def __init__(
        self,
        platform: FaaSCluster,
        action: str,
        *,
        in_flight: int,
        duration_seconds: float,
        warmup_seconds: float = 0.0,
        payload: Optional[bytes] = None,
        caller_for: Optional[Callable[[int], str]] = None,
    ) -> None:
        super().__init__(
            platform,
            [action],
            in_flight_per_action=in_flight,
            duration_seconds=duration_seconds,
            warmup_seconds=warmup_seconds,
            payload=payload,
            caller_for=caller_for,
        )
        self.action = action
        self.in_flight = in_flight


@dataclass(frozen=True)
class OpenLoopResult:
    """What one open-loop run measured.

    ``achieved_rps`` counts completions inside the post-warmup measurement
    window; under overload it plateaus at the platform's capacity while
    ``offered_rps`` keeps growing — the gap between the two curves *is* the
    latency-under-load story.
    """

    #: Mean arrival rate the client drove (requests/second).
    offered_rps: float
    #: Virtual-time length of the whole run and of the measurement window.
    duration_seconds: float
    window_seconds: float
    #: Arrivals issued over the run.
    issued: int
    #: Completions / rejections over the run (any time, not just in-window).
    completed: int
    rejected: int
    #: Arrivals refused by per-tenant quota enforcement over the run.
    throttled: int
    #: Completions inside the measurement window, per second of window.
    achieved_rps: float
    #: End-to-end latency over in-window completions (``None`` if none).
    e2e: Optional[LatencyStats]
    #: Mean time in-window completions spent waiting for a container.
    queue_seconds_mean: float

    @property
    def goodput_fraction(self) -> float:
        """Achieved / offered throughput (1.0 = the platform kept up)."""
        if self.offered_rps <= 0:
            return 0.0
        return self.achieved_rps / self.offered_rps


class OpenLoopClient:
    """Issues arrivals at externally determined instants (open loop).

    Arrivals come either from a Poisson process of mean rate ``rate_rps``
    (exponential inter-arrival gaps drawn from ``rng``) or from an explicit
    ``trace`` of arrival offsets, and are issued *regardless of what the
    platform does with them* — completions do not gate the next arrival,
    and shed (rejected) or quota-refused (throttled) invocations are lost,
    not retried.  With several actions, each arrival is assigned to an
    action uniformly at random (thinning: the per-action processes are
    then Poisson too), unless a trace supplies an explicit
    ``action_sequence`` (e.g. the heavy-tailed per-action mix of
    :func:`azure_functions_arrivals`).  Multi-tenant streams are a matter
    of ``caller_for`` — pass a :class:`TenantMix` to tag arrivals with
    skewed tenant identities.

    The run lasts ``duration_seconds`` of virtual time; completions are
    measured inside the post-``warmup_seconds`` window.  After the last
    arrival the simulation drains so in-flight requests finish, but
    completions past the deadline do not count toward ``achieved_rps``.

    Two opt-in knobs keep million-arrival traces affordable:

    * ``keep_samples=False`` stops the client retaining finished
      :class:`~repro.faas.request.Invocation` objects (``completed``/
      ``rejected``/``throttled`` stay empty) — outcomes are counted and
      in-window latencies folded into a bounded
      :class:`~repro.faas.sketch.LatencySketch`, so the returned
      :class:`OpenLoopResult` is unchanged except that its ``e2e``
      percentiles carry the sketch's documented relative error
      (count/mean/std/min/max stay exact).
    * ``lazy_trace=True`` schedules trace arrivals one-ahead (each firing
      chains the next) instead of pushing the entire trace into the event
      heap up front, keeping the heap O(in-flight) rather than O(trace).
      Arrival *times* are identical; only tie-breaking order against
      same-instant events differs from the eager default, which is why it
      is opt-in.
    """

    def __init__(
        self,
        platform: FaaSCluster,
        actions: Union[str, Sequence[str]],
        *,
        rate_rps: Optional[float] = None,
        trace: Optional[Sequence[float]] = None,
        action_sequence: Optional[Sequence[str]] = None,
        duration_seconds: Optional[float] = None,
        warmup_seconds: float = 0.0,
        payload: Optional[bytes] = None,
        caller_for: Optional[Callable[[int], str]] = None,
        rng: Optional[random.Random] = None,
        keep_samples: bool = True,
        lazy_trace: bool = False,
    ) -> None:
        self.actions = [actions] if isinstance(actions, str) else list(actions)
        if not self.actions:
            raise PlatformError("open-loop client needs at least one action")
        if (rate_rps is None) == (trace is None):
            raise PlatformError(
                "open-loop client needs exactly one of rate_rps or trace"
            )
        if rate_rps is not None:
            if rate_rps <= 0:
                raise PlatformError("rate_rps must be positive")
            if duration_seconds is None:
                raise PlatformError("a Poisson run needs duration_seconds")
        if trace is not None:
            if not trace:
                raise PlatformError("an arrival trace must not be empty")
            if any(b < a for a, b in zip(trace, trace[1:])) or trace[0] < 0:
                raise PlatformError("trace offsets must be non-negative and sorted")
            if duration_seconds is None:
                duration_seconds = float(trace[-1])
        if action_sequence is not None:
            if trace is None:
                raise PlatformError("action_sequence requires an arrival trace")
            if len(action_sequence) != len(trace):
                raise PlatformError(
                    "action_sequence must assign one action per trace arrival"
                )
            unknown = set(action_sequence) - set(self.actions)
            if unknown:
                raise PlatformError(
                    f"action_sequence names undeployed actions: {sorted(unknown)}"
                )
        if duration_seconds is None or duration_seconds <= 0:
            raise PlatformError("duration must be positive")
        if not 0 <= warmup_seconds < duration_seconds:
            raise PlatformError("warmup must fall inside the run")
        self.platform = platform
        self.rate_rps = rate_rps
        self.trace = list(trace) if trace is not None else None
        self.action_sequence = (
            list(action_sequence) if action_sequence is not None else None
        )
        self.duration_seconds = float(duration_seconds)
        self.warmup_seconds = warmup_seconds
        self.payload = payload
        self.caller_for = caller_for if caller_for is not None else _default_callers()
        if rng is not None:
            self._streams = None
            self.rng = rng
        else:
            # Default: the platform's named RNG stream, so open-loop
            # arrivals never perturb any other subsystem's sequence.
            self._streams = platform.rng_streams
            self.rng = self._streams.stream("open-loop")
        self.keep_samples = keep_samples
        self.lazy_trace = lazy_trace
        if lazy_trace and trace is None:
            raise PlatformError("lazy_trace requires an arrival trace")
        self.completed: List[Invocation] = []
        self.rejected: List[Invocation] = []
        self.throttled: List[Invocation] = []
        self._issued = 0
        # Lean-mode accumulators (used when keep_samples is False).
        self._n_completed = 0
        self._n_rejected = 0
        self._n_throttled = 0
        self._window_completions = 0
        self._window_e2e = LatencySketch()
        self._window_queue_seconds = 0.0

    def _arrival_gap(self) -> float:
        """One exponential inter-arrival gap of the Poisson process."""
        if self._streams is not None:
            return self._streams.expovariate("open-loop", self.rate_rps)
        return self.rng.expovariate(self.rate_rps)

    def run(self) -> OpenLoopResult:
        """Drive the arrivals, drain the platform, return the measurements."""
        start = self.platform.now
        deadline = start + self.duration_seconds
        window_start = start + self.warmup_seconds

        def on_complete(invocation: Invocation) -> None:
            if invocation.status is InvocationStatus.REJECTED:
                self.rejected.append(invocation)
            elif invocation.status is InvocationStatus.THROTTLED:
                self.throttled.append(invocation)
            else:
                self.completed.append(invocation)

        def on_complete_lean(invocation: Invocation) -> None:
            status = invocation.status
            if status is InvocationStatus.REJECTED:
                self._n_rejected += 1
            elif status is InvocationStatus.THROTTLED:
                self._n_throttled += 1
            else:
                self._n_completed += 1
                if (
                    status is InvocationStatus.COMPLETED
                    and window_start <= invocation.completed_at <= deadline
                ):
                    self._window_completions += 1
                    self._window_e2e.add(invocation.e2e_seconds)
                    self._window_queue_seconds += invocation.queue_seconds

        handler = on_complete if self.keep_samples else on_complete_lean

        def issue_one(action: Optional[str] = None) -> None:
            index = self._issued
            self._issued += 1
            if action is None:
                if len(self.actions) == 1:
                    action = self.actions[0]
                else:
                    action = self.actions[self.rng.randrange(len(self.actions))]
            self.platform.invoke_async(
                action,
                self.payload,
                caller=self.caller_for(index),
                on_complete=handler,
            )

        if self.trace is not None:
            cutoff = bisect.bisect_right(self.trace, self.duration_seconds)
            if self.lazy_trace:
                # Chain arrivals one-ahead: the heap holds a single
                # arrival event at a time instead of the whole trace.
                def issue_from(position: int) -> None:
                    action = (
                        self.action_sequence[position]
                        if self.action_sequence is not None
                        else None
                    )
                    issue_one(action)
                    nxt = position + 1
                    if nxt < cutoff:
                        self.platform.loop.schedule_at(
                            start + self.trace[nxt],
                            lambda: issue_from(nxt),
                            label="open-loop arrival",
                        )

                if cutoff > 0:
                    self.platform.loop.schedule_at(
                        start + self.trace[0],
                        lambda: issue_from(0),
                        label="open-loop arrival",
                    )
            else:
                for position in range(cutoff):
                    action = (
                        self.action_sequence[position]
                        if self.action_sequence is not None
                        else None
                    )
                    self.platform.loop.schedule_at(
                        start + self.trace[position],
                        lambda action=action: issue_one(action),
                        label="open-loop arrival",
                    )
        else:

            def arrive() -> None:
                issue_one()
                schedule_next()

            def schedule_next() -> None:
                gap = self._arrival_gap()
                if self.platform.now + gap <= deadline:
                    self.platform.loop.schedule(gap, arrive, label="open-loop arrival")

            schedule_next()

        self.platform.run()

        window = self.duration_seconds - self.warmup_seconds
        offered = (
            self.rate_rps
            if self.rate_rps is not None
            else self._issued / self.duration_seconds
        )
        if not self.keep_samples:
            in_window_count = self._window_completions
            return OpenLoopResult(
                offered_rps=offered,
                duration_seconds=self.duration_seconds,
                window_seconds=window,
                issued=self._issued,
                completed=self._n_completed,
                rejected=self._n_rejected,
                throttled=self._n_throttled,
                achieved_rps=in_window_count / window,
                e2e=self._window_e2e.stats() if in_window_count else None,
                queue_seconds_mean=(
                    self._window_queue_seconds / in_window_count
                    if in_window_count
                    else 0.0
                ),
            )
        in_window = [
            inv
            for inv in self.completed
            if inv.status is InvocationStatus.COMPLETED
            and window_start <= inv.completed_at <= deadline
        ]
        latencies = [inv.e2e_seconds for inv in in_window]
        queue_times = [inv.queue_seconds for inv in in_window]
        return OpenLoopResult(
            offered_rps=offered,
            duration_seconds=self.duration_seconds,
            window_seconds=window,
            issued=self._issued,
            completed=len(self.completed),
            rejected=len(self.rejected),
            throttled=len(self.throttled),
            achieved_rps=len(in_window) / window,
            e2e=LatencyStats.from_samples(latencies) if latencies else None,
            queue_seconds_mean=(
                sum(queue_times) / len(queue_times) if queue_times else 0.0
            ),
        )

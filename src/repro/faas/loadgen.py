"""Load generators for the workload regimes the evaluation exercises.

* :class:`ClosedLoopClient` — the latency setup (§5.3 "Latency"): a single
  closed-loop client submits requests one at a time, with enough think time
  for Groundhog to finish restoration before the next request arrives.  The
  measured latencies therefore only include in-function overheads.
* :class:`SaturatingClient` — the throughput setup (§5.3 "Measuring
  Throughput"): a client keeps a large number of requests in flight so the
  platform is always saturated; restoration time now delays subsequent
  requests and shows up in throughput.
* :class:`MultiActionSaturatingClient` — the cluster variant: one saturating
  stream per deployed action, so a scheduler has many actions to spread
  across invokers.  Rejected (shed) invocations are re-issued to keep the
  offered load constant, and are excluded from measured throughput.

All clients drive any deployment that exposes the platform surface
(``invoke_async`` / ``now`` / ``run`` / ``loop``) — both the single-invoker
:class:`~repro.faas.platform.FaaSPlatform` and the multi-invoker
:class:`~repro.faas.cluster.FaaSCluster`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import PlatformError
from repro.faas.cluster import FaaSCluster
from repro.faas.request import Invocation, InvocationStatus


def _default_callers(count: int = 8) -> Callable[[int], str]:
    """Cycle through ``count`` distinct callers (different security domains)."""

    def caller_for(index: int) -> str:
        return f"user-{index % count:02d}"

    return caller_for


class ClosedLoopClient:
    """One client issuing requests back to back, optionally with think time."""

    def __init__(
        self,
        platform: FaaSCluster,
        action: str,
        *,
        num_requests: int,
        think_time_seconds: float = 0.050,
        payload: Optional[bytes] = None,
        caller_for: Optional[Callable[[int], str]] = None,
    ) -> None:
        if num_requests < 1:
            raise PlatformError("a closed-loop run needs at least one request")
        self.platform = platform
        self.action = action
        self.num_requests = num_requests
        self.think_time_seconds = think_time_seconds
        self.payload = payload
        self.caller_for = caller_for if caller_for is not None else _default_callers()
        self.completed: List[Invocation] = []

    def run(self) -> List[Invocation]:
        """Issue all requests sequentially and return them in order."""
        issued = 0

        def issue_next() -> None:
            nonlocal issued
            if issued >= self.num_requests:
                return
            index = issued
            issued += 1
            self.platform.invoke_async(
                self.action,
                self.payload,
                caller=self.caller_for(index),
                on_complete=on_complete,
            )

        def on_complete(invocation: Invocation) -> None:
            self.completed.append(invocation)
            if issued < self.num_requests:
                self.platform.loop.schedule(self.think_time_seconds, issue_next,
                                            label="closed-loop next request")

        issue_next()
        self.platform.run()
        if len(self.completed) != self.num_requests:
            raise PlatformError(
                f"closed-loop run finished {len(self.completed)} of "
                f"{self.num_requests} requests"
            )
        return list(self.completed)


class MultiActionSaturatingClient:
    """Saturates several actions at once (the cluster throughput workload).

    Keeps ``in_flight_per_action`` requests outstanding against every action
    in ``actions`` for ``duration_seconds`` of virtual time and reports the
    *aggregate* sustained throughput.  With many actions, a cluster
    scheduler has real routing decisions to make — hash affinity keeps each
    action on its home invoker while round-robin scatters it — so this is
    the workload the scaling experiments drive.
    """

    def __init__(
        self,
        platform: FaaSCluster,
        actions: Sequence[str],
        *,
        in_flight_per_action: int,
        duration_seconds: float,
        warmup_seconds: float = 0.0,
        retry_backoff_seconds: float = 0.001,
        payload: Optional[bytes] = None,
        caller_for: Optional[Callable[[int], str]] = None,
    ) -> None:
        if not actions:
            raise PlatformError("multi-action client needs at least one action")
        if in_flight_per_action < 1:
            raise PlatformError("saturating client needs at least one in-flight request")
        if duration_seconds <= 0:
            raise PlatformError("duration must be positive")
        if retry_backoff_seconds <= 0:
            raise PlatformError("retry backoff must be positive")
        self.platform = platform
        self.actions = list(actions)
        self.in_flight_per_action = in_flight_per_action
        self.duration_seconds = duration_seconds
        self.warmup_seconds = warmup_seconds
        self.retry_backoff_seconds = retry_backoff_seconds
        self.payload = payload
        self.caller_for = caller_for if caller_for is not None else _default_callers()
        self.completed: List[Invocation] = []
        self.rejected: List[Invocation] = []
        self._issued = 0
        self._start_time = 0.0
        self._ran = False

    def run(self) -> float:
        """Run the experiment; returns aggregate sustained throughput (req/s)."""
        self._ran = True
        self._start_time = self.platform.now
        deadline = self._start_time + self.duration_seconds

        def issue_one(action: str) -> None:
            index = self._issued
            self._issued += 1
            self.platform.invoke_async(
                action,
                self.payload,
                caller=self.caller_for(index),
                on_complete=on_complete,
            )

        def on_complete(invocation: Invocation) -> None:
            if invocation.status is InvocationStatus.REJECTED:
                self.rejected.append(invocation)
                if self.platform.now < deadline:
                    # Back off before retrying a shed request: with a
                    # zero-overhead platform a same-timestamp re-issue would
                    # be shed again without advancing virtual time, looping
                    # the event loop forever at one instant.
                    self.platform.loop.schedule(
                        self.retry_backoff_seconds,
                        lambda: issue_one(invocation.action),
                        label="shed-retry",
                    )
            else:
                self.completed.append(invocation)
                if self.platform.now < deadline:
                    issue_one(invocation.action)

        for action in self.actions:
            for _ in range(self.in_flight_per_action):
                issue_one(action)
        self.platform.run(until=deadline)
        return len(self._in_window()) / self._window_seconds()

    def _window_seconds(self) -> float:
        window = self.duration_seconds - self.warmup_seconds
        if window <= 0:
            raise PlatformError("warmup consumed the whole measurement window")
        return window

    def _in_window(self) -> List[Invocation]:
        """Completions inside the post-warmup measurement window."""
        window_start = self._start_time + self.warmup_seconds
        deadline = self._start_time + self.duration_seconds
        return [
            inv for inv in self.completed
            if inv.status is InvocationStatus.COMPLETED
            and window_start <= inv.completed_at <= deadline
        ]

    def per_action_throughput(self) -> Dict[str, float]:
        """Sustained throughput of each action over the measurement window."""
        if not self._ran:
            raise PlatformError("per_action_throughput requires run() first")
        window = self._window_seconds()
        counts: Dict[str, int] = {action: 0 for action in self.actions}
        for inv in self._in_window():
            counts[inv.action] += 1
        return {action: count / window for action, count in counts.items()}


class SaturatingClient(MultiActionSaturatingClient):
    """Keeps a fixed number of requests in flight against one action.

    The single-action special case of :class:`MultiActionSaturatingClient`
    — the paper's §5.3 throughput setup, where one saturating client drives
    one deployed benchmark.
    """

    def __init__(
        self,
        platform: FaaSCluster,
        action: str,
        *,
        in_flight: int,
        duration_seconds: float,
        warmup_seconds: float = 0.0,
        payload: Optional[bytes] = None,
        caller_for: Optional[Callable[[int], str]] = None,
    ) -> None:
        super().__init__(
            platform,
            [action],
            in_flight_per_action=in_flight,
            duration_seconds=duration_seconds,
            warmup_seconds=warmup_seconds,
            payload=payload,
            caller_for=caller_for,
        )
        self.action = action
        self.in_flight = in_flight

"""The FaaS platform facade.

:class:`FaaSPlatform` wires the pieces together the way the paper's
deployment does — clients talk to a controller, the controller routes to an
invoker hosting warm containers — and exposes the operations experiments
need: deploy an action under a chosen isolation configuration, fire requests
(synchronously or asynchronously), and collect latency/throughput metrics.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional

from repro.config import SimulationConfig
from repro.errors import PlatformError
from repro.faas.action import ActionSpec
from repro.faas.container import Container
from repro.faas.controller import Controller
from repro.faas.invoker import Invoker
from repro.faas.metrics import MetricsCollector
from repro.faas.request import Invocation
from repro.kernel.kernel import SimKernel
from repro.sim.costs import CostModel, DEFAULT_COST_MODEL
from repro.sim.events import EventLoop
from repro.sim.rng import RngStreams


class FaaSPlatform:
    """An OpenWhisk-like deployment: controller + invoker + warm containers."""

    def __init__(
        self,
        config: Optional[SimulationConfig] = None,
        *,
        cost_model: Optional[CostModel] = None,
        verify_isolation: bool = False,
    ) -> None:
        self.config = config if config is not None else SimulationConfig()
        self.cost_model = cost_model if cost_model is not None else DEFAULT_COST_MODEL
        self.rng_streams = RngStreams(self.config.seed)
        self.loop = EventLoop()
        self.kernel = SimKernel(self.cost_model)
        self.invoker = Invoker(
            self.loop,
            cores=self.config.cores,
            kernel=self.kernel,
            cost_model=self.cost_model,
            rng=self.rng_streams.stream("invoker"),
            verify_isolation=verify_isolation,
        )
        self.controller = Controller(
            self.loop,
            self.invoker,
            platform_overhead_seconds=self.config.platform_overhead_seconds,
            platform_jitter_seconds=self.config.platform_jitter_seconds,
            rng=self.rng_streams.stream("controller"),
        )
        self.metrics = MetricsCollector()
        self.per_action_metrics: Dict[str, MetricsCollector] = {}

    # ------------------------------------------------------------------
    # Deployment
    # ------------------------------------------------------------------

    def deploy(self, spec: ActionSpec, containers: Optional[int] = None) -> List[Container]:
        """Deploy ``spec`` with pre-warmed containers and return them."""
        count = containers if containers is not None else self.config.containers_per_action
        deployed = self.invoker.deploy(spec, containers=count)
        self.per_action_metrics[spec.name] = MetricsCollector()
        return deployed

    def containers(self, action: str) -> List[Container]:
        """The warm containers of a deployed action."""
        return self.invoker.pool(action)

    # ------------------------------------------------------------------
    # Invocation
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self.loop.now

    def invoke_async(
        self,
        action: str,
        payload: Optional[bytes] = None,
        *,
        caller: str = "anonymous",
        on_complete: Optional[Callable[[Invocation], None]] = None,
    ) -> Invocation:
        """Submit one request without waiting for it to finish."""
        spec = self.invoker.action_spec(action)
        if payload is None:
            payload = b"x" * spec.profile.input_bytes
        invocation = Invocation(
            action=action,
            payload=payload,
            caller=caller,
            submitted_at=self.loop.now,
        )

        def record(finished: Invocation) -> None:
            self.metrics.record(finished)
            self.per_action_metrics[action].record(finished)
            if on_complete is not None:
                on_complete(finished)

        self.controller.submit(invocation, record)
        return invocation

    def invoke_sync(
        self,
        action: str,
        payload: Optional[bytes] = None,
        *,
        caller: str = "anonymous",
    ) -> Invocation:
        """Submit one request and run the simulation until it completes."""
        finished: List[Invocation] = []
        invocation = self.invoke_async(
            action, payload, caller=caller, on_complete=finished.append
        )
        guard = 0
        while not finished:
            if not self.loop.step():
                raise PlatformError(
                    f"simulation ran out of events before {invocation.invocation_id} finished"
                )
            guard += 1
            if guard > 1_000_000:
                raise PlatformError("invocation did not complete within the event budget")
        return invocation

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run the event loop (until drained, a time bound, or an event cap)."""
        return self.loop.run(until=until, max_events=max_events)

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------

    def action_metrics(self, action: str) -> MetricsCollector:
        """Per-action metrics collector."""
        if action not in self.per_action_metrics:
            raise PlatformError(f"action {action!r} was never deployed")
        return self.per_action_metrics[action]

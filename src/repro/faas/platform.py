"""The single-invoker FaaS platform facade.

:class:`FaaSPlatform` wires the pieces together the way the paper's
deployment does — clients talk to a controller, the controller routes to an
invoker hosting warm containers — and exposes the operations experiments
need: deploy an action under a chosen isolation configuration, fire requests
(synchronously or asynchronously), and collect latency/throughput metrics.

Since the cluster refactor this is a thin specialisation of
:class:`~repro.faas.cluster.FaaSCluster` with exactly one invoker: every
scheduling policy routes all traffic to it, pools never grow beyond the
pre-warmed count unless configured to, and the paper's experiments run
unchanged.  Use :class:`FaaSCluster` directly for multi-invoker topologies.
"""

from __future__ import annotations

from typing import Optional

from repro.config import SimulationConfig
from repro.errors import PlatformError
from repro.faas.cluster import FaaSCluster
from repro.faas.invoker import Invoker
from repro.kernel.kernel import SimKernel
from repro.sim.costs import CostModel


class FaaSPlatform(FaaSCluster):
    """An OpenWhisk-like deployment: controller + one invoker + warm containers."""

    def __init__(
        self,
        config: Optional[SimulationConfig] = None,
        *,
        cost_model: Optional[CostModel] = None,
        verify_isolation: bool = False,
    ) -> None:
        if config is not None and config.invokers != 1:
            raise PlatformError(
                "FaaSPlatform is the single-invoker deployment; "
                "use FaaSCluster for invokers > 1"
            )
        super().__init__(
            config, cost_model=cost_model, verify_isolation=verify_isolation
        )

    @property
    def invoker(self) -> Invoker:
        """The deployment's only invoker."""
        return self.invokers[0]

    @property
    def kernel(self) -> SimKernel:
        """The simulated kernel backing the invoker's containers."""
        return self.invokers[0].kernel

"""Benchmark specifications.

A :class:`BenchmarkSpec` pairs a function's workload profile (the simulator's
*input*) with the paper's published reference measurements (used only for
reporting paper-vs-measured comparisons in EXPERIMENTS.md — never fed back
into the simulation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.runtime.profiles import FunctionProfile


@dataclass(frozen=True)
class PaperReference:
    """Published measurements for one benchmark (Appendix A, Table 3)."""

    #: Baseline (insecure warm reuse) invoker latency in milliseconds.
    base_invoker_ms: Optional[float] = None
    #: Groundhog invoker latency in milliseconds.
    gh_invoker_ms: Optional[float] = None
    #: Groundhog restoration time in milliseconds.
    restore_ms: Optional[float] = None
    #: Baseline peak throughput in requests/second (4 containers).
    base_throughput_rps: Optional[float] = None
    #: Groundhog peak throughput in requests/second (4 containers).
    gh_throughput_rps: Optional[float] = None
    #: One-time snapshot latency in milliseconds (Fig. 8 subset only).
    snapshot_ms: Optional[float] = None


@dataclass(frozen=True)
class BenchmarkSpec:
    """One benchmark: its profile plus the paper's reference numbers."""

    profile: FunctionProfile
    suite: str
    paper: PaperReference = field(default_factory=PaperReference)
    #: Whether the paper includes this function in the 14-benchmark
    #: representative subset used for Figs. 7 and 8.
    representative: bool = False

    @property
    def name(self) -> str:
        """Unqualified benchmark name."""
        return self.profile.name

    @property
    def qualified_name(self) -> str:
        """Name with language suffix, e.g. ``pyaes (p)``."""
        return self.profile.qualified_name

    @property
    def language(self) -> str:
        """Language short code."""
        return self.profile.language.value

"""The 22 pyperformance benchmarks (Python).

Workload characteristics (baseline compute time, mapped pages, per-request
write set, fault counts) come from the paper's Appendix A (Table 3); they
describe the functions themselves and are the simulator's inputs.  The
paper's measured Groundhog results are kept separately as
:class:`~repro.workloads.spec.PaperReference` for reporting only.
"""

from __future__ import annotations

from types import MappingProxyType
from typing import Dict, List, Mapping, Tuple

from repro.runtime.profiles import FunctionProfile, Language
from repro.workloads.spec import BenchmarkSpec, PaperReference

#: name -> (base invoker ms, total Kpages, dirtied Kpages, paper restore ms,
#:          paper GH invoker ms, paper base throughput, paper GH throughput)
_PyPerfRow = Tuple[float, float, float, float, float, float, float]
_PYPERFORMANCE_DATA: Mapping[str, _PyPerfRow] = MappingProxyType({
    "chaos":      (648.5, 6.32, 0.47, 4.93, 652.0, 6.03, 5.94),
    "logging":    (228.0, 6.12, 0.41, 4.77, 227.9, 0.00, 16.34),
    "pyaes":      (4672.0, 6.21, 0.84, 6.02, 4751.3, 0.82, 0.80),
    "spectral":   (592.8, 6.12, 0.21, 4.29, 605.2, 6.45, 6.40),
    "deltablue":  (20.4, 6.18, 0.33, 4.64, 21.3, 157.63, 140.26),
    "go":         (593.0, 6.25, 0.95, 6.90, 596.6, 6.48, 6.42),
    "mdp":        (6345.5, 7.33, 2.85, 9.55, 6412.3, 0.59, 0.58),
    "pyflate":    (1599.8, 8.25, 2.33, 11.67, 1622.5, 2.39, 2.34),
    "telco":      (155.6, 3.29, 0.53, 3.91, 158.0, 25.01, 23.77),
    "hexiom":     (218.2, 6.18, 0.28, 4.35, 219.2, 17.45, 17.28),
    "nbody":      (2823.7, 6.12, 0.21, 4.08, 2845.0, 1.34, 1.34),
    "raytrace":   (2459.2, 6.25, 0.35, 4.42, 2463.9, 1.58, 1.57),
    "unpack_seq": (3.3, 6.12, 0.20, 3.17, 5.0, 801.86, 398.15),
    "fannkuch":   (4.6, 6.12, 0.19, 3.14, 6.1, 572.32, 350.22),
    "json_dumps": (533.1, 6.37, 0.51, 4.92, 551.5, 7.19, 6.95),
    "pickle":     (105.6, 3.45, 0.23, 2.90, 105.7, 35.49, 34.98),
    "richards":   (353.1, 6.18, 0.23, 4.16, 351.1, 10.68, 10.85),
    "version":    (3.1, 3.14, 0.17, 1.66, 4.0, 990.38, 562.89),
    "float":      (27.1, 6.26, 0.65, 4.99, 27.8, 125.98, 109.09),
    "json_loads": (102.0, 6.12, 0.22, 4.04, 103.3, 36.46, 35.29),
    "pidigits":   (2347.6, 6.14, 0.81, 5.40, 2349.1, 1.64, 1.63),
    "scimark":    (1812.6, 3.26, 0.52, 3.77, 1806.6, 2.12, 2.12),
})

#: Benchmarks that appear in the paper's 14-function representative subset.
_REPRESENTATIVE = frozenset({"fannkuch", "telco", "pyflate", "mdp", "get-time"})


def _make_profile(name: str, row: tuple) -> FunctionProfile:
    base_ms, total_kpages, dirtied_kpages, _, _, _, _ = row
    kwargs = dict(
        name=name,
        language=Language.PYTHON,
        suite="pyperformance",
        exec_seconds=base_ms / 1000.0,
        total_kpages=total_kpages,
        dirtied_kpages=dirtied_kpages,
        regions_mapped_per_invocation=1,
        regions_unmapped_per_invocation=1,
        heap_growth_pages=8,
        input_bytes=256,
        output_bytes=512,
        threads=1,
        init_fraction=0.65,
        wasm_compatible=True,
        description=f"pyperformance benchmark {name}",
    )
    if name == "logging":
        # The paper's blue result: the original function leaks memory and
        # slows down with every reuse; Groundhog's rollback also rolls the
        # leak back.  The profile models the leak; the speed-up is derived.
        kwargs.update(
            leak_pages_per_invocation=40,
            leak_slowdown_seconds_per_kpage=0.45,
        )
    return FunctionProfile(**kwargs)


def pyperformance_benchmarks() -> List[BenchmarkSpec]:
    """All 22 pyperformance benchmark specifications."""
    specs = []
    for name, row in _PYPERFORMANCE_DATA.items():
        base_ms, total_kpages, dirtied_kpages, restore_ms, gh_ms, base_xput, gh_xput = row
        specs.append(
            BenchmarkSpec(
                profile=_make_profile(name, row),
                suite="pyperformance",
                paper=PaperReference(
                    base_invoker_ms=base_ms,
                    gh_invoker_ms=gh_ms,
                    restore_ms=restore_ms,
                    base_throughput_rps=base_xput,
                    gh_throughput_rps=gh_xput,
                ),
                representative=name in _REPRESENTATIVE,
            )
        )
    return specs

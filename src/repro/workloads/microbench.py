"""The §5.2 microbenchmark.

A simple C function pre-allocates an address space of a fixed size; every
invocation (a) dirties a chosen subset of the pages by writing one word to
each, then (b) reads one word from every mapped page.  The paper sweeps the
dirtied fraction (0-100 % of 100 K mapped pages) and the address-space size
(1 K-100 K pages with 1 K dirtied) under low load (in-function overheads
only) and high load (restoration included) to produce Fig. 3.
"""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.runtime.profiles import FunctionProfile, Language

#: Cost of the microbenchmark's own work per dirtied page (one word write).
WRITE_WORD_SECONDS = 12e-9
#: Cost of the microbenchmark's own work per mapped page (one word read).
READ_WORD_SECONDS = 6e-9
#: Fixed per-invocation work outside the page loop (argument parsing etc.).
FIXED_SECONDS = 1.0e-3


def microbenchmark_profile(
    mapped_pages: int,
    dirtied_pages: int,
    *,
    name: str = "microbench",
) -> FunctionProfile:
    """Build the microbenchmark's profile for one sweep point.

    ``mapped_pages`` is the pre-allocated address-space size and
    ``dirtied_pages`` the number of pages each invocation writes to.  The
    compute time is the page-touching work itself; everything an isolation
    mechanism adds (soft-dirty faults, CoW faults, restoration) is charged by
    the simulator on top.
    """
    if mapped_pages <= 0:
        raise WorkloadError("microbenchmark needs a positive mapped size")
    if dirtied_pages < 0 or dirtied_pages > mapped_pages:
        raise WorkloadError("dirtied pages must be within the mapped size")
    exec_seconds = (
        FIXED_SECONDS
        + dirtied_pages * WRITE_WORD_SECONDS
        + mapped_pages * READ_WORD_SECONDS
    )
    return FunctionProfile(
        name=f"{name}-{mapped_pages}p-{dirtied_pages}d",
        language=Language.C,
        suite="microbench",
        exec_seconds=exec_seconds,
        exec_jitter=0.01,
        total_kpages=mapped_pages / 1000.0,
        dirtied_kpages=dirtied_pages / 1000.0,
        read_kpages=mapped_pages / 1000.0,
        regions_mapped_per_invocation=0,
        regions_unmapped_per_invocation=0,
        heap_growth_pages=0,
        input_bytes=64,
        output_bytes=64,
        threads=1,
        init_fraction=1.0,
        wasm_compatible=True,
        description=(
            f"§5.2 microbenchmark: {mapped_pages} mapped pages, "
            f"{dirtied_pages} dirtied per invocation"
        ),
    )

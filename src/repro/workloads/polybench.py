"""The 23 PolyBench benchmarks (native C).

PolyBench kernels statically allocate their arrays: the mapped footprint is
small (~1 K pages), the per-request write set is tiny for most kernels, and
the compute time spans six orders of magnitude (jacobi-1d at ~4 ms to lu at
~200 s).  ``heat-3d`` is the outlier that dirties most of its footprint.
"""

from __future__ import annotations

from types import MappingProxyType
from typing import List, Mapping, Tuple

from repro.runtime.profiles import FunctionProfile, Language
from repro.workloads.spec import BenchmarkSpec, PaperReference

#: name -> (base invoker ms, total Kpages, dirtied Kpages, paper restore ms,
#:          paper GH invoker ms, paper base throughput, paper GH throughput)
_PolyRow = Tuple[float, float, float, float, float, float, float]
_POLYBENCH_DATA: Mapping[str, _PolyRow] = MappingProxyType({
    "2mm":            (27236.2, 0.98, 0.02, 3.12, 28887.4, 0.12, 0.10),
    "3mm":            (45729.0, 0.98, 0.02, 2.32, 46824.4, 0.07, 0.06),
    "adi":            (28311.1, 0.98, 0.02, 0.77, 28857.6, 0.12, 0.12),
    "atax":           (36.4, 0.98, 0.03, 0.99, 36.8, 93.55, 91.99),
    "bicg":           (42.8, 0.98, 0.03, 0.93, 43.2, 81.05, 79.87),
    "cholesky":       (166182.8, 0.98, 0.01, 0.57, 175691.9, 0.02, 0.02),
    "correlation":    (32429.6, 0.98, 0.02, 2.00, 34328.9, 0.10, 0.09),
    "covariance":     (33020.6, 0.98, 0.02, 1.97, 34971.3, 0.10, 0.10),
    "deriche":        (1115.0, 0.98, 0.01, 0.75, 1115.0, 4.47, 4.43),
    "doitgen":        (650.5, 0.98, 0.02, 1.31, 650.0, 5.98, 5.96),
    "durbin":         (7.6, 0.98, 0.02, 0.62, 8.0, 314.68, 295.98),
    "fdtd-2d":        (2179.1, 0.98, 0.02, 0.97, 2182.6, 0.89, 0.89),
    "floyd-warshall": (21151.4, 0.98, 0.01, 0.78, 21171.3, 0.17, 0.17),
    "gramschmidt":    (60899.8, 0.98, 0.02, 2.53, 64980.4, 0.06, 0.05),
    "heat-3d":        (3059.5, 4.35, 3.39, 16.09, 3272.0, 1.02, 0.98),
    "jacobi-1d":      (3.8, 0.98, 0.02, 0.62, 4.2, 671.34, 578.99),
    "jacobi-2d":      (2329.3, 0.98, 0.01, 0.69, 2343.4, 1.05, 1.05),
    "lu":             (196555.8, 0.98, 0.01, 0.74, 207603.5, 0.02, 0.02),
    "ludcmp":         (193545.9, 0.98, 0.02, 1.02, 199550.2, 0.02, 0.02),
    "mvt":            (140.3, 0.98, 0.03, 1.16, 144.3, 28.78, 28.28),
    "nussinov":       (39122.6, 0.98, 0.02, 1.02, 38323.5, 0.09, 0.09),
    "seidel-2d":      (23140.1, 0.98, 0.02, 0.75, 23139.0, 0.16, 0.16),
    "trisolv":        (23.1, 0.98, 0.02, 0.97, 23.2, 138.18, 134.92),
})

#: PolyBench members of the paper's 14-function representative subset.
_REPRESENTATIVE = frozenset({"bicg", "heat-3d", "seidel-2d"})


def _make_profile(name: str, row: tuple) -> FunctionProfile:
    base_ms, total_kpages, dirtied_kpages, *_ = row
    return FunctionProfile(
        name=name,
        language=Language.C,
        suite="polybench",
        exec_seconds=base_ms / 1000.0,
        total_kpages=total_kpages,
        dirtied_kpages=dirtied_kpages,
        regions_mapped_per_invocation=0,
        regions_unmapped_per_invocation=0,
        heap_growth_pages=0,
        input_bytes=128,
        output_bytes=256,
        threads=1,
        init_fraction=1.0,
        wasm_compatible=True,
        description=f"PolyBench/C kernel {name}",
    )


def polybench_benchmarks() -> List[BenchmarkSpec]:
    """All 23 PolyBench benchmark specifications."""
    specs = []
    for name, row in _POLYBENCH_DATA.items():
        base_ms, total_kpages, dirtied_kpages, restore_ms, gh_ms, base_xput, gh_xput = row
        specs.append(
            BenchmarkSpec(
                profile=_make_profile(name, row),
                suite="polybench",
                paper=PaperReference(
                    base_invoker_ms=base_ms,
                    gh_invoker_ms=gh_ms,
                    restore_ms=restore_ms,
                    base_throughput_rps=base_xput,
                    gh_throughput_rps=gh_xput,
                ),
                representative=name in _REPRESENTATIVE,
            )
        )
    return specs

"""The 13 FaaSProfiler benchmarks (6 Python, 7 Node.js).

These are the web-application-shaped functions: JSON handling, markdown
rendering, sentiment analysis, OCR, image resizing.  The Node.js functions
are the hard case for Groundhog — huge V8 address spaces (150-210 K pages),
aggressive memory-layout churn, multiple threads (no fork baseline), large
request payloads relayed through the manager, and GC behaviour that is
sensitive to having its clock rolled back (§5.3.1).
"""

from __future__ import annotations

from types import MappingProxyType
from typing import List, Mapping, Tuple

from repro.runtime.profiles import FunctionProfile, Language
from repro.workloads.spec import BenchmarkSpec, PaperReference

#: name -> (base invoker ms, total Kpages, dirtied Kpages, paper restore ms,
#:          paper GH invoker ms, paper base xput, paper GH xput, input bytes,
#:          restore-triggered GC seconds)
_ProfilerRow = Tuple[float, float, float, float, float, float, float, int, float]
_PYTHON_DATA: Mapping[str, _ProfilerRow] = MappingProxyType({
    "get-time":  (2.9, 3.19, 0.18, 1.66, 4.1, 1038.74, 552.09, 128, 0.0),
    "sentiment": (6.5, 16.86, 0.57, 6.00, 8.9, 385.07, 230.39, 1024, 0.0),
    "json":      (9.9, 3.33, 0.87, 3.71, 13.0, 150.00, 135.34, 200_000, 0.0),
    "md2html":   (31.0, 4.93, 0.62, 4.25, 32.7, 93.94, 88.50, 8_192, 0.0),
    "base64":    (743.2, 5.13, 1.66, 7.67, 761.5, 5.18, 5.10, 65_536, 0.0),
    "primes":    (1829.7, 3.22, 0.53, 3.24, 1830.7, 2.04, 1.99, 64, 0.0),
})

_NODE_DATA: Mapping[str, _ProfilerRow] = MappingProxyType({
    "get-time":     (3.7, 156.76, 0.64, 12.58, 6.4, 942.07, 133.45, 128, 0.0),
    "autocomplete": (3.8, 156.98, 0.92, 13.52, 6.3, 922.59, 121.98, 512, 0.0),
    "json":         (9.4, 156.78, 0.85, 13.02, 16.1, 159.09, 86.58, 200_000, 0.0),
    "primes":       (274.6, 201.35, 34.20, 84.74, 287.1, 11.79, 8.16, 64, 0.0),
    "img-resize":   (445.3, 179.43, 18.05, 61.83, 721.7, 6.57, 4.10, 76_000, 0.26),
    "base64":       (644.0, 208.42, 53.83, 161.93, 715.1, 5.62, 4.34, 65_536, 0.0),
    "ocr-img":      (2491.7, 156.80, 1.08, 13.95, 2508.5, 1.53, 1.52, 32_768, 0.0),
})

#: Members of the paper's 14-function representative subset.
_REPRESENTATIVE_PY = frozenset({"get-time", "sentiment", "md2html"})
_REPRESENTATIVE_NODE = frozenset({"autocomplete", "img-resize", "base64", "ocr-img"})


def _python_profile(name: str, row: tuple) -> FunctionProfile:
    base_ms, total_kpages, dirtied_kpages, *_rest = row
    input_bytes = row[7]
    return FunctionProfile(
        name=name,
        language=Language.PYTHON,
        suite="faasprofiler",
        exec_seconds=base_ms / 1000.0,
        total_kpages=total_kpages,
        dirtied_kpages=dirtied_kpages,
        regions_mapped_per_invocation=1,
        regions_unmapped_per_invocation=1,
        heap_growth_pages=8,
        input_bytes=input_bytes,
        output_bytes=max(512, input_bytes // 4),
        threads=1,
        init_fraction=0.65,
        # The FaaSProfiler Python functions pull in native extension modules
        # and were not part of the paper's WebAssembly comparison.
        wasm_compatible=False,
        description=f"FaaSProfiler Python function {name}",
    )


def _node_profile(name: str, row: tuple) -> FunctionProfile:
    base_ms, total_kpages, dirtied_kpages, *_rest = row
    input_bytes = row[7]
    gc_seconds = row[8]
    return FunctionProfile(
        name=name,
        language=Language.NODE,
        suite="faasprofiler",
        exec_seconds=base_ms / 1000.0,
        total_kpages=total_kpages,
        dirtied_kpages=dirtied_kpages,
        regions_mapped_per_invocation=3,
        regions_unmapped_per_invocation=2,
        heap_growth_pages=32,
        input_bytes=input_bytes,
        output_bytes=max(1024, input_bytes // 4),
        threads=5,
        init_fraction=0.80,
        wasm_compatible=False,
        restore_gc_seconds=gc_seconds,
        restore_gc_probability=1.0 if gc_seconds > 0 else 0.0,
        description=f"FaaSProfiler Node.js function {name}",
    )


def faasprofiler_benchmarks() -> List[BenchmarkSpec]:
    """All 13 FaaSProfiler benchmark specifications."""
    specs: List[BenchmarkSpec] = []
    for name, row in _PYTHON_DATA.items():
        base_ms, _tk, _dk, restore_ms, gh_ms, base_xput, gh_xput, _in, _gc = row
        specs.append(
            BenchmarkSpec(
                profile=_python_profile(name, row),
                suite="faasprofiler",
                paper=PaperReference(
                    base_invoker_ms=base_ms,
                    gh_invoker_ms=gh_ms,
                    restore_ms=restore_ms,
                    base_throughput_rps=base_xput,
                    gh_throughput_rps=gh_xput,
                ),
                representative=name in _REPRESENTATIVE_PY,
            )
        )
    for name, row in _NODE_DATA.items():
        base_ms, _tk, _dk, restore_ms, gh_ms, base_xput, gh_xput, _in, _gc = row
        specs.append(
            BenchmarkSpec(
                profile=_node_profile(name, row),
                suite="faasprofiler",
                paper=PaperReference(
                    base_invoker_ms=base_ms,
                    gh_invoker_ms=gh_ms,
                    restore_ms=restore_ms,
                    base_throughput_rps=base_xput,
                    gh_throughput_rps=gh_xput,
                ),
                representative=name in _REPRESENTATIVE_NODE,
            )
        )
    return specs

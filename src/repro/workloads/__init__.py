"""Benchmark workloads: the paper's 58 functions plus the §5.2 microbenchmark."""

from repro.workloads.spec import BenchmarkSpec, PaperReference
from repro.workloads.registry import (
    all_benchmarks,
    benchmarks_by_suite,
    find_benchmark,
    representative_benchmarks,
    wasm_benchmarks,
    fork_compatible_benchmarks,
)
from repro.workloads.microbench import microbenchmark_profile

__all__ = [
    "BenchmarkSpec",
    "PaperReference",
    "all_benchmarks",
    "benchmarks_by_suite",
    "find_benchmark",
    "representative_benchmarks",
    "wasm_benchmarks",
    "fork_compatible_benchmarks",
    "microbenchmark_profile",
]

"""Lookup across all benchmark suites."""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, List, Optional

from repro.errors import WorkloadError
from repro.runtime.profiles import Language
from repro.workloads.faasprofiler import faasprofiler_benchmarks
from repro.workloads.polybench import polybench_benchmarks
from repro.workloads.pyperformance import pyperformance_benchmarks
from repro.workloads.spec import BenchmarkSpec

#: The suites evaluated in the paper, in presentation order.
SUITES = ("pyperformance", "polybench", "faasprofiler")


@lru_cache(maxsize=1)
def _load_all() -> tuple:
    benchmarks: List[BenchmarkSpec] = []
    benchmarks.extend(pyperformance_benchmarks())
    benchmarks.extend(polybench_benchmarks())
    benchmarks.extend(faasprofiler_benchmarks())
    return tuple(benchmarks)


def all_benchmarks() -> List[BenchmarkSpec]:
    """All 58 benchmarks across the three suites."""
    return list(_load_all())


def benchmarks_by_suite(suite: str) -> List[BenchmarkSpec]:
    """Benchmarks of one suite (``pyperformance``/``polybench``/``faasprofiler``)."""
    if suite not in SUITES:
        raise WorkloadError(f"unknown suite {suite!r}; known: {', '.join(SUITES)}")
    return [spec for spec in _load_all() if spec.suite == suite]


def find_benchmark(name: str, language: Optional[str] = None) -> BenchmarkSpec:
    """Find a benchmark by name (and language when names collide across suites)."""
    matches = [spec for spec in _load_all() if spec.name == name]
    if language is not None:
        matches = [s for s in matches if s.profile.language.value == language
                   or s.profile.language.short == language]
    if not matches:
        raise WorkloadError(f"no benchmark named {name!r}"
                            + (f" for language {language!r}" if language else ""))
    if len(matches) > 1:
        options = ", ".join(s.qualified_name for s in matches)
        raise WorkloadError(
            f"benchmark name {name!r} is ambiguous ({options}); pass a language"
        )
    return matches[0]


def representative_benchmarks() -> List[BenchmarkSpec]:
    """The 14-function subset used for Figs. 7 and 8, sorted by restore time."""
    subset = [spec for spec in _load_all() if spec.representative]
    return sorted(subset, key=lambda s: s.paper.restore_ms or 0.0, reverse=True)


def wasm_benchmarks() -> List[BenchmarkSpec]:
    """Benchmarks included in the FAASM comparison (WebAssembly-compatible)."""
    return [spec for spec in _load_all() if spec.profile.wasm_compatible]


def fork_compatible_benchmarks() -> List[BenchmarkSpec]:
    """Benchmarks the fork baseline can host (single-threaded runtimes)."""
    return [spec for spec in _load_all() if spec.profile.language is not Language.NODE]
